#!/usr/bin/env bash
# Repo-specific lint pass: the rules generic tools cannot see, plus a
# clang-tidy run when one is available (CI passes --require-clang-tidy so
# the gate cannot silently skip it; see docs/static_analysis.md).
#
# Usage: tools/lint.sh [--require-clang-tidy] [BUILD_DIR]
#   BUILD_DIR must hold compile_commands.json for the clang-tidy pass
#   (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in CMakeLists.txt).
set -u

cd "$(dirname "$0")/.."

require_clang_tidy=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --require-clang-tidy) require_clang_tidy=1 ;;
    *) build_dir="$arg" ;;
  esac
done

failures=0
fail() {
  echo "lint: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  failures=$((failures + 1))
}

# Strip // and /* */ comments plus string literals, so prose about fsync or
# std::mutex does not trip the token rules below.
strip_comments() {
  sed -e 's://.*$::' -e 's:/\*.*\*/::g' -e 's:"\([^"\\]\|\\.\)*"::g' "$1"
}

src_files=$(git ls-files 'src/*.cc' 'src/*.h' 2>/dev/null ||
            find src -name '*.cc' -o -name '*.h')

# Rule 1: all locking goes through the annotated wrappers in
# src/common/mutex.h — a raw std::mutex member is invisible to clang
# thread-safety analysis, so the whole discipline would silently rot.
for f in $src_files; do
  case "$f" in src/common/mutex.h) continue ;; esac
  hits=$(strip_comments "$f" | grep -nE \
    'std::(mutex|recursive_mutex|shared_mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)')
  if [ -n "$hits" ]; then
    fail "$f: raw std:: locking primitive; use ldphh::Mutex/MutexLock/CondVar (src/common/mutex.h) so thread-safety analysis sees it" "$hits"
  fi
done

# Rule 2: raw file I/O stays inside the file layer. Everything else goes
# through src/common/file.h so durability tests can fault-inject it and so
# sync behavior is decided in exactly one place.
for f in $src_files; do
  case "$f" in src/common/file.*) continue ;; esac
  hits=$(strip_comments "$f" | grep -nE \
    '(^|[^_[:alnum:]])(fopen|fdopen|freopen|fsync|fdatasync|open64)[[:space:]]*\(')
  if [ -n "$hits" ]; then
    fail "$f: raw file I/O outside src/common/file.*; route it through the file layer" "$hits"
  fi
done

# Rule 3: no bare (void) discard of a Status — IgnoreStatus(s, reason) is
# the one sanctioned way to drop one, and it makes the caller write down
# why. (The [[nodiscard]] attribute catches plain discards; this catches
# the cast that would defeat it.)
all_files=$(git ls-files 'src/*.cc' 'src/*.h' 'tests/*.cc' 'tests/*.h' \
            'bench/*.cc' 'examples/*.cpp' 2>/dev/null)
for f in $all_files; do
  case "$f" in src/common/status.h) continue ;; esac  # IgnoreStatus itself.
  hits=$(strip_comments "$f" | grep -nE '\(void\)[[:space:]]*[[:alnum:]_>.-]*([Ss]tatus|->(Close|Sync|Flush)\(\))')
  if [ -n "$hits" ]; then
    fail "$f: bare (void) Status discard; use IgnoreStatus(s, reason)" "$hits"
  fi
done

# Rule 4: benches must stay deterministic — wall-clock seeding makes the
# committed BENCH_*.json baselines unreproducible.
bench_files=$(git ls-files 'bench/*.cc' 2>/dev/null)
for f in $bench_files; do
  hits=$(strip_comments "$f" | grep -nE 'std::random_device|time\(NULL\)|time\(nullptr\)')
  if [ -n "$hits" ]; then
    fail "$f: nondeterministic seed in a bench; fix the seed so BENCH baselines reproduce" "$hits"
  fi
done

# Rule 5: durable record writing goes through CheckpointStore. A direct
# CheckpointWriter append bypasses the store's write lane — group commit,
# sequence numbering, the write-health latch, and the put metrics/spans all
# live there — so serving code must not hold one. Allowed: the definition
# (src/server/checkpoint_log.*), the store itself (src/store/*), and
# sharded_aggregator, whose WriteCheckpoint(CheckpointWriter&) serializes
# shard state into a log the *caller* owns. Tests/benches stay exempt:
# they exercise the raw writer by design (fault injection, format pinning).
for f in $src_files; do
  case "$f" in
    src/server/checkpoint_log.*) continue ;;
    src/store/*) continue ;;
    src/server/sharded_aggregator.*) continue ;;
  esac
  hits=$(strip_comments "$f" | grep -nE '(^|[^_[:alnum:]])CheckpointWriter([^_[:alnum:]]|$)')
  if [ -n "$hits" ]; then
    fail "$f: direct CheckpointWriter use outside src/store/; write through CheckpointStore so group commit, write health, and metrics apply" "$hits"
  fi
done

# Rule 6: raw socket plumbing stays inside src/net/. The event loop,
# Listener, and Connection own every socket/bind/listen/accept/poll call
# so non-blocking discipline, fd ownership, and accept-time setup are
# decided in exactly one place; servers consume the net layer. (recv/send/
# setsockopt on an already-accepted fd are fine — workers own those.)
for f in $src_files; do
  case "$f" in src/net/*) continue ;; esac
  hits=$(strip_comments "$f" | grep -nE \
    '(^|[^_[:alnum:]])(::)?(socket|bind|listen|accept|accept4|poll|ppoll)[[:space:]]*\(')
  if [ -n "$hits" ]; then
    fail "$f: raw socket/poll call outside src/net/; build on net::EventLoop/Listener/Connection instead" "$hits"
  fi
done

# clang-tidy over the exported compile commands (the .clang-tidy config at
# the repo root curates the checks).
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    fail "clang-tidy: $build_dir/compile_commands.json missing" \
         "configure with cmake -B $build_dir first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
  else
    tidy_out=$(clang-tidy -p "$build_dir" --quiet $(git ls-files 'src/*.cc') 2>/dev/null)
    if echo "$tidy_out" | grep -qE '(warning|error):'; then
      fail "clang-tidy reported violations" "$(echo "$tidy_out" | grep -E '(warning|error):')"
    fi
  fi
elif [ "$require_clang_tidy" = 1 ]; then
  fail "clang-tidy required but not installed" \
       "install clang-tidy or drop --require-clang-tidy"
else
  echo "lint: clang-tidy not found; skipping that pass (CI runs it)" >&2
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: FAILED ($failures rule(s) violated)" >&2
  exit 1
fi
echo "lint: OK"
