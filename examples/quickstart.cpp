// Quickstart: find heavy hitters over a million simulated users with local
// differential privacy, using the paper's PrivateExpanderSketch protocol.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/ldphh.h"

int main() {
  using namespace ldphh;

  // 1. A distributed database: one 64-bit item per user. Three items are
  //    popular; the rest of the population holds unique values.
  const uint64_t n = 1 << 20;
  const Workload workload =
      MakePlantedWorkload(n, /*domain_bits=*/64, {0.30, 0.20, 0.15},
                          /*seed=*/2024);

  // 2. Configure the protocol. epsilon is the per-user privacy budget;
  //    beta the failure probability. Everything else has paper defaults.
  PesParams params;
  params.domain_bits = 64;
  params.epsilon = 4.0;
  params.beta = 1e-3;
  auto protocol_or = PrivateExpanderSketch::Create(params);
  if (!protocol_or.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 protocol_or.status().ToString().c_str());
    return 1;
  }
  auto protocol = std::move(protocol_or).value();

  std::printf("PrivateExpanderSketch: eps=%.1f, |X|=2^64, n=%llu\n",
              params.epsilon, static_cast<unsigned long long>(n));
  std::printf("detection threshold Delta ~ %.0f users (%.1f%% of n)\n\n",
              protocol.DetectionThreshold(n),
              100.0 * protocol.DetectionThreshold(n) / n);

  // 3. Run: every user locally randomizes its item (eps-LDP) and sends one
  //    short message; the server decodes the heavy hitters.
  auto result_or = protocol.Run(workload.database, /*seed=*/42);
  if (!result_or.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const HeavyHitterResult result = std::move(result_or).value();

  // 4. Report.
  std::printf("%-20s %12s %12s\n", "item", "estimate", "true count");
  for (const auto& entry : result.entries) {
    uint64_t truth = 0;
    for (const auto& [item, count] : workload.heavy) {
      if (item == entry.item) truth = count;
    }
    std::printf("%-20s %12.0f %12llu\n",
                entry.item.ToHex().substr(48).c_str(), entry.estimate,
                static_cast<unsigned long long>(truth));
  }
  std::printf("\nresources: %s\n", result.metrics.ToString().c_str());
  return 0;
}
