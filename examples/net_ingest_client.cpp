// Network ingestion client — the other half of the multi-process demo
// (see net_ingest_server.cpp). Encodes a skewed LDP report stream, frames
// it into batches, and ships it over TCP or a Unix-domain socket through
// net::ReportClient — which pipelines frames, retries retryable busy acks
// with backoff, and reconnects through transient connection failures.
//
//   ./example_net_ingest_client --port=9000 --reports=100000
//
// The --protocol text must match the server's (the wire id is stamped on
// every batch; mismatched batches are rejected whole at decode time).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ldphh.h"
#include "src/net/report_client.h"

int main(int argc, char** argv) {
  int port = 0;
  std::string uds_path;
  uint64_t num_reports = 100000;
  uint64_t batch_size = 512;
  uint64_t seed = 1;
  std::string protocol = "rappor_unary(domain=56,eps=1)";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--uds=", 6) == 0) {
      uds_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--reports=", 10) == 0) {
      num_reports = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch_size = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--protocol=", 11) == 0) {
      protocol = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "usage: %s (--port=N | --uds=PATH) [--reports=N] "
                   "[--batch=N] [--seed=S] [--protocol=TEXT]\n",
                   argv[0]);
      return 2;
    }
  }
  if (port == 0 && uds_path.empty()) {
    std::fprintf(stderr, "one of --port or --uds is required\n");
    return 2;
  }
  if (batch_size == 0) batch_size = 1;
  using namespace ldphh;

  const auto config_or = ProtocolConfig::FromText(protocol);
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad --protocol: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const ProtocolConfig config = config_or.value();
  const uint64_t domain = config.GetUintOr("domain", 56);

  auto encoder_or = CreateAggregator(config);
  if (!encoder_or.ok()) {
    std::fprintf(stderr, "encoder: %s\n",
                 encoder_or.status().ToString().c_str());
    return 1;
  }
  auto encoder = std::move(encoder_or).value();
  const auto wire_id_or =
      ProtocolRegistry::Global().WireIdOf(config.protocol());
  if (!wire_id_or.ok()) return 1;

  auto client_or =
      uds_path.empty()
          ? net::ReportClient::ConnectTcp("127.0.0.1",
                                          static_cast<uint16_t>(port),
                                          net::ReportClient::Options{})
          : net::ReportClient::ConnectUds(uds_path,
                                          net::ReportClient::Options{});
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();

  // Encode-and-ship: a quarter of the fleet shares value 42, the rest is
  // uniform noise — the server's top estimate should be 42 by a margin.
  Rng rng(seed);
  std::vector<WireReport> batch;
  batch.reserve(batch_size);
  for (uint64_t i = 0; i < num_reports; ++i) {
    const uint64_t value = rng.Bernoulli(0.25) ? 42 : rng.UniformU64(domain);
    auto report_or = encoder->Encode(i, DomainItem(value), rng);
    if (!report_or.ok()) {
      std::fprintf(stderr, "encode: %s\n",
                   report_or.status().ToString().c_str());
      return 1;
    }
    batch.push_back(report_or.value());
    if (batch.size() == batch_size || i + 1 == num_reports) {
      const Status sent =
          client->Send(EncodeReportBatch(batch, wire_id_or.value()));
      if (!sent.ok()) {
        std::fprintf(stderr, "send: %s\n", sent.ToString().c_str());
        return 1;
      }
      batch.clear();
    }
  }
  const Status flushed = client->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "flush: %s\n", flushed.ToString().c_str());
    return 1;
  }
  const auto& stats = client->stats();
  std::printf(
      "sent %llu reports in %llu frames (%llu busy retries, %llu "
      "reconnects)\n",
      static_cast<unsigned long long>(num_reports),
      static_cast<unsigned long long>(stats.frames_acked),
      static_cast<unsigned long long>(stats.busy_retries),
      static_cast<unsigned long long>(stats.reconnects));
  return 0;
}
