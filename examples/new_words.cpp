// New-word discovery — the Apple iOS-10 scenario from the paper's
// introduction: learn which new words/emoji-phrases are trending across
// keyboards, without a dictionary (the heavy-hitters protocol *discovers*
// the strings) and with per-user eps-LDP.
//
// Also demonstrates the frequency-oracle half of the system (Definition
// 3.2): after discovery, any specific candidate word can be queried against
// the same transcript via the Hashtogram.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/ldphh.h"

int main() {
  using namespace ldphh;
  const int kBits = 64;  // 8-char word slots.
  const uint64_t n = 1 << 20;

  const std::vector<std::pair<std::string, uint64_t>> trending = {
      {"skibidi", n / 4}, {"rizzler", n / 5}, {"delulu", n / 6}};
  Workload w = MakeStringWorkload(trending, kBits, 5);
  Rng tail(13);
  while (w.database.size() < n) {
    // Long tail: private words typed by single users.
    char buf[12];
    std::snprintf(buf, sizeof(buf), "w%08llx",
                  static_cast<unsigned long long>(tail() & 0xffffffff));
    w.database.push_back(DomainItem::FromString(buf, kBits));
  }

  PesParams params;
  params.domain_bits = kBits;
  params.epsilon = 4.0;
  params.beta = 1e-3;
  auto pes = std::move(PrivateExpanderSketch::Create(params)).value();
  const auto result = std::move(pes.Run(w.database, 3)).value();

  std::printf("discovered trending words (n=%llu keyboards, eps=%.1f):\n",
              static_cast<unsigned long long>(n), params.epsilon);
  for (const auto& entry : result.entries) {
    std::printf("  %-10s ~%.0f users\n", entry.item.ToString(kBits).c_str(),
                entry.estimate);
  }

  // --- Frequency-oracle queries on chosen candidates --------------------
  // A separate eps-LDP Hashtogram pass answers "how popular is THIS word?"
  // for any candidate — including ones below the discovery threshold.
  std::printf("\nfrequency-oracle spot checks (Theorem 3.7 Hashtogram):\n");
  HashtogramParams hp;
  hp.beta = 1e-3;
  Hashtogram oracle(n, params.epsilon, hp, 17);
  Rng coins(19);
  for (uint64_t i = 0; i < n; ++i) {
    oracle.Aggregate(i, oracle.Encode(i, w.database[static_cast<size_t>(i)],
                                      coins));
  }
  oracle.Finalize();
  for (const std::string word :
       {"skibidi", "delulu", "covfefe" /* not present */}) {
    const DomainItem item = DomainItem::FromString(word, kBits);
    std::printf("  f(\"%s\") ~ %.0f\n", word.c_str(), oracle.Estimate(item));
  }
  std::printf("\n(\"covfefe\" estimates near zero: the oracle answers any\n"
              " query, with error O(sqrt(n log(1/beta))/eps) around truth)\n");
  return 0;
}
