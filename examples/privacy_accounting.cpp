// Privacy accounting with the Section 4/5 structural results.
//
// Scenario: a device reports k = 128 binary attributes, each through
// eps = 0.05 randomized response. What privacy does a *group* of users
// enjoy (advanced grouposition, Theorem 4.2)? How much does the whole
// k-attribute report leak (composition, Theorem 5.1)? How much information
// does the full n-user protocol reveal about a random input
// (max-information, Theorem 4.5)?

#include <cstdio>

#include "src/core/ldphh.h"

int main() {
  using namespace ldphh;
  const double eps = 0.05;

  // --- 1. Group privacy across users (Theorem 4.2) ----------------------
  std::printf("== group privacy of an eps=%.2f LDP protocol ==\n", eps);
  std::printf("%-8s %14s %14s %14s\n", "group k", "naive k*eps",
              "Thm 4.2 bound", "exact (PLD)");
  BinaryRandomizedResponse rr(eps);
  for (int k : {8, 64, 512}) {
    const double delta = 1e-9;
    std::printf("%-8d %14.3f %14.3f %14.3f\n", k, NaiveGroupEpsilon(eps, k),
                AdvancedGroupositionEpsilon(eps, k, delta),
                ExactGroupEpsilon(rr, 0, 1, k, delta));
  }
  std::printf("-> a 512-user group keeps eps' ~ sqrt(512)*eps, not 512*eps:\n"
              "   local privacy degrades by sqrt(k) (Section 4).\n\n");

  // --- 2. One user's k attributes (Theorem 5.1) -------------------------
  const int k = 128;
  const double beta = 0.01;
  ShellComposedRR composed(eps, k, beta);
  std::printf("== composing k=%d randomized responses for ONE user ==\n", k);
  std::printf("naive pure composition:  %6.2f\n", composed.NaiveEpsilon());
  std::printf("Theorem 5.1 bound:       %6.2f\n", composed.EpsilonBound());
  std::printf("realized exact eps~:     %6.2f\n", composed.ExactEpsilon());
  std::printf("distortion TV(M~, M):    %6.2e (<= beta = %.2f)\n",
              composed.TvToPlainComposition(), beta);
  std::printf("-> the shell mechanism reports all %d attributes at the\n"
              "   advanced-composition price while staying PURE-DP.\n\n", k);

  // --- 3. Max-information of the whole protocol (Theorem 4.5) -----------
  std::printf("== max-information about a random input database ==\n");
  std::printf("%-10s %-8s %18s %18s\n", "n", "beta", "Thm 4.5 (nats)",
              "central eps*n");
  for (uint64_t n : {uint64_t{10000}, uint64_t{1000000}}) {
    for (double b : {1e-2, 1e-6}) {
      std::printf("%-10llu %-8.0e %18.1f %18.1f\n",
                  static_cast<unsigned long long>(n), b,
                  MaxInformationBound(eps, n, b),
                  CentralMaxInformationBound(eps, n));
    }
  }
  std::printf("-> adaptive analyses composed with this protocol generalize:\n"
              "   the bound holds for arbitrary (non-product) priors, which\n"
              "   the central model cannot offer (Section 4).\n");
  return 0;
}
