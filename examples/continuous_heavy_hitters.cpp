// Continuous heavy hitters over epochs — the always-on telemetry story.
//
// The one-shot protocols answer "what are the heavy hitters among these n
// reports?"; an operator of a live service asks "what were the heavy
// hitters over the last k hours?" This demo runs the epoch layer end to
// end, configured by a single self-describing ProtocolConfig: a fleet of
// LDP clients streams reports into an EpochManager, which rolls the sharded
// aggregator over fixed-size epochs and persists each closed epoch's
// mergeable state — config embedded, so every record on disk names its own
// protocol — into the compacting segment store. Mid-stream the service is
// killed outright; recovery resumes the epoch clock from the store (with
// the segment files it finds, compaction debris and all) and the traffic of
// the interrupted epoch is replayed. Windowed queries over any closed-epoch
// range then answer bit-for-bit what a crash-free single-threaded server
// aggregating exactly those epochs' reports would have said — while old
// epochs are pruned and compacted away to keep the disk footprint bounded.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/core/ldphh.h"

namespace {

double EstimateOf(const std::vector<ldphh::HeavyHitterEntry>& entries,
                  uint64_t value) {
  for (const auto& e : entries) {
    if (e.item == ldphh::DomainItem(value)) return e.estimate;
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace ldphh;
  const uint64_t kDomain = 512;
  const uint64_t kEpochSize = 1 << 15;  // Reports per epoch.
  const uint64_t kEpochs = 12;
  const std::string dir = "/tmp/ldphh_continuous_hh_store";
  std::filesystem::remove_all(dir);

  const ProtocolConfig config =
      std::move(ProtocolConfig::FromText("hadamard_response(domain=512,eps=1)"))
          .value();

  // --- client fleet: the popular value drifts over time -------------------
  // Epochs 0-5 are dominated by value 42, epochs 6-11 by value 311 — the
  // windowed queries below see the change, a whole-history aggregate blurs it.
  std::printf("encoding %llu reports across %llu epochs...\n",
              static_cast<unsigned long long>(kEpochs * kEpochSize),
              static_cast<unsigned long long>(kEpochs));
  auto client = std::move(CreateAggregator(config)).value();
  Rng rng(17);
  std::vector<WireReport> reports(kEpochs * kEpochSize);
  for (uint64_t i = 0; i < reports.size(); ++i) {
    const uint64_t epoch = i / kEpochSize;
    const uint64_t hot = epoch < kEpochs / 2 ? 42 : 311;
    const uint64_t value = rng.Bernoulli(0.25) ? hot : rng.UniformU64(kDomain);
    auto report_or = client->Encode(i, DomainItem(value), rng);
    if (!report_or.ok()) return 1;
    reports[i] = report_or.value();
  }

  CheckpointStoreOptions store_opts;
  store_opts.segment_max_bytes = 8 << 10;  // Small segments: compaction runs.
  store_opts.compaction_trigger = 3;
  EpochManagerOptions epoch_opts;
  epoch_opts.reports_per_epoch = kEpochSize;
  epoch_opts.aggregator.num_shards = 4;

  // --- phase 1: ingest 7.5 epochs, then the server dies -------------------
  const size_t crash_at = 7 * kEpochSize + kEpochSize / 2;
  {
    auto store_or = CheckpointStore::Open(dir, store_opts);
    if (!store_or.ok()) return 1;
    auto store = std::move(store_or).value();
    auto service_or = EpochManager::Create(config, store.get(), epoch_opts);
    if (!service_or.ok()) return 1;
    auto service = std::move(service_or).value();
    if (!service->Start().ok()) return 1;
    for (size_t i = 0; i < crash_at; ++i) {
      if (!service->Submit(reports[i]).ok()) return 1;
    }
    const auto stats = store->Stats();
    std::printf(
        "phase 1: %llu epochs closed (%llu segment files, %llu compactions), "
        "then the server crashes mid-epoch-7.\n",
        static_cast<unsigned long long>(service->current_epoch()),
        static_cast<unsigned long long>(stats.live_segments),
        static_cast<unsigned long long>(stats.compactions));
    // Killed here: the open epoch's 16k reports were never acknowledged.
  }

  // --- phase 2: recover, replay epoch 7's traffic, finish the stream ------
  auto store_or = CheckpointStore::Open(dir, store_opts);
  if (!store_or.ok()) {
    std::printf("recovery failed: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(store_or).value();
  auto service_or = EpochManager::Create(config, store.get(), epoch_opts);
  if (!service_or.ok()) return 1;
  auto service = std::move(service_or).value();
  if (!service->Start().ok()) return 1;
  std::printf("phase 2: recovered %llu closed epochs; epoch clock resumes at %llu\n",
              static_cast<unsigned long long>(service->PersistedEpochs().size()),
              static_cast<unsigned long long>(service->current_epoch()));
  if (service->current_epoch() != 7) return 1;
  for (size_t i = 7 * kEpochSize; i < reports.size(); ++i) {
    if (!service->Submit(reports[i]).ok()) return 1;
  }

  // --- windowed queries vs. a crash-free single-threaded baseline ---------
  auto baseline = [&](uint64_t first, uint64_t last) {
    auto oracle = std::move(CreateAggregator(config)).value();
    for (uint64_t i = first * kEpochSize; i < (last + 1) * kEpochSize; ++i) {
      if (!oracle->Aggregate(reports[i]).ok()) std::abort();
    }
    return oracle;
  };
  bool identical = true;
  struct Window {
    uint64_t first, last;
    const char* label;
  };
  for (const Window w : {Window{0, 5, "old regime "},
                         Window{6, 11, "new regime "},
                         Window{4, 9, "transition "},
                         Window{0, 11, "all history"}}) {
    auto window_or = service->WindowedQuery(w.first, w.last);
    if (!window_or.ok()) {
      std::printf("WindowedQuery failed: %s\n",
                  window_or.status().ToString().c_str());
      return 1;
    }
    auto window = std::move(window_or).value();
    auto want = baseline(w.first, w.last);
    const auto got_entries = std::move(window->EstimateTopK(kDomain)).value();
    const auto want_entries = std::move(want->EstimateTopK(kDomain)).value();
    if (got_entries.size() != want_entries.size()) identical = false;
    for (size_t i = 0; identical && i < got_entries.size(); ++i) {
      if (got_entries[i].item != want_entries[i].item ||
          got_entries[i].estimate != want_entries[i].estimate) {
        identical = false;
      }
    }
    std::printf("  epochs [%llu, %2llu] (%s): f(42) = %7.0f   f(311) = %7.0f\n",
                static_cast<unsigned long long>(w.first),
                static_cast<unsigned long long>(w.last), w.label,
                EstimateOf(got_entries, 42), EstimateOf(got_entries, 311));
  }

  // --- retention: prune the old regime, compact, recover once more --------
  if (!service->PruneEpochsBefore(6).ok()) return 1;
  if (!service->Close().ok()) return 1;
  if (!store->Compact().ok()) return 1;
  const auto final_stats = store->Stats();
  std::printf("retention: pruned epochs < 6; %llu segment files remain after "
              "compaction\n",
              static_cast<unsigned long long>(final_stats.live_segments));
  store.reset();
  auto reopened = CheckpointStore::Open(dir, store_opts);
  if (!reopened.ok()) return 1;
  auto after_or =
      EpochManager::Create(config, reopened.value().get(), epoch_opts);
  if (!after_or.ok()) return 1;
  auto after = std::move(after_or).value();
  if (!after->Start().ok()) return 1;
  const bool retention_ok = after->PersistedEpochs().size() == 6 &&
                            after->current_epoch() == 12 &&
                            !after->WindowedQuery(5, 6).ok() &&
                            after->WindowedQuery(6, 11).ok();

  std::printf("windowed queries == crash-free sequential baseline: %s\n",
              identical ? "bit-for-bit identical" : "MISMATCH");
  std::printf("retention + recovery after compaction: %s\n",
              retention_ok ? "ok" : "FAILED");
  std::filesystem::remove_all(dir);
  return identical && retention_ok ? 0 : 1;
}
