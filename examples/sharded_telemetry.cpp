// Sharded telemetry ingestion — the server-side story at production scale.
//
// A telemetry backend serves millions of LDP clients. The protocol is named
// by a self-describing ProtocolConfig ("hadamard_response(domain=1024,
// eps=1)"); the registry builds identical client encoders and server shards
// from that one string. Each client privatizes its value locally and ships
// the report in the compact wire format, stamped with the protocol's wire
// id; the ingestion service rejects batches for the wrong protocol at
// decode time, fans accepted reports out across worker shards, and
// periodically checkpoints every shard's state — with the config embedded,
// so the log is self-describing — to an append-only CRC-guarded log.
// Mid-stream, this demo kills the service outright and recovers from the
// checkpoint, replaying only the reports that arrived after it: the final
// estimates are bit-for-bit what a single-threaded, crash-free server would
// have produced.
//
// With `--admin-port=N` the demo also starts the live admin plane on
// 127.0.0.1:N (0 = pick a free port) and, after the verification phase,
// keeps serving /metrics, /statusz, /spanz, /healthz etc. for
// `--serve-seconds=S` (default 60 when an admin port is given) or until
// SIGINT/SIGTERM. The exit-time text dump still runs either way.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/timer.h"
#include "src/core/ldphh.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/admin_server.h"

namespace {

double EstimateOf(const std::vector<ldphh::HeavyHitterEntry>& entries,
                  uint64_t value) {
  for (const auto& e : entries) {
    if (e.item == ldphh::DomainItem(value)) return e.estimate;
  }
  return 0.0;
}

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

/// Serves the admin plane until the deadline or a termination signal.
void ServeAdminPlane(int serve_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(serve_seconds);
  while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

int main(int argc, char** argv) {
  int admin_port = -1;     // -1 = no admin plane.
  int serve_seconds = -1;  // -1 = default (60 if admin plane is up).
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      admin_port = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atoi(argv[i] + 16);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--admin-port=N] [--serve-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::unique_ptr<ldphh::AdminServer> admin;
  if (admin_port >= 0) {
    ldphh::AdminServer::Options admin_opts;
    admin_opts.port = static_cast<uint16_t>(admin_port);
    auto admin_or = ldphh::AdminServer::Start(admin_opts);
    if (!admin_or.ok()) {
      std::fprintf(stderr, "admin server failed to start: %s\n",
                   admin_or.status().ToString().c_str());
      return 1;
    }
    admin = std::move(admin_or).value();
    std::printf("admin plane on http://127.0.0.1:%u (try /metrics, "
                "/statusz, /spanz, /healthz)\n",
                admin->port());
  }
  using namespace ldphh;
  const uint64_t kDomain = 1024;
  const uint64_t n = 1 << 20;  // ~1M clients.
  const int kShards = 8;

  // The whole deployment is configured by one parseable line.
  const auto config_or =
      ProtocolConfig::FromText("hadamard_response(domain=1024,eps=1)");
  if (!config_or.ok()) return 1;
  const ProtocolConfig config = config_or.value();
  std::printf("serving protocol: %s\n", config.ToText().c_str());

  // --- client fleet: encode and frame reports in batches of 64k ----------
  std::printf("encoding %llu client reports...\n",
              static_cast<unsigned long long>(n));
  auto client_or = CreateAggregator(config);
  if (!client_or.ok()) return 1;
  auto client = std::move(client_or).value();
  const uint16_t wire_id =
      ProtocolRegistry::Global().WireIdOf(config.protocol()).value();
  Rng rng(7);
  std::vector<std::string> wire_batches;
  {
    std::vector<WireReport> batch;
    batch.reserve(1 << 16);
    for (uint64_t i = 0; i < n; ++i) {
      // A quarter of the fleet shares value 42; the rest is uniform noise.
      const uint64_t value = rng.Bernoulli(0.25) ? 42 : rng.UniformU64(kDomain);
      auto report_or = client->Encode(i, DomainItem(value), rng);
      if (!report_or.ok()) return 1;
      batch.push_back(report_or.value());
      if (batch.size() == (1 << 16) || i + 1 == n) {
        wire_batches.push_back(EncodeReportBatch(batch, wire_id));
        batch.clear();
      }
    }
  }
  uint64_t wire_bytes = 0;
  for (const auto& b : wire_batches) wire_bytes += b.size();
  std::printf("  %zu framed batches, %.1f MB on the wire (%.2f bytes/report)\n",
              wire_batches.size(), static_cast<double>(wire_bytes) / (1 << 20),
              static_cast<double>(wire_bytes) / static_cast<double>(n));

  const std::string ckpt_path = "/tmp/ldphh_sharded_telemetry.ckpt";
  std::remove(ckpt_path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = kShards;
  opts.queue_capacity = 1 << 14;
  opts.batch_size = 512;

  // --- phase 1: the service ingests 60% of the traffic, checkpoints, dies -
  const size_t cut = wire_batches.size() * 6 / 10;
  {
    auto service_or = ShardedAggregator::Create(config, opts);
    if (!service_or.ok()) return 1;
    auto service = std::move(service_or).value();
    if (!service->Start().ok()) return 1;

    // A batch stamped for a different protocol bounces at the front door.
    const uint16_t foreign_id =
        ProtocolRegistry::Global().WireIdOf("k_rr").value();
    std::vector<WireReport> dummy(1);
    const Status bounced =
        service->SubmitWire(EncodeReportBatch(dummy, foreign_id));
    std::printf("wrong-protocol batch rejected: %s\n",
                bounced.ToString().c_str());

    Timer t;
    for (size_t b = 0; b < cut; ++b) {
      if (!service->SubmitWire(wire_batches[b]).ok()) return 1;
    }
    if (!service->Drain().ok()) return 1;
    const IngestStats stats = service->Stats();
    std::printf("phase 1: ingested %llu reports on %d shards (%.2fM reports/s)\n",
                static_cast<unsigned long long>(stats.submitted), kShards,
                static_cast<double>(stats.submitted) / t.Seconds() / 1e6);
    CheckpointWriter log;
    if (!log.Open(ckpt_path).ok()) return 1;
    if (!service->WriteCheckpoint(log).ok()) return 1;
    std::printf("phase 1: self-describing checkpoint written, then the "
                "server crashes.\n");
    // `service` is destroyed here with all in-memory state lost.
  }

  // --- phase 2: recover from the log and ingest the remaining traffic -----
  {
    auto service_or = ShardedAggregator::Create(config, opts);
    if (!service_or.ok()) return 1;
    auto service = std::move(service_or).value();
    CheckpointReader log;
    if (!log.Open(ckpt_path).ok()) return 1;
    const Status restored = service->RestoreCheckpoint(log);
    if (!restored.ok()) {
      std::printf("recovery failed: %s\n", restored.ToString().c_str());
      return 1;
    }
    std::printf("phase 2: recovered %llu reports from the checkpoint\n",
                static_cast<unsigned long long>(service->Stats().restored));
    if (!service->Start().ok()) return 1;
    for (size_t b = cut; b < wire_batches.size(); ++b) {
      if (!service->SubmitWire(wire_batches[b]).ok()) return 1;
    }
    auto merged_or = service->Finish();
    if (!merged_or.ok()) return 1;
    auto merged = std::move(merged_or).value();

    // --- compare against a crash-free single-threaded server --------------
    auto baseline_or = CreateAggregator(config);
    if (!baseline_or.ok()) return 1;
    auto baseline = std::move(baseline_or).value();
    for (const auto& wire : wire_batches) {
      std::vector<WireReport> reports;
      if (!DecodeReportBatch(wire, &reports).ok()) return 1;
      for (const auto& r : reports) {
        if (!baseline->Aggregate(r).ok()) return 1;
      }
    }

    auto got_or = merged->EstimateTopK(kDomain);
    auto want_or = baseline->EstimateTopK(kDomain);
    if (!got_or.ok() || !want_or.ok()) return 1;
    const auto& got = got_or.value();
    const auto& want = want_or.value();
    bool identical = got.size() == want.size();
    for (size_t i = 0; identical && i < got.size(); ++i) {
      identical = got[i].item == want[i].item &&
                  got[i].estimate == want[i].estimate;
    }
    std::printf("estimate for the planted value 42: %.0f (true %.0f)\n",
                EstimateOf(got, 42), 0.25 * static_cast<double>(n));
    std::printf("sharded+recovered == sequential baseline: %s\n",
                identical ? "bit-for-bit identical" : "MISMATCH");

    // Keep the admin plane up while the service and its instruments are
    // still live, so scrapes see the full run (queue gauges, span samples,
    // ingest statusz). Ctrl-C or SIGTERM ends the linger early.
    if (admin != nullptr) {
      const int linger = serve_seconds >= 0 ? serve_seconds : 60;
      std::printf("serving admin plane for up to %d s "
                  "(SIGINT/SIGTERM to stop)...\n",
                  linger);
      ServeAdminPlane(linger);
      admin->Stop();
    }

    // Everything above left a metrics trail: ingest counters and latencies,
    // fsync distributions, the privacy budget actually spent. One dump
    // shows it all — the same text a scrape endpoint would serve.
    std::printf("\n--- metrics (MetricsRegistry DumpText) ---\n%s",
                obs::MetricsRegistry::Global().DumpText().c_str());
    std::printf("\n--- trace (last structural events) ---\n%s",
                obs::TraceRing::Global().DumpText().c_str());
    std::remove(ckpt_path.c_str());
    return identical ? 0 : 1;
  }
}
