// Pure privacy from approximate privacy — the Section 6 GenProt
// transformation, end to end.
//
// A vendor ships an (eps, delta)-LDP randomizer with a delta-probability
// "catastrophic leak" channel (the canonical worst case). GenProt wraps it:
// users report only an index into public samples, the result is pure
// 10eps-LDP, and the downstream estimate is statistically unchanged. This
// is the paper's constructive proof that approximate local privacy buys no
// accuracy over pure local privacy.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/ldphh.h"

int main() {
  using namespace ldphh;
  const double eps = 0.2;
  const double delta = 1e-6;
  const uint64_t n = 100000;

  LeakyRandomizedResponse leaky(eps, delta);
  std::printf("source randomizer: eps=%.2f, delta=%.0e\n", eps, delta);
  std::printf("  exact pure-DP parameter: %s (the leak channel)\n",
              std::isinf(leaky.ExactEpsilon()) ? "INFINITE" : "finite");
  std::printf("  hockey-stick delta(eps): %.2e\n\n", leaky.ExactDelta(eps));

  // Wrap with GenProt. T = 2 ln(2n/beta) per Theorem 6.1's utility recipe.
  const double beta = 1e-3;
  const int t_count =
      std::max(GenProt::MinT(eps),
               static_cast<int>(std::ceil(2.0 * std::log(2.0 * n / beta))));
  GenProt gp(&leaky, eps, t_count, /*default_input=*/0);
  std::printf("GenProt: T=%d public samples/user, report = %d bits "
              "(O(log log n))\n", t_count,
              static_cast<int>(std::ceil(std::log2(t_count))));
  std::printf("  guaranteed pure privacy: %.2f (= 10 eps)\n",
              GenProt::PrivacyBound(eps));
  std::printf("  utility TV bound: %.2e\n\n",
              GenProt::UtilityTvBound(eps, delta, t_count, n));

  // Verify the realized privacy exactly on sampled public randomness.
  Rng rng(3);
  double realized = 0;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> ys;
    for (int t = 0; t < t_count; ++t) ys.push_back(leaky.Sample(0, rng));
    realized = std::max(realized, gp.ExactEpsilonForPublicRandomness(ys));
  }
  std::printf("realized eps over sampled public randomness: %.3f "
              "(<= %.2f)\n\n", realized, 10 * eps);

  // Utility: count the ones through both channels.
  std::vector<int> inputs(n);
  uint64_t ones = 0;
  Rng wl(7);
  for (auto& x : inputs) {
    x = wl.Bernoulli(0.35);
    ones += x;
  }
  auto estimate = [&](const std::vector<int>& outputs) {
    const double e = std::exp(eps);
    double acc = 0;
    for (int y : outputs) {
      if (y >= 2) {
        acc += (y - 2);
      } else {
        acc += ((e + 1) / (e - 1)) * (y - 1.0 / (e + 1));
      }
    }
    return acc;
  };
  // Original (eps, delta) protocol.
  std::vector<int> direct(n);
  Rng coins(11);
  for (uint64_t i = 0; i < n; ++i) {
    direct[static_cast<size_t>(i)] =
        leaky.Sample(inputs[static_cast<size_t>(i)], coins);
  }
  // Transformed pure protocol.
  const auto run = gp.Run(inputs, 13);

  std::printf("true count:                   %llu\n",
              static_cast<unsigned long long>(ones));
  std::printf("(eps,delta) protocol estimate: %.0f (err %.0f)\n",
              estimate(direct), std::abs(estimate(direct) - double(ones)));
  std::printf("pure GenProt estimate:         %.0f (err %.0f)\n",
              estimate(run.resolved_output),
              std::abs(estimate(run.resolved_output) - double(ones)));
  std::printf("\n-> same accuracy, strictly stronger privacy guarantee.\n");
  return 0;
}
