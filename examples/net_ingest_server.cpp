// Network ingestion server — one half of the multi-process demo.
//
// Starts the framed-report ingestion front-end (src/server/report_server.h)
// on TCP loopback and/or a Unix-domain socket, feeding a ShardedAggregator
// through the non-blocking TrySubmitWire sink (full shard queues answer
// with a retryable busy ack instead of blocking the event loop). Run the
// companion `example_net_ingest_client` from another process — or several
// at once — to drive reports into it:
//
//   ./example_net_ingest_server --port=9000 --admin-port=9001 &
//   ./example_net_ingest_client --port=9000 --reports=100000
//
// With `--admin-port=N` the live admin plane is served too; /metrics shows
// every ldphh_net_* counter moving while clients are connected. On SIGINT/
// SIGTERM (or after --serve-seconds) the server drains gracefully, merges
// the shards, and prints how many reports arrived plus the top estimates.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "src/core/ldphh.h"
#include "src/server/admin_server.h"
#include "src/server/report_server.h"
#include "src/server/sharded_aggregator.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  int port = 0;            // 0 = ephemeral (printed below).
  std::string uds_path;    // Empty = TCP only.
  int admin_port = -1;     // -1 = no admin plane.
  int serve_seconds = 60;
  std::string protocol = "rappor_unary(domain=56,eps=1)";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--uds=", 6) == 0) {
      uds_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      admin_port = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--protocol=", 11) == 0) {
      protocol = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--uds=PATH] [--admin-port=N] "
                   "[--serve-seconds=S] [--protocol=TEXT]\n",
                   argv[0]);
      return 2;
    }
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  using namespace ldphh;

  const auto config_or = ProtocolConfig::FromText(protocol);
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad --protocol: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const ProtocolConfig config = config_or.value();
  std::printf("serving protocol: %s\n", config.ToText().c_str());

  ShardedAggregatorOptions agg_opts;
  agg_opts.num_shards = 4;
  auto agg_or = ShardedAggregator::Create(config, agg_opts);
  if (!agg_or.ok() || !agg_or.value()->Start().ok()) {
    std::fprintf(stderr, "aggregator failed to start\n");
    return 1;
  }
  auto agg = std::move(agg_or).value();

  ReportServer::Options server_opts;
  server_opts.port = static_cast<uint16_t>(port);
  server_opts.uds_path = uds_path;
  auto server_or = ReportServer::Create(
      server_opts,
      [&agg](std::string_view payload) { return agg->TrySubmitWire(payload); });
  if (!server_or.ok()) {
    std::fprintf(stderr, "report server: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_or).value();
  const Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "report server start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("ingest listening on 127.0.0.1:%u\n", server->port());
  if (!uds_path.empty()) std::printf("ingest listening on %s\n",
                                     uds_path.c_str());

  std::unique_ptr<AdminServer> admin;
  if (admin_port >= 0) {
    AdminServer::Options admin_opts;
    admin_opts.port = static_cast<uint16_t>(admin_port);
    auto admin_or = AdminServer::Start(admin_opts);
    if (!admin_or.ok()) {
      std::fprintf(stderr, "admin server failed to start: %s\n",
                   admin_or.status().ToString().c_str());
      return 1;
    }
    admin = std::move(admin_or).value();
    std::printf("admin plane on http://127.0.0.1:%u (try /metrics)\n",
                admin->port());
  }
  std::fflush(stdout);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(serve_seconds);
  while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server->Stop();  // Graceful: in-flight frames finish, acks flush.
  auto merged_or = agg->Finish();
  if (!merged_or.ok()) {
    std::fprintf(stderr, "finish failed: %s\n",
                 merged_or.status().ToString().c_str());
    return 1;
  }
  const auto stats = agg->Stats();
  std::printf("ingested %llu reports\n",
              static_cast<unsigned long long>(stats.submitted));
  auto top_or = merged_or.value()->EstimateTopK(5);
  if (top_or.ok()) {
    for (const auto& entry : top_or.value()) {
      std::printf("  %-20llu %.1f\n",
                  static_cast<unsigned long long>(entry.item.limbs[0]),
                  entry.estimate);
    }
  }
  return 0;
}
