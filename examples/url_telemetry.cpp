// URL telemetry — the Chrome/RAPPOR scenario from the paper's introduction.
//
// A browser vendor wants the most common homepage URLs across a fleet
// without learning any individual user's homepage. Each browser reports one
// eps-LDP message; the server reconstructs the popular URLs *as strings*
// (the domain is all strings up to 16 bytes — 2^128 items — so no
// enumeration is possible; this is exactly the regime the paper's protocol
// is built for).

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/ldphh.h"

int main() {
  using namespace ldphh;
  const int kBits = 128;  // 16-byte URL prefixes.
  const uint64_t n = 1 << 20;

  // Popular homepages with a realistic popularity profile, over a long
  // tail of unique personal pages.
  const std::vector<std::pair<std::string, uint64_t>> popular = {
      {"google.com", n / 4},
      {"youtube.com", n / 5},
      {"wikipedia.org", n / 6},
      {"bbc.co.uk", n / 50},    // Below the detection threshold: invisible.
      {"arxiv.org", n / 100},   // Ditto.
  };
  Workload w = MakeStringWorkload(popular, kBits, 7);
  Rng tail(99);
  while (w.database.size() < n) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "user%llu.example",
                  static_cast<unsigned long long>(tail()));
    w.database.push_back(DomainItem::FromString(buf, kBits));
  }

  PesParams params;
  params.domain_bits = kBits;
  params.epsilon = 4.0;
  params.beta = 1e-3;
  params.num_coords = 32;
  auto pes = std::move(PrivateExpanderSketch::Create(params)).value();

  std::printf("URL telemetry over n=%llu browsers (eps=%.1f, |X|=2^%d)\n",
              static_cast<unsigned long long>(n), params.epsilon, kBits);
  std::printf("detection threshold: %.0f reports\n\n",
              pes.DetectionThreshold(n));

  const auto result = std::move(pes.Run(w.database, 11)).value();

  std::printf("discovered homepages:\n");
  std::printf("%-24s %12s %12s\n", "url", "estimate", "true");
  for (const auto& entry : result.entries) {
    uint64_t truth = 0;
    for (const auto& [item, count] : w.heavy) {
      if (item == entry.item) truth = count;
    }
    std::printf("%-24s %12.0f %12llu\n", entry.item.ToString(kBits).c_str(),
                entry.estimate, static_cast<unsigned long long>(truth));
  }

  std::printf(
      "\n(the sub-threshold sites — bbc.co.uk at %.1f%%, arxiv.org at "
      "%.1f%% —\n stay invisible: that is the privacy/utility boundary "
      "Delta of Definition 3.1)\n",
      100.0 / 50, 100.0 / 100);
  std::printf("\nper-user cost: %.0f bits sent, %.2f us compute\n",
              result.metrics.CommBitsAvg(),
              result.metrics.UserSecondsAvg() * 1e6);
  return 0;
}
