// Median estimation with local differential privacy — the downstream
// application the paper's introduction motivates heavy-hitter machinery
// with ("important subroutines for ... median estimation").
//
// Scenario: a company-benchmark service estimates salary quantiles across
// n employees without ever seeing an individual salary: each employee
// sends one eps-LDP report about a dyadic bucket of their (bucketized)
// salary; the server reconstructs the full CDF and reads off quantiles.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/apps/quantiles.h"
#include "src/common/random.h"

int main() {
  using namespace ldphh;
  const uint64_t n = 200000;
  const int kBits = 12;  // Salaries bucketized into 4096 steps of $100.

  // Synthetic salary population: a log-normal-ish mixture (junior bulk,
  // senior tail), in $100 units capped at $409,500.
  Rng pop(2027);
  std::vector<uint64_t> salaries(n);
  for (auto& s : salaries) {
    double v = 550.0;  // $55k base.
    for (int i = 0; i < 8; ++i) v *= 1.0 + 0.12 * (pop.UniformDouble() - 0.42);
    if (pop.Bernoulli(0.04)) v *= 2.5;  // Executive tail.
    s = std::min<uint64_t>(static_cast<uint64_t>(v), (1 << kBits) - 1);
  }

  QuantileSketchParams params;
  params.value_bits = kBits;
  params.epsilon = 2.0;
  QuantileSketch sketch(n, params, /*seed=*/5);

  // The protocol round: one short message per employee.
  Rng coins(7);
  for (uint64_t i = 0; i < n; ++i) {
    sketch.Aggregate(i, sketch.Encode(i, salaries[static_cast<size_t>(i)], coins));
  }
  sketch.Finalize();

  // Ground truth for comparison.
  std::vector<uint64_t> sorted = salaries;
  std::sort(sorted.begin(), sorted.end());
  auto truth = [&](double q) {
    return sorted[static_cast<size_t>(q * (n - 1))];
  };

  std::printf("salary quantiles across n=%llu employees (eps=%.1f LDP):\n\n",
              static_cast<unsigned long long>(n), params.epsilon);
  std::printf("%-12s %14s %14s\n", "quantile", "private est.", "true");
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    std::printf("p%-11.0f $%13llu $%13llu\n", q * 100,
                static_cast<unsigned long long>(sketch.EstimateQuantile(q)) * 100,
                static_cast<unsigned long long>(truth(q)) * 100);
  }
  std::printf("\nserver sketch memory: %zu bytes; per-report size <= %d bits\n",
              sketch.MemoryBytes(), kBits + 1);
  return 0;
}
