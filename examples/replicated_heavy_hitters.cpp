// Replicated heavy-hitter serving — scale-out reads for the epoch layer.
//
// One primary owns the store directory and the write lock: it ingests LDP
// reports, rolls epochs, persists each closed epoch's mergeable aggregator
// state — with its ProtocolConfig embedded, so every record names its own
// protocol — prunes and compacts. A read-only replica opens the SAME
// directory with nothing but the read slice of the file layer, tails the
// MANIFEST on a background poll thread, and serves WindowedQuery from its
// immutable snapshots — never taking the primary's lock, never writing a
// byte, and never being told what protocol it serves: the epoch records
// are self-describing. This is how the continuous-query service scales to
// millions of read users: add replicas, not locks.
//
// The demo runs primary-writes/replica-queries end to end and concurrently:
// an ingest thread streams half a million reports through an EpochManager
// while the main thread watches the replica's tail catch epoch after epoch
// and answers windowed queries mid-stream. At the end, every window the
// replica serves is checked bit-for-bit against the primary's own answer
// and against a crash-free single-threaded baseline.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/ldphh.h"
#include "src/ldp/privacy_loss.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/admin_server.h"
#include "src/server/replica_view.h"
#include "src/store/replica_store.h"

namespace {

double EstimateOf(const std::vector<ldphh::HeavyHitterEntry>& entries,
                  uint64_t value) {
  for (const auto& e : entries) {
    if (e.item == ldphh::DomainItem(value)) return e.estimate;
  }
  return 0.0;
}

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace ldphh;
  int admin_port = -1;     // -1 = no admin plane.
  int serve_seconds = -1;  // -1 = default (60 if admin plane is up).
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      admin_port = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atoi(argv[i] + 16);
    } else {
      std::fprintf(stderr, "usage: %s [--admin-port=N] [--serve-seconds=S]\n",
                   argv[0]);
      return 2;
    }
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Declare an operator privacy budget: /healthz flips to 503 if the
  // fleet's max accepted per-report epsilon ever exceeds it.
  PrivacyBudgetLedger::Global().SetEpsilonBudget(64);

  std::unique_ptr<AdminServer> admin;
  if (admin_port >= 0) {
    AdminServer::Options admin_opts;
    admin_opts.port = static_cast<uint16_t>(admin_port);
    auto admin_or = AdminServer::Start(admin_opts);
    if (!admin_or.ok()) {
      std::fprintf(stderr, "admin server failed to start: %s\n",
                   admin_or.status().ToString().c_str());
      return 1;
    }
    admin = std::move(admin_or).value();
    std::printf("admin plane on http://127.0.0.1:%u (try /metrics, /statusz, "
                "/spanz, /healthz; replica lag and epsilon spend are live)\n",
                admin->port());
  }
  const uint64_t kDomain = 512;
  const uint64_t kEpochSize = 1 << 15;  // Reports per epoch.
  const uint64_t kEpochs = 16;
  const std::string dir = "/tmp/ldphh_replicated_hh_store";
  std::filesystem::remove_all(dir);

  const ProtocolConfig config =
      std::move(ProtocolConfig::FromText("hadamard_response(domain=512,eps=1)"))
          .value();

  // --- client fleet -------------------------------------------------------
  std::printf("encoding %llu reports across %llu epochs...\n",
              static_cast<unsigned long long>(kEpochs * kEpochSize),
              static_cast<unsigned long long>(kEpochs));
  auto client = std::move(CreateAggregator(config)).value();
  Rng rng(23);
  std::vector<WireReport> reports(kEpochs * kEpochSize);
  for (uint64_t i = 0; i < reports.size(); ++i) {
    const uint64_t hot = i / kEpochSize < kEpochs / 2 ? 42 : 311;
    const uint64_t value = rng.Bernoulli(0.25) ? hot : rng.UniformU64(kDomain);
    auto report_or = client->Encode(i, DomainItem(value), rng);
    if (!report_or.ok()) return 1;
    reports[i] = report_or.value();
  }

  // --- primary: the single writer -----------------------------------------
  CheckpointStoreOptions store_opts;
  store_opts.segment_max_bytes = 16 << 10;  // Small segments: compaction runs.
  store_opts.compaction_trigger = 4;
  store_opts.sync_mode = SyncMode::kNone;   // Demo favors throughput.
  EpochManagerOptions epoch_opts;
  epoch_opts.reports_per_epoch = kEpochSize;
  epoch_opts.aggregator.num_shards = 4;

  auto store_or = CheckpointStore::Open(dir, store_opts);
  if (!store_or.ok()) return 1;
  auto store = std::move(store_or).value();
  auto primary_or = EpochManager::Create(config, store.get(), epoch_opts);
  if (!primary_or.ok()) return 1;
  auto primary = std::move(primary_or).value();
  if (!primary->Start().ok()) return 1;

  std::atomic<bool> ingest_failed{false};
  std::thread ingest([&] {
    for (const WireReport& r : reports) {
      if (!primary->Submit(r).ok()) {
        ingest_failed.store(true);
        return;
      }
    }
  });

  // --- replica: read-only, background tail --------------------------------
  // Open retries until the primary has created the store (first MANIFEST).
  std::unique_ptr<ReplicaStore> replica;
  for (int attempt = 0; replica == nullptr; ++attempt) {
    auto replica_or = ReplicaStore::Open(dir, [] {
      ReplicaStoreOptions o;
      o.poll_interval = std::chrono::milliseconds(2);
      // Readiness gate: /readyz fails while the replica trails the primary
      // by more than 8 manifest generations (it heals by tailing).
      o.healthy_lag_bound = 8;
      return o;
    }());
    if (replica_or.ok()) {
      replica = std::move(replica_or).value();
    } else if (attempt > 10000) {
      std::printf("replica never came up: %s\n",
                  replica_or.status().ToString().c_str());
      return 1;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // No protocol config handed to the replica: the records describe
  // themselves.
  ReplicaView view(replica.get());

  // --- watch the tail catch epochs while ingestion runs -------------------
  std::printf("replica tailing %s (2 ms poll):\n", dir.c_str());
  uint64_t seen = 0;
  while (seen < kEpochs && !ingest_failed.load()) {
    const std::vector<uint64_t> persisted = view.PersistedEpochs();
    if (persisted.size() > seen) {
      seen = persisted.size();
      // A mid-stream windowed read straight off the replica snapshot.
      auto window_or = view.WindowedQuery(persisted.front(), persisted.back());
      if (!window_or.ok()) {
        std::printf("mid-stream WindowedQuery failed: %s\n",
                    window_or.status().ToString().c_str());
        return 1;
      }
      auto window = std::move(window_or).value();
      const auto entries = std::move(window->EstimateTopK(kDomain)).value();
      std::printf(
          "  tail at %2llu/%llu epochs (gen %3llu)   f(42) = %8.0f   "
          "f(311) = %8.0f\n",
          static_cast<unsigned long long>(seen),
          static_cast<unsigned long long>(kEpochs),
          static_cast<unsigned long long>(replica->manifest_sequence()),
          EstimateOf(entries, 42), EstimateOf(entries, 311));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ingest.join();
  if (ingest_failed.load()) return 1;

  // --- verify: replica == primary == crash-free baseline, bit for bit ----
  auto baseline = [&](uint64_t first, uint64_t last) {
    auto oracle = std::move(CreateAggregator(config)).value();
    for (uint64_t i = first * kEpochSize; i < (last + 1) * kEpochSize; ++i) {
      if (!oracle->Aggregate(reports[i]).ok()) std::abort();
    }
    return oracle;
  };
  bool identical = true;
  struct Window {
    uint64_t first, last;
    const char* label;
  };
  for (const Window w : {Window{0, kEpochs / 2 - 1, "old regime "},
                         Window{kEpochs / 2, kEpochs - 1, "new regime "},
                         Window{kEpochs / 2 - 3, kEpochs / 2 + 2, "transition "},
                         Window{0, kEpochs - 1, "all history"}}) {
    auto from_replica_or = view.WindowedQuery(w.first, w.last);
    auto from_primary_or = primary->WindowedQuery(w.first, w.last);
    if (!from_replica_or.ok() || !from_primary_or.ok()) return 1;
    std::string replica_state, primary_state;
    if (!from_replica_or.value()->SerializeState(&replica_state).ok() ||
        !from_primary_or.value()->SerializeState(&primary_state).ok()) {
      return 1;
    }
    if (replica_state != primary_state) identical = false;
    auto got = std::move(from_replica_or).value();
    auto want = baseline(w.first, w.last);
    const auto got_entries = std::move(got->EstimateTopK(kDomain)).value();
    const auto want_entries = std::move(want->EstimateTopK(kDomain)).value();
    if (got_entries.size() != want_entries.size()) identical = false;
    for (size_t i = 0; identical && i < got_entries.size(); ++i) {
      if (got_entries[i].item != want_entries[i].item ||
          got_entries[i].estimate != want_entries[i].estimate) {
        identical = false;
      }
    }
    std::printf("  epochs [%2llu, %2llu] (%s): f(42) = %8.0f   f(311) = %8.0f\n",
                static_cast<unsigned long long>(w.first),
                static_cast<unsigned long long>(w.last), w.label,
                EstimateOf(got_entries, 42), EstimateOf(got_entries, 311));
  }

  const ReplicaStoreStats stats = replica->Stats();
  std::printf(
      "replica: %llu polls, %llu snapshots, %llu segment replays "
      "(%llu incremental), %llu cache hits, %llu races retried\n",
      static_cast<unsigned long long>(stats.refreshes),
      static_cast<unsigned long long>(stats.snapshots_installed),
      static_cast<unsigned long long>(stats.segments_replayed),
      static_cast<unsigned long long>(stats.incremental_replays),
      static_cast<unsigned long long>(stats.segment_cache_hits),
      static_cast<unsigned long long>(stats.segment_races));
  std::printf("replica == primary == crash-free baseline: %s\n",
              identical ? "bit-for-bit identical" : "MISMATCH");

  // Linger with primary, store, and replica all still live: /statusz shows
  // every layer, the replica-lag readiness check and the epsilon-budget
  // health check are armed, and the lag gauge is real. SIGINT/SIGTERM (or
  // the deadline) ends the linger.
  if (admin != nullptr) {
    const int linger = serve_seconds >= 0 ? serve_seconds : 60;
    std::printf("serving admin plane for up to %d s "
                "(SIGINT/SIGTERM to stop)...\n",
                linger);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(linger);
    while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    admin->Stop();
  }

  if (!primary->Close().ok()) return 1;

  // The full run is observable after the fact: replication lag, epoch-close
  // latency, manifest fsyncs, and the privacy budget the fleet spent are all
  // in the one process-wide registry. Dump while replica and store are still
  // live so their gauges (lag, segment counts) are present.
  std::printf("\n--- metrics (MetricsRegistry DumpText) ---\n%s",
              obs::MetricsRegistry::Global().DumpText().c_str());
  std::printf("\n--- trace (last structural events) ---\n%s",
              obs::TraceRing::Global().DumpText().c_str());

  replica.reset();
  store.reset();
  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
