// Tests for the protocol registry and self-describing configs (the ISSUE 5
// acceptance criterion): every registered protocol — six frequency oracles
// and four heavy-hitter protocols — round-trips its config, is served
// end-to-end through ShardedAggregator and EpochManager from nothing but a
// ProtocolConfig, restores from a checkpoint without any caller-supplied
// factory, and produces estimates bit-for-bit equal to a direct
// single-threaded aggregation of the same reports.

#include "src/protocols/registry.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/server/epoch_manager.h"
#include "src/server/report_codec.h"
#include "src/server/sharded_aggregator.h"
#include "src/store/checkpoint_store.h"
#include "tests/serving_test_util.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

using testutil::DirectAggregate;
using testutil::EncodeSkewedReports;
using testutil::ExpectSameEstimates;
using testutil::MustCreate;

/// One registered protocol with a serve-sized sample config.
struct ProtocolCase {
  std::string text;      ///< Sample config in canonical text form.
  uint64_t num_reports;  ///< Stream length for the end-to-end runs.
  bool expect_recovery;  ///< Top-1 must be the planted item 0.
};

std::vector<ProtocolCase> Cases() {
  return {
      {"k_rr(domain=32,eps=1)", 20000, true},
      {"rappor_unary(domain=24,eps=1)", 20000, true},
      {"olh(domain=16,eps=1,seed=7)", 20000, true},
      {"hadamard_response(domain=32,eps=1)", 20000, true},
      {"count_mean_sketch(domain_bits=8,eps=1,n_hint=8192,seed=3)", 8192,
       true},
      {"hashtogram(domain_bits=8,eps=1,n_hint=8192,seed=5)", 8192, true},
      {"bitstogram(beta=0.01,domain_bits=8,eps=4,n_hint=8192,seed=11,"
       "threshold_sigmas=3)",
       8192, true},
      {"treehist(beta=0.01,domain_bits=8,eps=4,level_rows=8,n_hint=8192,"
       "seed=13,threshold_sigmas=2)",
       8192, true},
      {"private_expander_sketch(beta=0.01,domain_bits=16,eps=4,hash_range=16,"
       "n_hint=8192,num_coords=8,seed=15,threshold_sigmas=3)",
       8192, false},
      {"succinct_hist(domain_bits=8,eps=2,seed=17,threshold_sigmas=3)", 4000,
       true},
  };
}

ProtocolConfig MustParse(const std::string& text) {
  auto config_or = ProtocolConfig::FromText(text);
  EXPECT_TRUE(config_or.ok()) << text << ": " << config_or.status().ToString();
  LDPHH_CHECK(config_or.ok(), "test: config parse failed");
  return std::move(config_or).value();
}

/// The value range the sample config's reports draw from.
uint64_t ValueDomainOf(const ProtocolConfig& config) {
  if (config.Has("domain")) return config.GetUintOr("domain", 0);
  return uint64_t{1} << config.GetUintOr("domain_bits", 0);
}

class RegistryProtocolTest : public testing::TestWithParam<ProtocolCase> {};

// ------------------------------------------------------- config round-trip --

TEST_P(RegistryProtocolTest, ConfigTextRoundTrips) {
  const std::string& text = GetParam().text;
  const ProtocolConfig config = MustParse(text);
  EXPECT_EQ(config.ToText(), text);
  // Binary form round-trips too.
  std::string bin;
  config.AppendTo(&bin);
  ByteReader reader(bin);
  ProtocolConfig decoded;
  ASSERT_TRUE(ProtocolConfig::ReadFrom(reader, &decoded).ok());
  EXPECT_EQ(decoded, config);
  EXPECT_TRUE(reader.empty());
}

TEST_P(RegistryProtocolTest, ResolvedConfigIsAFixedPoint) {
  const ProtocolConfig config = MustParse(GetParam().text);
  auto first = MustCreate(config);
  // The resolved config pins every auto parameter: building from it again
  // must resolve to the identical config (and the identical instance).
  auto second = MustCreate(first->config());
  EXPECT_EQ(second->config(), first->config());
  // It survives its own serialization.
  EXPECT_EQ(MustParse(first->config().ToText()), first->config());
}

TEST_P(RegistryProtocolTest, EncodeRejectsOutOfDomainValue) {
  const ProtocolConfig config = MustParse(GetParam().text);
  auto agg = MustCreate(config);
  Rng rng(7);
  // Wider than any config in the suite (every domain fits 64 bits).
  DomainItem wide;
  wide.limbs[1] = 1;
  EXPECT_FALSE(agg->Encode(0, wide, rng).ok());
  if (config.Has("domain")) {
    // Small-domain protocols also reject the first value past the domain.
    EXPECT_FALSE(
        agg->Encode(0, DomainItem(ValueDomainOf(config)), rng).ok());
  }
}

// --------------------------------------------------------------- rejection --

TEST(ProtocolRegistry, UnknownProtocolIsRejectedWithKnownList) {
  ProtocolConfig config("no_such_protocol");
  const auto created = CreateAggregator(config);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(created.status().message().find("k_rr"), std::string::npos)
      << created.status().ToString();
}

TEST(ProtocolRegistry, BadParamsAreRejected) {
  // Malformed grammar.
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(domain=32").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(domain=32,domain=64)").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(domain)").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("K_RR(domain=32)").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(domain=3 2)").ok());
  // Stray commas are outside the grammar (and would break
  // serialize(parse(s)) == s).
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(domain=32,eps=1,)").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(,domain=32)").ok());
  EXPECT_FALSE(ProtocolConfig::FromText("k_rr(domain=32,,eps=1)").ok());

  // Well-formed but invalid values.
  EXPECT_FALSE(CreateAggregator(MustParse("k_rr(domain=1,eps=1)")).ok());
  EXPECT_FALSE(CreateAggregator(MustParse("k_rr(domain=32,eps=-1)")).ok());
  EXPECT_FALSE(CreateAggregator(MustParse("k_rr(domain=32,eps=zero)")).ok());
  EXPECT_FALSE(CreateAggregator(MustParse("k_rr(eps=1)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("rappor_unary(domain=60,eps=1)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("hashtogram(domain_bits=40,eps=1)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("bitstogram(domain_bits=8,eps=1,beta=2)"))
          .ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("succinct_hist(domain_bits=8,eps=0)")).ok());

  // NaN/inf parse as doubles but must not pass the positivity checks.
  EXPECT_FALSE(CreateAggregator(MustParse("k_rr(domain=32,eps=nan)")).ok());
  EXPECT_FALSE(CreateAggregator(MustParse("k_rr(domain=32,eps=inf)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("hashtogram(domain_bits=8,eps=nan)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("bitstogram(domain_bits=8,eps=nan)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("succinct_hist(domain_bits=8,eps=nan)")).ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("hashtogram(domain_bits=8,eps=1,beta=nan)"))
          .ok());

  // Values whose int cast would wrap (2^32-1 → -1, 2^32+5 → 5) must be
  // rejected by range validation before any cast, not silently truncated —
  // configs arrive from disk, so this is the corrupt-record path too.
  EXPECT_FALSE(CreateAggregator(MustParse(
                   "bitstogram(domain_bits=8,eps=1,list_cap=4294967295)"))
                   .ok());
  EXPECT_FALSE(
      CreateAggregator(
          MustParse(
              "private_expander_sketch(domain_bits=16,eps=1,num_buckets="
              "4294967295)"))
          .ok());
  EXPECT_FALSE(CreateAggregator(MustParse(
                   "hashtogram(domain_bits=8,eps=1,rows=4294967301)"))
                   .ok());
  EXPECT_FALSE(
      CreateAggregator(MustParse("treehist(domain_bits=8,eps=1,frontier_cap="
                                 "18446744073709551615)"))
          .ok());

  // width=64 with rows=1 passes the wire-fit sum but would make the packed
  // report's shifts UB; the 56 cap must reject it.
  EXPECT_FALSE(CreateAggregator(MustParse(
                   "count_mean_sketch(domain_bits=8,eps=1,rows=1,width=64)"))
                   .ok());

  // A typo'd key is an error, not a silently applied default.
  const auto typo =
      CreateAggregator(MustParse("k_rr(domain=32,epsilonn=1,eps=1)"));
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.status().message().find("epsilonn"), std::string::npos);
}

TEST(ProtocolRegistry, ListsAllBuiltinsWithDistinctWireIds) {
  const auto names = ProtocolRegistry::Global().Names();
  ASSERT_GE(names.size(), 10u);
  std::vector<uint16_t> ids;
  for (const auto& name : names) {
    auto id_or = ProtocolRegistry::Global().WireIdOf(name);
    ASSERT_TRUE(id_or.ok());
    EXPECT_NE(id_or.value(), 0) << name;
    ids.push_back(id_or.value());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::unique(ids.begin(), ids.end()) == ids.end());

  // Wire id 0 means "unstamped" and must stay unregistrable — a protocol
  // under it would silently lose the cross-protocol batch rejection.
  ProtocolRegistry local;
  EXPECT_FALSE(local.Register("custom", 0, [](const ProtocolConfig&) {
                      return StatusOr<std::unique_ptr<Aggregator>>(
                          Status::Internal("unused"));
                    })
                   .ok());
}

// ---------------------------------------------------- end-to-end acceptance --

// Sharded serve == direct aggregation, for every registered protocol, via
// the stamped wire format — and the un-finalized merged aggregator
// checkpoints and restores through a fresh config-built service with no
// factory in sight.
TEST_P(RegistryProtocolTest, ShardedServeMatchesDirectBitForBit) {
  const ProtocolCase& c = GetParam();
  const ProtocolConfig config = MustParse(c.text);
  const auto reports =
      EncodeSkewedReports(config, c.num_reports, 321, ValueDomainOf(config));

  auto direct = DirectAggregate(config, reports, 0, reports.size());

  ShardedAggregatorOptions opts;
  opts.num_shards = 4;
  auto agg_or = ShardedAggregator::Create(config, opts);
  ASSERT_TRUE(agg_or.ok()) << agg_or.status().ToString();
  auto agg = std::move(agg_or).value();
  ASSERT_TRUE(agg->Start().ok());
  const size_t chunk = 2048;
  for (size_t lo = 0; lo < reports.size(); lo += chunk) {
    const size_t hi = std::min(lo + chunk, reports.size());
    const std::vector<WireReport> slice(reports.begin() + lo,
                                        reports.begin() + hi);
    ASSERT_TRUE(
        agg->SubmitWire(EncodeReportBatch(slice, agg->wire_id())).ok());
  }

  // Checkpoint mid-flight, then restore into a brand-new service built from
  // nothing but the config.
  const std::string path = testing::TempDir() + "/ldphh_registry_" +
                           config.protocol() + "_" +
                           std::to_string(::getpid()) + ".ckpt";
  std::remove(path.c_str());
  {
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());
  }
  auto merged_or = agg->Finish();
  ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
  auto merged = std::move(merged_or).value();
  EXPECT_EQ(agg->Stats().rejected, 0u);

  auto restored_or = ShardedAggregator::Create(config, opts);
  ASSERT_TRUE(restored_or.ok());
  auto restored = std::move(restored_or).value();
  {
    CheckpointReader log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(restored->RestoreCheckpoint(log).ok());
  }
  ASSERT_TRUE(restored->Start().ok());
  auto restored_merged_or = restored->Finish();
  ASSERT_TRUE(restored_merged_or.ok());
  auto restored_merged = std::move(restored_merged_or).value();
  std::remove(path.c_str());

  // All three agree, entry for entry, bit for bit.
  ExpectSameEstimates(*merged, *direct);
  ExpectSameEstimates(*restored_merged, *direct);

  if (c.expect_recovery) {
    auto top = direct->EstimateTopK(1);
    ASSERT_TRUE(top.ok());
    ASSERT_FALSE(top.value().empty())
        << config.protocol() << ": no candidates recovered";
    EXPECT_EQ(top.value()[0].item, DomainItem(0))
        << config.protocol() << ": planted item not on top";
  }
}

// Epoch-windowed serve == direct aggregation, for every registered
// protocol: two closed epochs, merged back through the self-describing
// epoch records.
TEST_P(RegistryProtocolTest, EpochWindowMatchesDirectBitForBit) {
  const ProtocolCase& c = GetParam();
  const ProtocolConfig config = MustParse(c.text);
  const uint64_t epoch_size = c.num_reports / 2;
  const auto reports =
      EncodeSkewedReports(config, 2 * epoch_size, 99, ValueDomainOf(config));

  const std::string dir = testing::TempDir() + "/ldphh_registry_epoch_" +
                          config.protocol() + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  CheckpointStoreOptions store_opts;
  store_opts.background_compaction = false;
  store_opts.sync_mode = SyncMode::kNone;  // Speed; durability has its own suite.
  auto store = std::move(CheckpointStore::Open(dir, store_opts)).value();

  EpochManagerOptions opts;
  opts.reports_per_epoch = epoch_size;
  opts.aggregator.num_shards = 4;
  auto mgr_or = EpochManager::Create(config, store.get(), opts);
  ASSERT_TRUE(mgr_or.ok()) << mgr_or.status().ToString();
  auto mgr = std::move(mgr_or).value();
  ASSERT_TRUE(mgr->Start().ok());
  for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{0, 1}));

  auto window_or = mgr->WindowedQuery(0, 1);
  ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
  auto window = std::move(window_or).value();
  auto direct = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*window, *direct);
  ASSERT_TRUE(mgr->Close().ok());
  store.reset();
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, RegistryProtocolTest, testing::ValuesIn(Cases()),
    [](const testing::TestParamInfo<ProtocolCase>& param_info) {
      const std::string& text = param_info.param.text;
      return text.substr(0, text.find('('));
    });

}  // namespace
}  // namespace ldphh
