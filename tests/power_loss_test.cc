// Power-loss simulation suite (the ISSUE 3 acceptance criterion): every
// byte-to-disk path runs over FaultInjectingFileSystem, which drops all
// unsynced bytes and unsynced directory entries on SimulatePowerLoss().
// With SyncMode::kFull (or kData) the store must lose no acknowledged Put,
// no closed epoch, and no acked checkpoint-log record — at every store
// mutation point, at every compaction phase, and with torn unsynced tails.
// SyncMode::kNone is the negative control: unsynced data is allowed (and
// expected) to vanish, but never to corrupt.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/common/random.h"
#include "src/server/epoch_manager.h"
#include "src/server/replica_view.h"
#include "src/server/sharded_aggregator.h"
#include "src/store/checkpoint_store.h"
#include "src/store/replica_store.h"
#include "tests/serving_test_util.h"

namespace ldphh {
namespace {

using testutil::DirectAggregate;
using testutil::ExpectSameEstimates;
using testutil::MustCreate;
using testutil::OracleConfig;

// Uniform reports over the config's domain through a registry client.
std::vector<WireReport> UniformReports(const ProtocolConfig& config,
                                       uint64_t n, uint64_t seed) {
  const uint64_t domain = config.GetUintOr("domain", 64);
  auto client = MustCreate(config);
  Rng rng(seed);
  std::vector<WireReport> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    reports.push_back(
        client->Encode(i, DomainItem(rng.UniformU64(domain)), rng).value());
  }
  return reports;
}

constexpr char kDir[] = "/faultfs/store";

std::string Blob(uint64_t key, size_t size = 40) {
  std::string b = "blob-" + std::to_string(key) + "-";
  while (b.size() < size) b.push_back(static_cast<char>('a' + key % 26));
  return b;
}

CheckpointStoreOptions FaultOptions(FaultInjectingFileSystem* fs,
                                    SyncMode mode = SyncMode::kFull,
                                    size_t segment_max_bytes = 256) {
  CheckpointStoreOptions o;
  o.segment_max_bytes = segment_max_bytes;  // Small: rolls at every point.
  o.background_compaction = false;
  o.sync_mode = mode;
  o.file_system = fs;
  return o;
}

std::unique_ptr<CheckpointStore> MustOpen(const CheckpointStoreOptions& o) {
  auto store_or = CheckpointStore::Open(kDir, o);
  EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
  return std::move(store_or).value();
}

// One deterministic store mutation: puts with overwrites and periodic
// deletes, mirrored into \p model.
struct Op {
  bool is_delete;
  uint64_t key;
  std::string blob;
};

std::vector<Op> MutationScript(size_t n) {
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    if (j % 5 == 4) {
      ops.push_back({true, j % 7, ""});
    } else {
      ops.push_back({false, j % 9, Blob(j, 32 + j % 48)});
    }
  }
  return ops;
}

void ApplyTo(CheckpointStore* store, std::map<uint64_t, std::string>* model,
             const Op& op) {
  if (op.is_delete) {
    ASSERT_TRUE(store->Delete(op.key).ok());
    model->erase(op.key);
  } else {
    ASSERT_TRUE(store->Put(op.key, op.blob).ok());
    (*model)[op.key] = op.blob;
  }
}

void ExpectMatchesModel(CheckpointStore* store,
                        const std::map<uint64_t, std::string>& model,
                        const std::string& context) {
  std::vector<uint64_t> want_keys;
  for (const auto& [key, blob] : model) want_keys.push_back(key);
  EXPECT_EQ(store->Keys(), want_keys) << context;
  for (const auto& [key, blob] : model) {
    std::string got;
    ASSERT_TRUE(store->Get(key, &got).ok()) << context << " key " << key;
    EXPECT_EQ(got, blob) << context << " key " << key;
  }
}

// ---------------------------------------------------------------- store ----

// Drop unsynced state after every single acknowledged mutation (the script
// crosses several segment rolls and MANIFEST installs): nothing acked may
// be lost, under full and under data-only sync.
class StorePowerLossEveryPointTest
    : public testing::TestWithParam<SyncMode> {};

TEST_P(StorePowerLossEveryPointTest, AckedMutationsSurvive) {
  const std::vector<Op> ops = MutationScript(48);
  for (size_t upto = 1; upto <= ops.size(); ++upto) {
    FaultInjectingFileSystem fs;
    std::map<uint64_t, std::string> model;
    {
      auto store = MustOpen(FaultOptions(&fs, GetParam()));
      for (size_t j = 0; j < upto; ++j) {
        ApplyTo(store.get(), &model, ops[j]);
      }
    }
    fs.SimulatePowerLoss();
    auto recovered = MustOpen(FaultOptions(&fs, GetParam()));
    ExpectMatchesModel(recovered.get(), model,
                       "power loss after op " + std::to_string(upto));
    // The store must stay fully writable after the loss.
    ASSERT_TRUE(recovered->Put(999, "post-loss").ok());
  }
}

INSTANTIATE_TEST_SUITE_P(FullAndData, StorePowerLossEveryPointTest,
                         testing::Values(SyncMode::kFull, SyncMode::kData));

// Crash-phase matrix × power loss: kill the process at each compaction
// phase, then lose power on top of it. The MANIFEST install discipline
// (temp synced before rename, parent directory synced after) must make
// recovery land on exactly the acknowledged contents — a post-rename loss
// cannot resurrect the old MANIFEST or leave the new one dangling.
class CompactionPowerLossTest
    : public testing::TestWithParam<CheckpointStore::CompactionCrashPoint> {};

TEST_P(CompactionPowerLossTest, NoAckedEntryLostAcrossPhases) {
  FaultInjectingFileSystem fs;
  std::map<uint64_t, std::string> model;
  {
    auto store = MustOpen(FaultOptions(&fs));
    for (uint64_t k = 0; k < 40; ++k) {
      ASSERT_TRUE(store->Put(k, Blob(k)).ok());
      model[k] = Blob(k);
    }
    for (uint64_t k = 0; k < 40; k += 4) {
      ASSERT_TRUE(store->Put(k, Blob(k + 500)).ok());
      model[k] = Blob(k + 500);
    }
    ASSERT_TRUE(store->Delete(39).ok());
    model.erase(39);
    ASSERT_GT(store->Stats().sealed_segments, 2u);

    store->set_crash_point_for_testing(GetParam());
    ASSERT_TRUE(store->Compact().ok());
  }  // Kill: drop the store with files as-is...
  fs.SimulatePowerLoss();  // ...then the power goes too.

  auto recovered = MustOpen(FaultOptions(&fs));
  ExpectMatchesModel(recovered.get(), model, "compaction crash + power loss");

  // Converges and keeps working.
  ASSERT_TRUE(recovered->Compact().ok());
  EXPECT_EQ(recovered->Stats().sealed_segments, 1u);
  ASSERT_TRUE(recovered->Put(1000, "after").ok());
  recovered.reset();
  fs.SimulatePowerLoss();
  auto again = MustOpen(FaultOptions(&fs));
  model[1000] = "after";
  ExpectMatchesModel(again.get(), model, "second power loss");
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, CompactionPowerLossTest,
    testing::Values(
        CheckpointStore::CompactionCrashPoint::kNone,  // Completed pass.
        CheckpointStore::CompactionCrashPoint::kAfterConsolidatedSegment,
        CheckpointStore::CompactionCrashPoint::kAfterTempManifest,
        CheckpointStore::CompactionCrashPoint::kAfterManifestInstall));

// A torn unsynced tail — the prefix of an in-flight, never-acknowledged
// record that reached a sector before the lights went out — must read as a
// clean (or droppable) active-segment end, never cost an acked record, and
// stay gone across a *second* power loss (the recovery truncation is
// itself synced).
TEST(StorePowerLossTest, TornUnsyncedTailNeverCostsAckedPuts) {
  for (size_t keep = 0; keep < 64; keep += 3) {
    FaultInjectingFileSystem fs;
    {
      // Big segments: all writes land in one active segment file.
      auto store = MustOpen(FaultOptions(&fs, SyncMode::kFull, 1 << 20));
      ASSERT_TRUE(store->Put(1, Blob(1)).ok());
      ASSERT_TRUE(store->Put(2, Blob(2)).ok());
    }
    // The in-flight record the crash interrupted: unsynced bytes appended
    // to the active segment that no caller was ever acked for.
    {
      auto file_or =
          fs.NewWritableFile(std::string(kDir) + "/000001.seg");
      ASSERT_TRUE(file_or.ok());
      auto file = std::move(file_or).value();
      std::string in_flight(64, '\x5a');
      ASSERT_TRUE(file->Append(in_flight).ok());  // No Sync: in flight.
      ASSERT_TRUE(file->Close().ok());
    }
    fs.SimulatePowerLoss(keep);
    auto recovered = MustOpen(FaultOptions(&fs, SyncMode::kFull, 1 << 20));
    std::string blob;
    ASSERT_TRUE(recovered->Get(1, &blob).ok()) << "keep " << keep;
    EXPECT_EQ(blob, Blob(1));
    ASSERT_TRUE(recovered->Get(2, &blob).ok()) << "keep " << keep;
    EXPECT_EQ(blob, Blob(2));
    EXPECT_EQ(recovered->Keys().size(), 2u) << "keep " << keep;
    recovered.reset();
    fs.SimulatePowerLoss();  // The truncated tail must not resurrect.
    auto again = MustOpen(FaultOptions(&fs, SyncMode::kFull, 1 << 20));
    ASSERT_TRUE(again->Get(2, &blob).ok()) << "keep " << keep;
    EXPECT_EQ(blob, Blob(2));
  }
}

// Regression (found by the store model suite, tests/store_model_test.cc):
// a process restart leaves an empty active segment whose directory entry
// was created by the previous incarnation but never synced (no record was
// ever written to it). The re-opened writer must still sync the entry
// before acknowledging records — "the file exists" in the volatile
// namespace proves nothing — or every fsync'd record vanishes with the
// file on power loss.
TEST(StorePowerLossTest, RestartWithEmptyActiveSegmentThenPowerLoss) {
  FaultInjectingFileSystem fs;
  std::map<uint64_t, std::string> model;
  {
    auto store = MustOpen(FaultOptions(&fs));
    for (uint64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(store->Put(k, Blob(k)).ok());
      model[k] = Blob(k);
    }
  }
  // Restart twice with no writes in between: the second Open keeps the
  // first restart's rolled-but-empty active segment (created, entry never
  // synced). No power loss yet — the volatile namespace carries the entry.
  { auto store = MustOpen(FaultOptions(&fs)); }
  {
    auto store = MustOpen(FaultOptions(&fs));
    ASSERT_TRUE(store->Put(50, "post-restart").ok());
    ASSERT_TRUE(store->Delete(0).ok());
    model[50] = "post-restart";
    model.erase(0);
  }
  fs.SimulatePowerLoss();
  auto recovered = MustOpen(FaultOptions(&fs));
  ExpectMatchesModel(recovered.get(), model,
                     "restart + empty active + power loss");
}

// Negative control: under SyncMode::kNone nothing is ever synced, so a
// power loss may take everything — but recovery must still come up clean
// (an empty store, not a corrupt one), and no fsync may have been issued.
TEST(StorePowerLossTest, SyncModeNoneLosesUnsyncedDataCleanly) {
  FaultInjectingFileSystem fs;
  {
    auto store = MustOpen(FaultOptions(&fs, SyncMode::kNone));
    for (uint64_t k = 0; k < 20; ++k) {
      ASSERT_TRUE(store->Put(k, Blob(k)).ok());
    }
  }
  EXPECT_EQ(fs.file_sync_count(), 0u);
  EXPECT_EQ(fs.dir_sync_count(), 0u);
  fs.SimulatePowerLoss();
  auto recovered = MustOpen(FaultOptions(&fs, SyncMode::kNone));
  EXPECT_TRUE(recovered->Keys().empty());
}

// ---------------------------------------------------------- group commit ----

CheckpointStoreOptions GroupFaultOptions(FaultInjectingFileSystem* fs) {
  CheckpointStoreOptions o = FaultOptions(fs, SyncMode::kFull, 1 << 12);
  o.group_commit = true;
  o.group_max_records = 16;  // Small: groups cross the bound mid-hammer.
  return o;
}

// N concurrent writers — even-numbered ones issuing single Puts, odd ones
// two-intent Apply batches — while the group-commit lane is killed at each
// phase (group formed, a torn leader append, appended-but-unsynced,
// synced-but-never-acknowledged) and the power then goes out, optionally
// tearing the unsynced tail mid-record. Invariants after recovery: every
// write that observed ok() survives byte-for-byte; an acked Apply batch
// survives whole; nothing survives that was never written; and within a
// batch the on-disk survival is a prefix — the second intent never
// outlives the first. kNone is the control: no kill, everything acked.
class GroupCommitPowerLossTest
    : public testing::TestWithParam<CheckpointStore::GroupCrashPoint> {};

TEST_P(GroupCommitPowerLossTest, AckedGroupWritesSurviveEveryPhase) {
  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 48;
  constexpr uint64_t kPairStride = 100000;
  for (const size_t keep : {size_t{0}, size_t{23}}) {
    FaultInjectingFileSystem fs;
    std::vector<std::vector<uint64_t>> acked(kWriters);
    std::map<uint64_t, std::string> baseline;
    {
      auto store = MustOpen(GroupFaultOptions(&fs));
      // Committed state from before the crash window: must never be lost.
      for (uint64_t k = 0; k < 8; ++k) {
        ASSERT_TRUE(store->Put(900000 + k, Blob(900000 + k)).ok());
        baseline[900000 + k] = Blob(900000 + k);
      }
      store->set_group_crash_point_for_testing(GetParam());
      std::vector<std::thread> writers;
      writers.reserve(kWriters);
      for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
          for (int i = 0; i < kOpsPerWriter; ++i) {
            const uint64_t key = static_cast<uint64_t>(w) * 1000 + i;
            Status st;
            if (w % 2 == 0) {
              st = store->Put(key, Blob(key));
            } else {
              const std::string first = Blob(key);
              const std::string second = Blob(key + kPairStride);
              std::vector<StoreWrite> batch(2);
              batch[0].key = key;
              batch[0].blob = first;
              batch[1].key = key + kPairStride;
              batch[1].blob = second;
              st = store->Apply(batch);
            }
            if (!st.ok()) break;  // Simulated kill: the store is down.
            acked[w].push_back(key);
          }
        });
      }
      for (std::thread& t : writers) t.join();
    }  // Drop the killed store with files as-is...
    fs.SimulatePowerLoss(keep);  // ...then the power goes too.

    const std::string context = "phase " +
                                std::to_string(static_cast<int>(GetParam())) +
                                " keep " + std::to_string(keep);
    auto recovered = MustOpen(GroupFaultOptions(&fs));
    for (const auto& [key, blob] : baseline) {
      std::string got;
      ASSERT_TRUE(recovered->Get(key, &got).ok()) << context << " key " << key;
      EXPECT_EQ(got, blob) << context;
    }
    for (int w = 0; w < kWriters; ++w) {
      for (uint64_t key : acked[w]) {
        std::string got;
        ASSERT_TRUE(recovered->Get(key, &got).ok())
            << context << " acked key " << key << " writer " << w;
        EXPECT_EQ(got, Blob(key)) << context;
        if (w % 2 == 1) {
          // An acked batch is durable whole, never half.
          ASSERT_TRUE(recovered->Get(key + kPairStride, &got).ok())
              << context << " acked batch sibling of " << key;
          EXPECT_EQ(got, Blob(key + kPairStride)) << context;
        }
      }
    }

    // Whatever else survived (synced-but-unacked groups, torn-tail debris
    // recovery replayed) must be something a writer actually attempted,
    // with the exact bytes that writer wrote.
    std::set<uint64_t> attempted;
    for (const auto& [key, blob] : baseline) attempted.insert(key);
    for (int w = 0; w < kWriters; ++w) {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const uint64_t key = static_cast<uint64_t>(w) * 1000 + i;
        attempted.insert(key);
        if (w % 2 == 1) attempted.insert(key + kPairStride);
      }
    }
    for (uint64_t key : recovered->Keys()) {
      EXPECT_EQ(attempted.count(key), 1u) << context << " alien key " << key;
      std::string got;
      ASSERT_TRUE(recovered->Get(key, &got).ok()) << context;
      EXPECT_EQ(got, Blob(key)) << context << " key " << key;
    }
    // Batch records land contiguously in one segment, so survival within a
    // batch is a prefix: the second intent never outlives the first.
    for (int w = 1; w < kWriters; w += 2) {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const uint64_t key = static_cast<uint64_t>(w) * 1000 + i;
        if (recovered->Contains(key + kPairStride)) {
          EXPECT_TRUE(recovered->Contains(key))
              << context << " half-applied batch at key " << key;
        }
      }
    }

    // The recovered store keeps writing through the lane.
    ASSERT_TRUE(recovered->Put(999999, "post-loss").ok());

    if (GetParam() == CheckpointStore::GroupCrashPoint::kNone) {
      // Control: nothing was killed, so every op was acked.
      for (int w = 0; w < kWriters; ++w) {
        EXPECT_EQ(acked[w].size(), static_cast<size_t>(kOpsPerWriter))
            << context;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, GroupCommitPowerLossTest,
    testing::Values(CheckpointStore::GroupCrashPoint::kNone,
                    CheckpointStore::GroupCrashPoint::kAfterEnqueue,
                    CheckpointStore::GroupCrashPoint::kAfterPartialAppend,
                    CheckpointStore::GroupCrashPoint::kAfterAppendPreSync,
                    CheckpointStore::GroupCrashPoint::kAfterSyncPreNotify));

// ---------------------------------------------------------- checkpoints ----

// Satellite: an acked (Synced) aggregator checkpoint survives power loss
// whole — RestoreCheckpoint after the loss reproduces the exact estimates.
TEST(CheckpointPowerLossTest, AckedAggregatorCheckpointSurvives) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 64, 1.0);
  const auto reports = UniformReports(config, 3000, 42);

  FaultInjectingFileSystem fs;
  const std::string log_path = "/faultfs/checkpoint.log";
  ShardedAggregatorOptions agg_opts;
  agg_opts.num_shards = 2;
  {
    auto agg = std::move(ShardedAggregator::Create(config, agg_opts)).value();
    ASSERT_TRUE(agg->Start().ok());
    for (const WireReport& r : reports) ASSERT_TRUE(agg->Submit(r).ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(log_path, &fs, SyncMode::kFull).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());  // Acked: Flush+Sync inside.
  }
  EXPECT_GE(fs.file_sync_count(), 1u);
  EXPECT_GE(fs.dir_sync_count(), 1u);  // The created log file's entry too.
  fs.SimulatePowerLoss();

  auto restored = std::move(ShardedAggregator::Create(config, agg_opts)).value();
  CheckpointReader log;
  ASSERT_TRUE(log.Open(log_path, &fs).ok());
  ASSERT_TRUE(restored->RestoreCheckpoint(log).ok());
  ASSERT_TRUE(restored->Start().ok());
  auto got_or = restored->Finish();
  ASSERT_TRUE(got_or.ok());
  auto got = std::move(got_or).value();

  auto want = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*got, *want);
}

// ---------------------------------------------------------------- epochs ----

// The durability contract of the epoch layer under power loss: every
// closed epoch survives, bit for bit — the windowed query over the
// recovered store matches a fresh single-threaded aggregation.
TEST(EpochPowerLossTest, ClosedEpochsSurviveBitForBit) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 64, 1.0);
  const uint64_t kEpochSize = 700;
  const auto reports = UniformReports(config, 4 * kEpochSize, 7);

  FaultInjectingFileSystem fs;
  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  opts.aggregator.num_shards = 2;
  {
    auto store = MustOpen(FaultOptions(&fs, SyncMode::kFull, 1 << 10));
    auto mgr = std::move(EpochManager::Create(config, store.get(), opts)).value();
    ASSERT_TRUE(mgr->Start().ok());
    // 3 closed epochs plus half an open one; the open half is unacked.
    for (size_t i = 0; i < 3 * kEpochSize + kEpochSize / 2; ++i) {
      ASSERT_TRUE(mgr->Submit(reports[i]).ok());
    }
  }
  fs.SimulatePowerLoss();

  auto store = MustOpen(FaultOptions(&fs, SyncMode::kFull, 1 << 10));
  auto mgr = std::move(EpochManager::Create(config, store.get(), opts)).value();
  ASSERT_TRUE(mgr->Start().ok());
  EXPECT_EQ(mgr->current_epoch(), 3u);
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{0, 1, 2}));

  auto window_or = mgr->WindowedQuery(0, 2);
  ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, 0, 3 * kEpochSize);
  ExpectSameEstimates(*window, *want);
  ASSERT_TRUE(mgr->Close().ok());
}

// --------------------------------------------------------------- replica ----

ReplicaStoreOptions FaultReplicaOptions(FaultInjectingFileSystem* fs) {
  ReplicaStoreOptions o;
  o.file_system = fs;
  return o;
}

void ExpectReplicaMatchesModel(ReplicaStore* replica,
                               const std::map<uint64_t, std::string>& model,
                               const std::string& context) {
  std::vector<uint64_t> want_keys;
  for (const auto& [key, blob] : model) want_keys.push_back(key);
  EXPECT_EQ(replica->Keys(), want_keys) << context;
  for (const auto& [key, blob] : model) {
    std::string got;
    ASSERT_TRUE(replica->Get(key, &got).ok()) << context << " key " << key;
    EXPECT_EQ(got, blob) << context << " key " << key;
  }
}

// Kill the primary after every single acknowledged mutation — crossing
// segment rolls and MANIFEST installs — while a replica is mid-tail, then
// lose power on top. The replica (both the survivor re-polling the
// post-loss directory and a fresh one opened on the crash debris, before
// any primary recovery) must land on exactly the acknowledged state: it
// can never observe a state the primary never durably committed, and every
// mid-tail snapshot it served along the way was one of the committed
// prefixes.
TEST(ReplicaPowerLossTest, TailNeverObservesUncommittedState) {
  const std::vector<Op> ops = MutationScript(48);
  for (size_t upto = 1; upto <= ops.size(); upto += 3) {
    FaultInjectingFileSystem fs;
    std::map<uint64_t, std::string> model;
    std::unique_ptr<ReplicaStore> replica;
    {
      auto store = MustOpen(FaultOptions(&fs));
      auto replica_or = ReplicaStore::Open(kDir, FaultReplicaOptions(&fs));
      ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
      replica = std::move(replica_or).value();
      for (size_t j = 0; j < upto; ++j) {
        ApplyTo(store.get(), &model, ops[j]);
        if (j % 5 == 2) {
          // Mid-tail poll between acknowledged ops: the snapshot must be
          // exactly the committed state at this point.
          ASSERT_TRUE(replica->Refresh().ok());
          ExpectReplicaMatchesModel(
              replica.get(), model,
              "mid-tail op " + std::to_string(j) + "/" + std::to_string(upto));
        }
      }
    }  // Kill the primary with files as-is...
    fs.SimulatePowerLoss();  // ...then the power goes too.

    // The surviving replica re-polls the post-loss directory.
    auto refreshed_or = replica->Refresh();
    ASSERT_TRUE(refreshed_or.ok()) << refreshed_or.status().ToString();
    ExpectReplicaMatchesModel(replica.get(), model,
                              "survivor after op " + std::to_string(upto));

    // A fresh replica serves straight off the crash debris — torn active
    // tails, uninstalled MANIFEST.tmp, orphan segments and all — with no
    // primary recovery having run.
    auto fresh_or = ReplicaStore::Open(kDir, FaultReplicaOptions(&fs));
    ASSERT_TRUE(fresh_or.ok()) << fresh_or.status().ToString();
    ExpectReplicaMatchesModel(fresh_or.value().get(), model,
                              "fresh on debris after op " +
                                  std::to_string(upto));

    // The primary recovers (sweeps, seals, rolls) and keeps writing; both
    // replicas follow.
    auto recovered = MustOpen(FaultOptions(&fs));
    ASSERT_TRUE(recovered->Put(999, "post-loss").ok());
    model[999] = "post-loss";
    ASSERT_TRUE(replica->Refresh().ok());
    ExpectReplicaMatchesModel(replica.get(), model,
                              "survivor after recovery");
  }
}

// Crash-phase matrix × power loss with a replica mid-tail: kill the
// primary at each compaction phase while the replica tails, lose power,
// and check the replica (survivor and fresh-on-debris) against the model
// at every stage — including after the primary recovers and converges.
class ReplicaCompactionPowerLossTest
    : public testing::TestWithParam<CheckpointStore::CompactionCrashPoint> {};

TEST_P(ReplicaCompactionPowerLossTest, ReplicaRidesEveryPhase) {
  FaultInjectingFileSystem fs;
  std::map<uint64_t, std::string> model;
  std::unique_ptr<ReplicaStore> replica;
  {
    auto store = MustOpen(FaultOptions(&fs));
    auto replica_or = ReplicaStore::Open(kDir, FaultReplicaOptions(&fs));
    ASSERT_TRUE(replica_or.ok());
    replica = std::move(replica_or).value();
    for (uint64_t k = 0; k < 40; ++k) {
      ASSERT_TRUE(store->Put(k, Blob(k)).ok());
      model[k] = Blob(k);
      if (k % 10 == 5) {
        ASSERT_TRUE(replica->Refresh().ok());
      }
    }
    for (uint64_t k = 0; k < 40; k += 4) {
      ASSERT_TRUE(store->Put(k, Blob(k + 500)).ok());
      model[k] = Blob(k + 500);
    }
    ASSERT_TRUE(store->Delete(39).ok());
    model.erase(39);
    ASSERT_GT(store->Stats().sealed_segments, 2u);

    store->set_crash_point_for_testing(GetParam());
    ASSERT_TRUE(store->Compact().ok());
    // The replica polls the directory the interrupted compaction left.
    ASSERT_TRUE(replica->Refresh().ok());
    ExpectReplicaMatchesModel(replica.get(), model, "post-crash-point tail");
  }  // Kill the primary...
  fs.SimulatePowerLoss();  // ...and the power.

  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatchesModel(replica.get(), model, "survivor post-loss");
  auto fresh_or = ReplicaStore::Open(kDir, FaultReplicaOptions(&fs));
  ASSERT_TRUE(fresh_or.ok()) << fresh_or.status().ToString();
  ExpectReplicaMatchesModel(fresh_or.value().get(), model, "fresh on debris");

  // Primary recovery converges the directory; the replicas follow through
  // the recovery-installed MANIFEST and the completed re-compaction.
  auto recovered = MustOpen(FaultOptions(&fs));
  ASSERT_TRUE(recovered->Compact().ok());
  ASSERT_TRUE(recovered->Put(1000, "after").ok());
  model[1000] = "after";
  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatchesModel(replica.get(), model, "survivor post-recovery");
  ASSERT_TRUE(fresh_or.value()->Refresh().ok());
  ExpectReplicaMatchesModel(fresh_or.value().get(), model,
                            "fresh post-recovery");
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, ReplicaCompactionPowerLossTest,
    testing::Values(
        CheckpointStore::CompactionCrashPoint::kNone,
        CheckpointStore::CompactionCrashPoint::kAfterConsolidatedSegment,
        CheckpointStore::CompactionCrashPoint::kAfterTempManifest,
        CheckpointStore::CompactionCrashPoint::kAfterManifestInstall));

// Epoch-level: a ReplicaView keeps serving closed epochs bit-for-bit across
// the primary's death and a power loss — the windowed answer over the
// post-loss directory equals a crash-free single-threaded aggregation.
TEST(EpochPowerLossTest, ReplicaViewServesClosedEpochsAcrossPowerLoss) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 64, 1.0);
  const uint64_t kEpochSize = 500;
  const auto reports = UniformReports(config, 3 * kEpochSize, 21);

  FaultInjectingFileSystem fs;
  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  opts.aggregator.num_shards = 2;
  std::unique_ptr<ReplicaStore> replica;
  {
    auto store = MustOpen(FaultOptions(&fs, SyncMode::kFull, 1 << 10));
    auto mgr = std::move(EpochManager::Create(config, store.get(), opts)).value();
    ASSERT_TRUE(mgr->Start().ok());
    for (size_t i = 0; i < reports.size(); ++i) {
      ASSERT_TRUE(mgr->Submit(reports[i]).ok());
      if (i == kEpochSize + 3) {
        // Tail up mid-stream, one closed epoch in.
        auto replica_or = ReplicaStore::Open(kDir, FaultReplicaOptions(&fs));
        ASSERT_TRUE(replica_or.ok());
        replica = std::move(replica_or).value();
      }
    }
  }
  fs.SimulatePowerLoss();

  // The view needs no protocol config: the epoch blobs are self-describing.
  ReplicaView view(replica.get());
  ASSERT_TRUE(view.Refresh().ok());
  EXPECT_EQ(view.PersistedEpochs(), (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(view.next_epoch(), 3u);
  auto window_or = view.WindowedQuery(0, 2);
  ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*window, *want);
}

}  // namespace
}  // namespace ldphh
