// Model-based randomized property test for the storage stack: thousands of
// seeded random Put/Delete/Compact/Keys/reopen operations driven against an
// in-memory reference map, on both a real POSIX temp directory and the
// fault-injecting in-memory filesystem (where reopens come with simulated
// power loss). After every recovery — and at checkpoints in between — the
// store must match the reference exactly: same keys, same bytes. A replica
// tails the same directory throughout and must match the reference at every
// refresh.
//
// Hand-enumerated scenarios (checkpoint_store_test, power_loss_test) pin
// down the known-interesting points; this suite walks the state space the
// enumeration cannot: random interleavings of rolls, compactions,
// tombstones, recoveries, and power cuts.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/common/random.h"
#include "src/store/checkpoint_store.h"
#include "src/store/replica_store.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

constexpr uint64_t kKeySpace = 32;   // Small: overwrites and re-deletes hit.
constexpr int kOpsPerSeed = 1200;
const uint64_t kSeeds[] = {7, 99, 1234, 0xdeadbeef};

std::string RandomBlob(Rng& rng) {
  const size_t size = rng.UniformU64(120);
  std::string blob;
  blob.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    blob.push_back(static_cast<char>(rng.UniformU64(256)));
  }
  return blob;
}

// One run of the state machine. `fault_fs` null means the POSIX temp dir.
class ModelRun {
 public:
  ModelRun(std::string dir, FaultInjectingFileSystem* fault_fs, uint64_t seed)
      : dir_(std::move(dir)), fault_fs_(fault_fs), rng_(seed) {}

  void Run() {
    Reopen("initial open");
    ReplicaStoreOptions ro;
    ro.file_system = fault_fs_;
    auto replica_or = ReplicaStore::Open(dir_, ro);
    ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
    replica_ = std::move(replica_or).value();

    for (int i = 0; i < kOpsPerSeed; ++i) {
      const uint64_t r = rng_.UniformU64(100);
      const std::string at = "op " + std::to_string(i);
      if (r < 55) {
        const uint64_t key = rng_.UniformU64(kKeySpace);
        const std::string blob = RandomBlob(rng_);
        ASSERT_TRUE(store_->Put(key, blob).ok()) << at;
        model_[key] = blob;
      } else if (r < 70) {
        const uint64_t key = rng_.UniformU64(kKeySpace);
        ASSERT_TRUE(store_->Delete(key).ok()) << at;
        model_.erase(key);
      } else if (r < 76) {
        ASSERT_TRUE(store_->Compact().ok()) << at;
      } else if (r < 82) {
        // Process restart: drop the store object, recover from disk.
        store_.reset();
        Reopen(at + " (reopen)");
        VerifyStore(at + " after reopen");
      } else if (r < 88 && fault_fs_ != nullptr) {
        // The lights go out: everything unsynced vanishes (plus a torn
        // prefix of an unsynced tail, sector-style), then recovery.
        store_.reset();
        fault_fs_->SimulatePowerLoss(rng_.UniformU64(48));
        Reopen(at + " (power loss)");
        VerifyStore(at + " after power loss");
      } else if (r < 94) {
        VerifyStore(at + " checkpoint");
      } else {
        VerifyReplica(at);
      }
      if (testing::Test::HasFatalFailure()) return;
    }

    // Final recovery + full equivalence, store and replica.
    store_.reset();
    if (fault_fs_ != nullptr) fault_fs_->SimulatePowerLoss();
    Reopen("final open");
    VerifyStore("final");
    VerifyReplica("final");
  }

 private:
  void Reopen(const std::string& context) {
    CheckpointStoreOptions o;
    o.segment_max_bytes = 300;  // A handful of records per segment.
    o.compaction_trigger = 3;
    // Background compaction on odd seeds: the random walk also races the
    // compactor thread. Durability mode per backend: the POSIX run models
    // process crashes (no power loss), so flush-grade is enough and keeps
    // the walk fast; the fault run exercises the full fsync discipline.
    o.background_compaction = (rng_.UniformU64(2) == 1);
    o.sync_mode = fault_fs_ != nullptr ? SyncMode::kFull : SyncMode::kNone;
    o.file_system = fault_fs_;
    auto store_or = CheckpointStore::Open(dir_, o);
    ASSERT_TRUE(store_or.ok()) << context << ": " << store_or.status().ToString();
    store_ = std::move(store_or).value();
  }

  void VerifyStore(const std::string& context) {
    ASSERT_TRUE(store_ != nullptr) << context;
    std::vector<uint64_t> want_keys;
    for (const auto& [key, blob] : model_) want_keys.push_back(key);
    ASSERT_EQ(store_->Keys(), want_keys) << context;
    for (const auto& [key, blob] : model_) {
      std::string got;
      ASSERT_TRUE(store_->Get(key, &got).ok()) << context << " key " << key;
      ASSERT_EQ(got, blob) << context << " key " << key;
    }
    for (uint64_t key = 0; key < kKeySpace; ++key) {
      if (model_.count(key) == 0) {
        ASSERT_FALSE(store_->Contains(key)) << context << " key " << key;
      }
    }
  }

  void VerifyReplica(const std::string& context) {
    ASSERT_TRUE(store_ != nullptr);
    ASSERT_TRUE(store_->WaitForCompaction().ok()) << context;
    auto refreshed_or = replica_->Refresh();
    ASSERT_TRUE(refreshed_or.ok())
        << context << ": " << refreshed_or.status().ToString();
    std::vector<uint64_t> want_keys;
    for (const auto& [key, blob] : model_) want_keys.push_back(key);
    ASSERT_EQ(replica_->Keys(), want_keys) << context << " (replica)";
    for (const auto& [key, blob] : model_) {
      std::string got;
      ASSERT_TRUE(replica_->Get(key, &got).ok())
          << context << " (replica) key " << key;
      ASSERT_EQ(got, blob) << context << " (replica) key " << key;
    }
  }

  const std::string dir_;
  FaultInjectingFileSystem* const fault_fs_;
  Rng rng_;
  std::map<uint64_t, std::string> model_;
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<ReplicaStore> replica_;
};

class StoreModelTest : public testing::TestWithParam<bool> {};

TEST_P(StoreModelTest, RandomWalkMatchesReferenceModel) {
  const bool fault = GetParam();
  for (const uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    if (fault) {
      FaultInjectingFileSystem ffs;
      ModelRun run("/faultfs/model", &ffs, seed);
      run.Run();
    } else {
      const std::string dir = testing::TempDir() + "/ldphh_model_" +
                              std::to_string(seed) + "_" +
                              std::to_string(::getpid());
      fs::remove_all(dir);
      ModelRun run(dir, nullptr, seed);
      run.Run();
      fs::remove_all(dir);
    }
    if (testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(PosixAndFaultInjected, StoreModelTest,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "FaultInjectedPowerLoss"
                                                   : "PosixTempDir";
                         });

// ------------------------------------------------ concurrent model walks ----

// Seeded multi-threaded Put/Delete/Apply walks: each thread owns a disjoint
// key range, so its private reference model stays exact with no cross-thread
// coordination, while the main thread compacts and scans the store under the
// writers' feet. Runs with the group-commit lane on and off, on POSIX and on
// the fault FS; after the walk — and again after a restart, with a simulated
// power loss on the fault FS — the store must equal the union of the thread
// models. (This is also the suite the TSan CI job runs against the
// leader/follower handoff.)
void RunConcurrentWalk(const std::string& dir,
                       FaultInjectingFileSystem* fault_fs, bool group_commit,
                       uint64_t seed) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 250;
  constexpr uint64_t kRangePerThread = 64;

  CheckpointStoreOptions o;
  o.segment_max_bytes = 1 << 10;  // Rolls mid-walk, also mid-group.
  o.compaction_trigger = 3;
  o.background_compaction = true;
  o.sync_mode = fault_fs != nullptr ? SyncMode::kFull : SyncMode::kNone;
  o.file_system = fault_fs;
  o.group_commit = group_commit;
  o.group_max_records = 8;  // Small: the bound-crossing path runs too.
  auto store_or = CheckpointStore::Open(dir, o);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();

  std::vector<std::map<uint64_t, std::string>> models(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 131 + static_cast<uint64_t>(t));
      std::map<uint64_t, std::string>& model = models[t];
      const uint64_t base = static_cast<uint64_t>(t) * kRangePerThread;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t r = rng.UniformU64(100);
        const uint64_t key = base + rng.UniformU64(kRangePerThread);
        const std::string at =
            "thread " + std::to_string(t) + " op " + std::to_string(i);
        if (r < 50) {
          const std::string blob = RandomBlob(rng);
          ASSERT_TRUE(store->Put(key, blob).ok()) << at;
          model[key] = blob;
        } else if (r < 68) {
          ASSERT_TRUE(store->Delete(key).ok()) << at;
          model.erase(key);
        } else if (r < 84) {
          // A two-intent batch riding the lane as one member.
          const uint64_t other = base + rng.UniformU64(kRangePerThread);
          const std::string blob = RandomBlob(rng);
          std::vector<StoreWrite> batch(2);
          batch[0].key = key;
          batch[0].blob = blob;
          batch[1].is_delete = true;
          batch[1].key = other;
          ASSERT_TRUE(store->Apply(batch).ok()) << at;
          model[key] = blob;
          model.erase(other);  // In batch order: a self-pair ends deleted.
        } else {
          // Owner read: no other thread mutates this range, so the store
          // must agree with the private model even mid-hammer.
          const auto it = model.find(key);
          if (it != model.end()) {
            std::string got;
            ASSERT_TRUE(store->Get(key, &got).ok()) << at;
            ASSERT_EQ(got, it->second) << at;
          } else {
            ASSERT_FALSE(store->Contains(key)) << at;
          }
        }
      }
    });
  }
  // The main thread churns compactions and scans against the writers.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Compact().ok()) << "main compact " << i;
    (void)store->Keys();
    std::this_thread::yield();
  }
  for (std::thread& t : threads) t.join();
  if (testing::Test::HasFatalFailure()) return;

  std::map<uint64_t, std::string> merged;
  for (const auto& model : models) merged.insert(model.begin(), model.end());
  const auto verify = [&](CheckpointStore* s, const std::string& context) {
    std::vector<uint64_t> want_keys;
    for (const auto& [key, blob] : merged) want_keys.push_back(key);
    ASSERT_EQ(s->Keys(), want_keys) << context;
    for (const auto& [key, blob] : merged) {
      std::string got;
      ASSERT_TRUE(s->Get(key, &got).ok()) << context << " key " << key;
      ASSERT_EQ(got, blob) << context << " key " << key;
    }
  };
  verify(store.get(), "after walk");
  if (group_commit) {
    const CheckpointStoreStats stats = store->Stats();
    EXPECT_GT(stats.group_commit_writes, 0u);
    EXPECT_GE(stats.group_commit_writes, stats.group_commits);
  }

  // Restart (with the lights going out on the fault FS): recovery must land
  // on exactly the acknowledged union.
  store.reset();
  if (fault_fs != nullptr) fault_fs->SimulatePowerLoss();
  store_or = CheckpointStore::Open(dir, o);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  verify(store_or.value().get(), "after restart");
}

using ConcurrentParam = std::tuple<bool, bool>;  // (fault FS, group commit)

class ConcurrentStoreModelTest
    : public testing::TestWithParam<ConcurrentParam> {};

TEST_P(ConcurrentStoreModelTest, ConcurrentWalkMatchesReferenceModel) {
  const auto [fault, group_commit] = GetParam();
  for (const uint64_t seed : {uint64_t{11}, uint64_t{0xc0ffee}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    if (fault) {
      FaultInjectingFileSystem ffs;
      RunConcurrentWalk("/faultfs/concurrent", &ffs, group_commit, seed);
    } else {
      const std::string dir = testing::TempDir() + "/ldphh_concurrent_" +
                              std::to_string(seed) + "_" +
                              (group_commit ? "g1" : "g0") + "_" +
                              std::to_string(::getpid());
      fs::remove_all(dir);
      RunConcurrentWalk(dir, nullptr, group_commit, seed);
      fs::remove_all(dir);
    }
    if (testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndLanes, ConcurrentStoreModelTest,
    testing::Combine(testing::Values(false, true),
                     testing::Values(false, true)),
    [](const testing::TestParamInfo<ConcurrentParam>& param_info) {
      return std::string(std::get<0>(param_info.param) ? "FaultInjected"
                                                       : "PosixTempDir") +
             (std::get<1>(param_info.param) ? "GroupCommit" : "SingleWriter");
    });

}  // namespace
}  // namespace ldphh
