// Tests for src/graphs/cluster: the Theorem B.3 style spectral clustering.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/graphs/cluster.h"
#include "src/graphs/expander.h"
#include "src/graphs/graph.h"

namespace ldphh {
namespace {

// Builds a graph with `count` disjoint copies of a d-regular expander on m
// vertices, plus `noise_edges` uniformly random extra edges.
Graph PlantedClusters(int count, int m, int d, int noise_edges, uint64_t seed,
                      std::vector<std::vector<int>>* truth) {
  Rng rng(seed);
  Graph g(count * m);
  truth->clear();
  for (int c = 0; c < count; ++c) {
    auto e = std::move(Expander::Sample(m, d, 1.0, seed * 31 + c)).value();
    std::vector<int> members;
    for (int v = 0; v < m; ++v) {
      members.push_back(c * m + v);
      for (int s = 0; s < d; ++s) {
        const int w = e.Neighbor(v, s);
        if (w > v || (w == v && e.PairedSlot(v, s) > s)) {
          g.AddEdge(c * m + v, c * m + w);
        }
      }
    }
    truth->push_back(members);
  }
  for (int i = 0; i < noise_edges; ++i) {
    const int u = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(count * m)));
    const int v = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(count * m)));
    g.AddEdge(u, v);
  }
  return g;
}

// Fraction of `truth` vertices recovered in the best-matching found cluster.
double BestRecovery(const std::vector<int>& truth,
                    const std::vector<std::vector<int>>& found) {
  double best = 0.0;
  std::set<int> t(truth.begin(), truth.end());
  for (const auto& f : found) {
    int hit = 0;
    for (int v : f) hit += t.count(v) > 0;
    best = std::max(best, static_cast<double>(hit) / static_cast<double>(t.size()));
  }
  return best;
}

TEST(Cluster, DisjointCleanClustersRecoveredExactly) {
  std::vector<std::vector<int>> truth;
  Graph g = PlantedClusters(4, 16, 6, 0, 11, &truth);
  Rng rng(1);
  ClusterOptions opts;
  const auto found = FindSpectralClusters(g, opts, rng);
  // Each planted expander is a connected component; clean recovery.
  for (const auto& t : truth) {
    EXPECT_EQ(BestRecovery(t, found), 1.0);
  }
}

TEST(Cluster, SingletonVerticesAreSingletonClusters) {
  Graph g(5);
  g.AddEdge(0, 1);
  Rng rng(2);
  const auto found = FindSpectralClusters(g, ClusterOptions{}, rng);
  int singletons = 0;
  for (const auto& f : found) singletons += (f.size() == 1);
  EXPECT_EQ(singletons, 3);
}

TEST(Cluster, BridgedClustersAreSplit) {
  // Two expanders joined by a single edge: one component, but the sweep cut
  // has conductance ~1/vol and must split it.
  std::vector<std::vector<int>> truth;
  Graph g = PlantedClusters(2, 16, 6, 0, 13, &truth);
  g.AddEdge(3, 16 + 5);
  Rng rng(3);
  ClusterOptions opts;
  const auto found = FindSpectralClusters(g, opts, rng);
  EXPECT_GE(found.size(), 2u);
  EXPECT_GE(BestRecovery(truth[0], found), 15.0 / 16.0);
  EXPECT_GE(BestRecovery(truth[1], found), 15.0 / 16.0);
}

TEST(Cluster, ExpanderIsNotSplit) {
  // A single good expander must come back as one cluster, not shards
  // (this was the first implementation bug the URL decoder hit).
  std::vector<std::vector<int>> truth;
  Graph g = PlantedClusters(1, 32, 8, 0, 17, &truth);
  Rng rng(4);
  ClusterOptions opts;
  const auto found = FindSpectralClusters(g, opts, rng);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].size(), 32u);
}

class ClusterNoiseSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClusterNoiseSweep, RecoveryDegradesGracefullyWithNoise) {
  const int noise = GetParam();
  std::vector<std::vector<int>> truth;
  Graph g = PlantedClusters(4, 16, 6, noise, 101 + noise, &truth);
  Rng rng(5);
  ClusterOptions opts;
  const auto found = FindSpectralClusters(g, opts, rng);
  double avg = 0.0;
  for (const auto& t : truth) avg += BestRecovery(t, found);
  avg /= static_cast<double>(truth.size());
  // The clustering contract: eta-spectral clusters survive up to O(eta)
  // volume loss. A handful of noise edges on 4x16 d=6 clusters is eta
  // around noise/(16*6); recovery should stay high.
  EXPECT_GE(avg, 0.8) << "noise=" << noise;
}

INSTANTIATE_TEST_SUITE_P(Noise, ClusterNoiseSweep, ::testing::Values(0, 2, 4, 8));

TEST(Cluster, EmptyGraph) {
  Graph g(0);
  Rng rng(6);
  EXPECT_TRUE(FindSpectralClusters(g, ClusterOptions{}, rng).empty());
}

TEST(Cluster, DepthCapPreventsRunaway) {
  // A path graph invites many recursive splits; the depth cap must hold.
  Graph g(64);
  for (int i = 0; i + 1 < 64; ++i) g.AddEdge(i, i + 1);
  Rng rng(7);
  ClusterOptions opts;
  opts.max_depth = 3;
  const auto found = FindSpectralClusters(g, opts, rng);
  EXPECT_GE(found.size(), 1u);
  size_t total = 0;
  for (const auto& f : found) total += f.size();
  EXPECT_EQ(total, 64u);  // Partition property: no vertex lost or duplicated.
}

TEST(Cluster, OutputIsAPartition) {
  std::vector<std::vector<int>> truth;
  Graph g = PlantedClusters(3, 16, 4, 10, 23, &truth);
  Rng rng(8);
  const auto found = FindSpectralClusters(g, ClusterOptions{}, rng);
  std::set<int> seen;
  size_t total = 0;
  for (const auto& f : found) {
    for (int v : f) seen.insert(v);
    total += f.size();
  }
  EXPECT_EQ(total, seen.size());           // Disjoint.
  EXPECT_EQ(seen.size(), 48u);             // Covering.
}

}  // namespace
}  // namespace ldphh
