// Tests for src/graphs: Graph, spectral primitives, Expander.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/random.h"
#include "src/graphs/expander.h"
#include "src/graphs/graph.h"
#include "src/graphs/spectral.h"

namespace ldphh {
namespace {

Graph Cycle(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

Graph Complete(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

// ------------------------------------------------------------------ Graph --

TEST(Graph, DegreesAndEdgeCount) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // Parallel edge.
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 3);
  EXPECT_EQ(g.Degree(2), 2);
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(Graph, SelfLoopCountsTwice) {
  Graph g(2);
  g.AddEdge(0, 0);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(Graph, VolumeSumsDegrees) {
  Graph g = Cycle(6);
  EXPECT_EQ(g.Volume({0, 1, 2}), 6);
  EXPECT_EQ(g.Volume({}), 0);
}

TEST(Graph, ConnectedComponentsOfDisjointCycles) {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  // 5, 6 isolated.
  const auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 4u);
  std::set<size_t> sizes;
  for (const auto& c : comps) sizes.insert(c.size());
  EXPECT_TRUE(sizes.count(3));
  EXPECT_TRUE(sizes.count(2));
  EXPECT_TRUE(sizes.count(1));
}

TEST(Graph, ConnectedComponentsRespectAliveMask) {
  Graph g = Cycle(6);
  std::vector<bool> alive(6, true);
  alive[0] = false;  // Break the cycle into a path 1..5.
  const auto comps = g.ConnectedComponents(alive);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 5u);
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  Graph g = Complete(5);
  std::vector<int> old_to_new;
  Graph sub = g.InducedSubgraph({1, 2, 4}, &old_to_new);
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(sub.NumEdges(), 3);  // Triangle.
  EXPECT_EQ(old_to_new[1], 0);
  EXPECT_EQ(old_to_new[2], 1);
  EXPECT_EQ(old_to_new[4], 2);
  EXPECT_EQ(old_to_new[0], -1);
}

TEST(Graph, InducedSubgraphPreservesSelfLoops) {
  Graph g(3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  Graph sub = g.InducedSubgraph({0});
  EXPECT_EQ(sub.NumVertices(), 1);
  EXPECT_EQ(sub.Degree(0), 2);  // The loop survived; the cross edge did not.
}

// --------------------------------------------------------------- spectral --

TEST(Spectral, CompleteGraphSecondEigenvalue) {
  // K_n adjacency eigenvalues: n-1 (once) and -1.
  Rng rng(1);
  const double lam = SecondAdjacencyEigenvalue(Complete(8), 300, rng);
  EXPECT_NEAR(lam, 1.0, 0.05);
}

TEST(Spectral, CycleSecondEigenvalue) {
  // Odd cycle C_n: eigenvalues 2 cos(2 pi k / n); the second-largest in
  // magnitude is 2 cos(pi / n) (the most negative one). Even cycles are
  // bipartite with -2 in the spectrum, tested separately below.
  Rng rng(2);
  const int n = 13;
  const double lam = SecondAdjacencyEigenvalue(Cycle(n), 4000, rng);
  EXPECT_NEAR(lam, 2.0 * std::cos(M_PI / n), 0.05);
}

TEST(Spectral, BipartiteNegativeEigenvalueCaptured) {
  // C_4 eigenvalues {2, 0, 0, -2}: second in magnitude is 2 (the -2).
  Rng rng(3);
  const double lam = SecondAdjacencyEigenvalue(Cycle(4), 500, rng);
  EXPECT_NEAR(lam, 2.0, 0.05);
}

TEST(Spectral, FiedlerVectorSeparatesBarbell) {
  // Two K_5s joined by one edge: the Fiedler vector signs split the bells.
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      g.AddEdge(i, j);
      g.AddEdge(5 + i, 5 + j);
    }
  }
  g.AddEdge(4, 5);
  Rng rng(4);
  const auto f = ApproximateFiedlerVector(g, 300, rng);
  // All of 0..4 on one side, 5..9 on the other.
  for (int i = 1; i < 5; ++i) {
    EXPECT_GT(f[static_cast<size_t>(i)] * f[0], 0.0) << i;
    EXPECT_GT(f[static_cast<size_t>(5 + i)] * f[5], 0.0) << i;
  }
  EXPECT_LT(f[0] * f[5], 0.0);
}

TEST(Spectral, BestSweepCutFindsBridge) {
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      g.AddEdge(i, j);
      g.AddEdge(5 + i, 5 + j);
    }
  }
  g.AddEdge(4, 5);
  Rng rng(5);
  const auto f = ApproximateFiedlerVector(g, 300, rng);
  const SweepCut cut = BestSweepCut(g, f);
  EXPECT_EQ(cut.side_a.size(), 5u);
  EXPECT_EQ(cut.side_b.size(), 5u);
  // One crossing edge over volume 21 per side.
  EXPECT_NEAR(cut.conductance, 1.0 / 21.0, 1e-9);
}

TEST(Spectral, SweepCutSingleVertexGraph) {
  Graph g(1);
  const SweepCut cut = BestSweepCut(g, {0.0});
  EXPECT_EQ(cut.side_a.size(), 1u);
  EXPECT_TRUE(cut.side_b.empty());
}

TEST(Spectral, SweepCutOnCompleteGraphHasHighConductance) {
  Rng rng(6);
  Graph g = Complete(10);
  const auto f = ApproximateFiedlerVector(g, 200, rng);
  const SweepCut cut = BestSweepCut(g, f);
  EXPECT_GT(cut.conductance, 0.4);
}

// --------------------------------------------------------------- Expander --

class ExpanderSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExpanderSweep, RegularConnectedCertified) {
  const auto [m, d] = GetParam();
  auto e_or = Expander::Sample(m, d, /*lambda_target_fraction=*/0.97,
                               /*seed=*/uint64_t(m * 131 + d));
  ASSERT_TRUE(e_or.ok()) << e_or.status().ToString();
  const Expander& e = e_or.value();
  EXPECT_EQ(e.num_vertices(), m);
  EXPECT_EQ(e.degree(), d);
  for (int v = 0; v < m; ++v) EXPECT_EQ(e.graph().Degree(v), d);
  EXPECT_EQ(e.graph().ConnectedComponents().size(), 1u);
  EXPECT_LE(e.lambda2(), 0.97 * d + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExpanderSweep,
                         ::testing::Values(std::tuple{4, 4}, std::tuple{8, 4},
                                           std::tuple{8, 6}, std::tuple{16, 4},
                                           std::tuple{16, 6}, std::tuple{32, 6},
                                           std::tuple{32, 8}, std::tuple{64, 8},
                                           std::tuple{17, 4}, std::tuple{63, 6}));

TEST(Expander, SlotPairingIsInvolution) {
  auto e = std::move(Expander::Sample(16, 6, 1.0, 7)).value();
  for (int m = 0; m < 16; ++m) {
    for (int s = 0; s < 6; ++s) {
      const int m2 = e.Neighbor(m, s);
      const int s2 = e.PairedSlot(m, s);
      EXPECT_EQ(e.Neighbor(m2, s2), m);
      EXPECT_EQ(e.PairedSlot(m2, s2), s);
    }
  }
}

TEST(Expander, DeterministicBySeed) {
  auto a = std::move(Expander::Sample(12, 4, 1.0, 99)).value();
  auto b = std::move(Expander::Sample(12, 4, 1.0, 99)).value();
  for (int m = 0; m < 12; ++m) {
    for (int s = 0; s < 4; ++s) EXPECT_EQ(a.Neighbor(m, s), b.Neighbor(m, s));
  }
}

TEST(Expander, RejectsInvalidParameters) {
  EXPECT_FALSE(Expander::Sample(1, 4, 1.0, 1).ok());
  EXPECT_FALSE(Expander::Sample(8, 3, 1.0, 1).ok());  // Odd degree.
  EXPECT_FALSE(Expander::Sample(8, 0, 1.0, 1).ok());
}

TEST(Expander, InfeasibleCertificateExhaustsRetries) {
  // lambda <= 0 is impossible for a connected regular graph.
  const auto e = Expander::Sample(16, 4, 0.0, 1, /*max_attempts=*/3);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
}

TEST(Expander, RandomRegularBeatsRamanujanSlack) {
  // Random 8-regular graphs on 64 vertices should certify well below d:
  // expect lambda2 within ~1.6x of the Ramanujan bound 2 sqrt(d-1).
  auto e = std::move(Expander::Sample(64, 8, 1.0, 5)).value();
  EXPECT_LE(e.lambda2(), 1.6 * 2.0 * std::sqrt(7.0));
}

}  // namespace
}  // namespace ldphh
