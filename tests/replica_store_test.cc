// Tests for src/store/replica_store: a read-only follower tailing a live
// CheckpointStore directory — snapshot equality with the primary, tail lag
// semantics, pinned snapshots surviving compaction, the sealed-segment
// cache, background polling, and a concurrent primary/replica hammer (the
// TSan target for the replica read path).

#include "src/store/replica_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/common/random.h"
#include "src/common/serde.h"
#include "src/store/checkpoint_store.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

class ReplicaStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/ldphh_replica_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
           std::to_string(::getpid());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Small segments so a handful of Puts crosses rolls and MANIFEST
  // installs; no background compaction — tests drive it explicitly.
  CheckpointStoreOptions PrimaryOptions(size_t segment_max_bytes = 256) {
    CheckpointStoreOptions o;
    o.segment_max_bytes = segment_max_bytes;
    o.background_compaction = false;
    o.sync_mode = SyncMode::kNone;  // Process-level tests; speed over fsync.
    return o;
  }

  std::unique_ptr<CheckpointStore> MustOpenPrimary(
      const CheckpointStoreOptions& o) {
    auto store_or = CheckpointStore::Open(dir_, o);
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    return std::move(store_or).value();
  }

  std::unique_ptr<ReplicaStore> MustOpenReplica(
      ReplicaStoreOptions o = ReplicaStoreOptions()) {
    auto replica_or = ReplicaStore::Open(dir_, o);
    EXPECT_TRUE(replica_or.ok()) << replica_or.status().ToString();
    return std::move(replica_or).value();
  }

  std::string dir_;
};

std::string Blob(uint64_t key, size_t size = 48) {
  std::string b = "blob-" + std::to_string(key) + "-";
  while (b.size() < size) b.push_back(static_cast<char>('a' + key % 26));
  return b;
}

void ExpectReplicaMatches(ReplicaStore* replica,
                          const std::map<uint64_t, std::string>& model,
                          const std::string& context) {
  std::vector<uint64_t> want_keys;
  for (const auto& [key, blob] : model) want_keys.push_back(key);
  EXPECT_EQ(replica->Keys(), want_keys) << context;
  for (const auto& [key, blob] : model) {
    std::string got;
    ASSERT_TRUE(replica->Get(key, &got).ok()) << context << " key " << key;
    EXPECT_EQ(got, blob) << context << " key " << key;
    EXPECT_TRUE(replica->Contains(key)) << context << " key " << key;
  }
}

// A v1 MANIFEST (written before the incarnation id existed) must still
// decode — incarnation reads as 0, "unknown" — so stores from the previous
// release stay openable.
TEST(StoreFormatTest, ReadsVersion1ManifestWithoutIncarnation) {
  FaultInjectingFileSystem ffs;
  std::string payload;
  PutU16(&payload, 1);   // version 1: no incarnation field
  PutU64(&payload, 7);   // sequence
  PutU64(&payload, 4);   // next_segment
  PutU64(&payload, 3);   // active_segment
  PutU32(&payload, 2);   // live count
  PutU64(&payload, 2);
  PutU64(&payload, 3);
  const std::string path = "/faultfs/v1/MANIFEST";
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, &ffs, SyncMode::kNone).ok());
  ASSERT_TRUE(writer.Append(kStoreManifestRecord, payload).ok());
  ASSERT_TRUE(writer.Close().ok());

  StoreManifest manifest;
  ASSERT_TRUE(ReadStoreManifest(&ffs, path, &manifest).ok());
  EXPECT_EQ(manifest.sequence, 7u);
  EXPECT_EQ(manifest.incarnation, 0u);
  EXPECT_EQ(manifest.next_segment, 4u);
  EXPECT_EQ(manifest.active_segment, 3u);
  EXPECT_EQ(manifest.live, (std::set<uint64_t>{2, 3}));

  // A replica refuses to tail a v1 primary: without the incarnation id it
  // cannot detect a rolled-back-and-reissued generation. (A v1 store
  // upgrades by opening it once with the current binary — recovery always
  // installs a fresh v2 MANIFEST.)
  ReplicaStoreOptions ro;
  ro.file_system = &ffs;
  auto replica_or = ReplicaStore::Open("/faultfs/v1", ro);
  ASSERT_FALSE(replica_or.ok());
  EXPECT_EQ(replica_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaStoreTest, OpenWithoutManifestFails) {
  fs::create_directories(dir_);
  auto replica_or = ReplicaStore::Open(dir_, ReplicaStoreOptions());
  ASSERT_FALSE(replica_or.ok());
  EXPECT_EQ(replica_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaStoreTest, TailsPutsDeletesAndOverwrites) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  std::map<uint64_t, std::string> model;
  auto replica = MustOpenReplica();
  ExpectReplicaMatches(replica.get(), model, "empty store");

  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    model[k] = Blob(k);
  }
  for (uint64_t k = 0; k < 30; k += 3) {
    ASSERT_TRUE(primary->Put(k, Blob(k + 100)).ok());
    model[k] = Blob(k + 100);
  }
  ASSERT_TRUE(primary->Delete(7).ok());
  ASSERT_TRUE(primary->Delete(28).ok());
  model.erase(7);
  model.erase(28);

  auto advanced_or = replica->Refresh();
  ASSERT_TRUE(advanced_or.ok()) << advanced_or.status().ToString();
  EXPECT_TRUE(advanced_or.value());
  ExpectReplicaMatches(replica.get(), model, "after tail");
  EXPECT_EQ(replica->manifest_sequence(),
            primary->Stats().manifest_sequence);

  // Nothing new: the poll is a no-op and says so.
  auto idle_or = replica->Refresh();
  ASSERT_TRUE(idle_or.ok());
  EXPECT_FALSE(idle_or.value());
}

TEST_F(ReplicaStoreTest, SnapshotIsStaleUntilRefresh) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  ASSERT_TRUE(primary->Put(1, "one").ok());
  auto replica = MustOpenReplica();
  std::string got;
  ASSERT_TRUE(replica->Get(1, &got).ok());

  ASSERT_TRUE(primary->Put(2, "two").ok());
  // The snapshot is immutable: key 2 is invisible until the next poll.
  EXPECT_FALSE(replica->Contains(2));
  ASSERT_TRUE(replica->Refresh().ok());
  EXPECT_TRUE(replica->Contains(2));
}

TEST_F(ReplicaStoreTest, PinnedSnapshotServesAcrossCompactionAndPrune) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  std::map<uint64_t, std::string> old_model;
  for (uint64_t k = 0; k < 24; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    old_model[k] = Blob(k);
  }
  auto replica = MustOpenReplica();
  ExpectReplicaMatches(replica.get(), old_model, "before compaction");

  // The primary compacts (deleting the segment files the snapshot was
  // parsed from), prunes old keys, and keeps writing.
  std::map<uint64_t, std::string> new_model = old_model;
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(primary->Delete(k).ok());
    new_model.erase(k);
  }
  ASSERT_TRUE(primary->Compact().ok());
  ASSERT_TRUE(primary->Put(100, "fresh").ok());
  new_model[100] = "fresh";

  // The un-refreshed snapshot still serves the old state whole — parsed
  // segment data is pinned, files on disk be damned.
  ExpectReplicaMatches(replica.get(), old_model, "pinned old snapshot");

  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatches(replica.get(), new_model, "after refresh");
}

TEST_F(ReplicaStoreTest, PinnedViewIsImmuneToConcurrentRefresh) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
  }
  auto replica = MustOpenReplica();
  const ReplicaStore::PinnedView pinned = replica->Pin();

  // The primary prunes and the replica's *current* snapshot follows...
  for (uint64_t k = 0; k < 5; ++k) ASSERT_TRUE(primary->Delete(k).ok());
  ASSERT_TRUE(primary->Compact().ok());
  ASSERT_TRUE(replica->Refresh().ok());
  EXPECT_FALSE(replica->Contains(2));

  // ...while the pinned view keeps answering from its point in time — a
  // multi-key read (e.g. a windowed query) can never tear mid-way.
  for (uint64_t k = 0; k < 10; ++k) {
    std::string got;
    ASSERT_TRUE(pinned.Get(k, &got).ok()) << "key " << k;
    EXPECT_EQ(got, Blob(k)) << "key " << k;
  }
  EXPECT_LT(pinned.manifest_sequence(), replica->manifest_sequence());
}

TEST_F(ReplicaStoreTest, SealedSegmentCacheServesSteadyStateRefreshes) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  auto replica = MustOpenReplica();
  // Cross several segment rolls, refreshing after each batch: the sealed
  // segments parsed by earlier refreshes must come from cache, not disk.
  for (uint64_t batch = 0; batch < 6; ++batch) {
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(primary->Put(batch * 10 + k, Blob(k)).ok());
    }
    ASSERT_TRUE(replica->Refresh().ok());
  }
  const ReplicaStoreStats stats = replica->Stats();
  EXPECT_GT(stats.segment_cache_hits, 0u);
  EXPECT_GT(stats.snapshots_installed, 1u);
  // Steady state: each refresh replays at most the active segment plus the
  // segments sealed since the last poll — far fewer than live * refreshes.
  EXPECT_LT(stats.segments_replayed,
            primary->Stats().live_segments * stats.snapshots_installed);
}

TEST_F(ReplicaStoreTest, TailsAcrossPrimaryRestartAndRecovery) {
  std::map<uint64_t, std::string> model;
  {
    auto primary = MustOpenPrimary(PrimaryOptions());
    for (uint64_t k = 0; k < 20; ++k) {
      ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
      model[k] = Blob(k);
    }
  }
  auto replica = MustOpenReplica();
  ExpectReplicaMatches(replica.get(), model, "primary closed");

  // The primary restarts (recovery sweeps, seals, rolls) and writes more;
  // the replica follows through the recovery-installed MANIFESTs.
  auto primary = MustOpenPrimary(PrimaryOptions());
  ASSERT_TRUE(primary->Put(50, "post-restart").ok());
  model[50] = "post-restart";
  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatches(replica.get(), model, "after primary restart");
}

TEST_F(ReplicaStoreTest, WorksOnFaultInjectingFileSystem) {
  FaultInjectingFileSystem ffs;
  CheckpointStoreOptions po;
  po.segment_max_bytes = 256;
  po.background_compaction = false;
  po.file_system = &ffs;
  const std::string dir = "/faultfs/replica_basic";
  auto primary_or = CheckpointStore::Open(dir, po);
  ASSERT_TRUE(primary_or.ok());
  auto primary = std::move(primary_or).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 15; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    model[k] = Blob(k);
  }
  ReplicaStoreOptions ro;
  ro.file_system = &ffs;
  auto replica_or = ReplicaStore::Open(dir, ro);
  ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
  ExpectReplicaMatches(replica_or.value().get(), model, "fault fs");
}

TEST_F(ReplicaStoreTest, BackgroundTailerCatchesUpWithoutManualPolls) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  ASSERT_TRUE(primary->Put(1, "one").ok());
  ReplicaStoreOptions ro;
  ro.poll_interval = std::chrono::milliseconds(1);
  auto replica = MustOpenReplica(ro);

  std::map<uint64_t, std::string> model{{1, "one"}};
  for (uint64_t k = 2; k < 40; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    model[k] = Blob(k);
  }
  // No manual Refresh: the tailer must converge on its own.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replica->Keys().size() != model.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ExpectReplicaMatches(replica.get(), model, "background tail");
  EXPECT_GT(replica->Stats().refreshes, 1u);
}

// The TSan target: a primary mutating (puts, deletes, compactions, segment
// rolls) at full speed while a replica refreshes and reads concurrently.
// Every mid-flight read must be well-formed (a Get either misses or
// returns a value the primary wrote for that key); at the end the tail
// must converge to exact equality.
TEST_F(ReplicaStoreTest, ConcurrentTailHammer) {
  auto primary = MustOpenPrimary(PrimaryOptions(512));
  ASSERT_TRUE(primary->Put(0, Blob(0)).ok());
  auto replica = MustOpenReplica();

  constexpr uint64_t kKeys = 16;
  constexpr int kOps = 1500;
  std::atomic<bool> done{false};
  std::atomic<int> refreshes{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto advanced_or = replica->Refresh();
      ASSERT_TRUE(advanced_or.ok()) << advanced_or.status().ToString();
      refreshes.fetch_add(1, std::memory_order_relaxed);
      for (uint64_t k = 0; k < kKeys; ++k) {
        std::string got;
        const Status st = replica->Get(k, &got);
        if (st.ok()) {
          // Any served value must be one the primary wrote for this key.
          EXPECT_EQ(got.compare(0, 5, "blob-"), 0) << "key " << k;
        } else {
          EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
        }
      }
      (void)replica->Keys();
    }
  });

  Rng rng(2024);
  std::map<uint64_t, std::string> model;
  model[0] = Blob(0);
  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = rng.UniformU64(kKeys);
    if (rng.Bernoulli(0.15)) {
      ASSERT_TRUE(primary->Delete(key).ok());
      model.erase(key);
    } else if (rng.Bernoulli(0.05)) {
      ASSERT_TRUE(primary->Compact().ok());
    } else {
      const std::string blob = Blob(key, 32 + rng.UniformU64(64));
      ASSERT_TRUE(primary->Put(key, blob).ok());
      model[key] = blob;
    }
  }
  done.store(true);
  reader.join();
  EXPECT_GT(refreshes.load(), 0);

  auto final_or = replica->Refresh();
  ASSERT_TRUE(final_or.ok()) << final_or.status().ToString();
  ExpectReplicaMatches(replica.get(), model, "after hammer");
  // Compaction may have raced refreshes; the retry path resolving on the
  // next generation is expected, failure is not.
  EXPECT_EQ(replica->Stats().failed_refreshes, 0u);
}

// ----------------------------------------------- incremental active replay --

/// Counts the bytes actually read (not skipped) through every sequential
/// file opened via this wrapper — the probe pinning the incremental
/// active-segment replay: a tail poll must read O(new bytes), not O(file).
class CountingReadableFileSystem : public ReadableFileSystem {
 public:
  explicit CountingReadableFileSystem(ReadableFileSystem* base)
      : base_(base) {}

  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    auto file_or = base_->NewSequentialFile(path);
    LDPHH_RETURN_IF_ERROR(file_or.status());
    return std::unique_ptr<SequentialFile>(
        new CountingFile(std::move(file_or).value(), &bytes_read_));
  }
  StatusOr<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status ListDirectory(const std::string& dir,
                       std::vector<std::string>* names) override {
    return base_->ListDirectory(dir, names);
  }

  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  class CountingFile : public SequentialFile {
   public:
    CountingFile(std::unique_ptr<SequentialFile> base,
                 std::atomic<uint64_t>* counter)
        : base_(std::move(base)), counter_(counter) {}
    Status Read(char* buf, size_t n, size_t* bytes_read) override {
      const Status st = base_->Read(buf, n, bytes_read);
      counter_->fetch_add(*bytes_read, std::memory_order_relaxed);
      return st;
    }
    Status Skip(uint64_t n) override { return base_->Skip(n); }
    uint64_t Tell() const override { return base_->Tell(); }
    uint64_t size() const override { return base_->size(); }

   private:
    std::unique_ptr<SequentialFile> base_;
    std::atomic<uint64_t>* counter_;
  };

  ReadableFileSystem* const base_;
  std::atomic<uint64_t> bytes_read_{0};
};

TEST_F(ReplicaStoreTest, ActiveSegmentReplayIsIncremental) {
  // One big active segment (no rolls), many sizable records.
  auto primary = MustOpenPrimary(PrimaryOptions(1 << 22));
  std::map<uint64_t, std::string> model;
  const size_t kBlob = 1024;
  for (uint64_t k = 0; k < 64; ++k) {
    model[k] = Blob(k, kBlob);
    ASSERT_TRUE(primary->Put(k, model[k]).ok());
  }

  CountingReadableFileSystem counting(FileSystem::Default());
  ReplicaStoreOptions ro;
  ro.file_system = &counting;
  auto replica = MustOpenReplica(ro);
  ExpectReplicaMatches(replica.get(), model, "initial");
  const uint64_t full_read = counting.bytes_read();
  ASSERT_GT(full_read, 64 * kBlob);  // The first pass reads everything.

  // One appended record: the next poll must read only the manifest and the
  // tail, not the whole active file again.
  model[100] = Blob(100, kBlob);
  ASSERT_TRUE(primary->Put(100, model[100]).ok());
  const uint64_t before = counting.bytes_read();
  auto refreshed_or = replica->Refresh();
  ASSERT_TRUE(refreshed_or.ok());
  EXPECT_TRUE(refreshed_or.value());
  const uint64_t delta = counting.bytes_read() - before;
  EXPECT_LT(delta, 4 * kBlob) << "tail poll re-read the whole active segment";
  EXPECT_GE(replica->Stats().incremental_replays, 1u);
  ExpectReplicaMatches(replica.get(), model, "after incremental tail");

  // Deletes and overwrites flow through the incremental path too.
  ASSERT_TRUE(primary->Delete(3).ok());
  model.erase(3);
  model[5] = Blob(505, kBlob);
  ASSERT_TRUE(primary->Put(5, model[5]).ok());
  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatches(replica.get(), model, "after incremental delete");

  // An idle poll stays on the two-stat fast path: nearly free.
  const uint64_t idle_before = counting.bytes_read();
  auto idle_or = replica->Refresh();
  ASSERT_TRUE(idle_or.ok());
  EXPECT_FALSE(idle_or.value());
  EXPECT_LT(counting.bytes_read() - idle_before, 256u);
}

TEST_F(ReplicaStoreTest, IncrementalReplaySurvivesSealsAndRecovery) {
  // Small segments: the active segment seals under the replica's feet, and
  // the incremental state must never leak stale records across the seal.
  auto primary = MustOpenPrimary(PrimaryOptions(1 << 11));
  CountingReadableFileSystem counting(FileSystem::Default());
  ReplicaStoreOptions ro;
  ro.file_system = &counting;
  std::map<uint64_t, std::string> model;
  ASSERT_TRUE(primary->Put(0, Blob(0)).ok());
  model[0] = Blob(0);
  auto replica = MustOpenReplica(ro);
  Rng rng(4);
  for (int round = 0; round < 200; ++round) {
    const uint64_t key = rng.UniformU64(32);
    if (rng.Bernoulli(0.2)) {
      ASSERT_TRUE(primary->Delete(key).ok());
      model.erase(key);
    } else {
      model[key] = Blob(key + static_cast<uint64_t>(round) * 1000, 96);
      ASSERT_TRUE(primary->Put(key, model[key]).ok());
    }
    if (round % 7 == 0) {
      ASSERT_TRUE(replica->Refresh().ok());
      ExpectReplicaMatches(replica.get(), model, "round " +
                                                     std::to_string(round));
    }
  }
  // A primary restart (new incarnation) voids the incremental state; the
  // tail must rebuild cleanly, not resume against a recovered file.
  primary.reset();
  primary = MustOpenPrimary(PrimaryOptions(1 << 11));
  model[999] = Blob(999);
  ASSERT_TRUE(primary->Put(999, model[999]).ok());
  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatches(replica.get(), model, "after primary restart");
}

}  // namespace
}  // namespace ldphh
