// Tests for src/store/replica_store: a read-only follower tailing a live
// CheckpointStore directory — snapshot equality with the primary, tail lag
// semantics, pinned snapshots surviving compaction, the sealed-segment
// cache, background polling, and a concurrent primary/replica hammer (the
// TSan target for the replica read path).

#include "src/store/replica_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/common/random.h"
#include "src/common/serde.h"
#include "src/store/checkpoint_store.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

class ReplicaStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/ldphh_replica_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
           std::to_string(::getpid());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Small segments so a handful of Puts crosses rolls and MANIFEST
  // installs; no background compaction — tests drive it explicitly.
  CheckpointStoreOptions PrimaryOptions(size_t segment_max_bytes = 256) {
    CheckpointStoreOptions o;
    o.segment_max_bytes = segment_max_bytes;
    o.background_compaction = false;
    o.sync_mode = SyncMode::kNone;  // Process-level tests; speed over fsync.
    return o;
  }

  std::unique_ptr<CheckpointStore> MustOpenPrimary(
      const CheckpointStoreOptions& o) {
    auto store_or = CheckpointStore::Open(dir_, o);
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    return std::move(store_or).value();
  }

  std::unique_ptr<ReplicaStore> MustOpenReplica(
      ReplicaStoreOptions o = ReplicaStoreOptions()) {
    auto replica_or = ReplicaStore::Open(dir_, o);
    EXPECT_TRUE(replica_or.ok()) << replica_or.status().ToString();
    return std::move(replica_or).value();
  }

  std::string dir_;
};

std::string Blob(uint64_t key, size_t size = 48) {
  std::string b = "blob-" + std::to_string(key) + "-";
  while (b.size() < size) b.push_back(static_cast<char>('a' + key % 26));
  return b;
}

void ExpectReplicaMatches(ReplicaStore* replica,
                          const std::map<uint64_t, std::string>& model,
                          const std::string& context) {
  std::vector<uint64_t> want_keys;
  for (const auto& [key, blob] : model) want_keys.push_back(key);
  EXPECT_EQ(replica->Keys(), want_keys) << context;
  for (const auto& [key, blob] : model) {
    std::string got;
    ASSERT_TRUE(replica->Get(key, &got).ok()) << context << " key " << key;
    EXPECT_EQ(got, blob) << context << " key " << key;
    EXPECT_TRUE(replica->Contains(key)) << context << " key " << key;
  }
}

// A v1 MANIFEST (written before the incarnation id existed) must still
// decode — incarnation reads as 0, "unknown" — so stores from the previous
// release stay openable.
TEST(StoreFormatTest, ReadsVersion1ManifestWithoutIncarnation) {
  FaultInjectingFileSystem ffs;
  std::string payload;
  PutU16(&payload, 1);   // version 1: no incarnation field
  PutU64(&payload, 7);   // sequence
  PutU64(&payload, 4);   // next_segment
  PutU64(&payload, 3);   // active_segment
  PutU32(&payload, 2);   // live count
  PutU64(&payload, 2);
  PutU64(&payload, 3);
  const std::string path = "/faultfs/v1/MANIFEST";
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, &ffs, SyncMode::kNone).ok());
  ASSERT_TRUE(writer.Append(kStoreManifestRecord, payload).ok());
  ASSERT_TRUE(writer.Close().ok());

  StoreManifest manifest;
  ASSERT_TRUE(ReadStoreManifest(&ffs, path, &manifest).ok());
  EXPECT_EQ(manifest.sequence, 7u);
  EXPECT_EQ(manifest.incarnation, 0u);
  EXPECT_EQ(manifest.next_segment, 4u);
  EXPECT_EQ(manifest.active_segment, 3u);
  EXPECT_EQ(manifest.live, (std::set<uint64_t>{2, 3}));

  // A replica refuses to tail a v1 primary: without the incarnation id it
  // cannot detect a rolled-back-and-reissued generation. (A v1 store
  // upgrades by opening it once with the current binary — recovery always
  // installs a fresh v2 MANIFEST.)
  ReplicaStoreOptions ro;
  ro.file_system = &ffs;
  auto replica_or = ReplicaStore::Open("/faultfs/v1", ro);
  ASSERT_FALSE(replica_or.ok());
  EXPECT_EQ(replica_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaStoreTest, OpenWithoutManifestFails) {
  fs::create_directories(dir_);
  auto replica_or = ReplicaStore::Open(dir_, ReplicaStoreOptions());
  ASSERT_FALSE(replica_or.ok());
  EXPECT_EQ(replica_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaStoreTest, TailsPutsDeletesAndOverwrites) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  std::map<uint64_t, std::string> model;
  auto replica = MustOpenReplica();
  ExpectReplicaMatches(replica.get(), model, "empty store");

  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    model[k] = Blob(k);
  }
  for (uint64_t k = 0; k < 30; k += 3) {
    ASSERT_TRUE(primary->Put(k, Blob(k + 100)).ok());
    model[k] = Blob(k + 100);
  }
  ASSERT_TRUE(primary->Delete(7).ok());
  ASSERT_TRUE(primary->Delete(28).ok());
  model.erase(7);
  model.erase(28);

  auto advanced_or = replica->Refresh();
  ASSERT_TRUE(advanced_or.ok()) << advanced_or.status().ToString();
  EXPECT_TRUE(advanced_or.value());
  ExpectReplicaMatches(replica.get(), model, "after tail");
  EXPECT_EQ(replica->manifest_sequence(),
            primary->Stats().manifest_sequence);

  // Nothing new: the poll is a no-op and says so.
  auto idle_or = replica->Refresh();
  ASSERT_TRUE(idle_or.ok());
  EXPECT_FALSE(idle_or.value());
}

TEST_F(ReplicaStoreTest, SnapshotIsStaleUntilRefresh) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  ASSERT_TRUE(primary->Put(1, "one").ok());
  auto replica = MustOpenReplica();
  std::string got;
  ASSERT_TRUE(replica->Get(1, &got).ok());

  ASSERT_TRUE(primary->Put(2, "two").ok());
  // The snapshot is immutable: key 2 is invisible until the next poll.
  EXPECT_FALSE(replica->Contains(2));
  ASSERT_TRUE(replica->Refresh().ok());
  EXPECT_TRUE(replica->Contains(2));
}

TEST_F(ReplicaStoreTest, PinnedSnapshotServesAcrossCompactionAndPrune) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  std::map<uint64_t, std::string> old_model;
  for (uint64_t k = 0; k < 24; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    old_model[k] = Blob(k);
  }
  auto replica = MustOpenReplica();
  ExpectReplicaMatches(replica.get(), old_model, "before compaction");

  // The primary compacts (deleting the segment files the snapshot was
  // parsed from), prunes old keys, and keeps writing.
  std::map<uint64_t, std::string> new_model = old_model;
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(primary->Delete(k).ok());
    new_model.erase(k);
  }
  ASSERT_TRUE(primary->Compact().ok());
  ASSERT_TRUE(primary->Put(100, "fresh").ok());
  new_model[100] = "fresh";

  // The un-refreshed snapshot still serves the old state whole — parsed
  // segment data is pinned, files on disk be damned.
  ExpectReplicaMatches(replica.get(), old_model, "pinned old snapshot");

  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatches(replica.get(), new_model, "after refresh");
}

TEST_F(ReplicaStoreTest, PinnedViewIsImmuneToConcurrentRefresh) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
  }
  auto replica = MustOpenReplica();
  const ReplicaStore::PinnedView pinned = replica->Pin();

  // The primary prunes and the replica's *current* snapshot follows...
  for (uint64_t k = 0; k < 5; ++k) ASSERT_TRUE(primary->Delete(k).ok());
  ASSERT_TRUE(primary->Compact().ok());
  ASSERT_TRUE(replica->Refresh().ok());
  EXPECT_FALSE(replica->Contains(2));

  // ...while the pinned view keeps answering from its point in time — a
  // multi-key read (e.g. a windowed query) can never tear mid-way.
  for (uint64_t k = 0; k < 10; ++k) {
    std::string got;
    ASSERT_TRUE(pinned.Get(k, &got).ok()) << "key " << k;
    EXPECT_EQ(got, Blob(k)) << "key " << k;
  }
  EXPECT_LT(pinned.manifest_sequence(), replica->manifest_sequence());
}

TEST_F(ReplicaStoreTest, SealedSegmentCacheServesSteadyStateRefreshes) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  auto replica = MustOpenReplica();
  // Cross several segment rolls, refreshing after each batch: the sealed
  // segments parsed by earlier refreshes must come from cache, not disk.
  for (uint64_t batch = 0; batch < 6; ++batch) {
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(primary->Put(batch * 10 + k, Blob(k)).ok());
    }
    ASSERT_TRUE(replica->Refresh().ok());
  }
  const ReplicaStoreStats stats = replica->Stats();
  EXPECT_GT(stats.segment_cache_hits, 0u);
  EXPECT_GT(stats.snapshots_installed, 1u);
  // Steady state: each refresh replays at most the active segment plus the
  // segments sealed since the last poll — far fewer than live * refreshes.
  EXPECT_LT(stats.segments_replayed,
            primary->Stats().live_segments * stats.snapshots_installed);
}

TEST_F(ReplicaStoreTest, TailsAcrossPrimaryRestartAndRecovery) {
  std::map<uint64_t, std::string> model;
  {
    auto primary = MustOpenPrimary(PrimaryOptions());
    for (uint64_t k = 0; k < 20; ++k) {
      ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
      model[k] = Blob(k);
    }
  }
  auto replica = MustOpenReplica();
  ExpectReplicaMatches(replica.get(), model, "primary closed");

  // The primary restarts (recovery sweeps, seals, rolls) and writes more;
  // the replica follows through the recovery-installed MANIFESTs.
  auto primary = MustOpenPrimary(PrimaryOptions());
  ASSERT_TRUE(primary->Put(50, "post-restart").ok());
  model[50] = "post-restart";
  ASSERT_TRUE(replica->Refresh().ok());
  ExpectReplicaMatches(replica.get(), model, "after primary restart");
}

TEST_F(ReplicaStoreTest, WorksOnFaultInjectingFileSystem) {
  FaultInjectingFileSystem ffs;
  CheckpointStoreOptions po;
  po.segment_max_bytes = 256;
  po.background_compaction = false;
  po.file_system = &ffs;
  const std::string dir = "/faultfs/replica_basic";
  auto primary_or = CheckpointStore::Open(dir, po);
  ASSERT_TRUE(primary_or.ok());
  auto primary = std::move(primary_or).value();
  std::map<uint64_t, std::string> model;
  for (uint64_t k = 0; k < 15; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    model[k] = Blob(k);
  }
  ReplicaStoreOptions ro;
  ro.file_system = &ffs;
  auto replica_or = ReplicaStore::Open(dir, ro);
  ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
  ExpectReplicaMatches(replica_or.value().get(), model, "fault fs");
}

TEST_F(ReplicaStoreTest, BackgroundTailerCatchesUpWithoutManualPolls) {
  auto primary = MustOpenPrimary(PrimaryOptions());
  ASSERT_TRUE(primary->Put(1, "one").ok());
  ReplicaStoreOptions ro;
  ro.poll_interval = std::chrono::milliseconds(1);
  auto replica = MustOpenReplica(ro);

  std::map<uint64_t, std::string> model{{1, "one"}};
  for (uint64_t k = 2; k < 40; ++k) {
    ASSERT_TRUE(primary->Put(k, Blob(k)).ok());
    model[k] = Blob(k);
  }
  // No manual Refresh: the tailer must converge on its own.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replica->Keys().size() != model.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ExpectReplicaMatches(replica.get(), model, "background tail");
  EXPECT_GT(replica->Stats().refreshes, 1u);
}

// The TSan target: a primary mutating (puts, deletes, compactions, segment
// rolls) at full speed while a replica refreshes and reads concurrently.
// Every mid-flight read must be well-formed (a Get either misses or
// returns a value the primary wrote for that key); at the end the tail
// must converge to exact equality.
TEST_F(ReplicaStoreTest, ConcurrentTailHammer) {
  auto primary = MustOpenPrimary(PrimaryOptions(512));
  ASSERT_TRUE(primary->Put(0, Blob(0)).ok());
  auto replica = MustOpenReplica();

  constexpr uint64_t kKeys = 16;
  constexpr int kOps = 1500;
  std::atomic<bool> done{false};
  std::atomic<int> refreshes{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto advanced_or = replica->Refresh();
      ASSERT_TRUE(advanced_or.ok()) << advanced_or.status().ToString();
      refreshes.fetch_add(1, std::memory_order_relaxed);
      for (uint64_t k = 0; k < kKeys; ++k) {
        std::string got;
        const Status st = replica->Get(k, &got);
        if (st.ok()) {
          // Any served value must be one the primary wrote for this key.
          EXPECT_EQ(got.compare(0, 5, "blob-"), 0) << "key " << k;
        } else {
          EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
        }
      }
      (void)replica->Keys();
    }
  });

  Rng rng(2024);
  std::map<uint64_t, std::string> model;
  model[0] = Blob(0);
  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = rng.UniformU64(kKeys);
    if (rng.Bernoulli(0.15)) {
      ASSERT_TRUE(primary->Delete(key).ok());
      model.erase(key);
    } else if (rng.Bernoulli(0.05)) {
      ASSERT_TRUE(primary->Compact().ok());
    } else {
      const std::string blob = Blob(key, 32 + rng.UniformU64(64));
      ASSERT_TRUE(primary->Put(key, blob).ok());
      model[key] = blob;
    }
  }
  done.store(true);
  reader.join();
  EXPECT_GT(refreshes.load(), 0);

  auto final_or = replica->Refresh();
  ASSERT_TRUE(final_or.ok()) << final_or.status().ToString();
  ExpectReplicaMatches(replica.get(), model, "after hammer");
  // Compaction may have raced refreshes; the retry path resolving on the
  // next generation is expected, failure is not.
  EXPECT_EQ(replica->Stats().failed_refreshes, 0u);
}

}  // namespace
}  // namespace ldphh
