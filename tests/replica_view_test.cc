// Tests for src/server/replica_view: epoch-level WindowedQuery served from
// a read-only replica. The acceptance criterion is byte-identity — after
// every primary CloseEpoch, once the tail catches up, the replica's answer
// over ANY persisted window is bit-for-bit the primary's (serialized
// aggregator state compared as raw bytes, estimates compared exactly). The
// replica is built WITHOUT any protocol configuration: the persisted epoch
// records are self-describing.

#include "src/server/replica_view.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/server/epoch_manager.h"
#include "src/store/checkpoint_store.h"
#include "src/store/replica_store.h"
#include "tests/serving_test_util.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

using testutil::AllEstimates;
using testutil::MustCreate;
using testutil::OracleConfig;

constexpr uint64_t kDomain = 64;
constexpr uint64_t kEpochSize = 400;
constexpr uint64_t kEpochs = 5;

class ReplicaViewTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/ldphh_replica_view_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    fs::remove_all(dir_);
    config_ = OracleConfig("hadamard_response", kDomain, 1.0);
    Rng rng(99);
    auto client = MustCreate(config_);
    reports_.resize(kEpochs * kEpochSize);
    for (size_t i = 0; i < reports_.size(); ++i) {
      reports_[i] =
          client->Encode(i, DomainItem(rng.UniformU64(kDomain)), rng).value();
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointStoreOptions StoreOptions() {
    CheckpointStoreOptions o;
    o.segment_max_bytes = 1 << 10;  // Epoch blobs cross segment rolls.
    o.background_compaction = false;
    o.sync_mode = SyncMode::kNone;
    return o;
  }

  EpochManagerOptions EpochOptions() {
    EpochManagerOptions o;
    o.reports_per_epoch = kEpochSize;
    o.aggregator.num_shards = 2;
    return o;
  }

  std::unique_ptr<EpochManager> OpenPrimary(CheckpointStore* store) {
    auto mgr_or = EpochManager::Create(config_, store, EpochOptions());
    EXPECT_TRUE(mgr_or.ok()) << mgr_or.status().ToString();
    LDPHH_CHECK(mgr_or.ok(), "test: EpochManager::Create failed");
    return std::move(mgr_or).value();
  }

  // Serialized aggregation state — the byte-identity probe.
  static std::string StateBytes(const Aggregator& agg) {
    std::string bytes;
    EXPECT_TRUE(agg.SerializeState(&bytes).ok());
    return bytes;
  }

  std::string dir_;
  ProtocolConfig config_;
  std::vector<WireReport> reports_;
};

TEST_F(ReplicaViewTest, EveryWindowByteIdenticalAfterEveryCloseEpoch) {
  auto store = std::move(CheckpointStore::Open(dir_, StoreOptions())).value();
  auto primary = OpenPrimary(store.get());
  ASSERT_TRUE(primary->Start().ok());

  std::unique_ptr<ReplicaStore> replica;
  std::unique_ptr<ReplicaView> view;

  for (uint64_t e = 0; e < kEpochs; ++e) {
    for (uint64_t i = e * kEpochSize; i < (e + 1) * kEpochSize; ++i) {
      ASSERT_TRUE(primary->Submit(reports_[i]).ok());
    }
    // Submit auto-closed epoch e. First pass: bring the replica up now
    // that the store exists and has content. No config handed over — the
    // epoch blobs describe themselves.
    if (view == nullptr) {
      ReplicaStoreOptions ro;
      replica = std::move(ReplicaStore::Open(dir_, ro)).value();
      view = std::make_unique<ReplicaView>(replica.get());
    }
    auto caught_up_or = view->Refresh();
    ASSERT_TRUE(caught_up_or.ok()) << caught_up_or.status().ToString();

    // The tail has caught the CloseEpoch: same persisted set, same clock.
    EXPECT_EQ(view->PersistedEpochs(), primary->PersistedEpochs())
        << "epoch " << e;
    EXPECT_EQ(view->next_epoch(), primary->current_epoch()) << "epoch " << e;

    // Every window over the persisted epochs, byte for byte.
    for (uint64_t first = 0; first <= e; ++first) {
      for (uint64_t last = first; last <= e; ++last) {
        auto want_or = primary->WindowedQuery(first, last);
        auto got_or = view->WindowedQuery(first, last);
        ASSERT_TRUE(want_or.ok()) << want_or.status().ToString();
        ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
        auto want = std::move(want_or).value();
        auto got = std::move(got_or).value();
        EXPECT_EQ(got->config(), want->config());
        EXPECT_EQ(StateBytes(*got), StateBytes(*want))
            << "window [" << first << ", " << last << "] after epoch " << e;
        const auto want_entries = AllEstimates(*want);
        const auto got_entries = AllEstimates(*got);
        ASSERT_EQ(got_entries.size(), want_entries.size());
        for (size_t v = 0; v < want_entries.size(); ++v) {
          ASSERT_EQ(got_entries[v].item, want_entries[v].item);
          ASSERT_EQ(got_entries[v].estimate, want_entries[v].estimate)
              << "window [" << first << ", " << last << "] entry " << v;
        }
      }
    }
  }
  ASSERT_TRUE(primary->Close().ok());
}

TEST_F(ReplicaViewTest, UnTailedEpochIsOutOfRangeUntilRefresh) {
  auto store = std::move(CheckpointStore::Open(dir_, StoreOptions())).value();
  auto primary = OpenPrimary(store.get());
  ASSERT_TRUE(primary->Start().ok());
  for (uint64_t i = 0; i < kEpochSize; ++i) {
    ASSERT_TRUE(primary->Submit(reports_[i]).ok());
  }
  auto replica =
      std::move(ReplicaStore::Open(dir_, ReplicaStoreOptions())).value();
  ReplicaView view(replica.get());
  ASSERT_TRUE(view.WindowedQuery(0, 0).ok());

  // Epoch 1 closes on the primary; the replica's snapshot predates it.
  for (uint64_t i = kEpochSize; i < 2 * kEpochSize; ++i) {
    ASSERT_TRUE(primary->Submit(reports_[i]).ok());
  }
  ASSERT_TRUE(primary->WindowedQuery(1, 1).ok());
  auto stale = view.WindowedQuery(1, 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kOutOfRange);

  ASSERT_TRUE(view.Refresh().ok());
  ASSERT_TRUE(view.WindowedQuery(1, 1).ok());
  ASSERT_TRUE(primary->Close().ok());
}

TEST_F(ReplicaViewTest, PruneReachesReplicaOnRefresh) {
  auto store = std::move(CheckpointStore::Open(dir_, StoreOptions())).value();
  auto primary = OpenPrimary(store.get());
  ASSERT_TRUE(primary->Start().ok());
  for (uint64_t i = 0; i < 3 * kEpochSize; ++i) {
    ASSERT_TRUE(primary->Submit(reports_[i]).ok());
  }
  auto replica =
      std::move(ReplicaStore::Open(dir_, ReplicaStoreOptions())).value();
  ReplicaView view(replica.get());
  EXPECT_EQ(view.PersistedEpochs(), (std::vector<uint64_t>{0, 1, 2}));

  ASSERT_TRUE(primary->PruneEpochsBefore(2).ok());
  ASSERT_TRUE(store->Compact().ok());
  // Stale snapshot still serves the pruned epochs (documented staleness)...
  ASSERT_TRUE(view.WindowedQuery(0, 2).ok());
  // ...until the tail catches the tombstones, after which replica and
  // primary agree the window is gone.
  ASSERT_TRUE(view.Refresh().ok());
  EXPECT_EQ(view.PersistedEpochs(), primary->PersistedEpochs());
  auto gone = view.WindowedQuery(0, 2);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(primary->WindowedQuery(0, 2).ok());
  ASSERT_TRUE(view.WindowedQuery(2, 2).ok());
  ASSERT_TRUE(primary->Close().ok());
}

}  // namespace
}  // namespace ldphh
