// Tests for src/workload: generators used by benches and examples.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "src/workload/workload.h"

namespace ldphh {
namespace {

uint64_t CountOf(const Workload& w, const DomainItem& x) {
  uint64_t c = 0;
  for (const auto& item : w.database) c += (item == x);
  return c;
}

TEST(Planted, SizesAndCounts) {
  const Workload w = MakePlantedWorkload(10000, 64, {0.2, 0.1}, 1);
  EXPECT_EQ(w.database.size(), 10000u);
  ASSERT_EQ(w.heavy.size(), 2u);
  EXPECT_EQ(w.heavy[0].second, 2000u);
  EXPECT_EQ(w.heavy[1].second, 1000u);
  EXPECT_EQ(CountOf(w, w.heavy[0].first), 2000u);
  EXPECT_EQ(CountOf(w, w.heavy[1].first), 1000u);
}

TEST(Planted, HeavySortedDescending) {
  const Workload w = MakePlantedWorkload(10000, 64, {0.05, 0.3, 0.1}, 2);
  for (size_t i = 1; i < w.heavy.size(); ++i) {
    EXPECT_GE(w.heavy[i - 1].second, w.heavy[i].second);
  }
}

TEST(Planted, BackgroundIsMostlyUnique) {
  const Workload w = MakePlantedWorkload(5000, 64, {}, 3);
  std::set<DomainItem> uniq(w.database.begin(), w.database.end());
  EXPECT_GT(uniq.size(), 4990u);  // 64-bit randoms essentially never collide.
}

TEST(Planted, RespectsDomainWidth) {
  const Workload w = MakePlantedWorkload(1000, 16, {0.1}, 4);
  for (const auto& x : w.database) {
    EXPECT_EQ(x.limbs[0] >> 16, 0u);
    EXPECT_EQ(x.limbs[1], 0u);
  }
}

TEST(Planted, DeterministicBySeed) {
  const Workload a = MakePlantedWorkload(1000, 64, {0.2}, 5);
  const Workload b = MakePlantedWorkload(1000, 64, {0.2}, 5);
  EXPECT_TRUE(a.database == b.database);
}

TEST(Planted, ShuffledNotBlocked) {
  // Heavy copies must not sit contiguously.
  const Workload w = MakePlantedWorkload(10000, 64, {0.5}, 6);
  const DomainItem h = w.heavy[0].first;
  int runs = 0;
  for (size_t i = 1; i < w.database.size(); ++i) {
    runs += (w.database[i] == h) != (w.database[i - 1] == h);
  }
  EXPECT_GT(runs, 100);
}

TEST(Zipf, CountsFollowPowerLaw) {
  const Workload w = MakeZipfWorkload(100000, 64, 100, 1.0, 7);
  EXPECT_EQ(w.database.size(), 100000u);
  // Rank 1 over rank 10 should be ~10x under s=1 (loose factor-2 check).
  ASSERT_GE(w.heavy.size(), 10u);
  const double ratio = static_cast<double>(w.heavy[0].second) /
                       static_cast<double>(w.heavy[9].second);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(Zipf, HeavyCountsSumToN) {
  const Workload w = MakeZipfWorkload(20000, 64, 50, 1.2, 8);
  uint64_t total = 0;
  for (const auto& [item, count] : w.heavy) total += count;
  EXPECT_EQ(total, 20000u);
}

TEST(Zipf, SkewParameterSharpensHead) {
  const Workload flat = MakeZipfWorkload(50000, 64, 100, 0.5, 9);
  const Workload sharp = MakeZipfWorkload(50000, 64, 100, 2.0, 9);
  EXPECT_GT(sharp.heavy[0].second, flat.heavy[0].second);
}

TEST(Strings, RoundTripThroughWorkload) {
  const std::vector<std::pair<std::string, uint64_t>> rows = {
      {"www.google.com", 500}, {"www.wikipedia.org", 300}, {"rare.site", 7}};
  const Workload w = MakeStringWorkload(rows, 160, 10);
  EXPECT_EQ(w.database.size(), 807u);
  ASSERT_EQ(w.heavy.size(), 3u);
  EXPECT_EQ(w.heavy[0].first.ToString(160), "www.google.com");
  EXPECT_EQ(w.heavy[0].second, 500u);
  EXPECT_EQ(CountOf(w, DomainItem::FromString("rare.site", 160)), 7u);
}

TEST(Strings, EmptyRowsGiveEmptyWorkload) {
  const Workload w = MakeStringWorkload({}, 64, 11);
  EXPECT_TRUE(w.database.empty());
  EXPECT_TRUE(w.heavy.empty());
}

}  // namespace
}  // namespace ldphh
