// Tests for src/protocols/treehist: the [3] prefix-tree baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/protocols/treehist.h"
#include "src/workload/workload.h"

namespace ldphh {
namespace {

bool ResultContains(const HeavyHitterResult& r, const DomainItem& x) {
  return std::any_of(r.entries.begin(), r.entries.end(),
                     [&](const HeavyHitterEntry& e) { return e.item == x; });
}

TreeHistParams FastConfig() {
  TreeHistParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-2;
  return p;
}

TEST(TreeHist, CreateValidates) {
  TreeHistParams p = FastConfig();
  p.domain_bits = 4;
  EXPECT_FALSE(TreeHist::Create(p).ok());
  p = FastConfig();
  p.epsilon = 0;
  EXPECT_FALSE(TreeHist::Create(p).ok());
  p = FastConfig();
  p.beta = 2;
  EXPECT_FALSE(TreeHist::Create(p).ok());
  p = FastConfig();
  p.frontier_cap = 1;
  EXPECT_FALSE(TreeHist::Create(p).ok());
}

TEST(TreeHist, RejectsTinyDatabase) {
  auto th = std::move(TreeHist::Create(FastConfig())).value();
  std::vector<DomainItem> db(10, DomainItem(1));
  EXPECT_FALSE(th.Run(db, 1).ok());
}

TEST(TreeHist, RecoversPlantedHitters) {
  auto th = std::move(TreeHist::Create(FastConfig())).value();
  const uint64_t n = 1 << 18;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 91);
  const auto res = std::move(th.Run(w.database, 7)).value();
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
  EXPECT_TRUE(ResultContains(res, w.heavy[1].first));
}

TEST(TreeHist, EstimatesWithinEnvelope) {
  auto th = std::move(TreeHist::Create(FastConfig())).value();
  const uint64_t n = 1 << 18;
  const Workload w = MakePlantedWorkload(n, 16, {0.35}, 93);
  const auto res = std::move(th.Run(w.database, 11)).value();
  for (const auto& e : res.entries) {
    if (e.item == w.heavy[0].first) {
      EXPECT_NEAR(e.estimate, static_cast<double>(w.heavy[0].second),
                  25.0 * std::sqrt(static_cast<double>(n)));
    }
  }
}

TEST(TreeHist, FrontierCapBoundsOutput) {
  TreeHistParams p = FastConfig();
  p.frontier_cap = 4;
  auto th = std::move(TreeHist::Create(p)).value();
  const Workload w = MakePlantedWorkload(1 << 17, 16, {0.3, 0.25, 0.2}, 95);
  const auto res = std::move(th.Run(w.database, 13)).value();
  EXPECT_LE(res.entries.size(), 4u);
}

TEST(TreeHist, CommunicationIsConstantBits) {
  auto th = std::move(TreeHist::Create(FastConfig())).value();
  const Workload w = MakePlantedWorkload(1 << 17, 16, {0.3}, 97);
  const auto res = std::move(th.Run(w.database, 17)).value();
  EXPECT_LE(res.metrics.comm_bits_max_user, 64u);
  EXPECT_GT(res.metrics.server_memory_bytes, 0u);
}

TEST(TreeHist, DetectionThresholdScalesWithDomainAndN) {
  auto th16 = std::move(TreeHist::Create(FastConfig())).value();
  TreeHistParams p64 = FastConfig();
  p64.domain_bits = 64;
  auto th64 = std::move(TreeHist::Create(p64)).value();
  EXPECT_GT(th64.DetectionThreshold(1 << 18), th16.DetectionThreshold(1 << 18));
  EXPECT_NEAR(th16.DetectionThreshold(1 << 20) / th16.DetectionThreshold(1 << 18),
              2.0, 0.2);
}

TEST(TreeHist, DeterministicGivenSeed) {
  auto th = std::move(TreeHist::Create(FastConfig())).value();
  const Workload w = MakePlantedWorkload(1 << 17, 16, {0.3}, 99);
  const auto a = std::move(th.Run(w.database, 23)).value();
  const auto b = std::move(th.Run(w.database, 23)).value();
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].item, b.entries[i].item);
  }
}

TEST(TreeHist, NoSpuriousDeepItems) {
  // Pure background: the frontier should die out (or contain only items
  // the verification threshold admits — with 3-sigma per level, spurious
  // survivals through all 16 levels are essentially impossible).
  auto th = std::move(TreeHist::Create(FastConfig())).value();
  const Workload w = MakePlantedWorkload(1 << 16, 16, {}, 101);
  const auto res = std::move(th.Run(w.database, 29)).value();
  EXPECT_LE(res.entries.size(), 2u);
}

TEST(TreeHist, WorksOn64BitDomain) {
  TreeHistParams p = FastConfig();
  p.domain_bits = 64;
  auto th = std::move(TreeHist::Create(p)).value();
  const uint64_t n = 1 << 19;
  const Workload w = MakePlantedWorkload(n, 64, {0.4}, 103);
  const auto res = std::move(th.Run(w.database, 31)).value();
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
}

}  // namespace
}  // namespace ldphh
