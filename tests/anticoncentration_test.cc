// Tests for src/ldp/anticoncentration: the Section 7 / Appendix A toolkit.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/math_util.h"
#include "src/ldp/anticoncentration.h"

namespace ldphh {
namespace {

TEST(BinomialMinExit, WholeSupportIntervalHasZeroExit) {
  EXPECT_EQ(BinomialMinExitProbability(100, 0.5, 100), 0.0);
}

TEST(BinomialMinExit, PointIntervalExitsAlmostSurely) {
  const double exit = BinomialMinExitProbability(1000, 0.5, 0);
  EXPECT_GT(exit, 0.95);  // Best single point carries only ~1/sqrt(n) mass.
}

TEST(BinomialMinExit, MonotoneDecreasingInLength) {
  double prev = 1.0;
  for (uint64_t len : {0ull, 10ull, 30ull, 60ull, 120ull}) {
    const double e = BinomialMinExitProbability(1000, 0.5, len);
    EXPECT_LE(e, prev + 1e-12);
    prev = e;
  }
}

TEST(BinomialMinExit, TheoremA5ShapeHolds) {
  // Theorem A.5: for |I| <= c sqrt(n log(1/beta)), Pr[X outside I] >= beta.
  // Empirically locate a safe c for Bin(n, 1/2) and check it is Theta(1)
  // and stable across n — the structural claim the lower bound needs.
  for (uint64_t n : {400ull, 1600ull, 6400ull}) {
    for (double beta : {0.2, 0.05, 0.01}) {
      const double len = 0.5 * std::sqrt(n * std::log(1.0 / beta));
      const double exit =
          BinomialMinExitProbability(n, 0.5, static_cast<uint64_t>(len));
      EXPECT_GE(exit, beta) << "n=" << n << " beta=" << beta;
    }
  }
}

TEST(BinomialMinExit, BiasedCoinAlsoAntiConcentrates) {
  // The Appendix A reduction handles p in [1/10, 9/10].
  for (double p : {0.1, 0.3, 0.9}) {
    const uint64_t n = 2000;
    const double beta = 0.05;
    const double len = 0.4 * std::sqrt(n * p * (1 - p) * std::log(1.0 / beta) * 4);
    const double exit =
        BinomialMinExitProbability(n, p, static_cast<uint64_t>(len));
    EXPECT_GE(exit, beta) << p;
  }
}

TEST(LowerBoundExperiment, BlocksAndErrorsPopulated) {
  const auto exp = RunLowerBoundExperiment(1 << 12, 0.5, 1.0, 50, 7);
  EXPECT_EQ(exp.n, 1u << 12);
  EXPECT_EQ(exp.m, static_cast<uint64_t>(1.0 * 0.25 * (1 << 12)));
  EXPECT_EQ(exp.abs_errors.size(), 50u);
  for (double e : exp.abs_errors) EXPECT_GE(e, 0.0);
}

TEST(LowerBoundExperiment, ErrorsScaleWithSqrtN) {
  // Median counting error of the RR protocol ~ sqrt(n)/eps.
  const auto small = RunLowerBoundExperiment(1 << 10, 1.0, 1.0, 60, 11);
  const auto large = RunLowerBoundExperiment(1 << 14, 1.0, 1.0, 60, 13);
  const double ratio = ErrorQuantile(large, 0.5) / ErrorQuantile(small, 0.5);
  EXPECT_GT(ratio, 2.0);  // sqrt(16) = 4 expected.
  EXPECT_LT(ratio, 8.0);
}

TEST(LowerBoundExperiment, ErrorsScaleInverselyWithEps) {
  const auto tight = RunLowerBoundExperiment(1 << 12, 0.25, 1.0, 60, 17);
  const auto loose = RunLowerBoundExperiment(1 << 12, 2.0, 1.0, 60, 19);
  EXPECT_GT(ErrorQuantile(tight, 0.5), 2.0 * ErrorQuantile(loose, 0.5));
}

TEST(LowerBoundExperiment, QuantilesMonotoneInBeta) {
  const auto exp = RunLowerBoundExperiment(1 << 12, 1.0, 1.0, 200, 23);
  EXPECT_LE(ErrorQuantile(exp, 0.5), ErrorQuantile(exp, 0.1));
  EXPECT_LE(ErrorQuantile(exp, 0.1), ErrorQuantile(exp, 0.01));
}

TEST(LowerBoundExperiment, TailErrorExceedsLowerBoundShape) {
  // The realized protocol (a legitimate eps-LDP counter) must exhibit the
  // error the lower bound forces: at failure prob beta, error >=
  // Omega((1/eps) sqrt(n log(1/beta))). Check with a small constant.
  const uint64_t n = 1 << 14;
  const double eps = 0.5;
  const auto exp = RunLowerBoundExperiment(n, eps, 1.0, 400, 29);
  for (double beta : {0.5, 0.1}) {
    const double measured = ErrorQuantile(exp, beta);
    const double shape = LowerBoundShape(exp.m, eps, beta) / eps;  // In m scale.
    // Errors are measured in D-scale (users); renormalizing to S-scale by
    // m/n as in the proof of Theorem 7.2: the measured D-error at quantile
    // beta should be at least a constant times sqrt(n log(1/beta))/eps.
    EXPECT_GE(measured, 0.1 * std::sqrt(n * std::log(1.0 / beta)) / eps)
        << beta << " shape=" << shape;
  }
}

TEST(LowerBoundShape, Formula) {
  EXPECT_NEAR(LowerBoundShape(10000, 0.5, 0.01),
              std::sqrt(10000 * std::log(100.0)) / 0.5, 1e-9);
}

TEST(LowerBoundExperiment, RejectsBadParameters) {
  EXPECT_DEATH(RunLowerBoundExperiment(4, 1.0, 1.0, 10, 1), "");
  EXPECT_DEATH(RunLowerBoundExperiment(100, 0.0, 1.0, 10, 1), "");
}

TEST(ErrorQuantile, EmptyExperimentDies) {
  LowerBoundExperiment exp;
  EXPECT_DEATH(ErrorQuantile(exp, 0.5), "");
}

}  // namespace
}  // namespace ldphh
