// Tests for src/ldp/privacy_loss: PLD construction, composition, and the
// hockey-stick divergence against closed forms.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/math_util.h"
#include "src/ldp/privacy_loss.h"
#include "src/ldp/randomizer.h"

namespace ldphh {
namespace {

TEST(Pld, IdentityHasZeroLossAndDelta) {
  const auto pld = PrivacyLossDistribution::Identity();
  EXPECT_NEAR(pld.ExpectedLoss(), 0.0, 1e-12);
  EXPECT_NEAR(pld.DeltaForEpsilon(0.0), 0.0, 1e-12);
  EXPECT_EQ(pld.infinity_mass(), 0.0);
}

TEST(Pld, SingleRRLossSupport) {
  // RR loss takes values +-eps: +eps w.p. p, -eps w.p. 1-p.
  BinaryRandomizedResponse rr(1.0);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  EXPECT_EQ(pld.SupportSize(), 2u);
  EXPECT_NEAR(pld.MaxLoss(), 1.0, 1e-9);
  const double p = std::exp(1.0) / (std::exp(1.0) + 1.0);
  // E[L] = p eps - (1-p) eps = (2p - 1) eps.
  EXPECT_NEAR(pld.ExpectedLoss(), (2 * p - 1) * 1.0, 1e-9);
}

TEST(Pld, ExpectedLossBoundedByEpsSquaredOverTwo) {
  // Proposition 3.3 of Bun-Steinke (used in the Theorem 4.2 proof):
  // E[L] <= eps^2 / 2 for an eps-DP randomizer. Check RR across eps.
  for (double eps : {0.1, 0.25, 0.5, 1.0}) {
    BinaryRandomizedResponse rr(eps);
    const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
    EXPECT_LE(pld.ExpectedLoss(), eps * eps / 2.0 + 1e-9) << eps;
  }
}

TEST(Pld, DeltaClosedFormForSingleRR) {
  // For RR at level eps, delta(eps') for eps' < eps is
  // p - e^{eps'} (1 - p) where only the +eps atom violates.
  const double eps = 1.0;
  BinaryRandomizedResponse rr(eps);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  const double p = std::exp(eps) / (std::exp(eps) + 1.0);
  for (double ep : {0.0, 0.3, 0.7}) {
    EXPECT_NEAR(pld.DeltaForEpsilon(ep), p - std::exp(ep) * (1 - p), 1e-9) << ep;
  }
  EXPECT_NEAR(pld.DeltaForEpsilon(eps), 0.0, 1e-12);
}

TEST(Pld, ComposeIsConvolution) {
  BinaryRandomizedResponse rr(0.8);
  const auto one = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  const auto two = one.Compose(one);
  // Support {+2eps, 0, -2eps}: 3 atoms (the two +-eps atoms merge at 0).
  EXPECT_EQ(two.SupportSize(), 3u);
  EXPECT_NEAR(two.MaxLoss(), 1.6, 1e-9);
  EXPECT_NEAR(two.ExpectedLoss(), 2.0 * one.ExpectedLoss(), 1e-9);
}

TEST(Pld, SelfComposeMatchesIteratedCompose) {
  BinaryRandomizedResponse rr(0.6);
  const auto one = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  auto iterated = PrivacyLossDistribution::Identity();
  for (int i = 0; i < 5; ++i) iterated = iterated.Compose(one);
  const auto fast = one.SelfCompose(5);
  EXPECT_EQ(fast.SupportSize(), iterated.SupportSize());
  for (double ep : {0.0, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(fast.DeltaForEpsilon(ep), iterated.DeltaForEpsilon(ep), 1e-9);
  }
}

TEST(Pld, KFoldRRDeltaMatchesBinomialClosedForm) {
  // k-fold RR, all coordinates flipped: loss = (2 J - k) eps with
  // J ~ Bin(k, p). delta(eps') = E[(1 - e^{eps' - L})^+].
  const double eps = 0.5;
  const int k = 12;
  BinaryRandomizedResponse rr(eps);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1).SelfCompose(k);
  const double p = std::exp(eps) / (std::exp(eps) + 1.0);
  for (double ep : {0.0, 1.0, 2.0, 4.0}) {
    double expect = 0.0;
    for (int j = 0; j <= k; ++j) {
      const double loss = (2.0 * j - k) * eps;
      if (loss > ep) {
        expect += std::exp(LogBinomialPmf(k, j, p)) * (1.0 - std::exp(ep - loss));
      }
    }
    EXPECT_NEAR(pld.DeltaForEpsilon(ep), expect, 1e-9) << ep;
  }
}

TEST(Pld, SupportStaysLinearUnderSelfCompose) {
  // Identical +-eps atoms must merge on the quantized grid: k-fold support
  // is k+1 atoms, not 2^k.
  BinaryRandomizedResponse rr(0.4);
  const auto pld =
      PrivacyLossDistribution::FromRandomizer(rr, 0, 1).SelfCompose(64);
  EXPECT_EQ(pld.SupportSize(), 65u);
}

TEST(Pld, EpsilonForDeltaInvertsDelta) {
  BinaryRandomizedResponse rr(0.7);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1).SelfCompose(10);
  for (double delta : {1e-2, 1e-4, 1e-6}) {
    const double ep = pld.EpsilonForDelta(delta);
    EXPECT_LE(pld.DeltaForEpsilon(ep), delta * (1 + 1e-6));
    // One grid step tighter must violate (unless ep == 0).
    if (ep > 1e-9) {
      EXPECT_GE(pld.DeltaForEpsilon(ep * 0.99), delta * (1 - 1e-6));
    }
  }
}

TEST(Pld, EpsilonForDeltaCappedByMaxLoss) {
  BinaryRandomizedResponse rr(1.0);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  // delta(eps) = 0 at eps = max loss; the inversion must return <= that.
  EXPECT_LE(pld.EpsilonForDelta(1e-12), 1.0 + 1e-6);
}

TEST(Pld, InfinityMassFromLeakyRandomizer) {
  LeakyRandomizedResponse rr(0.5, 0.02);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  EXPECT_NEAR(pld.infinity_mass(), 0.02, 1e-12);
  // Any finite eps keeps delta >= infinity mass.
  EXPECT_GE(pld.DeltaForEpsilon(100.0), 0.02 - 1e-12);
  EXPECT_EQ(pld.EpsilonForDelta(0.01), std::numeric_limits<double>::infinity());
}

TEST(Pld, InfinityMassComposes) {
  LeakyRandomizedResponse rr(0.5, 0.1);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1).SelfCompose(2);
  // 1 - (1 - 0.1)^2 = 0.19.
  EXPECT_NEAR(pld.infinity_mass(), 0.19, 1e-12);
}

TEST(Pld, AsymmetryOfDirections) {
  // PLD(x -> x') and PLD(x' -> x) are mirror images for RR; deltas match.
  BinaryRandomizedResponse rr(1.2);
  const auto fwd = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  const auto bwd = PrivacyLossDistribution::FromRandomizer(rr, 1, 0);
  for (double ep : {0.0, 0.5, 1.0}) {
    EXPECT_NEAR(fwd.DeltaForEpsilon(ep), bwd.DeltaForEpsilon(ep), 1e-12);
  }
}

TEST(Pld, SelfComposeZeroIsIdentity) {
  BinaryRandomizedResponse rr(1.0);
  const auto pld = PrivacyLossDistribution::FromRandomizer(rr, 0, 1).SelfCompose(0);
  EXPECT_NEAR(pld.DeltaForEpsilon(0.0), 0.0, 1e-12);
  EXPECT_EQ(pld.SupportSize(), 1u);
}

}  // namespace
}  // namespace ldphh
