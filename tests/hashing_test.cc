// Tests for src/hashing: Mersenne-61 field arithmetic and k-wise hashing.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/hashing/kwise_hash.h"
#include "src/hashing/mersenne61.h"

namespace ldphh {
namespace {

// ------------------------------------------------------------ mersenne61 --

TEST(Mersenne61, ReduceIdentityBelowP) {
  EXPECT_EQ(Mersenne61Reduce(0), 0u);
  EXPECT_EQ(Mersenne61Reduce(kMersenne61 - 1), kMersenne61 - 1);
  EXPECT_EQ(Mersenne61Reduce(kMersenne61), 0u);
  EXPECT_EQ(Mersenne61Reduce(kMersenne61 + 5), 5u);
}

TEST(Mersenne61, ReduceMatchesNaiveModOnRandom) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const __uint128_t x =
        (static_cast<__uint128_t>(rng() % (uint64_t{1} << 60)) << 61) | rng();
    EXPECT_EQ(Mersenne61Reduce(x), static_cast<uint64_t>(x % kMersenne61));
  }
}

TEST(Mersenne61, AddStaysInField) {
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.UniformU64(kMersenne61);
    const uint64_t b = rng.UniformU64(kMersenne61);
    const uint64_t s = Mersenne61Add(a, b);
    EXPECT_LT(s, kMersenne61);
    EXPECT_EQ(s, (a + b) % kMersenne61);
  }
}

TEST(Mersenne61, MulMatchesWideMod) {
  Rng rng(44);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.UniformU64(kMersenne61);
    const uint64_t b = rng.UniformU64(kMersenne61);
    const uint64_t m = Mersenne61Mul(a, b);
    EXPECT_EQ(m, static_cast<uint64_t>(
                     (static_cast<__uint128_t>(a) * b) % kMersenne61));
  }
}

TEST(Mersenne61, MulAssociativeAndDistributive) {
  Rng rng(45);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.UniformU64(kMersenne61);
    const uint64_t b = rng.UniformU64(kMersenne61);
    const uint64_t c = rng.UniformU64(kMersenne61);
    EXPECT_EQ(Mersenne61Mul(Mersenne61Mul(a, b), c),
              Mersenne61Mul(a, Mersenne61Mul(b, c)));
    EXPECT_EQ(Mersenne61Mul(a, Mersenne61Add(b, c)),
              Mersenne61Add(Mersenne61Mul(a, b), Mersenne61Mul(a, c)));
  }
}

TEST(Mersenne61, FromU64MapsIntoField) {
  EXPECT_LT(Mersenne61FromU64(~uint64_t{0}), kMersenne61);
  EXPECT_EQ(Mersenne61FromU64(5), 5u);
  EXPECT_EQ(Mersenne61FromU64(kMersenne61), 0u);
}

// -------------------------------------------------------------- KWiseHash --

TEST(KWiseHash, RangeRespected) {
  Rng rng(1);
  for (uint64_t range : {1ull, 2ull, 7ull, 256ull, 100000ull}) {
    KWiseHash h(4, range, rng);
    for (uint64_t x = 0; x < 500; ++x) EXPECT_LT(h(x), range);
  }
}

TEST(KWiseHash, DeterministicAcrossIdenticalConstruction) {
  Rng a(77), b(77);
  KWiseHash ha(3, 1000, a);
  KWiseHash hb(3, 1000, b);
  for (uint64_t x = 0; x < 200; ++x) EXPECT_EQ(ha(x), hb(x));
}

TEST(KWiseHash, DifferentSeedsGiveDifferentFunctions) {
  Rng a(1), b(2);
  KWiseHash ha(2, 1 << 20, a);
  KWiseHash hb(2, 1 << 20, b);
  int same = 0;
  for (uint64_t x = 0; x < 200; ++x) same += (ha(x) == hb(x));
  EXPECT_LT(same, 5);
}

TEST(KWiseHash, PairwiseCollisionRate) {
  // Empirical collision probability of a pairwise family ~ 1/range.
  Rng rng(5);
  const uint64_t range = 128;
  const int fns = 400;
  const int pairs = 32;
  int collisions = 0;
  int total = 0;
  for (int f = 0; f < fns; ++f) {
    KWiseHash h(2, range, rng);
    for (int p = 0; p < pairs; ++p) {
      ++total;
      collisions += (h(static_cast<uint64_t>(2 * p)) ==
                     h(static_cast<uint64_t>(2 * p + 1)));
    }
  }
  const double rate = static_cast<double>(collisions) / total;
  EXPECT_NEAR(rate, 1.0 / range, 3.0 * std::sqrt(1.0 / range / total));
}

TEST(KWiseHash, OutputRoughlyUniform) {
  Rng rng(6);
  KWiseHash h(2, 16, rng);
  int counts[16] = {0};
  const int draws = 32000;
  for (int x = 0; x < draws; ++x) ++counts[h(static_cast<uint64_t>(x))];
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(counts[b], draws / 16, 6 * std::sqrt(draws / 16.0));
  }
}

TEST(KWiseHash, SignBalanced) {
  Rng rng(7);
  KWiseHash h(4, 2, rng);
  int sum = 0;
  for (uint64_t x = 0; x < 20000; ++x) {
    DomainItem item(x);
    sum += h.Sign(item);
  }
  EXPECT_LT(std::abs(sum), 900);
}

TEST(KWiseHash, DomainItemWideInputsDistinguished) {
  // Items differing only in high limbs must hash differently (usually).
  Rng rng(8);
  KWiseHash h(2, uint64_t{1} << 40, rng);
  DomainItem a, b;
  a.limbs[3] = 123;
  b.limbs[3] = 124;
  EXPECT_NE(h(a), h(b));
}

TEST(KWiseHash, FullEvalConsistentWithRangeReduction) {
  Rng rng(9);
  KWiseHash h(3, 97, rng);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h(x), h.FullEval(x) % 97);
  }
}

TEST(KWiseHash, IndependenceParameterStored) {
  Rng rng(10);
  KWiseHash h(6, 10, rng);
  EXPECT_EQ(h.independence(), 6);
  EXPECT_EQ(h.range(), 10u);
}

// Statistical check of 2-wise independence: for a pairwise family, the
// joint distribution of (h(x1), h(x2)) over the family should be uniform on
// pairs. Chi-square-ish tolerance test on a tiny range.
TEST(KWiseHash, PairwiseJointUniformity) {
  const uint64_t range = 4;
  const int fns = 20000;
  std::map<std::pair<uint64_t, uint64_t>, int> joint;
  Rng rng(11);
  for (int f = 0; f < fns; ++f) {
    KWiseHash h(2, range, rng);
    ++joint[{h(uint64_t{3}), h(uint64_t{900001})}];
  }
  const double expect = static_cast<double>(fns) / (range * range);
  for (uint64_t a = 0; a < range; ++a) {
    for (uint64_t b = 0; b < range; ++b) {
      const auto it = joint.find({a, b});
      const int count = it == joint.end() ? 0 : it->second;
      EXPECT_NEAR(count, expect, 6 * std::sqrt(expect)) << a << "," << b;
    }
  }
}

// ------------------------------------------------------------- HashFamily --

TEST(HashFamily, SizeAndDeterminism) {
  HashFamily f1(10, 2, 256, 1234);
  HashFamily f2(10, 2, 256, 1234);
  EXPECT_EQ(f1.size(), 10);
  for (int i = 0; i < 10; ++i) {
    for (uint64_t x = 0; x < 50; ++x) EXPECT_EQ(f1.at(i)(x), f2.at(i)(x));
  }
}

TEST(HashFamily, MembersAreIndependentFunctions) {
  HashFamily f(4, 2, 1 << 16, 99);
  int same01 = 0;
  for (uint64_t x = 0; x < 200; ++x) same01 += (f.at(0)(x) == f.at(1)(x));
  EXPECT_LT(same01, 5);
}

TEST(HashFamily, DifferentSeedsDifferentFamilies) {
  HashFamily f1(2, 2, 1 << 16, 1);
  HashFamily f2(2, 2, 1 << 16, 2);
  int same = 0;
  for (uint64_t x = 0; x < 200; ++x) same += (f1.at(0)(x) == f2.at(0)(x));
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace ldphh
