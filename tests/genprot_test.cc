// Tests for src/ldp/genprot: Theorem 6.1 — the generic approximate-to-pure
// transformation. Pure DP is verified *exactly* via the Poisson-binomial
// output distribution, and utility via sampled total variation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/ldp/genprot.h"
#include "src/ldp/randomizer.h"

namespace ldphh {
namespace {

TEST(GenProt, MinTMatchesTheorem) {
  EXPECT_EQ(GenProt::MinT(0.1), static_cast<int>(std::ceil(5 * std::log(10.0))));
  EXPECT_EQ(GenProt::MinT(0.25), static_cast<int>(std::ceil(5 * std::log(4.0))));
}

TEST(GenProt, UtilityBoundFormula) {
  const double b = GenProt::UtilityTvBound(0.1, 1e-9, 20, 1000);
  const double expect =
      1000.0 * (std::pow(0.6, 20) + 6.0 * 20 * 1e-9 * std::exp(0.1) /
                                        (1.0 - std::exp(-0.1)));
  EXPECT_NEAR(b, expect, 1e-12);
}

TEST(GenProt, ClampedProbStaysInGoodBand) {
  const double eps = 0.2;
  LeakyRandomizedResponse rr(eps, 0.01);
  GenProt gp(&rr, eps, 16, /*default_input=*/0);
  const double lo = std::exp(-2 * eps) / 2;
  const double hi = std::exp(2 * eps) / 2;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 4; ++y) {
      const double p = gp.ClampedProb(x, y);
      EXPECT_TRUE((p >= lo && p <= hi) || p == 0.5) << x << " " << y;
    }
  }
}

TEST(GenProt, ClampCatchesLeakedSymbols) {
  // The clear-channel symbols have unbounded ratio; they must clamp to 1/2.
  const double eps = 0.2;
  LeakyRandomizedResponse rr(eps, 0.01);
  GenProt gp(&rr, eps, 16, 0);
  EXPECT_DOUBLE_EQ(gp.ClampedProb(0, 2), 0.5);  // Pr[A(0)=2]/Pr[A(bot)=2] = 1... clamps.
  EXPECT_DOUBLE_EQ(gp.ClampedProb(1, 2), 0.5);  // Ratio 0: outside band.
}

TEST(GenProt, UserOutputDistributionIsStochastic) {
  const double eps = 0.25;
  LeakyRandomizedResponse rr(eps, 0.05);
  const int t_count = 12;
  GenProt gp(&rr, eps, t_count, 0);
  Rng rng(3);
  std::vector<int> ys;
  for (int t = 0; t < t_count; ++t) ys.push_back(rr.Sample(0, rng));
  for (int x = 0; x < 2; ++x) {
    const auto dist = gp.UserOutputDistribution(ys, x);
    double total = 0;
    for (double p : dist) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << x;
  }
}

TEST(GenProt, UserOutputDistributionMatchesSampling) {
  const double eps = 0.25;
  BinaryRandomizedResponse rr(eps);
  const int t_count = 8;
  GenProt gp(&rr, eps, t_count, 0);
  // Fixed public samples.
  std::vector<int> ys = {0, 1, 0, 0, 1, 1, 0, 1};
  const auto dist = gp.UserOutputDistribution(ys, 1);
  // Reimplement the user's selection by sampling and compare histograms.
  Rng rng(5);
  std::vector<double> hist(t_count, 0);
  const int trials = 300000;
  std::vector<int> successes;
  for (int i = 0; i < trials; ++i) {
    successes.clear();
    for (int t = 0; t < t_count; ++t) {
      if (rng.Bernoulli(gp.ClampedProb(1, ys[static_cast<size_t>(t)]))) {
        successes.push_back(t);
      }
    }
    int g;
    if (successes.empty()) {
      g = static_cast<int>(rng.UniformU64(t_count));
    } else {
      g = successes[rng.UniformU64(successes.size())];
    }
    ++hist[static_cast<size_t>(g)];
  }
  for (int t = 0; t < t_count; ++t) {
    EXPECT_NEAR(hist[static_cast<size_t>(t)] / trials, dist[static_cast<size_t>(t)],
                0.005) << t;
  }
}

TEST(GenProt, ExactEpsilonWithinTenEps) {
  // Theorem 6.1: GenProt is 10 eps-LDP for every fixed public randomness.
  const double eps = 0.2;
  LeakyRandomizedResponse rr(eps, 0.02);
  const int t_count = std::max(GenProt::MinT(eps), 10);
  GenProt gp(&rr, eps, t_count, 0);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> ys;
    for (int t = 0; t < t_count; ++t) ys.push_back(rr.Sample(0, rng));
    EXPECT_LE(gp.ExactEpsilonForPublicRandomness(ys),
              GenProt::PrivacyBound(eps) + 1e-9)
        << "trial " << trial;
  }
}

class GenProtEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(GenProtEpsSweep, PureDpAcrossEps) {
  const double eps = GetParam();
  LeakyRandomizedResponse rr(eps, 0.01);
  const int t_count = std::max(GenProt::MinT(eps), 8);
  GenProt gp(&rr, eps, t_count, 0);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> ys;
    for (int t = 0; t < t_count; ++t) ys.push_back(rr.Sample(0, rng));
    EXPECT_LE(gp.ExactEpsilonForPublicRandomness(ys), 10 * eps + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, GenProtEpsSweep,
                         ::testing::Values(0.05, 0.1, 0.15, 0.2, 0.25));

TEST(GenProt, RunProducesResolvedOutputs) {
  const double eps = 0.2;
  LeakyRandomizedResponse rr(eps, 0.001);
  const int t_count = 16;
  GenProt gp(&rr, eps, t_count, 0);
  std::vector<int> inputs(500);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = i % 2;
  const auto run = gp.Run(inputs, 13);
  EXPECT_EQ(run.chosen_index.size(), inputs.size());
  EXPECT_EQ(run.resolved_output.size(), inputs.size());
  EXPECT_EQ(run.report_bits, 4);  // ceil(log2 16).
  for (int g : run.chosen_index) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, t_count);
  }
  for (int y : run.resolved_output) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, rr.num_outputs());
  }
}

TEST(GenProt, UtilityResolvedOutputsTrackOriginalProtocol) {
  // Count the RR-decoded ones through GenProt vs directly; the debiased
  // estimates must agree within sampling noise (the TV bound's content).
  const double eps = 0.25;
  BinaryRandomizedResponse rr(eps);
  const int t_count = std::max(GenProt::MinT(eps), 24);
  GenProt gp(&rr, eps, t_count, 0);
  const uint64_t n = 40000;
  std::vector<int> inputs(n);
  uint64_t true_ones = 0;
  Rng wl(17);
  for (auto& x : inputs) {
    x = wl.Bernoulli(0.3);
    true_ones += x;
  }
  const auto run = gp.Run(inputs, 19);
  double est = 0;
  const double e = std::exp(eps);
  for (int y : run.resolved_output) {
    // Symbols 0/1: RR channel. (Leak channel absent for plain RR.)
    est += ((e + 1) / (e - 1)) * (static_cast<double>(y) - 1.0 / (e + 1));
  }
  EXPECT_NEAR(est, static_cast<double>(true_ones),
              12.0 * std::sqrt(static_cast<double>(n)) / (eps / 2));
}

TEST(GenProt, ReportLengthIsLogLogScale) {
  // With T = 2 ln(2n/beta), the report is O(log log n) bits.
  const uint64_t n = 1 << 20;
  const double beta = 1e-3;
  const int t_count = static_cast<int>(std::ceil(2 * std::log(2 * n / beta)));
  BinaryRandomizedResponse rr(0.1);
  GenProt gp(&rr, 0.1, t_count, 0);
  std::vector<int> inputs(10, 0);
  const auto run = gp.Run(inputs, 23);
  EXPECT_LE(run.report_bits, 7);  // ~ log2(44) = 6 bits.
}

TEST(GenProt, RejectsBadParameters) {
  BinaryRandomizedResponse rr(0.1);
  EXPECT_DEATH(GenProt(&rr, 0.3, 8, 0), "");   // eps > 1/4.
  EXPECT_DEATH(GenProt(&rr, 0.1, 0, 0), "");   // T < 1.
  EXPECT_DEATH(GenProt(&rr, 0.1, 8, 5), "");   // Bad default input.
}

TEST(GenProt, DeterministicGivenSeed) {
  BinaryRandomizedResponse rr(0.2);
  GenProt gp(&rr, 0.2, 12, 0);
  std::vector<int> inputs(100, 1);
  const auto a = gp.Run(inputs, 29);
  const auto b = gp.Run(inputs, 29);
  EXPECT_EQ(a.chosen_index, b.chosen_index);
  EXPECT_EQ(a.resolved_output, b.resolved_output);
}

}  // namespace
}  // namespace ldphh
