// Cross-module property and fuzz tests: randomized sweeps over parameter
// spaces asserting the structural invariants each module promises.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/ldphh.h"

namespace ldphh {
namespace {

// ------------------------------------------------------------- RS fuzz --

TEST(PropertyRs, RandomShapesRandomBudgets) {
  Rng rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformU64(120));
    const int k = 1 + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n - 1)));
    ReedSolomon rs(n, k);
    std::vector<uint8_t> msg(static_cast<size_t>(k));
    for (auto& b : msg) b = static_cast<uint8_t>(rng());
    auto cw = rs.Encode(msg);

    // Random split of the 2e + s <= n - k budget.
    const int budget = n - k;
    const int erasures = static_cast<int>(rng.UniformU64(budget + 1));
    const int errors = static_cast<int>(rng.UniformU64((budget - erasures) / 2 + 1));
    std::vector<int> pos(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) pos[static_cast<size_t>(i)] = i;
    for (int i = 0; i < errors + erasures; ++i) {
      const int j = i + static_cast<int>(rng.UniformU64(n - i));
      std::swap(pos[static_cast<size_t>(i)], pos[static_cast<size_t>(j)]);
    }
    std::vector<int> erased(pos.begin(), pos.begin() + erasures);
    for (int p : erased) cw[static_cast<size_t>(p)] = static_cast<uint8_t>(rng());
    for (int i = erasures; i < errors + erasures; ++i) {
      uint8_t d = static_cast<uint8_t>(rng());
      if (d == 0) d = 1;
      cw[static_cast<size_t>(pos[static_cast<size_t>(i)])] ^= d;
    }
    const auto dec = rs.Decode(cw, erased);
    ASSERT_TRUE(dec.ok()) << "n=" << n << " k=" << k << " e=" << errors
                          << " s=" << erasures;
    EXPECT_EQ(dec.value(), msg);
  }
}

// --------------------------------------------------------- UrlCode fuzz --

TEST(PropertyUrlCode, RandomShapesSurviveInBudgetCorruption) {
  Rng rng(2);
  const int shapes[][4] = {
      {16, 8, 16, 4}, {64, 16, 32, 4}, {64, 16, 64, 6}, {128, 32, 32, 4}};
  for (const auto& shape : shapes) {
    UrlCodeParams p;
    p.domain_bits = shape[0];
    p.num_coords = shape[1];
    p.hash_range = shape[2];
    p.expander_degree = shape[3];
    auto code = std::move(UrlCode::Create(p, rng())).value();
    for (int trial = 0; trial < 10; ++trial) {
      DomainItem x;
      for (auto& l : x.limbs) l = rng();
      x.Truncate(p.domain_bits);
      const auto cw = code.Encode(x);
      std::vector<std::vector<UrlCode::ListEntry>> lists(
          static_cast<size_t>(p.num_coords));
      // Corrupt exactly M/8 coordinates: inside the alpha budget at every
      // shape. (At M=8 the peeling cascade tolerates ~1 bad coordinate;
      // the fraction-of-M tolerance is what grows with M, per the theorem.)
      const int bad_count = std::max(1, p.num_coords / 8);
      std::vector<bool> bad(static_cast<size_t>(p.num_coords), false);
      for (int b = 0; b < bad_count; ++b) {
        bad[static_cast<size_t>(rng.UniformU64(p.num_coords))] = true;
      }
      for (int m = 0; m < p.num_coords; ++m) {
        if (bad[static_cast<size_t>(m)]) {
          lists[static_cast<size_t>(m)].push_back(
              {static_cast<uint16_t>(rng.UniformU64(p.hash_range)),
               rng() & ((uint64_t{1} << code.PayloadBits()) - 1)});
        } else {
          lists[static_cast<size_t>(m)].push_back(
              {cw.y[static_cast<size_t>(m)],
               code.PackPayload(cw.symbols[static_cast<size_t>(m)])});
        }
      }
      const auto out = code.Decode(lists, rng);
      EXPECT_TRUE(std::find(out.begin(), out.end(), x) != out.end())
          << "bits=" << p.domain_bits << " trial=" << trial;
    }
  }
}

// ---------------------------------------------------- oracle linearity --

TEST(PropertyHashtogram, EstimatesAreApproximatelyLinear) {
  // f(A) + f(B) for disjoint item sets ~ estimate sums (the sketch is a
  // linear transform of the report stream plus per-query debiasing).
  const uint64_t n = 60000;
  const Workload w = MakePlantedWorkload(n, 64, {0.25, 0.2, 0.1}, 3);
  HashtogramParams p;
  Hashtogram ht(n, 2.0, p, 5);
  Rng rng(7);
  for (uint64_t i = 0; i < n; ++i) {
    ht.Aggregate(i, ht.Encode(i, w.database[static_cast<size_t>(i)], rng));
  }
  ht.Finalize();
  double combined = 0;
  double truth = 0;
  for (const auto& [item, count] : w.heavy) {
    combined += ht.Estimate(item);
    truth += static_cast<double>(count);
  }
  EXPECT_NEAR(combined, truth, 30.0 * std::sqrt(static_cast<double>(n)));
}

// ------------------------------------------------- randomizer identities --

TEST(PropertyRandomizer, DeltaAtExactEpsilonIsZero) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const double eps = 0.1 + 3.0 * rng.UniformDouble();
    const int k = 2 + static_cast<int>(rng.UniformU64(10));
    KaryRandomizedResponse rr(k, eps);
    EXPECT_NEAR(rr.ExactDelta(rr.ExactEpsilon()), 0.0, 1e-9);
    EXPECT_TRUE(rr.CheckStochastic().ok());
  }
}

TEST(PropertyPld, CompositionDeltaMonotoneInK) {
  BinaryRandomizedResponse rr(0.4);
  const auto base = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  double prev = 0.0;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    const double d = base.SelfCompose(k).DeltaForEpsilon(1.0);
    EXPECT_GE(d, prev - 1e-12) << k;  // More composition, more leakage.
    prev = d;
  }
}

TEST(PropertyPld, GroupEpsilonSubadditive) {
  // eps'(k1 + k2) <= eps'(k1) + eps'(k2) at matched delta (triangle-ish
  // property of the exact curve).
  BinaryRandomizedResponse rr(0.2);
  const double delta = 1e-6;
  const double e8 = ExactGroupEpsilon(rr, 0, 1, 8, delta);
  const double e16 = ExactGroupEpsilon(rr, 0, 1, 16, delta);
  EXPECT_LE(e16, 2 * e8 + 1e-9);
}

// -------------------------------------------------- GenProt generality --

TEST(PropertyGenProt, WorksWithKaryRandomizer) {
  // The transformation is generic in the source randomizer: verify pure DP
  // for a 4-ary RR source (not just the binary leaky one).
  const double eps = 0.2;
  KaryRandomizedResponse rr(4, eps);
  const int t_count = 16;
  GenProt gp(&rr, eps, t_count, /*default_input=*/2);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> ys;
    for (int t = 0; t < t_count; ++t) ys.push_back(rr.Sample(2, rng));
    EXPECT_LE(gp.ExactEpsilonForPublicRandomness(ys), 10 * eps + 1e-9);
  }
}

// -------------------------------------------- shell mechanism sampling --

TEST(PropertyShell, EmpiricalDistanceHistogramMatchesLogProbs) {
  const int k = 24;
  ShellComposedRR m(0.3, k, 0.05);
  Rng rng(13);
  std::vector<uint8_t> x(static_cast<size_t>(k), 1);
  std::vector<double> hist(static_cast<size_t>(k + 1), 0.0);
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    const auto y = m.Apply(x, rng);
    int d = 0;
    for (int i = 0; i < k; ++i) d += (y[static_cast<size_t>(i)] != 1);
    ++hist[static_cast<size_t>(d)];
  }
  for (int d = 0; d <= k; ++d) {
    const double expect =
        std::exp(LogBinomial(static_cast<uint64_t>(k), static_cast<uint64_t>(d)) +
                 m.LogProbAtDistance(d));
    EXPECT_NEAR(hist[static_cast<size_t>(d)] / trials, expect,
                0.01 + 4.0 * std::sqrt(expect / trials))
        << "d=" << d;
  }
}

// ------------------------------------------------------ protocol caps --

TEST(PropertyPes, ListCapIsRespected) {
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  p.list_cap = 8;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const Workload w = MakePlantedWorkload(1 << 17, 16, {0.3, 0.25}, 15);
  const auto res = std::move(pes.Run(w.database, 17)).value();
  // Output is bounded by B * list-recovery L = O(ell); with one bucket and
  // cap 8 the list cannot exceed a small multiple of the cap.
  EXPECT_LE(res.entries.size(), 16u);
}

TEST(PropertyProtocols, SeedsChangeNoiseNotFindings) {
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const Workload w = MakePlantedWorkload(1 << 18, 16, {0.3}, 19);
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto res = std::move(pes.Run(w.database, seed)).value();
    bool found = false;
    for (const auto& e : res.entries) found |= (e.item == w.heavy[0].first);
    EXPECT_TRUE(found) << "seed=" << seed;
  }
}

// ------------------------------------------------------ quantile bound --

TEST(PropertyQuantiles, CdfIsMonotoneUpToNoise) {
  QuantileSketchParams p;
  p.value_bits = 8;
  p.epsilon = 2.0;
  const uint64_t n = 50000;
  Rng rng(21);
  QuantileSketch sketch(n, p, 23);
  for (uint64_t i = 0; i < n; ++i) {
    sketch.Aggregate(i, sketch.Encode(i, rng.UniformU64(256), rng));
  }
  sketch.Finalize();
  // CDF noise envelope per query.
  const double tol = 40.0 * std::sqrt(static_cast<double>(n));
  double prev = 0.0;
  for (uint64_t x = 0; x <= 256; x += 16) {
    const double cdf = sketch.EstimateCdf(x);
    EXPECT_GE(cdf, prev - tol);
    prev = std::max(prev, cdf);
  }
}

}  // namespace
}  // namespace ldphh
