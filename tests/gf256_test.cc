// Tests for src/codes/gf256: field axioms, exhaustively where cheap.

#include <gtest/gtest.h>

#include "src/codes/gf256.h"
#include "src/common/random.h"

namespace ldphh {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::Add(0x00, 0x00), 0x00);
  EXPECT_EQ(GF256::Add(0xff, 0xff), 0x00);
  EXPECT_EQ(GF256::Add(0xa5, 0x5a), 0xff);
}

TEST(GF256, MulZeroAnnihilates) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::Mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(GF256::Mul(0, static_cast<uint8_t>(a)), 0);
  }
}

TEST(GF256, MulOneIsIdentity) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::Mul(1, static_cast<uint8_t>(a)), a);
  }
}

TEST(GF256, MulCommutativeExhaustive) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(GF256::Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                GF256::Mul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
}

TEST(GF256, MulAssociativeSampled) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint8_t b = static_cast<uint8_t>(rng());
    const uint8_t c = static_cast<uint8_t>(rng());
    EXPECT_EQ(GF256::Mul(GF256::Mul(a, b), c), GF256::Mul(a, GF256::Mul(b, c)));
  }
}

TEST(GF256, MulDistributesOverAddSampled) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint8_t b = static_cast<uint8_t>(rng());
    const uint8_t c = static_cast<uint8_t>(rng());
    EXPECT_EQ(GF256::Mul(a, GF256::Add(b, c)),
              GF256::Add(GF256::Mul(a, b), GF256::Mul(a, c)));
  }
}

TEST(GF256, InverseExhaustive) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = GF256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(GF256::Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, DivConsistentWithMulInv) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng());
    uint8_t b = static_cast<uint8_t>(rng());
    if (b == 0) b = 1;
    EXPECT_EQ(GF256::Div(a, b), GF256::Mul(a, GF256::Inv(b)));
  }
}

TEST(GF256, LogExpInverse) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::Exp(GF256::Log(static_cast<uint8_t>(a))), a);
  }
}

TEST(GF256, AlphaGeneratesWholeGroup) {
  // alpha = 0x02 must have multiplicative order 255.
  std::array<bool, 256> seen{};
  uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "cycle shorter than 255 at i=" << i;
    seen[x] = true;
    x = GF256::Mul(x, 2);
  }
  EXPECT_EQ(x, 1);  // Order exactly 255.
}

TEST(GF256, PowMatchesRepeatedMul) {
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const uint8_t a = static_cast<uint8_t>(1 + rng() % 255);
    const int e = static_cast<int>(rng() % 20);
    uint8_t expect = 1;
    for (int j = 0; j < e; ++j) expect = GF256::Mul(expect, a);
    EXPECT_EQ(GF256::Pow(a, e), expect) << "a=" << int(a) << " e=" << e;
  }
}

TEST(GF256, PowZeroBase) {
  EXPECT_EQ(GF256::Pow(0, 0), 1);
  EXPECT_EQ(GF256::Pow(0, 3), 0);
}

TEST(GF256, AlphaPowWrapsMod255) {
  for (int i = 0; i < 255; ++i) {
    EXPECT_EQ(GF256::AlphaPow(i), GF256::AlphaPow(i + 255));
    EXPECT_EQ(GF256::AlphaPow(-i), GF256::AlphaPow(255 - i));
  }
}

}  // namespace
}  // namespace ldphh
