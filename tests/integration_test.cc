// Cross-module integration tests: the full PES pipeline against baselines,
// string-domain workloads through the whole stack, and Definition 3.1
// compliance end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "src/core/ldphh.h"

namespace ldphh {
namespace {

bool ResultContains(const HeavyHitterResult& r, const DomainItem& x) {
  return std::any_of(r.entries.begin(), r.entries.end(),
                     [&](const HeavyHitterEntry& e) { return e.item == x; });
}

TEST(Integration, PesOn64BitDomainRecoversZipfHead) {
  PesParams p;
  p.domain_bits = 64;
  p.epsilon = 4.0;
  p.beta = 1e-3;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const uint64_t n = 1 << 20;
  // Zipf s=2 over 50 items: head fractions ~ 0.6, 0.15, 0.07, ...
  Workload w = MakeZipfWorkload(n, 64, 50, 2.0, 51);
  const auto res = std::move(pes.Run(w.database, 37)).value();
  // The top item is far above the detection threshold and must be found.
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
  const auto eval = EvaluateHeavyHitters(
      w.database, res, static_cast<uint64_t>(pes.DetectionThreshold(n)));
  EXPECT_EQ(eval.true_hitters_found, eval.true_hitters_total);
}

TEST(Integration, Definition31Compliance) {
  // Definition 3.1 with Delta = DetectionThreshold: every listed estimate
  // within Delta of truth; every x with f >= Delta listed; list not huge.
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const uint64_t n = 1 << 18;
  Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2, 0.17}, 53);
  const auto res = std::move(pes.Run(w.database, 41)).value();
  const uint64_t delta = static_cast<uint64_t>(pes.DetectionThreshold(n));
  const auto eval = EvaluateHeavyHitters(w.database, res, delta);
  EXPECT_EQ(eval.true_hitters_found, eval.true_hitters_total);   // Recall.
  EXPECT_LE(eval.max_estimate_error, static_cast<double>(delta));  // Accuracy.
  EXPECT_LE(eval.list_size, 64u);                                  // Size.
  EXPECT_LE(eval.max_missed_frequency, delta);                     // Coverage.
}

TEST(Integration, PesBeatsBitstogramDetectionAtStrictBeta) {
  // The headline comparison (F1): at beta = 2^-10 the Bitstogram cohort
  // amplification needs rho = 10 splits, inflating its threshold; PES's
  // coordinate split is beta-independent. The paper's Table 1 error gap.
  const uint64_t n = 1 << 18;
  PesParams pp;
  pp.domain_bits = 16;
  pp.epsilon = 4.0;
  pp.beta = 1.0 / 1024.0;
  pp.num_coords = 8;
  pp.hash_range = 16;
  pp.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(pp)).value();
  BitstogramParams bp;
  bp.domain_bits = 16;
  bp.epsilon = 4.0;
  bp.beta = 1.0 / 1024.0;
  auto bits = std::move(Bitstogram::Create(bp)).value();
  // PES's M * Lz = 8 * 28 = 224 beats Bitstogram's rho * D = 160... at
  // this tiny D the split sizes are comparable; the decisive check is that
  // the Bitstogram threshold grows with log(1/beta) while PES's does not.
  const double pes_t = pes.DetectionThreshold(n);
  BitstogramParams bp6 = bp;
  bp6.beta = 1.0 / (1 << 20);
  auto bits6 = std::move(Bitstogram::Create(bp6)).value();
  EXPECT_GT(bits6.DetectionThreshold(n), bits.DetectionThreshold(n) * 1.3);
  PesParams pp6 = pp;
  pp6.beta = 1.0 / (1 << 20);
  auto pes6 = std::move(PrivateExpanderSketch::Create(pp6)).value();
  EXPECT_NEAR(pes6.DetectionThreshold(n), pes_t, pes_t * 0.01);
}

TEST(Integration, StringWorkloadRoundtrip) {
  // URLs through the full pipeline: 128-bit string items, recover and
  // decode back to the original strings.
  PesParams p;
  p.domain_bits = 128;
  p.epsilon = 4.0;
  p.num_coords = 32;
  p.hash_range = 32;
  p.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const uint64_t n = 1 << 20;
  const double thr = pes.DetectionThreshold(n);
  ASSERT_LT(thr, 0.35 * n);  // Config sanity.
  const uint64_t heavy_count = static_cast<uint64_t>(1.3 * thr);
  std::vector<std::pair<std::string, uint64_t>> rows = {
      {"www.popular.com", heavy_count}, {"maps.popular.com", heavy_count}};
  // Background: unique random "long tail" strings.
  Workload w = MakeStringWorkload(rows, 128, 59);
  Rng bg(61);
  while (w.database.size() < n) {
    w.database.push_back(DomainItem(bg()));
  }
  const auto res = std::move(pes.Run(w.database, 43)).value();
  bool found0 = false, found1 = false;
  for (const auto& e : res.entries) {
    const std::string s = e.item.ToString(128);
    found0 |= (s == "www.popular.com");
    found1 |= (s == "maps.popular.com");
  }
  EXPECT_TRUE(found0);
  EXPECT_TRUE(found1);
}

TEST(Integration, FreqScanAgreesWithPesOnSmallDomain) {
  // On small domains the scan protocol is the reference; PES must find a
  // subset of comparable items with consistent estimates.
  const uint64_t n = 1 << 18;
  Workload w = MakePlantedWorkload(n, 12, {0.25, 0.2}, 63);
  FreqScanParams fp;
  fp.domain_bits = 12;
  fp.epsilon = 4.0;
  auto fs = std::move(FreqScan::Create(fp)).value();
  const auto scan_res = std::move(fs.Run(w.database, 47)).value();
  PesParams pp;
  pp.domain_bits = 12;
  pp.epsilon = 4.0;
  pp.num_coords = 8;
  pp.hash_range = 16;
  pp.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(pp)).value();
  const auto pes_res = std::move(pes.Run(w.database, 47)).value();
  for (const auto& [item, count] : w.heavy) {
    EXPECT_TRUE(ResultContains(scan_res, item));
    EXPECT_TRUE(ResultContains(pes_res, item));
  }
  // Estimates agree within combined noise envelopes.
  for (const auto& pe : pes_res.entries) {
    for (const auto& se : scan_res.entries) {
      if (pe.item == se.item) {
        EXPECT_NEAR(pe.estimate, se.estimate,
                    25.0 * std::sqrt(static_cast<double>(n)));
      }
    }
  }
}

TEST(Integration, GroupPrivacyOfWholeTranscript) {
  // Section 4 meets Section 3: the per-user report of PES is eps-LDP, so a
  // group of k users enjoys the advanced grouposition bound. Validate the
  // accounting chain on the RR core.
  const double eps = 1.0;
  BinaryRandomizedResponse rr(eps);
  for (int k : {4, 16}) {
    const double exact = ExactGroupEpsilon(rr, 0, 1, k, 1e-6);
    EXPECT_LE(exact, AdvancedGroupositionEpsilon(eps, k, 1e-6) + 1e-9);
    EXPECT_LE(exact, NaiveGroupEpsilon(eps, k) + 1e-9);
  }
}

TEST(Integration, GenProtWrappedRRKeepsCountingUtility) {
  // Section 6 meets the counting substrate: transform leaky-RR into a pure
  // protocol and verify counting error stays in the same envelope.
  const double eps = 0.25;
  const double delta = 1e-7;
  LeakyRandomizedResponse leaky(eps, delta);
  const int t_count = 32;
  GenProt gp(&leaky, eps, t_count, 0);
  const uint64_t n = 30000;
  std::vector<int> inputs(n);
  uint64_t ones = 0;
  Rng wl(67);
  for (auto& x : inputs) {
    x = wl.Bernoulli(0.4);
    ones += x;
  }
  const auto run = gp.Run(inputs, 53);
  double est = 0;
  const double e = std::exp(eps);
  int leaked = 0;
  for (int y : run.resolved_output) {
    if (y >= 2) {
      est += (y - 2);  // Clear channel (public samples of A(bot) may leak).
      ++leaked;
    } else {
      est += ((e + 1) / (e - 1)) * (static_cast<double>(y) - 1.0 / (e + 1));
    }
  }
  EXPECT_NEAR(est, static_cast<double>(ones),
              15.0 * std::sqrt(static_cast<double>(n)) / (eps / 2));
}

TEST(Integration, LowerBoundVsUpperBoundSandwich) {
  // Section 7 meets Section 3: the measured error of the canonical counter
  // sits between the lower-bound shape (with a small constant) and the
  // upper-bound envelope (with a moderate constant).
  const uint64_t n = 1 << 14;
  const double eps = 1.0;
  const auto exp = RunLowerBoundExperiment(n, eps, 1.0, 300, 71);
  for (double beta : {0.3, 0.05}) {
    const double measured = ErrorQuantile(exp, beta);
    const double shape = std::sqrt(n * std::log(1.0 / beta)) / eps;
    EXPECT_GE(measured, 0.08 * shape) << beta;
    EXPECT_LE(measured, 10.0 * shape) << beta;
  }
}

}  // namespace
}  // namespace ldphh
