// Tests for src/store/checkpoint_store: durable keyed blobs over segment
// files + MANIFEST, background/foreground compaction, and crash-safe
// recovery from every compaction phase (the docs/storage.md invariants).

#include "src/store/checkpoint_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_fs.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

class CheckpointStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/ldphh_store_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
           std::to_string(::getpid());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Small segments and no background thread: tests control compaction.
  CheckpointStoreOptions SmallSegments(size_t max_bytes = 256) {
    CheckpointStoreOptions o;
    o.segment_max_bytes = max_bytes;
    o.background_compaction = false;
    return o;
  }

  std::unique_ptr<CheckpointStore> MustOpen(const CheckpointStoreOptions& o) {
    auto store_or = CheckpointStore::Open(dir_, o);
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    return std::move(store_or).value();
  }

  size_t SegmentFilesOnDisk() const {
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".seg") ++n;
    }
    return n;
  }

  // The segment currently receiving appends (largest number on disk is the
  // active one in every scenario these tests build).
  fs::path NewestSegmentPath() const {
    fs::path newest;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() != ".seg") continue;
      if (newest.empty() || e.path().filename() > newest.filename()) {
        newest = e.path();
      }
    }
    return newest;
  }

  std::string dir_;
};

std::string Blob(uint64_t key, size_t size = 40) {
  std::string b = "blob-" + std::to_string(key) + "-";
  while (b.size() < size) b.push_back(static_cast<char>('a' + key % 26));
  return b;
}

TEST_F(CheckpointStoreTest, PutGetDeleteRoundTrip) {
  auto store = MustOpen(SmallSegments(1 << 20));
  ASSERT_TRUE(store->Put(7, "seven").ok());
  ASSERT_TRUE(store->Put(3, "three").ok());
  ASSERT_TRUE(store->Put(7, "seven-v2").ok());  // Last write wins.

  std::string blob;
  ASSERT_TRUE(store->Get(7, &blob).ok());
  EXPECT_EQ(blob, "seven-v2");
  ASSERT_TRUE(store->Get(3, &blob).ok());
  EXPECT_EQ(blob, "three");
  EXPECT_EQ(store->Get(99, &blob).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store->Keys(), (std::vector<uint64_t>{3, 7}));

  ASSERT_TRUE(store->Delete(3).ok());
  ASSERT_TRUE(store->Delete(99).ok());  // Absent key is fine.
  EXPECT_FALSE(store->Contains(3));
  EXPECT_EQ(store->Keys(), (std::vector<uint64_t>{7}));
}

TEST_F(CheckpointStoreTest, ReopenRecoversEverything) {
  {
    auto store = MustOpen(SmallSegments());
    for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
    ASSERT_TRUE(store->Put(10, "overwritten").ok());
    ASSERT_TRUE(store->Delete(20).ok());
    EXPECT_GT(store->Stats().live_segments, 2u);  // Small segments rolled.
  }
  auto store = MustOpen(SmallSegments());
  EXPECT_EQ(store->Keys().size(), 49u);
  std::string blob;
  ASSERT_TRUE(store->Get(10, &blob).ok());
  EXPECT_EQ(blob, "overwritten");
  EXPECT_FALSE(store->Contains(20));
  ASSERT_TRUE(store->Get(49, &blob).ok());
  EXPECT_EQ(blob, Blob(49));
  EXPECT_GT(store->Stats().recovered_records, 0u);
}

TEST_F(CheckpointStoreTest, CompactionConsolidatesAndDeletesInputs) {
  auto store = MustOpen(SmallSegments());
  for (uint64_t k = 0; k < 60; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  for (uint64_t k = 0; k < 60; k += 2) {
    ASSERT_TRUE(store->Put(k, Blob(k + 1000)).ok());  // Supersede half.
  }
  for (uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(store->Delete(k).ok());
  const auto before = store->Stats();
  ASSERT_GT(before.sealed_segments, 3u);

  ASSERT_TRUE(store->Compact().ok());
  const auto after = store->Stats();
  EXPECT_EQ(after.compactions, 1u);
  // One consolidated snapshot segment + the active segment.
  EXPECT_EQ(after.sealed_segments, 1u);
  EXPECT_EQ(SegmentFilesOnDisk(), after.live_segments);

  // Contents unchanged, on disk too.
  auto reopened = MustOpen(SmallSegments());
  EXPECT_EQ(reopened->Keys().size(), 50u);
  std::string blob;
  ASSERT_TRUE(reopened->Get(12, &blob).ok());
  EXPECT_EQ(blob, Blob(1012));
  ASSERT_TRUE(reopened->Get(13, &blob).ok());
  EXPECT_EQ(blob, Blob(13));
  EXPECT_FALSE(reopened->Contains(4));
}

TEST_F(CheckpointStoreTest, BackgroundCompactionTriggers) {
  CheckpointStoreOptions o;
  o.segment_max_bytes = 256;
  o.background_compaction = true;
  o.compaction_trigger = 3;
  auto store = MustOpen(o);
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  ASSERT_TRUE(store->WaitForCompaction().ok());
  const auto stats = store->Stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_LT(stats.sealed_segments, 3u);
  for (uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(store->Contains(k));
}

TEST_F(CheckpointStoreTest, ConcurrentPutsDuringCompactionLoseNothing) {
  auto store = MustOpen(SmallSegments());
  for (uint64_t k = 0; k < 40; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  std::thread writer([&] {
    for (uint64_t k = 1000; k < 1200; ++k) {
      ASSERT_TRUE(store->Put(k, Blob(k)).ok());
    }
  });
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(store->Compact().ok());
  writer.join();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->Keys().size(), 240u);
  auto reopened = MustOpen(SmallSegments());
  EXPECT_EQ(reopened->Keys().size(), 240u);
}

// ------------------------------------------------------- crash injection --

// Crash mid-append: a torn record at the end of the active segment must
// cost only the unacknowledged record, at every truncation point.
TEST_F(CheckpointStoreTest, TornActiveTailRecoversAcknowledgedPuts) {
  std::string bytes;
  {
    auto store = MustOpen(SmallSegments(1 << 20));
    for (uint64_t k = 0; k < 5; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  }
  const fs::path active = NewestSegmentPath();
  {
    std::ifstream in(active, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  // Keep the first record intact; chop the file at every later byte.
  const size_t first_end = kCheckpointRecordHeaderSize + 16 + Blob(0).size();
  for (size_t cut = first_end; cut < bytes.size(); cut += 7) {
    std::ofstream out(active, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();

    auto store = MustOpen(SmallSegments(1 << 20));
    std::string blob;
    ASSERT_TRUE(store->Get(0, &blob).ok()) << "cut at " << cut;
    EXPECT_EQ(blob, Blob(0));
    // Write after recovery, then verify the new put survives another open.
    ASSERT_TRUE(store->Put(777, "post-crash").ok());
    store.reset();
    auto again = MustOpen(SmallSegments(1 << 20));
    ASSERT_TRUE(again->Get(777, &blob).ok()) << "cut at " << cut;
    EXPECT_EQ(blob, "post-crash");
    again.reset();
    // Restore the full file for the next truncation point.
    std::ofstream restore(active, std::ios::binary | std::ios::trunc);
    restore.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

TEST_F(CheckpointStoreTest, CorruptActiveTailDropsOnlyTheTail) {
  {
    auto store = MustOpen(SmallSegments(1 << 20));
    ASSERT_TRUE(store->Put(1, Blob(1)).ok());
    ASSERT_TRUE(store->Put(2, Blob(2)).ok());
  }
  const fs::path active = NewestSegmentPath();
  // Flip a byte inside the second record's payload: complete but corrupt.
  const auto size = fs::file_size(active);
  std::fstream f(active, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(size - 3));
  char c;
  f.seekg(static_cast<std::streamoff>(size - 3));
  f.get(c);
  f.seekp(static_cast<std::streamoff>(size - 3));
  f.put(static_cast<char>(c ^ 0x40));
  f.close();

  auto store = MustOpen(SmallSegments(1 << 20));
  EXPECT_TRUE(store->Contains(1));
  EXPECT_FALSE(store->Contains(2));  // The corrupt tail record is dropped...
  EXPECT_EQ(store->Stats().dropped_tail_records, 1u);
}

TEST_F(CheckpointStoreTest, CorruptSealedSegmentFailsOpen) {
  {
    auto store = MustOpen(SmallSegments(128));
    for (uint64_t k = 0; k < 20; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
    ASSERT_GT(store->Stats().sealed_segments, 1u);
  }
  // Corrupt a byte in the OLDEST segment — sealed, so damage there is real
  // corruption, not crash debris.
  fs::path oldest;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() != ".seg") continue;
    if (oldest.empty() || e.path().filename() < oldest.filename()) {
      oldest = e.path();
    }
  }
  std::fstream f(oldest, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(kCheckpointRecordHeaderSize + 2);
  f.put('\x5a');
  f.close();
  auto store_or = CheckpointStore::Open(dir_, SmallSegments(128));
  EXPECT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kDecodeFailure);
}

// Every disk write must route through the injected FileSystem: a store
// opened over the in-memory fault filesystem works end to end while the
// real directory never materializes. Any write path still on stdio or
// std::filesystem would show up as a real file here.
TEST_F(CheckpointStoreTest, AllIoRoutesThroughInjectedFileSystem) {
  FaultInjectingFileSystem ffs;
  CheckpointStoreOptions o = SmallSegments();
  o.file_system = &ffs;
  auto store = MustOpen(o);
  for (uint64_t k = 0; k < 30; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  ASSERT_TRUE(store->Delete(7).ok());
  ASSERT_TRUE(store->Compact().ok());
  std::string blob;
  ASSERT_TRUE(store->Get(3, &blob).ok());
  EXPECT_EQ(blob, Blob(3));
  store.reset();

  EXPECT_FALSE(fs::exists(dir_));  // No real I/O happened.

  auto reopened = MustOpen(o);
  EXPECT_EQ(reopened->Keys().size(), 29u);
  EXPECT_FALSE(reopened->Contains(7));
}

// The sync_mode knob is honored: kFull syncs on every acked mutation (and
// the MANIFEST installs sync the directory); kNone never syncs anything.
TEST_F(CheckpointStoreTest, SyncModeKnobControlsFsyncs) {
  FaultInjectingFileSystem full_fs;
  {
    CheckpointStoreOptions o = SmallSegments();
    o.file_system = &full_fs;
    o.sync_mode = SyncMode::kFull;
    auto store = MustOpen(o);
    for (uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  }
  EXPECT_GE(full_fs.file_sync_count(), 10u);  // At least one per acked Put.
  EXPECT_GE(full_fs.dir_sync_count(), 1u);

  FaultInjectingFileSystem none_fs;
  {
    CheckpointStoreOptions o = SmallSegments();
    o.file_system = &none_fs;
    o.sync_mode = SyncMode::kNone;
    auto store = MustOpen(o);
    for (uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  }
  EXPECT_EQ(none_fs.file_sync_count(), 0u);
  EXPECT_EQ(none_fs.dir_sync_count(), 0u);
}

TEST_F(CheckpointStoreTest, SegmentsWithoutManifestRefused) {
  fs::create_directories(dir_);
  std::ofstream(dir_ + "/000001.seg").put('x');
  auto store_or = CheckpointStore::Open(dir_, SmallSegments());
  EXPECT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kFailedPrecondition);
}

// The three compaction crash points. After each simulated kill the next
// Open must land on exactly the pre-compaction contents (no loss, no
// resurrection) and sweep all debris.
class CompactionCrashTest
    : public CheckpointStoreTest,
      public testing::WithParamInterface<CheckpointStore::CompactionCrashPoint> {};

TEST_P(CompactionCrashTest, RecoversAllEntriesAndSweepsDebris) {
  auto store = MustOpen(SmallSegments());
  for (uint64_t k = 0; k < 40; ++k) ASSERT_TRUE(store->Put(k, Blob(k)).ok());
  for (uint64_t k = 0; k < 40; k += 4) {
    ASSERT_TRUE(store->Put(k, Blob(k + 500)).ok());
  }
  ASSERT_TRUE(store->Delete(39).ok());
  ASSERT_GT(store->Stats().sealed_segments, 2u);

  store->set_crash_point_for_testing(GetParam());
  ASSERT_TRUE(store->Compact().ok());
  store.reset();  // "Kill": drop the in-memory store with files as-is.

  auto recovered = MustOpen(SmallSegments());
  EXPECT_EQ(recovered->Keys().size(), 39u);
  std::string blob;
  for (uint64_t k = 0; k < 39; ++k) {
    ASSERT_TRUE(recovered->Get(k, &blob).ok()) << "key " << k;
    EXPECT_EQ(blob, k % 4 == 0 ? Blob(k + 500) : Blob(k)) << "key " << k;
  }
  EXPECT_FALSE(recovered->Contains(39));
  // Debris swept: no temp files, and every on-disk segment is live.
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_NE(e.path().extension(), ".tmp") << e.path();
  }
  EXPECT_EQ(SegmentFilesOnDisk(), recovered->Stats().live_segments);

  // The store stays fully functional: compaction converges after recovery.
  ASSERT_TRUE(recovered->Compact().ok());
  EXPECT_EQ(recovered->Stats().sealed_segments, 1u);
  ASSERT_TRUE(recovered->Put(1000, "after").ok());
  EXPECT_EQ(recovered->Keys().size(), 40u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, CompactionCrashTest,
    testing::Values(
        CheckpointStore::CompactionCrashPoint::kAfterConsolidatedSegment,
        CheckpointStore::CompactionCrashPoint::kAfterTempManifest,
        CheckpointStore::CompactionCrashPoint::kAfterManifestInstall));

}  // namespace
}  // namespace ldphh
