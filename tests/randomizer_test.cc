// Tests for src/ldp/randomizer: exact DP verification of the randomizers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/ldp/randomizer.h"

namespace ldphh {
namespace {

TEST(BinaryRR, RowsAreStochastic) {
  BinaryRandomizedResponse rr(1.0);
  EXPECT_TRUE(rr.CheckStochastic().ok());
}

TEST(BinaryRR, ExactEpsilonMatchesConstruction) {
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    BinaryRandomizedResponse rr(eps);
    EXPECT_NEAR(rr.ExactEpsilon(), eps, 1e-9) << eps;
  }
}

TEST(BinaryRR, DeltaZeroAtEps) {
  BinaryRandomizedResponse rr(1.0);
  EXPECT_NEAR(rr.ExactDelta(1.0), 0.0, 1e-12);
  EXPECT_GT(rr.ExactDelta(0.5), 0.0);
  EXPECT_NEAR(rr.ExactDelta(2.0), 0.0, 1e-12);
}

TEST(BinaryRR, DeltaAtZeroEpsIsTvDistance) {
  // delta(0) = TV(A(0), A(1)) = p - q = (e^eps - 1)/(e^eps + 1).
  const double eps = 1.0;
  BinaryRandomizedResponse rr(eps);
  const double expect = (std::exp(eps) - 1.0) / (std::exp(eps) + 1.0);
  EXPECT_NEAR(rr.ExactDelta(0.0), expect, 1e-12);
}

TEST(BinaryRR, SampleMatchesDistribution) {
  BinaryRandomizedResponse rr(1.5);
  Rng rng(3);
  int kept = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) kept += (rr.Sample(1, rng) == 1);
  EXPECT_NEAR(static_cast<double>(kept) / trials, rr.keep_prob(), 0.005);
}

TEST(KaryRR, RowsAreStochastic) {
  for (int k : {2, 3, 10, 100}) {
    KaryRandomizedResponse rr(k, 1.0);
    EXPECT_TRUE(rr.CheckStochastic().ok()) << k;
  }
}

TEST(KaryRR, ExactEpsilonMatchesConstruction) {
  for (int k : {2, 5, 17}) {
    for (double eps : {0.5, 1.0, 3.0}) {
      KaryRandomizedResponse rr(k, eps);
      EXPECT_NEAR(rr.ExactEpsilon(), eps, 1e-9) << k << " " << eps;
    }
  }
}

TEST(KaryRR, SampleCoversDomainAndKeeps) {
  KaryRandomizedResponse rr(5, 1.0);
  Rng rng(5);
  int counts[5] = {0};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rr.Sample(2, rng)];
  const double p = std::exp(1.0) / (std::exp(1.0) + 4.0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / trials, p, 0.01);
  for (int y : {0, 1, 3, 4}) {
    EXPECT_NEAR(static_cast<double>(counts[y]) / trials, (1 - p) / 4, 0.01);
  }
}

TEST(LeakyRR, RowsAreStochastic) {
  LeakyRandomizedResponse rr(0.5, 0.01);
  EXPECT_TRUE(rr.CheckStochastic().ok());
}

TEST(LeakyRR, PureEpsilonIsInfinite) {
  // The clear channel makes pure DP impossible.
  LeakyRandomizedResponse rr(0.5, 0.01);
  EXPECT_EQ(rr.ExactEpsilon(), std::numeric_limits<double>::infinity());
}

TEST(LeakyRR, HockeyStickDeltaEqualsLeakProbability) {
  // At eps' = eps the only violating outputs are the clear symbols: the
  // hockey-stick divergence is exactly delta.
  const double eps = 0.5;
  const double delta = 0.01;
  LeakyRandomizedResponse rr(eps, delta);
  EXPECT_NEAR(rr.ExactDelta(eps), delta, 1e-12);
}

TEST(LeakyRR, DeltaZeroDegeneratesToPlainRR) {
  LeakyRandomizedResponse rr(1.0, 0.0);
  EXPECT_NEAR(rr.ExactEpsilon(), 1.0, 1e-9);
}

TEST(LeakyRR, SampleLeaksAtRateDelta) {
  LeakyRandomizedResponse rr(0.5, 0.05);
  Rng rng(7);
  int leaks = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) leaks += (rr.Sample(1, rng) >= 2);
  EXPECT_NEAR(static_cast<double>(leaks) / trials, 0.05, 0.005);
}

TEST(LeakyRR, LeakedSymbolRevealsInput) {
  LeakyRandomizedResponse rr(0.5, 0.5);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int y = rr.Sample(0, rng);
    if (y >= 2) {
      EXPECT_EQ(y, 2);  // Input 0 leaks symbol 2 only.
    }
  }
}

TEST(Randomizer, DefaultSamplerMatchesLogProb) {
  // The base-class cdf sampler must agree with the overridden fast paths.
  KaryRandomizedResponse rr(4, 1.0);
  Rng rng(11);
  int hist[4] = {0};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++hist[rr.LocalRandomizer::Sample(1, rng)];
  for (int y = 0; y < 4; ++y) {
    EXPECT_NEAR(static_cast<double>(hist[y]) / trials, rr.Prob(1, y), 0.01);
  }
}

TEST(Randomizer, ExactDeltaMonotoneInEps) {
  LeakyRandomizedResponse rr(1.0, 0.02);
  double prev = 1.0;
  for (double eps : {0.0, 0.5, 1.0, 2.0}) {
    const double d = rr.ExactDelta(eps);
    EXPECT_LE(d, prev + 1e-12);
    prev = d;
  }
}

}  // namespace
}  // namespace ldphh
