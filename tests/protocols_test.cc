// Tests for src/protocols: evaluation helpers, metrics, and the protocol
// classes' parameter handling plus fast end-to-end runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/protocols/bitstogram.h"
#include "src/protocols/freq_scan.h"
#include "src/protocols/heavy_hitters.h"
#include "src/protocols/private_expander_sketch.h"
#include "src/protocols/succinct_hist.h"
#include "src/workload/workload.h"

namespace ldphh {
namespace {

bool ResultContains(const HeavyHitterResult& r, const DomainItem& x) {
  return std::any_of(r.entries.begin(), r.entries.end(),
                     [&](const HeavyHitterEntry& e) { return e.item == x; });
}

// Fast PES config used across these tests: 262k users, 16-bit domain.
PesParams FastPes() {
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-3;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  return p;
}

// ------------------------------------------------------------ evaluation --

TEST(ExactFrequencies, CountsAndOrders) {
  Workload w = MakePlantedWorkload(1000, 64, {0.3, 0.1}, 1);
  const auto freqs = ExactFrequencies(w.database);
  EXPECT_EQ(freqs[0].first, w.heavy[0].first);
  EXPECT_EQ(freqs[0].second, 300u);
  EXPECT_EQ(freqs[1].second, 100u);
  for (size_t i = 1; i < freqs.size(); ++i) {
    EXPECT_GE(freqs[i - 1].second, freqs[i].second);
  }
}

TEST(EvaluateHeavyHitters, PerfectResult) {
  Workload w = MakePlantedWorkload(1000, 64, {0.3, 0.1}, 2);
  HeavyHitterResult r;
  r.entries.push_back({w.heavy[0].first, 300.0});
  r.entries.push_back({w.heavy[1].first, 100.0});
  const auto eval = EvaluateHeavyHitters(w.database, r, 100);
  EXPECT_EQ(eval.max_estimate_error, 0.0);
  EXPECT_EQ(eval.true_hitters_total, 2u);
  EXPECT_EQ(eval.true_hitters_found, 2u);
  EXPECT_LT(eval.max_missed_frequency, 100u);
  EXPECT_EQ(eval.list_size, 2u);
}

TEST(EvaluateHeavyHitters, MissedHitterReported) {
  Workload w = MakePlantedWorkload(1000, 64, {0.3, 0.1}, 3);
  HeavyHitterResult r;
  r.entries.push_back({w.heavy[0].first, 290.0});
  const auto eval = EvaluateHeavyHitters(w.database, r, 100);
  EXPECT_EQ(eval.true_hitters_found, 1u);
  EXPECT_EQ(eval.true_hitters_total, 2u);
  EXPECT_EQ(eval.max_missed_frequency, 100u);
  EXPECT_NEAR(eval.max_estimate_error, 10.0, 1e-9);
}

TEST(EvaluateHeavyHitters, PhantomEntryScoredAgainstZero) {
  Workload w = MakePlantedWorkload(1000, 64, {0.3}, 4);
  HeavyHitterResult r;
  DomainItem phantom(0xdeadbeef);
  r.entries.push_back({phantom, 50.0});
  const auto eval = EvaluateHeavyHitters(w.database, r, 100);
  EXPECT_NEAR(eval.max_estimate_error, 50.0, 1e-9);
}

TEST(Metrics, ToStringContainsFields) {
  ProtocolMetrics m;
  m.num_users = 10;
  m.comm_bits_total = 100;
  const auto s = m.ToString();
  EXPECT_NE(s.find("n=10"), std::string::npos);
  EXPECT_NE(s.find("comm_avg=10.0"), std::string::npos);
}

// --------------------------------------------------------------- PES API --

TEST(Pes, CreateValidatesParameters) {
  PesParams p = FastPes();
  p.domain_bits = 4;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
  p = FastPes();
  p.epsilon = 0.0;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
  p = FastPes();
  p.beta = 1.5;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
  p = FastPes();
  p.num_coords = 7;  // Propagates to the code: odd M rejected.
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
}

TEST(Pes, AutoParamsResolve) {
  PesParams p;
  p.domain_bits = 64;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  EXPECT_EQ(pes.num_coords(), 16);
  EXPECT_GT(pes.payload_bits(), 0);
  EXPECT_LE(pes.payload_bits(), 64);
  EXPECT_EQ(pes.params().list_cap, 4 * 64);
}

TEST(Pes, DetectionThresholdShape) {
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  // Quadrupling n doubles the threshold (sqrt scaling).
  const double t1 = pes.DetectionThreshold(1 << 16);
  const double t4 = pes.DetectionThreshold(1 << 18);
  EXPECT_NEAR(t4 / t1, 2.0, 1e-9);
}

TEST(Pes, RejectsTinyDatabases) {
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  std::vector<DomainItem> db(8, DomainItem(1));
  EXPECT_FALSE(pes.Run(db, 1).ok());
}

TEST(Pes, EndToEndRecoversPlantedHitters) {
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  const uint64_t n = 1 << 18;
  Workload w = MakePlantedWorkload(n, 16, {0.20, 0.17}, 42);
  const auto res = std::move(pes.Run(w.database, 7)).value();
  for (const auto& [item, count] : w.heavy) {
    EXPECT_TRUE(ResultContains(res, item));
  }
  // Estimates within the Hashtogram envelope.
  const auto eval = EvaluateHeavyHitters(w.database, res, n / 4);
  EXPECT_LE(eval.max_estimate_error, 20.0 * std::sqrt(static_cast<double>(n)));
}

TEST(Pes, NoJunkInOutputList) {
  // Every listed item must be a real element with nontrivial frequency
  // (the bucket-hash + code verification kills fabrications).
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  const uint64_t n = 1 << 18;
  Workload w = MakePlantedWorkload(n, 16, {0.25}, 43);
  const auto res = std::move(pes.Run(w.database, 11)).value();
  ASSERT_GE(res.entries.size(), 1u);
  EXPECT_LE(res.entries.size(), 4u);
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
}

TEST(Pes, MetricsAccounting) {
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  const uint64_t n = 1 << 17;
  Workload w = MakePlantedWorkload(n, 16, {0.3}, 44);
  const auto res = std::move(pes.Run(w.database, 13)).value();
  const auto& m = res.metrics;
  EXPECT_EQ(m.num_users, n);
  EXPECT_GT(m.comm_bits_total, 0u);
  // O(1) communication: a couple of machine words at most.
  EXPECT_LE(m.comm_bits_max_user, 64u);
  EXPECT_GT(m.server_memory_bytes, 0u);
  EXPECT_GT(m.public_random_bits_per_user, 0u);
  EXPECT_GE(m.server_seconds, 0.0);
  EXPECT_GE(m.user_seconds_total, 0.0);
}

TEST(Pes, DeterministicGivenSeed) {
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  Workload w = MakePlantedWorkload(1 << 17, 16, {0.3}, 45);
  const auto a = std::move(pes.Run(w.database, 17)).value();
  const auto b = std::move(pes.Run(w.database, 17)).value();
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].item, b.entries[i].item);
    EXPECT_DOUBLE_EQ(a.entries[i].estimate, b.entries[i].estimate);
  }
}

TEST(Pes, ExplicitBucketCountHonored) {
  PesParams p = FastPes();
  p.num_buckets = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  Workload w = MakePlantedWorkload(1 << 18, 16, {0.25, 0.2}, 46);
  const auto res = std::move(pes.Run(w.database, 19)).value();
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
  EXPECT_TRUE(ResultContains(res, w.heavy[1].first));
}

// -------------------------------------------------------------- baselines --

TEST(BitstogramApi, CreateValidatesAndAutofills) {
  BitstogramParams p;
  p.domain_bits = 16;
  p.beta = 1.0 / 1024.0;
  auto b = std::move(Bitstogram::Create(p)).value();
  EXPECT_EQ(b.cohorts(), 10);  // ceil(log2 1024).
  p.epsilon = -1;
  EXPECT_FALSE(Bitstogram::Create(p).ok());
}

TEST(BitstogramApi, DetectionGrowsWithStricterBeta) {
  BitstogramParams p;
  p.domain_bits = 16;
  p.beta = 1e-2;
  auto loose = std::move(Bitstogram::Create(p)).value();
  p.beta = 1e-6;
  auto strict = std::move(Bitstogram::Create(p)).value();
  // The sqrt(log 1/beta) penalty of Theorem 3.3.
  EXPECT_GT(strict.DetectionThreshold(1 << 18),
            loose.DetectionThreshold(1 << 18));
}

TEST(BitstogramRun, RecoversPlantedHitters) {
  BitstogramParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-3;
  auto b = std::move(Bitstogram::Create(p)).value();
  const uint64_t n = 1 << 18;
  Workload w = MakePlantedWorkload(n, 16, {0.22, 0.18}, 47);
  const auto res = std::move(b.Run(w.database, 23)).value();
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
  EXPECT_TRUE(ResultContains(res, w.heavy[1].first));
  EXPECT_LE(res.metrics.comm_bits_max_user, 64u);
}

TEST(SuccinctHistApi, DomainCapEnforced) {
  SuccinctHistParams p;
  p.domain_bits = 30;
  EXPECT_FALSE(SuccinctHist::Create(p).ok());
}

TEST(SuccinctHistRun, RecoversHittersOnTinyDomain) {
  SuccinctHistParams p;
  p.domain_bits = 10;
  p.epsilon = 2.0;
  auto sh = std::move(SuccinctHist::Create(p)).value();
  const uint64_t n = 1 << 14;
  Workload w = MakePlantedWorkload(n, 10, {0.4}, 48);
  const auto res = std::move(sh.Run(w.database, 29)).value();
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
  EXPECT_EQ(res.metrics.comm_bits_max_user, 1u);  // One-bit reports.
}

TEST(FreqScanRun, FindsAllAboveThreshold) {
  FreqScanParams p;
  p.domain_bits = 12;
  p.epsilon = 2.0;
  auto fs = std::move(FreqScan::Create(p)).value();
  const uint64_t n = 1 << 15;
  Workload w = MakePlantedWorkload(n, 12, {0.3, 0.2}, 49);
  const auto res = std::move(fs.Run(w.database, 31)).value();
  EXPECT_TRUE(ResultContains(res, w.heavy[0].first));
  EXPECT_TRUE(ResultContains(res, w.heavy[1].first));
}

TEST(ProtocolNames, AreDistinct) {
  auto pes = std::move(PrivateExpanderSketch::Create(FastPes())).value();
  BitstogramParams bp;
  bp.domain_bits = 16;
  auto bits = std::move(Bitstogram::Create(bp)).value();
  EXPECT_NE(pes.Name(), bits.Name());
  EXPECT_EQ(pes.Epsilon(), FastPes().epsilon);
}

}  // namespace
}  // namespace ldphh
