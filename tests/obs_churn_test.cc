// TSan-targeted churn test for the annotated registry lock discipline:
// components register and unregister HealthRegistry / StatuszRegistry
// entries at full speed while the AdminServer concurrently serves /healthz
// and /statusz scrapes into those same registries. The thread-safety
// annotations (GUARDED_BY on the id->entry maps, MutexLock in every
// accessor) claim this is safe at compile time; this test makes the claim
// checkable at runtime — under TSan it is the proof that the annotated
// discipline matches reality, and under a plain build it still pins the
// RAII registration semantics (a handle's checks/sections exist exactly
// while it does, scrapes mid-churn always parse).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/health.h"
#include "src/obs/json_reader.h"
#include "src/obs/statusz.h"
#include "src/server/admin_server.h"

namespace ldphh {
namespace {

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string raw = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

int StatusCodeOf(const std::string& response) {
  if (response.size() < 12) return -1;
  return std::atoi(response.substr(9, 3).c_str());
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(ObsChurn, RegistriesChurnWhileAdminServes) {
  obs::HealthRegistry::Global().ResetForTesting();
  obs::StatuszRegistry::Global().ResetForTesting();

  AdminServer::Options options;
  auto server_or = AdminServer::Start(std::move(options));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  const uint16_t port = server_or.value()->port();

  // One permanent check/section pair so every scrape has stable content to
  // assert on regardless of where the churn threads happen to be.
  const auto steady_health = obs::HealthRegistry::Global().Register(
      "churn:steady", [] { return Status::OK(); });
  auto steady_statusz = obs::StatuszRegistry::Global().Register(
      "churn_steady", [](obs::JsonWriter& w) {
        w.BeginObject();
        w.Key("alive").Bool(true);
        w.EndObject();
      });

  std::atomic<bool> stop{false};

  // Churners: register, briefly hold, unregister — both registries, half
  // the health checks readiness-only so both /healthz filters run against
  // entries that appear and vanish mid-scrape.
  constexpr int kChurners = 4;
  std::vector<std::thread> churners;
  churners.reserve(kChurners);
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([c, &stop] {
      const std::string name = "churn:" + std::to_string(c);
      while (!stop.load(std::memory_order_relaxed)) {
        auto health = obs::HealthRegistry::Global().Register(
            name, [] { return Status::OK(); },
            /*readiness_only=*/(c % 2) == 0);
        auto statusz = obs::StatuszRegistry::Global().Register(
            "churn_section", [c](obs::JsonWriter& w) {
              w.BeginObject();
              w.Key("churner").Uint(static_cast<uint64_t>(c));
              w.EndObject();
            });
        // Handles drop here: the RAII unregister races the next scrape.
      }
    });
  }

  // Scrapers: every response must be well-formed no matter the churn phase
  // — /healthz stays 200 (no churn check ever fails) and /statusz stays
  // parseable JSON containing the steady section.
  constexpr int kScrapers = 3;
  constexpr int kScrapesEach = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([port, &failures] {
      for (int i = 0; i < kScrapesEach; ++i) {
        const std::string healthz = HttpGet(port, "/healthz");
        if (StatusCodeOf(healthz) != 200 ||
            BodyOf(healthz).find("ok churn:steady") == std::string::npos) {
          failures.fetch_add(1);
        }
        const std::string statusz = HttpGet(port, "/statusz");
        obs::JsonValue parsed;
        if (StatusCodeOf(statusz) != 200 ||
            !ParseJson(BodyOf(statusz), &parsed).ok() ||
            BodyOf(statusz).find("churn_steady") == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }

  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : churners) t.join();

  EXPECT_EQ(failures.load(), 0);

  // After the churners drained, only the steady entries remain.
  EXPECT_TRUE(obs::HealthRegistry::Global().Ready());
  const auto results = obs::HealthRegistry::Global().RunChecks();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "churn:steady");

  obs::HealthRegistry::Global().ResetForTesting();
  obs::StatuszRegistry::Global().ResetForTesting();
}

}  // namespace
}  // namespace ldphh
