// Tests for src/server/sharded_aggregator: merge-equivalence of sharded
// ingestion against the single-threaded baseline, durable checkpoints, and
// the mergeable-state layer of every frequency oracle.

#include "src/server/sharded_aggregator.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/freq/count_mean_sketch.h"
#include "src/freq/direct_encoding.h"
#include "src/freq/hadamard_response.h"
#include "src/freq/hashtogram.h"
#include "src/freq/olh.h"
#include "src/freq/unary_encoding.h"
#include "src/protocols/bitstogram.h"
#include "src/protocols/private_expander_sketch.h"
#include "src/protocols/treehist.h"
#include "src/server/report_codec.h"
#include "src/workload/workload.h"

namespace ldphh {
namespace {

std::string TempLogPath(const std::string& name) {
  return testing::TempDir() + "/ldphh_" + name + "_" +
         std::to_string(::getpid()) + ".ckpt";
}

// Encodes n reports with sequential user indices through a fresh client-side
// oracle instance (so OLH's implicit user numbering matches the index).
std::vector<WireReport> EncodeReports(
    const ShardedAggregator::OracleFactory& factory, uint64_t n,
    uint64_t seed) {
  auto client = factory();
  const uint64_t domain = client->domain_size();
  Rng rng(seed);
  std::vector<WireReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) {
    // Skewed input so estimates are far from uniform.
    const uint64_t value =
        rng.Bernoulli(0.3) ? 0 : rng.UniformU64(domain);
    reports[i].user_index = i;
    reports[i].report = client->Encode(value, rng);
  }
  return reports;
}

// The acceptance-criterion test: an 8-shard ingest must produce estimates
// identical (==, not near) to the single-threaded aggregation.
void CheckMergeEquivalence(const ShardedAggregator::OracleFactory& factory,
                           uint64_t n) {
  const auto reports = EncodeReports(factory, n, 1234);

  auto baseline = factory();
  for (const WireReport& r : reports) {
    baseline->AggregateIndexed(r.user_index, r.report);
  }
  baseline->Finalize();

  ShardedAggregatorOptions opts;
  opts.num_shards = 8;
  opts.queue_capacity = 1024;
  opts.batch_size = 128;
  ShardedAggregator agg(factory, opts);
  ASSERT_TRUE(agg.Start().ok());
  // Route everything through the wire codec in chunks, as a client would.
  const size_t chunk = 4096;
  for (size_t lo = 0; lo < reports.size(); lo += chunk) {
    const size_t hi = std::min(lo + chunk, reports.size());
    const std::vector<WireReport> slice(reports.begin() + lo,
                                        reports.begin() + hi);
    ASSERT_TRUE(agg.SubmitWire(EncodeReportBatch(slice)).ok());
  }
  auto merged_or = agg.Finish();
  ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
  auto merged = std::move(merged_or).value();
  merged->Finalize();

  const IngestStats stats = agg.Stats();
  EXPECT_EQ(stats.submitted, n);
  uint64_t per_shard_total = 0;
  for (uint64_t c : stats.per_shard) per_shard_total += c;
  EXPECT_EQ(per_shard_total, n);

  for (uint64_t v = 0; v < baseline->domain_size(); ++v) {
    EXPECT_EQ(merged->Estimate(v), baseline->Estimate(v)) << "value " << v;
  }
}

constexpr uint64_t kNumReports = 100000;

TEST(ShardedAggregator, MergeEquivalenceDirectEncoding) {
  CheckMergeEquivalence(
      [] { return std::make_unique<DirectEncodingFO>(64, 1.0); }, kNumReports);
}

TEST(ShardedAggregator, MergeEquivalenceHadamardResponse) {
  CheckMergeEquivalence(
      [] { return std::make_unique<HadamardResponseFO>(64, 1.0); },
      kNumReports);
}

TEST(ShardedAggregator, MergeEquivalenceUnaryEncoding) {
  CheckMergeEquivalence(
      [] { return std::make_unique<UnaryEncodingFO>(32, 1.0); }, kNumReports);
}

TEST(ShardedAggregator, MergeEquivalenceOlh) {
  CheckMergeEquivalence(
      [] { return std::make_unique<OlhFO>(16, 1.0, /*seed=*/77); },
      kNumReports);
}

TEST(ShardedAggregator, CheckpointRestoreResumesMidIngest) {
  const auto factory = [] {
    return std::make_unique<HadamardResponseFO>(128, 1.5);
  };
  const uint64_t n = 100000;
  const auto reports = EncodeReports(factory, n, 99);

  auto baseline = factory();
  for (const WireReport& r : reports) {
    baseline->AggregateIndexed(r.user_index, r.report);
  }
  baseline->Finalize();

  const std::string path = TempLogPath("resume");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 8;

  // Phase 1: ingest the first 60%, checkpoint, then "crash" (the oracle
  // state is simply dropped on the floor).
  const size_t cut = 60000;
  {
    ShardedAggregator agg(factory, opts);
    ASSERT_TRUE(agg.Start().ok());
    for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(agg.Submit(reports[i]).ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg.WriteCheckpoint(log).ok());
  }

  // Phase 2: recover and replay only the post-checkpoint reports.
  {
    ShardedAggregator agg(factory, opts);
    CheckpointReader log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg.RestoreCheckpoint(log).ok());
    ASSERT_TRUE(agg.Start().ok());
    for (size_t i = cut; i < n; ++i) ASSERT_TRUE(agg.Submit(reports[i]).ok());
    auto merged_or = agg.Finish();
    ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
    auto merged = std::move(merged_or).value();
    merged->Finalize();

    const IngestStats stats = agg.Stats();
    EXPECT_EQ(stats.restored, cut);
    EXPECT_EQ(stats.submitted, n - cut);

    for (uint64_t v = 0; v < baseline->domain_size(); ++v) {
      EXPECT_EQ(merged->Estimate(v), baseline->Estimate(v)) << "value " << v;
    }
  }
  std::remove(path.c_str());
}

TEST(ShardedAggregator, CheckpointDuringConcurrentIngestLosesNothing) {
  // The API allows producers to keep submitting while WriteCheckpoint runs;
  // the snapshot pause must neither lose nor double-count reports.
  const auto factory = [] {
    return std::make_unique<DirectEncodingFO>(32, 1.0);
  };
  const uint64_t n = 50000;
  const auto reports = EncodeReports(factory, n, 33);

  auto baseline = factory();
  for (const WireReport& r : reports) {
    baseline->AggregateIndexed(r.user_index, r.report);
  }
  baseline->Finalize();

  const std::string path = TempLogPath("concurrent");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 4;
  opts.queue_capacity = 256;
  ShardedAggregator agg(factory, opts);
  ASSERT_TRUE(agg.Start().ok());

  CheckpointWriter log;
  ASSERT_TRUE(log.Open(path).ok());
  std::thread producer([&] {
    for (const WireReport& r : reports) ASSERT_TRUE(agg.Submit(r).ok());
  });
  for (int c = 0; c < 5; ++c) ASSERT_TRUE(agg.WriteCheckpoint(log).ok());
  producer.join();

  auto merged_or = agg.Finish();
  ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
  auto merged = std::move(merged_or).value();
  merged->Finalize();
  for (uint64_t v = 0; v < baseline->domain_size(); ++v) {
    EXPECT_EQ(merged->Estimate(v), baseline->Estimate(v)) << "value " << v;
  }
  // Every checkpoint in the log must itself be restorable.
  ShardedAggregator fresh(factory, opts);
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_TRUE(fresh.RestoreCheckpoint(reader).ok());
  EXPECT_LE(fresh.Stats().restored, n);
  std::remove(path.c_str());
}

TEST(ShardedAggregator, RestorePicksLastCompleteCheckpoint) {
  const auto factory = [] { return std::make_unique<DirectEncodingFO>(16, 1.0); };
  const auto reports = EncodeReports(factory, 2000, 5);
  const std::string path = TempLogPath("last");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 4;
  {
    ShardedAggregator agg(factory, opts);
    ASSERT_TRUE(agg.Start().ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    for (size_t i = 0; i < 1000; ++i) ASSERT_TRUE(agg.Submit(reports[i]).ok());
    ASSERT_TRUE(agg.WriteCheckpoint(log).ok());
    for (size_t i = 1000; i < 1500; ++i) ASSERT_TRUE(agg.Submit(reports[i]).ok());
    ASSERT_TRUE(agg.WriteCheckpoint(log).ok());  // Supersedes the first.
  }
  ShardedAggregator agg(factory, opts);
  CheckpointReader log;
  ASSERT_TRUE(log.Open(path).ok());
  ASSERT_TRUE(agg.RestoreCheckpoint(log).ok());
  EXPECT_EQ(agg.Stats().restored, 1500u);
  std::remove(path.c_str());
}

TEST(ShardedAggregator, RestoreRejectsShardCountMismatch) {
  const auto factory = [] { return std::make_unique<DirectEncodingFO>(16, 1.0); };
  const std::string path = TempLogPath("mismatch");
  std::remove(path.c_str());
  {
    ShardedAggregatorOptions opts;
    opts.num_shards = 4;
    ShardedAggregator agg(factory, opts);
    ASSERT_TRUE(agg.Start().ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg.WriteCheckpoint(log).ok());
  }
  ShardedAggregatorOptions opts;
  opts.num_shards = 2;
  ShardedAggregator agg(factory, opts);
  CheckpointReader log;
  ASSERT_TRUE(log.Open(path).ok());
  EXPECT_EQ(agg.RestoreCheckpoint(log).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ShardedAggregator, SubmitWireRejectsCorruptBatchWhole) {
  const auto factory = [] { return std::make_unique<DirectEncodingFO>(16, 1.0); };
  const auto reports = EncodeReports(factory, 100, 8);
  ShardedAggregator agg(factory, ShardedAggregatorOptions{});
  ASSERT_TRUE(agg.Start().ok());
  std::string wire = EncodeReportBatch(reports);
  wire[wire.size() - 1] ^= 0x1;
  EXPECT_EQ(agg.SubmitWire(wire).code(), StatusCode::kDecodeFailure);
  ASSERT_TRUE(agg.Drain().ok());
  EXPECT_EQ(agg.Stats().submitted, 0u);
}

// ------------------------------------------------ oracle state snapshots --

TEST(MergeableState, SerializeRestoreRoundTripsEveryOracle) {
  const std::vector<ShardedAggregator::OracleFactory> factories = {
      [] { return std::make_unique<DirectEncodingFO>(32, 1.0); },
      [] { return std::make_unique<HadamardResponseFO>(32, 1.0); },
      [] { return std::make_unique<UnaryEncodingFO>(24, 1.0); },
      [] { return std::make_unique<OlhFO>(24, 1.0, 13); },
  };
  for (const auto& factory : factories) {
    const auto reports = EncodeReports(factory, 5000, 21);
    auto a = factory();
    ASSERT_TRUE(a->Mergeable());
    for (size_t i = 0; i < 2500; ++i) {
      a->AggregateIndexed(reports[i].user_index, reports[i].report);
    }
    std::string snapshot;
    ASSERT_TRUE(a->SerializeState(&snapshot).ok());

    auto b = factory();
    ASSERT_TRUE(b->RestoreState(snapshot).ok());
    for (size_t i = 2500; i < 5000; ++i) {
      a->AggregateIndexed(reports[i].user_index, reports[i].report);
      b->AggregateIndexed(reports[i].user_index, reports[i].report);
    }
    a->Finalize();
    b->Finalize();
    for (uint64_t v = 0; v < a->domain_size(); ++v) {
      EXPECT_EQ(a->Estimate(v), b->Estimate(v))
          << a->Name() << " value " << v;
    }
  }
}

TEST(MergeableState, RestoreRejectsWrongOracleAndTruncation) {
  DirectEncodingFO de(32, 1.0);
  UnaryEncodingFO ue(32, 1.0);
  std::string snapshot;
  ASSERT_TRUE(de.SerializeState(&snapshot).ok());
  EXPECT_FALSE(ue.RestoreState(snapshot).ok());
  for (size_t len = 0; len < snapshot.size(); ++len) {
    EXPECT_FALSE(de.RestoreState(std::string_view(snapshot.data(), len)).ok())
        << "prefix " << len;
  }
}

TEST(MergeableState, MergeRejectsConfigMismatch) {
  DirectEncodingFO a(32, 1.0);
  DirectEncodingFO b(32, 2.0);
  DirectEncodingFO c(16, 1.0);
  UnaryEncodingFO u(32, 1.0);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
  EXPECT_FALSE(a.Merge(u).ok());
  DirectEncodingFO d(32, 1.0);
  EXPECT_TRUE(a.Merge(d).ok());
}

TEST(MergeableState, HashtogramMergeAndSnapshotMatchSequential) {
  HashtogramParams params;
  params.rows = 8;
  params.table_size = 256;
  const uint64_t n = 20000;
  Hashtogram seq(n, 1.0, params, 4242);
  Hashtogram left(n, 1.0, params, 4242);
  Hashtogram right(n, 1.0, params, 4242);

  Rng rng(7);
  std::vector<std::pair<uint64_t, FoReport>> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem x(rng.Bernoulli(0.4) ? 3 : rng.UniformU64(1000));
    reports.emplace_back(i, seq.Encode(i, x, rng));
  }
  for (const auto& [i, r] : reports) {
    seq.Aggregate(i, r);
    (i % 2 ? left : right).Aggregate(i, r);
  }
  // Snapshot-restore `right` into a fresh instance before merging, so the
  // durable path is exercised too.
  std::string snapshot;
  ASSERT_TRUE(right.SerializeState(&snapshot).ok());
  Hashtogram restored(n, 1.0, params, 4242);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  ASSERT_TRUE(left.Merge(restored).ok());
  seq.Finalize();
  left.Finalize();
  for (uint64_t v = 0; v < 1000; v += 37) {
    EXPECT_EQ(left.Estimate(DomainItem(v)), seq.Estimate(DomainItem(v)));
  }
}

TEST(MergeableState, CountMeanSketchMergeAndSnapshotMatchSequential) {
  CmsParams params;
  params.rows = 8;
  params.width = 64;
  const uint64_t n = 20000;
  CountMeanSketch seq(n, 1.0, params, 99);
  CountMeanSketch left(n, 1.0, params, 99);
  CountMeanSketch right(n, 1.0, params, 99);

  Rng rng(8);
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem x(rng.Bernoulli(0.4) ? 5 : rng.UniformU64(500));
    const CmsReport r = seq.Encode(x, rng);
    seq.Aggregate(r);
    (i % 2 ? left : right).Aggregate(r);
  }
  std::string snapshot;
  ASSERT_TRUE(right.SerializeState(&snapshot).ok());
  CountMeanSketch restored(n, 1.0, params, 99);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  ASSERT_TRUE(left.Merge(restored).ok());
  seq.Finalize();
  left.Finalize();
  for (uint64_t v = 0; v < 500; v += 17) {
    EXPECT_EQ(left.Estimate(DomainItem(v)), seq.Estimate(DomainItem(v)));
  }
}

// --------------------------------------------- sharded protocol end-to-end --

TEST(ShardedProtocols, TreeHistShardedRunMatchesSequential) {
  TreeHistParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-2;
  const uint64_t n = 1 << 16;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 91);

  auto sequential = std::move(TreeHist::Create(p)).value();
  const auto seq_res = std::move(sequential.Run(w.database, 7)).value();

  p.num_shards = 4;
  auto sharded = std::move(TreeHist::Create(p)).value();
  const auto shard_res = std::move(sharded.Run(w.database, 7)).value();

  ASSERT_EQ(shard_res.entries.size(), seq_res.entries.size());
  for (size_t i = 0; i < seq_res.entries.size(); ++i) {
    EXPECT_EQ(shard_res.entries[i].item, seq_res.entries[i].item);
    EXPECT_EQ(shard_res.entries[i].estimate, seq_res.entries[i].estimate);
  }
}

TEST(ShardedProtocols, PrivateExpanderSketchShardedRunMatchesSequential) {
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-3;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  const uint64_t n = 1 << 15;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 23);

  auto sequential = std::move(PrivateExpanderSketch::Create(p)).value();
  const auto seq_res = std::move(sequential.Run(w.database, 9)).value();

  p.num_shards = 4;
  auto sharded = std::move(PrivateExpanderSketch::Create(p)).value();
  const auto shard_res = std::move(sharded.Run(w.database, 9)).value();

  ASSERT_EQ(shard_res.entries.size(), seq_res.entries.size());
  for (size_t i = 0; i < seq_res.entries.size(); ++i) {
    EXPECT_EQ(shard_res.entries[i].item, seq_res.entries[i].item);
    EXPECT_EQ(shard_res.entries[i].estimate, seq_res.entries[i].estimate);
  }
}

TEST(ShardedProtocols, PesCreateValidatesNumShards) {
  PesParams p;
  p.domain_bits = 16;
  p.num_shards = 0;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
  p.num_shards = 257;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
}

TEST(ShardedProtocols, BitstogramShardedRunMatchesSequential) {
  BitstogramParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-2;
  const uint64_t n = 1 << 15;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 47);

  auto sequential = std::move(Bitstogram::Create(p)).value();
  const auto seq_res = std::move(sequential.Run(w.database, 3)).value();

  p.num_shards = 4;
  auto sharded = std::move(Bitstogram::Create(p)).value();
  const auto shard_res = std::move(sharded.Run(w.database, 3)).value();

  ASSERT_EQ(shard_res.entries.size(), seq_res.entries.size());
  for (size_t i = 0; i < seq_res.entries.size(); ++i) {
    EXPECT_EQ(shard_res.entries[i].item, seq_res.entries[i].item);
    EXPECT_EQ(shard_res.entries[i].estimate, seq_res.entries[i].estimate);
  }
}

}  // namespace
}  // namespace ldphh
