// Tests for src/server/sharded_aggregator: merge-equivalence of sharded
// ingestion against the single-threaded baseline, durable self-describing
// checkpoints, and the mergeable-state layer of every frequency oracle.

#include "src/server/sharded_aggregator.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/freq/count_mean_sketch.h"
#include "src/freq/direct_encoding.h"
#include "src/freq/hadamard_response.h"
#include "src/freq/hashtogram.h"
#include "src/freq/olh.h"
#include "src/freq/unary_encoding.h"
#include "src/protocols/bitstogram.h"
#include "src/protocols/private_expander_sketch.h"
#include "src/protocols/registry.h"
#include "src/protocols/treehist.h"
#include "src/server/report_codec.h"
#include "src/workload/workload.h"
#include "tests/serving_test_util.h"

namespace ldphh {
namespace {

using testutil::DirectAggregate;
using testutil::EncodeSkewedReports;
using testutil::ExpectSameEstimates;
using testutil::MustCreate;
using testutil::OlhConfig;
using testutil::OracleConfig;

std::string TempLogPath(const std::string& name) {
  return testing::TempDir() + "/ldphh_" + name + "_" +
         std::to_string(::getpid()) + ".ckpt";
}

std::vector<WireReport> EncodeReports(const ProtocolConfig& config, uint64_t n,
                                      uint64_t seed) {
  return EncodeSkewedReports(config, n, seed,
                             config.GetUintOr("domain", 0));
}

std::unique_ptr<ShardedAggregator> MustCreateSharded(
    const ProtocolConfig& config, const ShardedAggregatorOptions& opts) {
  auto agg_or = ShardedAggregator::Create(config, opts);
  EXPECT_TRUE(agg_or.ok()) << agg_or.status().ToString();
  LDPHH_CHECK(agg_or.ok(), "test: ShardedAggregator::Create failed");
  return std::move(agg_or).value();
}

// The acceptance-criterion test: an 8-shard ingest must produce estimates
// identical (==, not near) to the single-threaded aggregation.
void CheckMergeEquivalence(const ProtocolConfig& config, uint64_t n) {
  const auto reports = EncodeReports(config, n, 1234);

  auto baseline = DirectAggregate(config, reports, 0, reports.size());

  ShardedAggregatorOptions opts;
  opts.num_shards = 8;
  opts.queue_capacity = 1024;
  opts.batch_size = 128;
  auto agg = MustCreateSharded(config, opts);
  ASSERT_TRUE(agg->Start().ok());
  // Route everything through the wire codec in chunks, as a client would —
  // stamped with the protocol's wire id.
  const size_t chunk = 4096;
  for (size_t lo = 0; lo < reports.size(); lo += chunk) {
    const size_t hi = std::min(lo + chunk, reports.size());
    const std::vector<WireReport> slice(reports.begin() + lo,
                                        reports.begin() + hi);
    ASSERT_TRUE(
        agg->SubmitWire(EncodeReportBatch(slice, agg->wire_id())).ok());
  }
  auto merged_or = agg->Finish();
  ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
  auto merged = std::move(merged_or).value();

  const IngestStats stats = agg->Stats();
  EXPECT_EQ(stats.submitted, n);
  EXPECT_EQ(stats.rejected, 0u);
  uint64_t per_shard_total = 0;
  for (uint64_t c : stats.per_shard) per_shard_total += c;
  EXPECT_EQ(per_shard_total, n);

  ExpectSameEstimates(*merged, *baseline);
}

constexpr uint64_t kNumReports = 100000;

TEST(ShardedAggregator, MergeEquivalenceDirectEncoding) {
  CheckMergeEquivalence(OracleConfig("k_rr", 64, 1.0), kNumReports);
}

TEST(ShardedAggregator, MergeEquivalenceHadamardResponse) {
  CheckMergeEquivalence(OracleConfig("hadamard_response", 64, 1.0),
                        kNumReports);
}

TEST(ShardedAggregator, MergeEquivalenceUnaryEncoding) {
  CheckMergeEquivalence(OracleConfig("rappor_unary", 32, 1.0), kNumReports);
}

TEST(ShardedAggregator, MergeEquivalenceOlh) {
  CheckMergeEquivalence(OlhConfig(16, 1.0, /*seed=*/77), kNumReports);
}

TEST(ShardedAggregator, CheckpointRestoreResumesMidIngest) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 128, 1.5);
  const uint64_t n = 100000;
  const auto reports = EncodeReports(config, n, 99);

  auto baseline = DirectAggregate(config, reports, 0, reports.size());

  const std::string path = TempLogPath("resume");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 8;

  // Phase 1: ingest the first 60%, checkpoint, then "crash" (the oracle
  // state is simply dropped on the floor).
  const size_t cut = 60000;
  {
    auto agg = MustCreateSharded(config, opts);
    ASSERT_TRUE(agg->Start().ok());
    for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(agg->Submit(reports[i]).ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());
  }

  // Phase 2: recover and replay only the post-checkpoint reports. The log
  // itself names the protocol; the aggregator only has to match it.
  {
    auto agg = MustCreateSharded(config, opts);
    CheckpointReader log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg->RestoreCheckpoint(log).ok());
    ASSERT_TRUE(agg->Start().ok());
    for (size_t i = cut; i < n; ++i) ASSERT_TRUE(agg->Submit(reports[i]).ok());
    auto merged_or = agg->Finish();
    ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
    auto merged = std::move(merged_or).value();

    const IngestStats stats = agg->Stats();
    EXPECT_EQ(stats.restored, cut);
    EXPECT_EQ(stats.submitted, n - cut);

    ExpectSameEstimates(*merged, *baseline);
  }
  std::remove(path.c_str());
}

TEST(ShardedAggregator, CheckpointDuringConcurrentIngestLosesNothing) {
  // The API allows producers to keep submitting while WriteCheckpoint runs;
  // the snapshot pause must neither lose nor double-count reports.
  const ProtocolConfig config = OracleConfig("k_rr", 32, 1.0);
  const uint64_t n = 50000;
  const auto reports = EncodeReports(config, n, 33);

  auto baseline = DirectAggregate(config, reports, 0, reports.size());

  const std::string path = TempLogPath("concurrent");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 4;
  opts.queue_capacity = 256;
  auto agg = MustCreateSharded(config, opts);
  ASSERT_TRUE(agg->Start().ok());

  CheckpointWriter log;
  ASSERT_TRUE(log.Open(path).ok());
  std::thread producer([&] {
    for (const WireReport& r : reports) ASSERT_TRUE(agg->Submit(r).ok());
  });
  for (int c = 0; c < 5; ++c) ASSERT_TRUE(agg->WriteCheckpoint(log).ok());
  producer.join();

  auto merged_or = agg->Finish();
  ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
  auto merged = std::move(merged_or).value();
  ExpectSameEstimates(*merged, *baseline);
  // Every checkpoint in the log must itself be restorable.
  auto fresh = MustCreateSharded(config, opts);
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_TRUE(fresh->RestoreCheckpoint(reader).ok());
  EXPECT_LE(fresh->Stats().restored, n);
  std::remove(path.c_str());
}

TEST(ShardedAggregator, RestorePicksLastCompleteCheckpoint) {
  const ProtocolConfig config = OracleConfig("k_rr", 16, 1.0);
  const auto reports = EncodeReports(config, 2000, 5);
  const std::string path = TempLogPath("last");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 4;
  {
    auto agg = MustCreateSharded(config, opts);
    ASSERT_TRUE(agg->Start().ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    for (size_t i = 0; i < 1000; ++i) ASSERT_TRUE(agg->Submit(reports[i]).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());
    for (size_t i = 1000; i < 1500; ++i) ASSERT_TRUE(agg->Submit(reports[i]).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());  // Supersedes the first.
  }
  auto agg = MustCreateSharded(config, opts);
  CheckpointReader log;
  ASSERT_TRUE(log.Open(path).ok());
  ASSERT_TRUE(agg->RestoreCheckpoint(log).ok());
  EXPECT_EQ(agg->Stats().restored, 1500u);
  std::remove(path.c_str());
}

TEST(ShardedAggregator, RestoreRejectsShardCountMismatch) {
  const ProtocolConfig config = OracleConfig("k_rr", 16, 1.0);
  const std::string path = TempLogPath("mismatch");
  std::remove(path.c_str());
  {
    ShardedAggregatorOptions opts;
    opts.num_shards = 4;
    auto agg = MustCreateSharded(config, opts);
    ASSERT_TRUE(agg->Start().ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());
  }
  ShardedAggregatorOptions opts;
  opts.num_shards = 2;
  auto agg = MustCreateSharded(config, opts);
  CheckpointReader log;
  ASSERT_TRUE(log.Open(path).ok());
  const Status st = agg->RestoreCheckpoint(log);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("shard count mismatch"), std::string::npos);
  std::remove(path.c_str());
}

// The satellite fix: a checkpoint taken under a different protocol config
// (here: different epsilon, same everything else) must be refused with a
// descriptive error, not silently restored into mismatched oracles.
TEST(ShardedAggregator, RestoreRejectsConfigMismatch) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  const std::string path = TempLogPath("cfg_mismatch");
  std::remove(path.c_str());
  ShardedAggregatorOptions opts;
  opts.num_shards = 2;
  {
    auto agg = MustCreateSharded(config, opts);
    ASSERT_TRUE(agg->Start().ok());
    const auto reports = EncodeReports(config, 500, 8);
    for (const WireReport& r : reports) ASSERT_TRUE(agg->Submit(r).ok());
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(agg->WriteCheckpoint(log).ok());
  }
  // Same oracle type and domain, different epsilon: without the embedded
  // config this restore would silently produce garbage estimates.
  const ProtocolConfig other = OracleConfig("hadamard_response", 32, 2.0);
  auto agg = MustCreateSharded(other, opts);
  CheckpointReader log;
  ASSERT_TRUE(log.Open(path).ok());
  const Status st = agg->RestoreCheckpoint(log);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("config mismatch"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(ShardedAggregator, SubmitWireRejectsCorruptBatchWhole) {
  const ProtocolConfig config = OracleConfig("k_rr", 16, 1.0);
  const auto reports = EncodeReports(config, 100, 8);
  auto agg = MustCreateSharded(config, ShardedAggregatorOptions{});
  ASSERT_TRUE(agg->Start().ok());
  std::string wire = EncodeReportBatch(reports, agg->wire_id());
  wire[wire.size() - 1] ^= 0x1;
  EXPECT_EQ(agg->SubmitWire(wire).code(), StatusCode::kDecodeFailure);
  ASSERT_TRUE(agg->Drain().ok());
  EXPECT_EQ(agg->Stats().submitted, 0u);
}

// The wire stamp: a batch encoded for one protocol is rejected by a server
// serving another, before a single report is decoded into the shards. An
// unstamped (id 0) batch is accepted for backward compatibility.
TEST(ShardedAggregator, SubmitWireRejectsWrongProtocolStamp) {
  const ProtocolConfig krr = OracleConfig("k_rr", 16, 1.0);
  const auto reports = EncodeReports(krr, 100, 8);

  auto agg = MustCreateSharded(OracleConfig("hadamard_response", 16, 1.0),
                               ShardedAggregatorOptions{});
  ASSERT_TRUE(agg->Start().ok());
  const uint16_t krr_id =
      ProtocolRegistry::Global().WireIdOf("k_rr").value();
  const Status st = agg->SubmitWire(EncodeReportBatch(reports, krr_id));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("stamped for protocol"), std::string::npos);
  ASSERT_TRUE(agg->Drain().ok());
  EXPECT_EQ(agg->Stats().submitted, 0u);

  // Unstamped batches still flow (the reports even happen to be the right
  // width here — k_rr and hadamard_response over domain 16 differ).
  EXPECT_TRUE(agg->SubmitWire(EncodeReportBatch(reports)).ok());
}

// ------------------------------------------------ oracle state snapshots --

using FoFactory = std::function<std::unique_ptr<SmallDomainFO>()>;

// Encodes n reports with sequential user indices through a fresh client-side
// oracle instance (so OLH's implicit user numbering matches the index).
std::vector<WireReport> EncodeFoReports(const FoFactory& factory, uint64_t n,
                                        uint64_t seed) {
  auto client = factory();
  const uint64_t domain = client->domain_size();
  Rng rng(seed);
  std::vector<WireReport> reports(n);
  for (uint64_t i = 0; i < n; ++i) {
    // Skewed input so estimates are far from uniform.
    const uint64_t value = rng.Bernoulli(0.3) ? 0 : rng.UniformU64(domain);
    reports[i].user_index = i;
    reports[i].report = client->Encode(value, rng);
  }
  return reports;
}

TEST(MergeableState, SerializeRestoreRoundTripsEveryOracle) {
  const std::vector<FoFactory> factories = {
      [] { return std::make_unique<DirectEncodingFO>(32, 1.0); },
      [] { return std::make_unique<HadamardResponseFO>(32, 1.0); },
      [] { return std::make_unique<UnaryEncodingFO>(24, 1.0); },
      [] { return std::make_unique<OlhFO>(24, 1.0, 13); },
  };
  for (const auto& factory : factories) {
    const auto reports = EncodeFoReports(factory, 5000, 21);
    auto a = factory();
    ASSERT_TRUE(a->Mergeable());
    for (size_t i = 0; i < 2500; ++i) {
      a->AggregateIndexed(reports[i].user_index, reports[i].report);
    }
    std::string snapshot;
    ASSERT_TRUE(a->SerializeState(&snapshot).ok());

    auto b = factory();
    ASSERT_TRUE(b->RestoreState(snapshot).ok());
    for (size_t i = 2500; i < 5000; ++i) {
      a->AggregateIndexed(reports[i].user_index, reports[i].report);
      b->AggregateIndexed(reports[i].user_index, reports[i].report);
    }
    a->Finalize();
    b->Finalize();
    for (uint64_t v = 0; v < a->domain_size(); ++v) {
      EXPECT_EQ(a->Estimate(v), b->Estimate(v))
          << a->Name() << " value " << v;
    }
  }
}

TEST(MergeableState, RestoreRejectsWrongOracleAndTruncation) {
  DirectEncodingFO de(32, 1.0);
  UnaryEncodingFO ue(32, 1.0);
  std::string snapshot;
  ASSERT_TRUE(de.SerializeState(&snapshot).ok());
  EXPECT_FALSE(ue.RestoreState(snapshot).ok());
  for (size_t len = 0; len < snapshot.size(); ++len) {
    EXPECT_FALSE(de.RestoreState(std::string_view(snapshot.data(), len)).ok())
        << "prefix " << len;
  }
}

TEST(MergeableState, MergeRejectsConfigMismatch) {
  DirectEncodingFO a(32, 1.0);
  DirectEncodingFO b(32, 2.0);
  DirectEncodingFO c(16, 1.0);
  UnaryEncodingFO u(32, 1.0);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
  EXPECT_FALSE(a.Merge(u).ok());
  DirectEncodingFO d(32, 1.0);
  EXPECT_TRUE(a.Merge(d).ok());
}

TEST(MergeableState, HashtogramMergeAndSnapshotMatchSequential) {
  HashtogramParams params;
  params.rows = 8;
  params.table_size = 256;
  const uint64_t n = 20000;
  Hashtogram seq(n, 1.0, params, 4242);
  Hashtogram left(n, 1.0, params, 4242);
  Hashtogram right(n, 1.0, params, 4242);

  Rng rng(7);
  std::vector<std::pair<uint64_t, FoReport>> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem x(rng.Bernoulli(0.4) ? 3 : rng.UniformU64(1000));
    reports.emplace_back(i, seq.Encode(i, x, rng));
  }
  for (const auto& [i, r] : reports) {
    seq.Aggregate(i, r);
    (i % 2 ? left : right).Aggregate(i, r);
  }
  // Snapshot-restore `right` into a fresh instance before merging, so the
  // durable path is exercised too.
  std::string snapshot;
  ASSERT_TRUE(right.SerializeState(&snapshot).ok());
  Hashtogram restored(n, 1.0, params, 4242);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  ASSERT_TRUE(left.Merge(restored).ok());
  seq.Finalize();
  left.Finalize();
  for (uint64_t v = 0; v < 1000; v += 37) {
    EXPECT_EQ(left.Estimate(DomainItem(v)), seq.Estimate(DomainItem(v)));
  }
}

TEST(MergeableState, CountMeanSketchMergeAndSnapshotMatchSequential) {
  CmsParams params;
  params.rows = 8;
  params.width = 64;
  const uint64_t n = 20000;
  CountMeanSketch seq(n, 1.0, params, 99);
  CountMeanSketch left(n, 1.0, params, 99);
  CountMeanSketch right(n, 1.0, params, 99);

  Rng rng(8);
  for (uint64_t i = 0; i < n; ++i) {
    const DomainItem x(rng.Bernoulli(0.4) ? 5 : rng.UniformU64(500));
    const CmsReport r = seq.Encode(x, rng);
    seq.Aggregate(r);
    (i % 2 ? left : right).Aggregate(r);
  }
  std::string snapshot;
  ASSERT_TRUE(right.SerializeState(&snapshot).ok());
  CountMeanSketch restored(n, 1.0, params, 99);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  ASSERT_TRUE(left.Merge(restored).ok());
  seq.Finalize();
  left.Finalize();
  for (uint64_t v = 0; v < 500; v += 17) {
    EXPECT_EQ(left.Estimate(DomainItem(v)), seq.Estimate(DomainItem(v)));
  }
}

// --------------------------------------------- sharded protocol end-to-end --

TEST(ShardedProtocols, TreeHistShardedRunMatchesSequential) {
  TreeHistParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-2;
  const uint64_t n = 1 << 16;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 91);

  auto sequential = std::move(TreeHist::Create(p)).value();
  const auto seq_res = std::move(sequential.Run(w.database, 7)).value();

  p.num_shards = 4;
  auto sharded = std::move(TreeHist::Create(p)).value();
  const auto shard_res = std::move(sharded.Run(w.database, 7)).value();

  ASSERT_EQ(shard_res.entries.size(), seq_res.entries.size());
  for (size_t i = 0; i < seq_res.entries.size(); ++i) {
    EXPECT_EQ(shard_res.entries[i].item, seq_res.entries[i].item);
    EXPECT_EQ(shard_res.entries[i].estimate, seq_res.entries[i].estimate);
  }
}

TEST(ShardedProtocols, PrivateExpanderSketchShardedRunMatchesSequential) {
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-3;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  const uint64_t n = 1 << 15;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 23);

  auto sequential = std::move(PrivateExpanderSketch::Create(p)).value();
  const auto seq_res = std::move(sequential.Run(w.database, 9)).value();

  p.num_shards = 4;
  auto sharded = std::move(PrivateExpanderSketch::Create(p)).value();
  const auto shard_res = std::move(sharded.Run(w.database, 9)).value();

  ASSERT_EQ(shard_res.entries.size(), seq_res.entries.size());
  for (size_t i = 0; i < seq_res.entries.size(); ++i) {
    EXPECT_EQ(shard_res.entries[i].item, seq_res.entries[i].item);
    EXPECT_EQ(shard_res.entries[i].estimate, seq_res.entries[i].estimate);
  }
}

TEST(ShardedProtocols, PesCreateValidatesNumShards) {
  PesParams p;
  p.domain_bits = 16;
  p.num_shards = 0;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
  p.num_shards = 257;
  EXPECT_FALSE(PrivateExpanderSketch::Create(p).ok());
}

TEST(ShardedProtocols, BitstogramShardedRunMatchesSequential) {
  BitstogramParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.beta = 1e-2;
  const uint64_t n = 1 << 15;
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 47);

  auto sequential = std::move(Bitstogram::Create(p)).value();
  const auto seq_res = std::move(sequential.Run(w.database, 3)).value();

  p.num_shards = 4;
  auto sharded = std::move(Bitstogram::Create(p)).value();
  const auto shard_res = std::move(sharded.Run(w.database, 3)).value();

  ASSERT_EQ(shard_res.entries.size(), seq_res.entries.size());
  for (size_t i = 0; i < seq_res.entries.size(); ++i) {
    EXPECT_EQ(shard_res.entries[i].item, seq_res.entries[i].item);
    EXPECT_EQ(shard_res.entries[i].estimate, seq_res.entries[i].estimate);
  }
}

// Pins that WriteCheckpoint refuses to acknowledge a checkpoint whose final
// Sync failed (the [[nodiscard]] sweep hardened this path; a swallowed sync
// error here would ack a checkpoint power loss can erase) — and that the
// aggregator still checkpoints fine once the fault clears.
TEST(ShardedAggregatorCheckpoint, WriteCheckpointSurfacesSyncFailure) {
  const ProtocolConfig config = OlhConfig(/*domain=*/64, /*eps=*/1.0,
                                          /*seed=*/7);
  ShardedAggregatorOptions opts;
  opts.num_shards = 2;
  auto agg = MustCreateSharded(config, opts);
  ASSERT_TRUE(agg->Start().ok());
  for (const WireReport& r : EncodeReports(config, 256, 11)) {
    ASSERT_TRUE(agg->Submit(r).ok());
  }

  FaultInjectingFileSystem fs;
  CheckpointWriter log;
  ASSERT_TRUE(log.Open("/fault/agg.ckpt", &fs).ok());
  fs.set_fail_file_syncs(true);
  EXPECT_FALSE(agg->WriteCheckpoint(log).ok());

  // The fault clears: ingestion was never wedged and the checkpoint lands.
  fs.set_fail_file_syncs(false);
  for (const WireReport& r : EncodeReports(config, 64, 12)) {
    ASSERT_TRUE(agg->Submit(r).ok());
  }
  EXPECT_TRUE(agg->WriteCheckpoint(log).ok());
  ASSERT_TRUE(agg->Finish().ok());
}

}  // namespace
}  // namespace ldphh
