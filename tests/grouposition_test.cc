// Tests for src/ldp/grouposition: Theorems 4.2, 4.3, 4.5 — advanced
// grouposition bounds vs exact group-privacy curves.

#include <gtest/gtest.h>

#include <cmath>

#include "src/ldp/grouposition.h"
#include "src/ldp/randomizer.h"

namespace ldphh {
namespace {

TEST(Grouposition, FormulaMatchesTheorem42) {
  // eps' = k eps^2/2 + eps sqrt(2 k ln(1/delta)).
  const double eps = 0.2;
  const int k = 100;
  const double delta = 1e-6;
  const double expect =
      k * eps * eps / 2.0 + eps * std::sqrt(2.0 * k * std::log(1.0 / delta));
  EXPECT_NEAR(AdvancedGroupositionEpsilon(eps, k, delta), expect, 1e-12);
}

TEST(Grouposition, BeatsNaiveForLargeGroups) {
  // The sqrt(k) regime: for small eps and large k, advanced << naive.
  const double eps = 0.05;
  const double delta = 1e-9;
  for (int k : {100, 1000, 10000}) {
    EXPECT_LT(AdvancedGroupositionEpsilon(eps, k, delta),
              NaiveGroupEpsilon(eps, k))
        << k;
  }
}

TEST(Grouposition, NaiveWinsForTinyGroups) {
  // For k = 1 the concentration overhead makes the bound worse than eps.
  EXPECT_GT(AdvancedGroupositionEpsilon(0.1, 1, 1e-9), NaiveGroupEpsilon(0.1, 1));
}

TEST(Grouposition, SqrtKScaling) {
  // Quadrupling k should roughly double eps' in the sqrt-dominated regime.
  const double eps = 0.01;
  const double delta = 1e-6;
  const double e1 = AdvancedGroupositionEpsilon(eps, 1000, delta);
  const double e4 = AdvancedGroupositionEpsilon(eps, 4000, delta);
  EXPECT_NEAR(e4 / e1, 2.0, 0.1);
}

TEST(Grouposition, ExactGroupEpsilonIsBelowTheorem42Bound) {
  // The theorem is an upper bound on the exact (PLD-derived) group epsilon
  // whenever delta' absorbs the tail. Sweep k and eps.
  for (double eps : {0.1, 0.2, 0.4}) {
    BinaryRandomizedResponse rr(eps);
    for (int k : {4, 16, 64, 256}) {
      const double delta = 1e-6;
      const double bound = AdvancedGroupositionEpsilon(eps, k, delta);
      const double exact = ExactGroupEpsilon(rr, 0, 1, k, delta);
      EXPECT_LE(exact, bound + 1e-9) << "eps=" << eps << " k=" << k;
    }
  }
}

TEST(Grouposition, ExactGroupEpsilonIsBelowNaiveToo) {
  BinaryRandomizedResponse rr(0.3);
  for (int k : {2, 8, 32}) {
    EXPECT_LE(ExactGroupEpsilon(rr, 0, 1, k, 1e-9),
              NaiveGroupEpsilon(0.3, k) + 1e-9);
  }
}

TEST(Grouposition, ExactDeltaAtTheoremEpsilonIsSmall) {
  // Plugging the Theorem 4.2 eps' back into the exact delta gives <= delta.
  const double eps = 0.25;
  BinaryRandomizedResponse rr(eps);
  for (int k : {16, 64}) {
    for (double delta : {1e-3, 1e-6}) {
      const double ep = AdvancedGroupositionEpsilon(eps, k, delta);
      EXPECT_LE(ExactGroupDelta(rr, 0, 1, k, ep), delta + 1e-12)
          << "k=" << k << " delta=" << delta;
    }
  }
}

TEST(Grouposition, ApproxVariantAccumulatesDelta) {
  // Theorem 4.3: total delta = delta + k delta'.
  const auto g = AdvancedGroupositionApprox(0.2, 1e-6, 50, 1e-8);
  EXPECT_NEAR(g.delta_total, 1e-6 + 50 * 1e-8, 1e-15);
  EXPECT_NEAR(g.eps_prime, AdvancedGroupositionEpsilon(0.2, 50, 1e-8), 1e-12);
}

TEST(MaxInformation, FormulaMatchesTheorem45) {
  const double eps = 0.1;
  const uint64_t n = 10000;
  const double beta = 1e-4;
  EXPECT_NEAR(MaxInformationBound(eps, n, beta),
              n * eps * eps / 2.0 + eps * std::sqrt(2.0 * n * std::log(1.0 / beta)),
              1e-9);
}

TEST(MaxInformation, BeatsCentralBoundInSmallEpsRegime) {
  // The paper's point: nε²/2 + ε sqrt(2n ln 1/β) << εn for eps << 1 at
  // fixed beta — the local model gives better max-information than the
  // central-model pure-DP bound without the product-distribution caveat.
  const uint64_t n = 1000000;
  const double beta = 1e-6;
  for (double eps : {0.001, 0.01}) {
    EXPECT_LT(MaxInformationBound(eps, n, beta),
              CentralMaxInformationBound(eps, n))
        << eps;
  }
}

TEST(MaxInformation, MonotoneInNAndBeta) {
  EXPECT_LT(MaxInformationBound(0.1, 1000, 1e-3),
            MaxInformationBound(0.1, 4000, 1e-3));
  EXPECT_LT(MaxInformationBound(0.1, 1000, 1e-2),
            MaxInformationBound(0.1, 1000, 1e-6));
}

TEST(Grouposition, ExactCurveShowsSqrtKBehaviour) {
  // Fix target delta; the exact group epsilon of k-fold RR should grow
  // sublinearly: eps'(4k) < 2.5 * eps'(k) in the concentration regime.
  const double eps = 0.1;
  BinaryRandomizedResponse rr(eps);
  const double delta = 1e-6;
  const double e16 = ExactGroupEpsilon(rr, 0, 1, 16, delta);
  const double e64 = ExactGroupEpsilon(rr, 0, 1, 64, delta);
  EXPECT_LT(e64, 2.5 * e16);
  EXPECT_GT(e64, e16);  // Still increasing.
}

TEST(Grouposition, DegenerateKZero) {
  EXPECT_NEAR(AdvancedGroupositionEpsilon(1.0, 0, 1e-6), 0.0, 1e-12);
  EXPECT_EQ(NaiveGroupEpsilon(1.0, 0), 0.0);
}

}  // namespace
}  // namespace ldphh
