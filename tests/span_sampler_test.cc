// Tests for src/obs/span.h: exact tallies, top-N retention and ordering
// under shuffled synthetic durations, the per-span children bound, the
// null-family no-op contract, concurrent recording (the TSan target for
// the span hot path), and /spanz-shaped DumpJson validated with the
// in-tree JSON reader.

#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_reader.h"

namespace ldphh {
namespace obs {
namespace {

SpanRecord Synthetic(uint64_t duration_ns, uint64_t arg0 = 0) {
  SpanRecord r;
  r.start_ns = 1;
  r.duration_ns = duration_ns;
  r.arg0 = arg0;
  return r;
}

// ----------------------------------------------------------- family tallies

TEST(SpanFamily, CountAndTotalAreExact) {
  SpanSampler sampler;
  auto family = sampler.Family("test.op");
  for (uint64_t d = 1; d <= 100; ++d) family->Record(Synthetic(d));
  EXPECT_EQ(family->Count(), 100u);
  EXPECT_EQ(family->TotalNs(), 5050u);
}

TEST(SpanFamily, TopNRetainsTheSlowestInOrder) {
  SpanSampler sampler(/*per_family_capacity=*/8);
  auto family = sampler.Family("test.op");

  // Durations 1..100 in shuffled order; the retained set must still be
  // exactly {100, 99, ..., 93}, slowest first.
  std::vector<uint64_t> durations(100);
  std::iota(durations.begin(), durations.end(), 1);
  std::mt19937 shuffle_rng(7);
  std::shuffle(durations.begin(), durations.end(), shuffle_rng);
  for (const uint64_t d : durations) family->Record(Synthetic(d, /*arg0=*/d));

  const std::vector<SpanRecord> slowest = family->Slowest();
  ASSERT_EQ(slowest.size(), 8u);
  for (size_t i = 0; i < slowest.size(); ++i) {
    EXPECT_EQ(slowest[i].duration_ns, 100 - i);
    EXPECT_EQ(slowest[i].arg0, 100 - i);  // Context rides with the record.
  }
}

TEST(SpanFamily, ClearResetsTalliesAndRetention) {
  SpanSampler sampler;
  auto family = sampler.Family("test.op");
  for (uint64_t d = 1; d <= 50; ++d) family->Record(Synthetic(d));
  family->Clear();
  EXPECT_EQ(family->Count(), 0u);
  EXPECT_EQ(family->TotalNs(), 0u);
  EXPECT_TRUE(family->Slowest().empty());
  // Retention warms up again after Clear: a small span is retained once
  // the set is no longer full of larger ones.
  family->Record(Synthetic(3));
  ASSERT_EQ(family->Slowest().size(), 1u);
  EXPECT_EQ(family->Slowest()[0].duration_ns, 3u);
}

TEST(SpanSampler, FamilyHandleIsStable) {
  SpanSampler sampler;
  auto a = sampler.Family("same");
  auto b = sampler.Family("same");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(sampler.Families().size(), 1u);
}

// ------------------------------------------------------------- span object

TEST(Span, ReportsIntoFamilyWithChildren) {
  SpanSampler sampler;
  auto family = sampler.Family("test.op");
  {
    Span span(family.get());
    span.set_args(42, 7);
    span.set_detail("why it was slow");
    { auto child = span.Child("step_a"); }
    span.AddChild("step_b", 123);
  }
  EXPECT_EQ(family->Count(), 1u);
  const std::vector<SpanRecord> slowest = family->Slowest();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].arg0, 42u);
  EXPECT_EQ(slowest[0].arg1, 7u);
  EXPECT_EQ(slowest[0].detail, "why it was slow");
  ASSERT_EQ(slowest[0].children.size(), 2u);
  EXPECT_EQ(slowest[0].children[0].name, "step_a");
  EXPECT_EQ(slowest[0].children[1].name, "step_b");
  EXPECT_EQ(slowest[0].children[1].duration_ns, 123u);
  EXPECT_EQ(slowest[0].dropped_children, 0u);
}

TEST(Span, ChildrenBeyondCapAreCountedNotKept) {
  SpanSampler sampler;
  auto family = sampler.Family("test.op");
  {
    Span span(family.get());
    for (size_t i = 0; i < SpanSampler::kMaxChildrenPerSpan + 5; ++i) {
      span.AddChild("c", 1);
    }
  }
  const std::vector<SpanRecord> slowest = family->Slowest();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].children.size(), SpanSampler::kMaxChildrenPerSpan);
  EXPECT_EQ(slowest[0].dropped_children, 5u);
}

TEST(Span, NullFamilyIsANoOp) {
  Span span(nullptr);
  span.set_args(1, 2);
  span.set_detail("ignored");
  span.AddChild("c", 1);
  { auto child = span.Child("scoped"); }
  EXPECT_EQ(span.ElapsedNs(), 0u);
  // Destruction must not touch any family.
}

// ------------------------------------------------------ concurrency (TSan)

TEST(SpanFamily, ConcurrentRecordsKeepExactTalliesAndGlobalMax) {
  SpanSampler sampler;
  auto family = sampler.Family("test.op");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&family, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        // Distinct duration per (thread, i): the global max is known.
        family->Record(Synthetic(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(family->Count(), uint64_t{kThreads} * kPerThread);
  const std::vector<SpanRecord> slowest = family->Slowest();
  ASSERT_FALSE(slowest.empty());
  EXPECT_EQ(slowest[0].duration_ns, uint64_t{kThreads} * kPerThread);
}

// ------------------------------------------------------------- exposition

TEST(SpanSampler, DumpJsonIsValidAndComplete) {
  SpanSampler sampler;
  auto fast = sampler.Family("alpha");
  auto slow = sampler.Family("beta");
  fast->Record(Synthetic(10));
  {
    Span span(slow.get());
    span.set_args(3);
    span.set_detail("quote \" and backslash \\");
    span.AddChild("fsync", 99);
  }

  JsonValue doc;
  const Status st = ParseJson(sampler.DumpJson(), &doc);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const JsonValue* families = doc.Find("families");
  ASSERT_NE(families, nullptr);
  ASSERT_TRUE(families->is_array());
  ASSERT_EQ(families->array.size(), 2u);  // Name-sorted: alpha, beta.
  EXPECT_EQ(families->array[0].Find("name")->string_value, "alpha");
  EXPECT_DOUBLE_EQ(families->array[0].Find("count")->number_value, 1.0);
  const JsonValue& beta = families->array[1];
  EXPECT_EQ(beta.Find("name")->string_value, "beta");
  const JsonValue* slowest = beta.Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_EQ(slowest->array.size(), 1u);
  const JsonValue& record = slowest->array[0];
  EXPECT_DOUBLE_EQ(record.Find("arg0")->number_value, 3.0);
  EXPECT_EQ(record.Find("detail")->string_value,
            "quote \" and backslash \\");
  const JsonValue* children = record.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 1u);
  EXPECT_EQ(children->array[0].Find("name")->string_value, "fsync");
}

}  // namespace
}  // namespace obs
}  // namespace ldphh
