// Tests for src/common: Status/StatusOr, Rng, math_util, bit_util, crc32,
// timer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/crc32.h"
#include "src/common/math_util.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/timer.h"

namespace ldphh {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryMethodsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::DecodeFailure("y").code(), StatusCode::kDecodeFailure);
  EXPECT_EQ(Status::Internal("z").message(), "z");
  EXPECT_EQ(Status::ResourceExhausted("r").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::OutOfRange("o").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("f").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(Status::InvalidArgument("x").ok());
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(), "InvalidArgument: bad");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::DecodeFailure("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDecodeFailure);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformU64(bound), bound);
  }
}

TEST(Rng, UniformU64CoversSmallRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformU64RoughlyUniform) {
  Rng rng(99);
  const int buckets = 8;
  const int draws = 80000;
  int counts[8] = {0};
  for (int i = 0; i < draws; ++i) ++counts[rng.UniformU64(buckets)];
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], draws / buckets, 5 * std::sqrt(draws / buckets));
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliMean) {
  Rng rng(13);
  for (double p : {0.1, 0.5, 0.9}) {
    int ones = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) ones += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(ones) / trials, p, 0.02);
  }
}

TEST(Rng, SignIsBalanced) {
  Rng rng(17);
  int sum = 0;
  for (int i = 0; i < 40000; ++i) sum += rng.Sign();
  EXPECT_LT(std::abs(sum), 1200);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng parent(3);
  Rng child = parent.Fork();
  EXPECT_NE(parent(), child());
}

TEST(Rng, ForkByStreamIdIsDeterministic) {
  Rng a(3), b(3);
  // Same parent state + same stream id => identical child stream; the
  // parent is not advanced by the fork.
  Rng child_a = a.Fork(7);
  Rng child_b = b.Fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a(), child_b());
  EXPECT_EQ(a(), b());
}

TEST(Rng, ForkByStreamIdYieldsDistinctStreams) {
  Rng parent(11);
  std::set<uint64_t> firsts;
  for (uint64_t stream = 0; stream < 256; ++stream) {
    firsts.insert(parent.Fork(stream)());
  }
  EXPECT_EQ(firsts.size(), 256u);
  // Fork(id) must not collide with the parent's own next output.
  EXPECT_NE(parent.Fork(0)(), parent());
}

TEST(Rng, ForkByStreamIdDiffersAfterReseed) {
  Rng a(1), b(2);
  EXPECT_NE(a.Fork(5)(), b.Fork(5)());
}

TEST(Rng, Mix64IsInjectiveOnSample) {
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 4096; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 4096u);
}

// ------------------------------------------------------------- math_util --

TEST(MathUtil, LogFactorialMatchesSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathUtil, LogBinomialMatchesPascal) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 5)), 252.0, 1e-6);
  EXPECT_EQ(LogBinomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(MathUtil, BinomialPmfSumsToOne) {
  for (double p : {0.1, 0.5, 0.7}) {
    double acc = 0;
    for (uint64_t k = 0; k <= 30; ++k) acc += std::exp(LogBinomialPmf(30, k, p));
    EXPECT_NEAR(acc, 1.0, 1e-9);
  }
}

TEST(MathUtil, BinomialTailsComplement) {
  // Pr[X >= k] + Pr[X <= k-1] = 1.
  for (uint64_t k : {1ull, 5ull, 15ull}) {
    EXPECT_NEAR(BinomialUpperTail(20, k, 0.3) + BinomialLowerTail(20, k - 1, 0.3),
                1.0, 1e-9);
  }
}

TEST(MathUtil, BinomialTailEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 11, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(10, 10, 0.5), 1.0);
}

TEST(MathUtil, ChernoffBoundsExactTails) {
  // The Chernoff bound must upper-bound the exact binomial tail.
  const uint64_t n = 200;
  const double p = 0.4;
  const double mu = n * p;
  for (double alpha : {0.1, 0.2, 0.5}) {
    const double exact_upper =
        BinomialUpperTail(n, static_cast<uint64_t>(std::ceil(mu * (1 + alpha))), p);
    EXPECT_LE(exact_upper, ChernoffUpper(mu, alpha) + 1e-12);
    const double exact_lower = BinomialLowerTail(
        n, static_cast<uint64_t>(std::floor(mu * (1 - alpha))), p);
    EXPECT_LE(exact_lower, ChernoffLower(mu, alpha) + 1e-12);
  }
}

TEST(MathUtil, PoissonPmfSumsToOne) {
  for (double mu : {0.5, 3.0, 20.0}) {
    double acc = 0;
    for (uint64_t k = 0; k < 200; ++k) acc += std::exp(LogPoissonPmf(mu, k));
    EXPECT_NEAR(acc, 1.0, 1e-9);
  }
}

TEST(MathUtil, PoissonTailBoundsExact) {
  // Theorem 3.10 bound vs exact Poisson lower tail.
  const double mu = 50.0;
  for (double alpha : {0.2, 0.4}) {
    double exact = 0;
    for (uint64_t k = 0; k <= static_cast<uint64_t>(mu * (1 - alpha)); ++k) {
      exact += std::exp(LogPoissonPmf(mu, k));
    }
    EXPECT_LE(exact, PoissonTailBound(mu, alpha) + 1e-12);
  }
}

TEST(MathUtil, BinaryEntropyProperties) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_NEAR(BinaryEntropy(0.5), 1.0, 1e-12);
  EXPECT_NEAR(BinaryEntropy(0.3), BinaryEntropy(0.7), 1e-12);  // Symmetry.
  EXPECT_GT(BinaryEntropy(0.5), BinaryEntropy(0.2));           // Peak at 1/2.
}

TEST(MathUtil, LogSumExpPair) {
  EXPECT_NEAR(LogSumExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(LogSumExp(ninf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(LogSumExp(1.5, ninf), 1.5);
  // Extreme magnitudes do not overflow.
  EXPECT_NEAR(LogSumExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtil, LogSumExpVector) {
  std::vector<double> xs = {std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(xs), std::log(6.0), 1e-12);
}

TEST(MathUtil, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(MathUtil, TotalVariationBasics) {
  EXPECT_DOUBLE_EQ(TotalVariation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_NEAR(TotalVariation({0.6, 0.4}, {0.4, 0.6}), 0.2, 1e-12);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(17), 32u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(17), 5);
  EXPECT_EQ(CeilLog2(uint64_t{1} << 40), 40);
}

TEST(MathUtil, BinomialAntiConcentrationValidityWindow) {
  // Returns 0 outside the validity window, positive inside.
  EXPECT_EQ(BinomialAntiConcentrationLower(1000, 0.5, 1.0), 0.0);   // t too small.
  EXPECT_EQ(BinomialAntiConcentrationLower(1000, 0.5, 400.0), 0.0);  // Too big.
  EXPECT_GT(BinomialAntiConcentrationLower(1000, 0.5, 100.0), 0.0);
}

TEST(MathUtil, BinomialAntiConcentrationIsLowerBound) {
  // Theorem A.4 shape: exp(-9t^2/np) <= exact Pr[X <= np - t].
  const uint64_t n = 400;
  const double p = 0.5;
  const double np = n * p;
  for (double t : {30.0, 50.0, 80.0}) {
    const double bound = BinomialAntiConcentrationLower(n, p, t);
    const double exact = BinomialLowerTail(n, static_cast<uint64_t>(np - t), p);
    EXPECT_LE(bound, exact + 1e-12) << "t=" << t;
  }
}

// -------------------------------------------------------------- bit_util --

TEST(BitUtil, HadamardEntryBasics) {
  EXPECT_EQ(HadamardEntry(0, 0), 1);
  EXPECT_EQ(HadamardEntry(1, 1), -1);
  EXPECT_EQ(HadamardEntry(1, 2), 1);
  EXPECT_EQ(HadamardEntry(3, 3), 1);  // popcount(3&3)=2 even.
}

TEST(BitUtil, HadamardRowsOrthogonal) {
  // For a, b distinct in [T], sum_l H[l,a] H[l,b] = 0 when T is a power of 2.
  const uint64_t T = 16;
  for (uint64_t a = 0; a < T; ++a) {
    for (uint64_t b = 0; b < T; ++b) {
      int acc = 0;
      for (uint64_t l = 0; l < T; ++l) {
        acc += HadamardEntry(l, a) * HadamardEntry(l, b);
      }
      EXPECT_EQ(acc, a == b ? static_cast<int>(T) : 0);
    }
  }
}

TEST(DomainItem, BitSetGet) {
  DomainItem x;
  x.SetBit(0, 1);
  x.SetBit(63, 1);
  x.SetBit(64, 1);
  x.SetBit(255, 1);
  EXPECT_EQ(x.Bit(0), 1);
  EXPECT_EQ(x.Bit(1), 0);
  EXPECT_EQ(x.Bit(63), 1);
  EXPECT_EQ(x.Bit(64), 1);
  EXPECT_EQ(x.Bit(255), 1);
  x.SetBit(63, 0);
  EXPECT_EQ(x.Bit(63), 0);
}

TEST(DomainItem, ByteSetGet) {
  DomainItem x;
  x.SetByte(0, 0xab);
  x.SetByte(7, 0xcd);
  x.SetByte(8, 0xef);
  x.SetByte(31, 0x12);
  EXPECT_EQ(x.Byte(0), 0xab);
  EXPECT_EQ(x.Byte(7), 0xcd);
  EXPECT_EQ(x.Byte(8), 0xef);
  EXPECT_EQ(x.Byte(31), 0x12);
  EXPECT_EQ(x.Byte(1), 0);
}

TEST(DomainItem, TruncateZeroesHighBits) {
  DomainItem x;
  for (int i = 0; i < 4; ++i) x.limbs[i] = ~uint64_t{0};
  x.Truncate(20);
  EXPECT_EQ(x.limbs[0], (uint64_t{1} << 20) - 1);
  EXPECT_EQ(x.limbs[1], 0u);
  x = DomainItem();
  for (int i = 0; i < 4; ++i) x.limbs[i] = ~uint64_t{0};
  x.Truncate(130);
  EXPECT_EQ(x.limbs[2], uint64_t{3});
  EXPECT_EQ(x.limbs[3], 0u);
}

TEST(DomainItem, BytesRoundtrip) {
  Rng rng(21);
  for (int width : {8, 16, 20, 64, 100, 128, 256}) {
    DomainItem x;
    for (auto& l : x.limbs) l = rng();
    x.Truncate(width);
    const DomainItem y = DomainItem::FromBytes(x.ToBytes(width), width);
    EXPECT_EQ(x, y) << "width=" << width;
  }
}

TEST(DomainItem, StringRoundtrip) {
  const std::string s = "www.example.com";
  const DomainItem x = DomainItem::FromString(s, 160);
  EXPECT_EQ(x.ToString(160), s);
}

TEST(DomainItem, StringTruncatesToWidth) {
  const DomainItem x = DomainItem::FromString("abcdefgh", 32);
  EXPECT_EQ(x.ToString(32), "abcd");
}

TEST(DomainItem, ComparisonOperators) {
  DomainItem a(1), b(2);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a != b);
  DomainItem hi;
  hi.limbs[3] = 1;
  EXPECT_TRUE(a < hi);  // High limb dominates.
}

TEST(DomainItem, FingerprintDistinguishes) {
  std::set<uint64_t> fps;
  for (uint64_t i = 0; i < 1000; ++i) fps.insert(DomainItem(i).Fingerprint());
  EXPECT_EQ(fps.size(), 1000u);
}

TEST(DomainItem, ToHexFormat) {
  EXPECT_EQ(DomainItem(0xabc).ToHex(),
            std::string(48, '0') + "0000000000000abc");
}

// ----------------------------------------------------------------- timer --

TEST(Timer, MeasuresNonNegativeElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Nanos(), 0);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

// ----------------------------------------------------------------- crc32 --

TEST(Crc32, MatchesKnownVectors) {
  // RFC 3720 / iSCSI CRC-32C test vectors.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46dd794eu);
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
}

TEST(Crc32, HardwareAndSoftwarePathsAgree) {
  // The dispatched implementation (hardware where the CPU offers it) must
  // equal the table implementation on every length, alignment, and seed.
  Rng rng(2026);
  std::vector<uint8_t> buf(4096 + 16);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.UniformU64(256));
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{8},
                     size_t{9}, size_t{63}, size_t{64}, size_t{1000},
                     size_t{4096}}) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{5}}) {
      const uint32_t sw = internal::Crc32cSoftware(buf.data() + offset, len);
      EXPECT_EQ(Crc32c(buf.data() + offset, len), sw)
          << "len " << len << " offset " << offset;
      const uint32_t seeded_sw =
          internal::Crc32cSoftware(buf.data() + offset, len, 0xdeadbeefu);
      EXPECT_EQ(Crc32c(buf.data() + offset, len, 0xdeadbeefu), seeded_sw)
          << "seeded, len " << len << " offset " << offset;
    }
  }
}

TEST(Crc32, ExtendOverConcatenationMatchesWhole) {
  const std::string a = "checkpoint ", b = "record";
  const std::string whole = a + b;
  const uint32_t split = Crc32c(b.data(), b.size(), Crc32c(a.data(), a.size()));
  EXPECT_EQ(split, Crc32c(whole.data(), whole.size()));
}

TEST(Crc32, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc32(MaskCrc32(crc)), crc);
    EXPECT_NE(MaskCrc32(crc), crc);
  }
}

}  // namespace
}  // namespace ldphh
