// Tests for src/server/report_codec: the client-report wire format.

#include "src/server/report_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/random.h"

namespace ldphh {
namespace {

std::vector<WireReport> SampleReports(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WireReport> reports(n);
  for (size_t i = 0; i < n; ++i) {
    reports[i].user_index = (i % 7 == 0) ? rng() : i;  // Mix small and huge.
    const int num_bits = static_cast<int>(rng.UniformU64(65));  // [0, 64].
    reports[i].report.num_bits = num_bits;
    reports[i].report.bits =
        num_bits == 64 ? rng() : (rng() & ((uint64_t{1} << num_bits) - 1));
  }
  return reports;
}

TEST(ReportCodec, RoundTripsEmptyBatch) {
  const std::string wire = EncodeReportBatch({});
  EXPECT_EQ(wire.size(), kReportBatchHeaderSize);
  std::vector<WireReport> out;
  ASSERT_TRUE(DecodeReportBatch(wire, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ReportCodec, RoundTripsMixedWidths) {
  const auto reports = SampleReports(1000, 17);
  const std::string wire = EncodeReportBatch(reports);
  std::vector<WireReport> out;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeReportBatch(wire, &out, &consumed).ok());
  EXPECT_EQ(consumed, wire.size());
  ASSERT_EQ(out.size(), reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(out[i].user_index, reports[i].user_index);
    EXPECT_EQ(out[i].report.bits, reports[i].report.bits);
    EXPECT_EQ(out[i].report.num_bits, reports[i].report.num_bits);
  }
}

TEST(ReportCodec, StreamsBackToBackBatches) {
  const auto a = SampleReports(40, 1);
  const auto b = SampleReports(17, 2);
  const std::string wire = EncodeReportBatch(a) + EncodeReportBatch(b);
  std::vector<WireReport> out;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeReportBatch(wire, &out, &consumed).ok());
  EXPECT_EQ(out.size(), a.size());
  ASSERT_TRUE(
      DecodeReportBatch(std::string_view(wire).substr(consumed), &out).ok());
  EXPECT_EQ(out.size(), a.size() + b.size());
}

TEST(ReportCodec, EncodeMasksBitsAboveDeclaredWidth) {
  WireReport r;
  r.user_index = 3;
  r.report.bits = ~uint64_t{0};
  r.report.num_bits = 4;
  const std::string wire = EncodeReportBatch({r});
  std::vector<WireReport> out;
  ASSERT_TRUE(DecodeReportBatch(wire, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].report.bits, uint64_t{0xf});
}

TEST(ReportCodec, ClampFoReportBoundsNumBits) {
  FoReport bad;
  bad.bits = ~uint64_t{0};
  bad.num_bits = 200;
  const FoReport clamped = ClampFoReport(bad);
  EXPECT_EQ(clamped.num_bits, 64);
  EXPECT_EQ(clamped.bits, ~uint64_t{0});
  bad.num_bits = -3;
  EXPECT_EQ(ClampFoReport(bad).num_bits, 0);
  EXPECT_EQ(ClampFoReport(bad).bits, 0u);
  bad.num_bits = 7;
  EXPECT_EQ(ClampFoReport(bad).bits, uint64_t{0x7f});
}

TEST(ReportCodec, RejectsBadMagic) {
  std::string wire = EncodeReportBatch(SampleReports(3, 5));
  wire[0] ^= 0x55;
  std::vector<WireReport> out;
  const Status st = DecodeReportBatch(wire, &out);
  EXPECT_EQ(st.code(), StatusCode::kDecodeFailure);
  EXPECT_TRUE(out.empty());
}

TEST(ReportCodec, RejectsTruncatedBuffers) {
  const std::string wire = EncodeReportBatch(SampleReports(20, 6));
  // Every proper prefix must fail cleanly, never crash or partially decode.
  for (size_t len = 0; len < wire.size(); ++len) {
    std::vector<WireReport> out;
    const Status st =
        DecodeReportBatch(std::string_view(wire.data(), len), &out);
    EXPECT_FALSE(st.ok()) << "prefix length " << len;
    EXPECT_TRUE(out.empty()) << "prefix length " << len;
  }
}

TEST(ReportCodec, RejectsCorruptPayload) {
  const std::string wire = EncodeReportBatch(SampleReports(50, 7));
  // Flip each payload byte in turn: the CRC must catch every one.
  for (size_t pos = kReportBatchHeaderSize; pos < wire.size(); ++pos) {
    std::string bad = wire;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
    std::vector<WireReport> out;
    const Status st = DecodeReportBatch(bad, &out);
    EXPECT_EQ(st.code(), StatusCode::kDecodeFailure) << "flipped byte " << pos;
  }
}

TEST(ReportCodec, RejectsCountExceedingPayload) {
  // A batch whose header claims 2^32-1 records over an empty (CRC-valid)
  // payload must be rejected before any allocation sized by the count.
  std::string wire;
  const uint32_t magic = kReportBatchMagic;
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>((magic >> (8 * i)) & 0xff));
  wire.push_back('\x01');  // version.
  wire.push_back('\x00');
  wire.push_back('\x00');  // flags.
  wire.push_back('\x00');
  for (int i = 0; i < 4; ++i) wire.push_back('\xff');  // count = 0xffffffff.
  for (int i = 0; i < 4; ++i) wire.push_back('\x00');  // payload_len = 0.
  const uint32_t crc = MaskCrc32(Crc32c(nullptr, 0));
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));

  std::vector<WireReport> out;
  const Status st = DecodeReportBatch(wire, &out);
  EXPECT_EQ(st.code(), StatusCode::kDecodeFailure);
  EXPECT_NE(st.message().find("count"), std::string::npos);
}

TEST(ReportCodec, RejectsOversizedNumBits) {
  // Hand-craft a record claiming 65 bits; the batch CRC is recomputed so
  // only the num_bits validation can reject it.
  std::string payload;
  payload.push_back('\x00');  // user_index = 0.
  payload.push_back('\x41');  // num_bits = 65.
  for (int i = 0; i < 9; ++i) payload.push_back('\xff');
  std::string wire;
  wire.reserve(kReportBatchHeaderSize + payload.size());
  const uint32_t magic = kReportBatchMagic;
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>((magic >> (8 * i)) & 0xff));
  wire.push_back('\x01');  // version = 1.
  wire.push_back('\x00');
  wire.push_back('\x00');  // flags.
  wire.push_back('\x00');
  wire.push_back('\x01');  // count = 1.
  wire.push_back('\x00');
  wire.push_back('\x00');
  wire.push_back('\x00');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  const uint32_t crc = MaskCrc32(Crc32c(payload.data(), payload.size()));
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  wire += payload;

  std::vector<WireReport> out;
  const Status st = DecodeReportBatch(wire, &out);
  EXPECT_EQ(st.code(), StatusCode::kDecodeFailure);
  EXPECT_NE(st.message().find("num_bits"), std::string::npos);
}

TEST(ReportCodec, RoundTripsProtocolStamp) {
  const auto reports = SampleReports(10, 3);
  // Unstamped batches report id 0 (the legacy wire format byte-for-byte).
  uint16_t id = 99;
  std::vector<WireReport> out;
  ASSERT_TRUE(
      DecodeReportBatch(EncodeReportBatch(reports), &out, nullptr, &id).ok());
  EXPECT_EQ(id, 0);
  // A stamped batch carries its protocol id through the header.
  out.clear();
  ASSERT_TRUE(
      DecodeReportBatch(EncodeReportBatch(reports, 7), &out, nullptr, &id)
          .ok());
  EXPECT_EQ(id, 7);
  EXPECT_EQ(out.size(), reports.size());
}

}  // namespace
}  // namespace ldphh
