// Tests for src/codes/reed_solomon: the errors-and-erasures codec backing
// the Theorem 3.6 construction (DESIGN.md substitution 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/codes/reed_solomon.h"
#include "src/common/random.h"

namespace ldphh {
namespace {

std::vector<uint8_t> RandomMessage(int k, Rng& rng) {
  std::vector<uint8_t> m(static_cast<size_t>(k));
  for (auto& b : m) b = static_cast<uint8_t>(rng());
  return m;
}

// Picks `count` distinct positions in [0, n).
std::vector<int> RandomPositions(int n, int count, Rng& rng) {
  std::vector<int> pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pos[static_cast<size_t>(i)] = i;
  for (int i = 0; i < count; ++i) {
    const int j = i + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n - i)));
    std::swap(pos[static_cast<size_t>(i)], pos[static_cast<size_t>(j)]);
  }
  pos.resize(static_cast<size_t>(count));
  return pos;
}

TEST(ReedSolomon, CleanRoundtrip) {
  Rng rng(1);
  ReedSolomon rs(16, 8);
  const auto msg = RandomMessage(8, rng);
  const auto cw = rs.Encode(msg);
  ASSERT_EQ(cw.size(), 16u);
  // Systematic: message is the codeword prefix.
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), cw.begin()));
  const auto dec = rs.Decode(cw);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), msg);
}

TEST(ReedSolomon, AccessorsAndCapability) {
  ReedSolomon rs(20, 8);
  EXPECT_EQ(rs.n(), 20);
  EXPECT_EQ(rs.k(), 8);
  EXPECT_EQ(rs.max_errors(), 6);
}

TEST(ReedSolomon, EverySingleErrorPositionCorrectable) {
  Rng rng(2);
  ReedSolomon rs(12, 6);
  const auto msg = RandomMessage(6, rng);
  const auto cw = rs.Encode(msg);
  for (int p = 0; p < 12; ++p) {
    auto corrupted = cw;
    corrupted[static_cast<size_t>(p)] ^= 0x3c;
    const auto dec = rs.Decode(corrupted);
    ASSERT_TRUE(dec.ok()) << "pos=" << p;
    EXPECT_EQ(dec.value(), msg) << "pos=" << p;
  }
}

TEST(ReedSolomon, EverySingleErasurePositionCorrectable) {
  Rng rng(3);
  ReedSolomon rs(12, 6);
  const auto msg = RandomMessage(6, rng);
  const auto cw = rs.Encode(msg);
  for (int p = 0; p < 12; ++p) {
    auto corrupted = cw;
    corrupted[static_cast<size_t>(p)] = 0;  // Erased symbol value unknown.
    const auto dec = rs.Decode(corrupted, {p});
    ASSERT_TRUE(dec.ok()) << "pos=" << p;
    EXPECT_EQ(dec.value(), msg) << "pos=" << p;
  }
}

TEST(ReedSolomon, WrongLengthRejected) {
  ReedSolomon rs(10, 4);
  const auto dec = rs.Decode(std::vector<uint8_t>(9, 0));
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReedSolomon, BadErasurePositionRejected) {
  Rng rng(4);
  ReedSolomon rs(10, 4);
  const auto cw = rs.Encode(RandomMessage(4, rng));
  EXPECT_FALSE(rs.Decode(cw, {10}).ok());
  EXPECT_FALSE(rs.Decode(cw, {-1}).ok());
}

TEST(ReedSolomon, TooManyErasuresRejected) {
  Rng rng(5);
  ReedSolomon rs(10, 6);
  const auto cw = rs.Encode(RandomMessage(6, rng));
  std::vector<int> erasures = {0, 1, 2, 3, 4};  // n - k = 4 < 5.
  EXPECT_FALSE(rs.Decode(cw, erasures).ok());
}

TEST(ReedSolomon, BeyondCapabilityDetectedNotMisdecoded) {
  // With max_errors()+1 random errors, the decoder must either fail or
  // (rarely, if the corruption lands on another codeword's ball) return a
  // different message — but must never return the original silently wrong.
  Rng rng(6);
  ReedSolomon rs(16, 10);  // Corrects 3.
  const auto msg = RandomMessage(10, rng);
  const auto cw = rs.Encode(msg);
  int failures = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    auto corrupted = cw;
    for (int p : RandomPositions(16, 5, rng)) {
      uint8_t delta = static_cast<uint8_t>(rng());
      if (delta == 0) delta = 1;
      corrupted[static_cast<size_t>(p)] ^= delta;
    }
    const auto dec = rs.Decode(corrupted);
    if (!dec.ok()) ++failures;
  }
  // Decoding 5 errors with capability 3 should almost always be detected.
  EXPECT_GT(failures, trials * 8 / 10);
}

// Parameterized sweep: (n, k, errors, erasures) within 2e + s <= n - k.
using RsCase = std::tuple<int, int, int, int>;

class ReedSolomonSweep : public ::testing::TestWithParam<RsCase> {};

TEST_P(ReedSolomonSweep, CorrectsWithinBudget) {
  const auto [n, k, errors, erasures] = GetParam();
  ASSERT_LE(2 * errors + erasures, n - k);
  Rng rng(static_cast<uint64_t>(n * 1000003 + k * 997 + errors * 31 + erasures));
  ReedSolomon rs(n, k);
  for (int trial = 0; trial < 20; ++trial) {
    const auto msg = RandomMessage(k, rng);
    auto cw = rs.Encode(msg);
    const auto positions = RandomPositions(n, errors + erasures, rng);
    std::vector<int> erased(positions.begin(), positions.begin() + erasures);
    for (int i = erasures; i < errors + erasures; ++i) {
      uint8_t delta = static_cast<uint8_t>(rng());
      if (delta == 0) delta = 1;
      cw[static_cast<size_t>(positions[static_cast<size_t>(i)])] ^= delta;
    }
    for (int p : erased) cw[static_cast<size_t>(p)] = static_cast<uint8_t>(rng());
    const auto dec = rs.Decode(cw, erased);
    ASSERT_TRUE(dec.ok()) << "n=" << n << " k=" << k << " e=" << errors
                          << " s=" << erasures << " trial=" << trial << ": "
                          << dec.status().ToString();
    EXPECT_EQ(dec.value(), msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budget, ReedSolomonSweep,
    ::testing::Values(
        // The URL-code shapes used by the protocols.
        RsCase{8, 2, 0, 0}, RsCase{8, 2, 1, 0}, RsCase{8, 2, 2, 0},
        RsCase{8, 2, 3, 0}, RsCase{8, 2, 0, 6}, RsCase{8, 2, 1, 4},
        RsCase{8, 2, 2, 2}, RsCase{16, 8, 0, 0}, RsCase{16, 8, 4, 0},
        RsCase{16, 8, 0, 8}, RsCase{16, 8, 2, 4}, RsCase{16, 8, 3, 2},
        RsCase{32, 16, 8, 0}, RsCase{32, 16, 0, 16}, RsCase{32, 16, 5, 6},
        RsCase{64, 32, 16, 0}, RsCase{64, 32, 10, 12},
        // Extreme rates.
        RsCase{255, 1, 127, 0}, RsCase{255, 223, 16, 0}, RsCase{4, 2, 1, 0},
        RsCase{4, 2, 0, 2}, RsCase{255, 128, 60, 7}));

TEST(ReedSolomon, InvalidParametersCheckFail) {
  EXPECT_DEATH(ReedSolomon(1, 1), "");
  EXPECT_DEATH(ReedSolomon(256, 8), "");
  EXPECT_DEATH(ReedSolomon(8, 8), "");
  EXPECT_DEATH(ReedSolomon(8, 0), "");
}

TEST(ReedSolomon, DistinctMessagesDistinctCodewords) {
  Rng rng(9);
  ReedSolomon rs(10, 4);
  std::set<std::vector<uint8_t>> codewords;
  for (int i = 0; i < 200; ++i) {
    codewords.insert(rs.Encode(RandomMessage(4, rng)));
  }
  // Random 32-bit messages essentially never collide in 200 draws.
  EXPECT_GT(codewords.size(), 195u);
}

TEST(ReedSolomon, MinimumDistanceWitness) {
  // MDS property: any two distinct codewords differ in >= n - k + 1 places.
  Rng rng(10);
  ReedSolomon rs(12, 4);
  const auto m1 = RandomMessage(4, rng);
  auto m2 = m1;
  m2[0] ^= 1;
  const auto c1 = rs.Encode(m1);
  const auto c2 = rs.Encode(m2);
  int diff = 0;
  for (size_t i = 0; i < c1.size(); ++i) diff += (c1[i] != c2[i]);
  EXPECT_GE(diff, 12 - 4 + 1);
}

}  // namespace
}  // namespace ldphh
