// Tests for src/ldp/composition: Theorem 5.1 — the shell-composed M~ is
// pure eps~-LDP with eps~ = 6 eps sqrt(k ln(1/beta)) and beta-close to the
// plain k-fold randomized response M.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/random.h"
#include "src/ldp/composition.h"

namespace ldphh {
namespace {

int Hamming(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  int d = 0;
  for (size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]);
  return d;
}

TEST(ShellComposedRR, ShellIsWhereTheoremSaysItIs) {
  const double eps = 0.1;
  const int k = 100;
  const double beta = 0.01;
  ShellComposedRR m(eps, k, beta);
  const double center = k / (std::exp(eps) + 1.0);
  const double radius = std::sqrt(k * std::log(2.0 / beta) / 2.0);
  EXPECT_EQ(m.shell_lo(), static_cast<int>(std::ceil(center - radius)));
  EXPECT_EQ(m.shell_hi(), static_cast<int>(std::floor(center + radius)));
}

TEST(ShellComposedRR, OutOfShellProbBoundedByBeta) {
  // Hoeffding gives Pr[M(x) outside the shell] <= beta; the exact value
  // must respect the bound.
  for (double eps : {0.05, 0.1, 0.2}) {
    for (int k : {50, 200, 800}) {
      ShellComposedRR m(eps, k, 0.01);
      EXPECT_LE(m.OutOfShellProb(), 0.01) << eps << " " << k;
      EXPECT_GT(m.OutOfShellProb(), 0.0);
    }
  }
}

TEST(ShellComposedRR, TvEqualsHalfOutMassDifference) {
  // TV(M~, M) <= Pr[out of shell] (they agree inside).
  ShellComposedRR m(0.1, 100, 0.01);
  EXPECT_LE(m.TvToPlainComposition(), m.OutOfShellProb() + 1e-12);
  EXPECT_GT(m.TvToPlainComposition(), 0.0);
}

TEST(ShellComposedRR, ExactEpsilonWithinTheoremBound) {
  // The crux of Theorem 5.1.
  for (double eps : {0.05, 0.1}) {
    for (int k : {64, 256, 1024}) {
      for (double beta : {0.05, 0.01}) {
        ShellComposedRR m(eps, k, beta);
        EXPECT_LE(m.ExactEpsilon(), m.EpsilonBound() + 1e-9)
            << "eps=" << eps << " k=" << k << " beta=" << beta;
      }
    }
  }
}

TEST(ShellComposedRR, BeatsNaiveCompositionForLargeK) {
  // The whole point: eps~ = O(eps sqrt(k log 1/beta)) << k eps.
  const double eps = 0.05;
  const double beta = 0.01;
  for (int k : {256, 1024, 4096}) {
    ShellComposedRR m(eps, k, beta);
    EXPECT_LT(m.ExactEpsilon(), m.NaiveEpsilon()) << k;
    EXPECT_LT(m.EpsilonBound(), m.NaiveEpsilon()) << k;
  }
}

TEST(ShellComposedRR, ExactEpsilonGrowsLikeSqrtK) {
  const double eps = 0.05;
  const double beta = 0.01;
  ShellComposedRR m1(eps, 256, beta);
  ShellComposedRR m4(eps, 1024, beta);
  const double ratio = m4.ExactEpsilon() / m1.ExactEpsilon();
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);  // Far from the naive factor 4.
}

TEST(ShellComposedRR, ApplyPlainIsPerBitRR) {
  ShellComposedRR m(1.0, 50, 0.01);
  Rng rng(3);
  std::vector<uint8_t> x(50, 1);
  int flips = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    flips += Hamming(m.ApplyPlain(x, rng), x);
  }
  const double flip_prob = 1.0 / (std::exp(1.0) + 1.0);
  EXPECT_NEAR(static_cast<double>(flips) / (trials * 50.0), flip_prob, 0.01);
}

TEST(ShellComposedRR, ApplyOutputsConsistentWithShellReRouting) {
  // Every output of Apply is either in the shell around x, or (rarely)
  // out-of-shell via the uniform re-route; both are valid outputs of M~.
  ShellComposedRR m(0.2, 64, 0.05);
  Rng rng(5);
  std::vector<uint8_t> x(64, 0);
  int in_shell = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const auto y = m.Apply(x, rng);
    const int d = Hamming(y, x);
    in_shell += (d >= m.shell_lo() && d <= m.shell_hi());
  }
  // Out-of-shell probability of M~ equals that of M (the re-route keeps
  // the total mass outside); expect ~ (1 - OutOfShellProb()).
  EXPECT_NEAR(static_cast<double>(in_shell) / trials, 1.0 - m.OutOfShellProb(),
              0.02);
}

TEST(ShellComposedRR, ConditionedOnShellMatchesPlainDistribution) {
  // Theorem 5.1 condition (2): conditioned on the good event, M~(x) is
  // identically distributed to M(x). Empirically compare per-distance
  // histograms inside the shell.
  const double eps = 0.3;
  const int k = 32;
  ShellComposedRR m(eps, k, 0.02);
  Rng rng(7);
  std::vector<uint8_t> x(k, 0);
  std::vector<double> h_tilde(k + 1, 0), h_plain(k + 1, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    ++h_tilde[static_cast<size_t>(Hamming(m.Apply(x, rng), x))];
    ++h_plain[static_cast<size_t>(Hamming(m.ApplyPlain(x, rng), x))];
  }
  for (int d = m.shell_lo(); d <= m.shell_hi(); ++d) {
    const double pt = h_tilde[static_cast<size_t>(d)] / trials;
    const double pp = h_plain[static_cast<size_t>(d)] / trials;
    EXPECT_NEAR(pt, pp, 0.015) << "d=" << d;
  }
}

TEST(ShellComposedRR, LogProbsAreConsistentDistribution) {
  // Sum over the cube of Pr[M~(x)=y] must be 1: sum_d C(k,d) P(d).
  const int k = 40;
  ShellComposedRR m(0.2, k, 0.05);
  double total = 0;
  for (int d = 0; d <= k; ++d) {
    total += std::exp(LogBinomial(static_cast<uint64_t>(k),
                                  static_cast<uint64_t>(d)) +
                      m.LogProbAtDistance(d));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ShellComposedRR, PlainLogProbsAreConsistentDistribution) {
  const int k = 40;
  ShellComposedRR m(0.2, k, 0.05);
  double total = 0;
  for (int d = 0; d <= k; ++d) {
    total += std::exp(LogBinomial(static_cast<uint64_t>(k),
                                  static_cast<uint64_t>(d)) +
                      m.LogPlainProbAtDistance(d));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ShellComposedRR, BruteForceEpsilonMatchesOnTinyK) {
  // For small k, enumerate the whole cube and compute the true epsilon of
  // M~ from LogProbAtDistance; must match ExactEpsilon().
  const int k = 10;
  ShellComposedRR m(0.3, k, 0.2);
  double worst = 0;
  for (int x = 0; x < (1 << k); ++x) {
    for (int xp = 0; xp < (1 << k); ++xp) {
      if (x == xp) continue;
      for (int y = 0; y < (1 << k); ++y) {
        const int da = __builtin_popcount(static_cast<unsigned>(x ^ y));
        const int db = __builtin_popcount(static_cast<unsigned>(xp ^ y));
        worst = std::max(worst, m.LogProbAtDistance(da) - m.LogProbAtDistance(db));
      }
    }
  }
  EXPECT_NEAR(m.ExactEpsilon(), worst, 1e-9);
}

TEST(ShellComposedRR, RejectsBadParameters) {
  EXPECT_DEATH(ShellComposedRR(0.0, 10, 0.01), "");
  EXPECT_DEATH(ShellComposedRR(1.0, 0, 0.01), "");
  EXPECT_DEATH(ShellComposedRR(1.0, 10, 0.0), "");
  EXPECT_DEATH(ShellComposedRR(1.0, 10, 1.0), "");
}

TEST(ShellComposedRR, ApplyRejectsWrongLength) {
  ShellComposedRR m(0.5, 16, 0.05);
  Rng rng(9);
  std::vector<uint8_t> x(15, 0);
  EXPECT_DEATH(m.Apply(x, rng), "");
}

class CompositionSweep
    : public ::testing::TestWithParam<std::tuple<double, int, double>> {};

TEST_P(CompositionSweep, TheoremHoldsAcrossGrid) {
  const auto [eps, k, beta] = GetParam();
  // Theorem 5.1 precondition: eps~ <= 1 (approximately; we allow slack and
  // simply assert the exact epsilon respects the bound).
  ShellComposedRR m(eps, k, beta);
  EXPECT_LE(m.ExactEpsilon(), m.EpsilonBound() + 1e-9);
  EXPECT_LE(m.TvToPlainComposition(), beta + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompositionSweep,
    ::testing::Combine(::testing::Values(0.02, 0.05, 0.1),
                       ::testing::Values(32, 128, 512),
                       ::testing::Values(0.1, 0.02, 0.005)));

}  // namespace
}  // namespace ldphh
