// Tests for src/obs: exact multi-threaded counter/histogram totals (the
// TSan target for the metrics hot path), the log-bucketing error bound,
// registry retire-folding and exposition, the trace ring's bounded memory,
// the shared JSON writer, the privacy-budget ledger, and a snapshot test
// running a miniature serving/storage stack and asserting every exported
// metric name shows up in DumpText().

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/ldp/privacy_loss.h"
#include "src/obs/json_writer.h"
#include "src/obs/trace.h"
#include "src/server/checkpoint_log.h"
#include "src/server/epoch_manager.h"
#include "src/server/sharded_aggregator.h"
#include "src/store/checkpoint_store.h"
#include "src/store/replica_store.h"
#include "tests/serving_test_util.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace obs {
namespace {

// ---------------------------------------------------------------- naming

TEST(MetricNames, LabeledAndBase) {
  EXPECT_EQ(LabeledName("ldphh_q", "shard", "3"), "ldphh_q{shard=\"3\"}");
  EXPECT_EQ(BaseName("ldphh_q{shard=\"3\"}"), "ldphh_q");
  EXPECT_EQ(BaseName("plain_name"), "plain_name");
}

// -------------------------------------------------- concurrency (TSan)

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  auto counter = registry.NewCounter("test_hits_total", "help");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Mix unit and bulk increments.
        counter->Increment(i % 2 == 0 ? 1 : 3);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Per thread: kPerThread/2 ones + kPerThread/2 threes.
  EXPECT_EQ(counter->Value(), kThreads * (kPerThread / 2) * 4);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  MetricsRegistry registry;
  auto hist = registry.NewHistogram("test_lat_ns", "help", "ns");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  // Deterministic value stream shared by the reference and the threads.
  auto value_at = [](uint64_t i) {
    return (i * 2654435761ull) % 3000000ull;  // 0 .. 3ms in ns.
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, value_at] {
      for (uint64_t i = 0; i < kPerThread; ++i) hist->Observe(value_at(i));
    });
  }
  for (auto& t : threads) t.join();

  uint64_t want_sum = 0;
  std::vector<uint64_t> want_buckets(Histogram::kNumBuckets, 0);
  for (uint64_t i = 0; i < kPerThread; ++i) {
    want_sum += value_at(i);
    ++want_buckets[static_cast<size_t>(Histogram::BucketOf(value_at(i)))];
  }
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  EXPECT_EQ(hist->Sum(), kThreads * want_sum);
  const std::vector<uint64_t> got = hist->BucketCounts();
  ASSERT_EQ(got.size(), want_buckets.size());
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < got.size(); ++b) {
    EXPECT_EQ(got[b], kThreads * want_buckets[b]) << "bucket " << b;
    bucket_total += got[b];
  }
  EXPECT_EQ(bucket_total, hist->Count());
}

// ----------------------------------------------------- bucket accuracy

TEST(Histogram, BucketBoundsAndRelativeError) {
  // Exact buckets below kSubBuckets.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int idx = Histogram::BucketOf(v);
    EXPECT_EQ(Histogram::BucketLower(idx), v);
    EXPECT_EQ(Histogram::BucketUpper(idx), v);
  }
  // Contiguity: each bucket starts right after the previous one ends.
  for (int idx = 1; idx < Histogram::kNumBuckets; ++idx) {
    EXPECT_EQ(Histogram::BucketLower(idx), Histogram::BucketUpper(idx - 1) + 1)
        << "index " << idx;
  }
  // Sweep: powers of two, their neighbors, and a pseudorandom spray. Every
  // value must land inside its bucket, and the bucket midpoint must be
  // within 1/16 = 6.25% relative error.
  std::vector<uint64_t> values;
  for (int p = 3; p < 64; ++p) {
    const uint64_t v = 1ull << p;
    values.push_back(v - 1);
    values.push_back(v);
    values.push_back(v + 1);
  }
  uint64_t x = 88172645463325252ull;  // xorshift64
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (const uint64_t v : values) {
    const int idx = Histogram::BucketOf(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets) << "value " << v;
    const uint64_t lo = Histogram::BucketLower(idx);
    const uint64_t hi = Histogram::BucketUpper(idx);
    EXPECT_LE(lo, v) << "value " << v;
    EXPECT_GE(hi, v) << "value " << v;
    const double mid =
        static_cast<double>(lo) + (static_cast<double>(hi - lo)) / 2.0;
    const double rel =
        std::abs(static_cast<double>(v) - mid) / static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / 16.0 + 1e-9) << "value " << v;
  }
}

TEST(Histogram, MaxValueDoesNotOverflowBucketArray) {
  // Regression: BucketOf(2^64-1) = 60*8+15 = 495 must be in range.
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  ASSERT_LT(Histogram::BucketOf(kMax), Histogram::kNumBuckets);
  EXPECT_EQ(Histogram::BucketUpper(Histogram::BucketOf(kMax)), kMax);
  MetricsRegistry registry;
  auto hist = registry.NewHistogram("test_max_ns", "help", "ns");
  hist->Observe(kMax);
  EXPECT_EQ(hist->Count(), 1u);
  EXPECT_EQ(hist->Sum(), kMax);
  EXPECT_EQ(hist->BucketCounts()[static_cast<size_t>(Histogram::BucketOf(
                kMax))],
            1u);
}

TEST(Histogram, QuantileWithinBucketError) {
  MetricsRegistry registry;
  auto hist = registry.NewHistogram("test_q_ns", "help", "ns");
  for (uint64_t v = 1; v <= 10000; ++v) hist->Observe(v);
  EXPECT_NEAR(hist->Quantile(0.5), 5000.0, 5000.0 * 0.0625 + 1.0);
  EXPECT_NEAR(hist->Quantile(0.9), 9000.0, 9000.0 * 0.0625 + 1.0);
  EXPECT_NEAR(hist->Quantile(0.99), 9900.0, 9900.0 * 0.0625 + 1.0);
  auto empty = registry.NewHistogram("test_q_empty_ns", "help", "ns");
  EXPECT_EQ(empty->Quantile(0.5), 0.0);
}

// ------------------------------------------------- registry exposition

TEST(MetricsRegistry, SumsLiveInstrumentsSharingAName) {
  MetricsRegistry registry;
  auto a = registry.NewCounter("shared_total", "help");
  auto b = registry.NewCounter("shared_total", "help");
  a->Increment(3);
  b->Increment(4);
  EXPECT_NE(registry.DumpText().find("shared_total 7"), std::string::npos);
}

TEST(MetricsRegistry, RetireFoldsCountersAndHistogramsDropsGauges) {
  MetricsRegistry registry;
  {
    auto c = registry.NewCounter("churn_total", "help");
    c->Increment(41);
    auto h = registry.NewHistogram("churn_ns", "help", "ns");
    h->Observe(100);
    h->Observe(200);
    auto g = registry.NewGauge("churn_depth", "help");
    g->Set(9.0);
    const std::string live = registry.DumpText();
    EXPECT_NE(live.find("churn_depth 9"), std::string::npos);
  }
  // Counter and histogram totals survive instance death; the gauge family
  // disappears (a dead instance's level is not a fact about the process).
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("churn_total 41"), std::string::npos);
  EXPECT_NE(text.find("churn_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("churn_ns_sum 300"), std::string::npos);
  EXPECT_EQ(text.find("churn_depth"), std::string::npos);

  // A successor instance adds on top of the retired totals.
  auto c2 = registry.NewCounter("churn_total", "help");
  c2->Increment(1);
  EXPECT_NE(registry.DumpText().find("churn_total 42"), std::string::npos);
}

TEST(MetricsRegistry, DumpTextShape) {
  MetricsRegistry registry;
  auto c = registry.NewCounter("ex_total", "counted things", "things");
  c->Increment(2);
  auto g = registry.NewGauge(LabeledName("ex_depth", "shard", "0"),
                             "queue depth", "reports");
  g->Set(1.5);
  auto h = registry.NewHistogram("ex_ns", "latency", "ns");
  h->Observe(5);
  h->Observe(1000);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("# HELP ex_total counted things (things)"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ex_total counter"), std::string::npos);
  EXPECT_NE(text.find("ex_total 2"), std::string::npos);
  // Labeled gauge: HELP/TYPE on the base name, sample on the full name.
  EXPECT_NE(text.find("# TYPE ex_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("ex_depth{shard=\"0\"} 1.5"), std::string::npos);
  // Histogram: cumulative nonempty buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE ex_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("ex_ns_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ex_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ex_ns_sum 1005"), std::string::npos);
  EXPECT_NE(text.find("ex_ns_count 2"), std::string::npos);

  const std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ex_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(MetricsRegistry, ResetForTestingDropsEverything) {
  MetricsRegistry registry;
  auto c = registry.NewCounter("gone_total", "help");
  c->Increment(1);
  registry.ResetForTesting();
  EXPECT_TRUE(registry.Names().empty());
  // The live instrument still works and its later death must not crash.
  c->Increment(1);
  c.reset();
  EXPECT_TRUE(registry.Names().empty());
}

// ------------------------------------------------------------ trace ring

TEST(TraceRing, BoundedMemoryOldestFirstAndDropCount) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.Record("test", "event", "", i, 0);
  }
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, i + 2);  // 0 and 1 were overwritten.
    if (i > 0) {
      EXPECT_GE(events[i].timestamp_ns, events[i - 1].timestamp_ns);
    }
  }
  EXPECT_NE(ring.DumpText().find("test/event"), std::string::npos);
  EXPECT_NE(ring.DumpJson().find("\"dropped\":2"), std::string::npos);
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, TruncatesOversizedDetail) {
  TraceRing ring(2);
  ring.Record("test", "big", std::string(1000, 'x'));
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail.size(), TraceRing::kMaxDetailBytes + 3);
  EXPECT_EQ(events[0].detail.substr(events[0].detail.size() - 3), "...");
}

// ------------------------------------------------------------ JSON writer

TEST(JsonWriter, ShapesAndEscaping) {
  JsonWriter w;
  w.BeginObject()
      .Key("a")
      .String("x\"y\\z\n\x01")
      .Key("n")
      .Uint(5)
      .Key("arr")
      .BeginArray()
      .Int(-3)
      .Double(0.5)
      .Bool(true)
      .Null()
      .EndArray()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"a\":\"x\\\"y\\\\z\\n\\u0001\",\"n\":5,"
            "\"arr\":[-3,0.5,true,null]}");
}

TEST(JsonWriter, FormatDoubleRoundTripsAndRejectsNonFinite) {
  EXPECT_EQ(JsonWriter::FormatDouble(3.0), "3");
  EXPECT_EQ(JsonWriter::FormatDouble(0.5), "0.5");
  EXPECT_EQ(JsonWriter::FormatDouble(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::FormatDouble(HUGE_VAL), "null");
  for (const double v : {0.1, 1.0 / 3.0, 1e300, -2.5e-9}) {
    EXPECT_EQ(std::strtod(JsonWriter::FormatDouble(v).c_str(), nullptr), v);
  }
}

// ----------------------------------------------------- privacy ledger

TEST(PrivacyBudgetLedger, TracksMaxVolumeAndForwardsToHook) {
  PrivacyBudgetLedger ledger;
  std::vector<std::string> hook_scopes;
  double hook_eps_sum = 0.0;
  ledger.SetSpendHook([&](double eps, uint64_t reports,
                          std::string_view scope) {
    hook_scopes.emplace_back(scope);
    hook_eps_sum += eps * static_cast<double>(reports);
  });
  ledger.RecordSpend(0.5, 10, "tenant_a");
  ledger.RecordSpend(0.25, 5);
  EXPECT_DOUBLE_EQ(ledger.MaxEpsilon(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.WeightedEpsilonVolume(), 6.25);
  EXPECT_EQ(ledger.ReportsAccounted(), 15u);
  ASSERT_EQ(hook_scopes.size(), 2u);
  EXPECT_EQ(hook_scopes[0], "tenant_a");
  EXPECT_EQ(hook_scopes[1], "");
  EXPECT_DOUBLE_EQ(hook_eps_sum, 6.25);
  ledger.SetSpendHook(nullptr);
  ledger.RecordSpend(1.0, 1);
  EXPECT_EQ(hook_scopes.size(), 2u);  // Cleared hook no longer fires.
}

TEST(PrivacyBudgetLedger, GlobalLedgerDrivesTheEpsilonGauge) {
  PrivacyBudgetLedger::Global().ResetForTesting();
  PrivacyBudgetLedger::Global().RecordSpend(2.5, 4);
  const std::string text = MetricsRegistry::Global().DumpText();
  EXPECT_NE(text.find("ldphh_privacy_epsilon_spent 2.5"), std::string::npos);
  EXPECT_NE(text.find("ldphh_privacy_reports_accounted_total"),
            std::string::npos);
  PrivacyBudgetLedger::Global().ResetForTesting();
}

// ------------------------------------------- end-to-end exposition sweep

// Runs a miniature instance of every instrumented layer against the global
// registry, then asserts (a) each required metric family is exposed and
// (b) every name the registry reports is actually present in DumpText().
TEST(Exposition, EveryExportedNameAppearsInDumpText) {
  const ProtocolConfig config =
      testutil::OracleConfig("hadamard_response", 64, 0.5);
  const std::vector<WireReport> reports =
      testutil::EncodeSkewedReports(config, 2048, 11, 64);

  // Ingest + checkpoint log: write a checkpoint, restore it elsewhere.
  const std::string ckpt = "/tmp/ldphh_obs_test.ckpt";
  std::remove(ckpt.c_str());
  ShardedAggregatorOptions agg_opts;
  agg_opts.num_shards = 2;
  auto service = std::move(ShardedAggregator::Create(config, agg_opts)).value();
  ASSERT_TRUE(service->Start().ok());
  for (const WireReport& r : reports) ASSERT_TRUE(service->Submit(r).ok());
  ASSERT_TRUE(service->Drain().ok());
  {
    CheckpointWriter log;
    ASSERT_TRUE(log.Open(ckpt).ok());
    ASSERT_TRUE(service->WriteCheckpoint(log).ok());
  }
  auto restored = std::move(ShardedAggregator::Create(config, agg_opts)).value();
  {
    CheckpointReader log;
    ASSERT_TRUE(log.Open(ckpt).ok());
    ASSERT_TRUE(restored->RestoreCheckpoint(log).ok());
  }

  // Store + epochs + replica.
  const std::string dir = "/tmp/ldphh_obs_test_store";
  fs::remove_all(dir);
  CheckpointStoreOptions store_opts;
  store_opts.segment_max_bytes = 8 << 10;
  store_opts.compaction_trigger = 2;
  auto store = std::move(CheckpointStore::Open(dir, store_opts)).value();
  EpochManagerOptions epoch_opts;
  epoch_opts.reports_per_epoch = 512;
  epoch_opts.aggregator.num_shards = 2;
  auto primary =
      std::move(EpochManager::Create(config, store.get(), epoch_opts)).value();
  ASSERT_TRUE(primary->Start().ok());
  for (const WireReport& r : reports) ASSERT_TRUE(primary->Submit(r).ok());
  ASSERT_TRUE(primary->CloseEpoch().ok());
  auto replica = std::move(ReplicaStore::Open(dir, {})).value();

  const std::string text = MetricsRegistry::Global().DumpText();
  for (const char* required : {
           // Ingest.
           "ldphh_ingest_submitted_reports_total",
           "ldphh_ingest_restored_reports_total",
           "ldphh_ingest_batch_aggregate_duration_ns",
           "ldphh_ingest_checkpoint_write_duration_ns",
           "ldphh_ingest_checkpoint_restore_duration_ns",
           "ldphh_ingest_queue_depth{shard=\"0\"}",
           // Checkpoint log (the fsync histogram).
           "ldphh_log_appends_total",
           "ldphh_log_sync_duration_ns",
           // Epochs.
           "ldphh_epoch_close_duration_ns",
           "ldphh_epoch_closed_total",
           // Store.
           "ldphh_store_puts_total",
           "ldphh_store_put_duration_ns",
           "ldphh_store_manifest_installs_total",
           "ldphh_store_manifest_sequence",
           // Replica.
           "ldphh_replica_refreshes_total",
           "ldphh_replica_snapshots_installed_total",
           "ldphh_replica_poll_duration_ns",
           "ldphh_replica_lag_generations",
           // Privacy.
           "ldphh_privacy_epsilon_spent",
           "ldphh_privacy_reports_accounted_total",
       }) {
    EXPECT_NE(text.find(required), std::string::npos)
        << "metric missing from DumpText: " << required;
  }

  // Whatever the registry says it exports must actually be in the text.
  for (const std::string& name : MetricsRegistry::Global().Names()) {
    EXPECT_NE(text.find(name), std::string::npos)
        << "exported name missing from DumpText: " << name;
  }

  ASSERT_TRUE(primary->Close().ok());
  replica.reset();
  store.reset();
  fs::remove_all(dir);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace ldphh
