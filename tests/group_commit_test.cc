// The group-commit lane of CheckpointStore (the leveldb writer-queue
// idiom): deterministic sync-coalescing contract (one fsync for a whole
// batch), failed-group semantics (one bad sync fails every member, trips
// the write-health latch so /healthz goes 503, heals on the next good
// group), crash-abort semantics, single-writer equivalence with the lane
// off, and a multi-writer hammer the TSan CI job runs against the
// leader/follower handoff.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/server/admin_server.h"
#include "src/store/checkpoint_store.h"

namespace ldphh {
namespace {

constexpr char kDir[] = "/faultfs/group";

std::string Blob(uint64_t key, size_t size = 48) {
  std::string b = "group-" + std::to_string(key) + "-";
  while (b.size() < size) b.push_back(static_cast<char>('a' + key % 26));
  return b;
}

CheckpointStoreOptions GroupOptions(FaultInjectingFileSystem* fs,
                                    bool group_commit = true,
                                    size_t segment_max_bytes = 1 << 20) {
  CheckpointStoreOptions o;
  o.segment_max_bytes = segment_max_bytes;
  o.background_compaction = false;
  o.sync_mode = SyncMode::kFull;
  o.file_system = fs;
  o.group_commit = group_commit;
  return o;
}

std::unique_ptr<CheckpointStore> MustOpen(const std::string& dir,
                                          const CheckpointStoreOptions& o) {
  auto store_or = CheckpointStore::Open(dir, o);
  EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
  return std::move(store_or).value();
}

// Minimal HTTP client for the /healthz assertions (the AdminServer always
// closes the connection, so read-to-EOF terminates).
std::string HttpGet(uint16_t port, const std::string& path) {
  const std::string raw = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

int StatusCodeOf(const std::string& response) {
  if (response.size() < 12) return -1;
  return std::atoi(response.substr(9, 3).c_str());
}

// The heart of the perf claim, pinned deterministically: a multi-intent
// batch through the lane costs exactly ONE file sync under kFull, where the
// sequential fallback pays one per intent — and both land the same state.
TEST(GroupCommit, BatchCostsOneSyncWhereSequentialPaysPerIntent) {
  std::vector<StoreWrite> writes(5);
  std::vector<std::string> blobs;
  blobs.reserve(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    blobs.push_back(Blob(i));
    writes[i].key = i;
    writes[i].blob = blobs[i];
  }

  FaultInjectingFileSystem grouped_fs;
  {
    auto store = MustOpen("/faultfs/grouped", GroupOptions(&grouped_fs));
    const uint64_t before = grouped_fs.file_sync_count();
    ASSERT_TRUE(store->Apply(writes).ok());
    EXPECT_EQ(grouped_fs.file_sync_count() - before, 1u);
    const CheckpointStoreStats stats = store->Stats();
    EXPECT_EQ(stats.group_commits, 1u);
    EXPECT_EQ(stats.group_commit_writes, writes.size());
    EXPECT_EQ(stats.entries, writes.size());
  }

  FaultInjectingFileSystem sequential_fs;
  {
    auto store = MustOpen("/faultfs/sequential",
                          GroupOptions(&sequential_fs, /*group_commit=*/false));
    const uint64_t before = sequential_fs.file_sync_count();
    ASSERT_TRUE(store->Apply(writes).ok());
    EXPECT_EQ(sequential_fs.file_sync_count() - before, writes.size());
    const CheckpointStoreStats stats = store->Stats();
    EXPECT_EQ(stats.group_commits, 0u);  // The lane never ran.
    EXPECT_EQ(stats.group_commit_writes, 0u);
    EXPECT_EQ(stats.entries, writes.size());
  }
}

// A batch bigger than group_max_records still commits whole — the bounds
// stop a group from absorbing MORE writers, they never split one member.
TEST(GroupCommit, OversizedBatchCommitsWhole) {
  FaultInjectingFileSystem fs;
  CheckpointStoreOptions o = GroupOptions(&fs);
  o.group_max_records = 4;
  auto store = MustOpen(kDir, o);
  std::vector<std::string> blobs;
  std::vector<StoreWrite> writes(10);
  blobs.reserve(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    blobs.push_back(Blob(i));
    writes[i].key = i;
    writes[i].blob = blobs[i];
  }
  ASSERT_TRUE(store->Apply(writes).ok());
  const CheckpointStoreStats stats = store->Stats();
  EXPECT_EQ(stats.group_commits, 1u);
  EXPECT_EQ(stats.group_commit_writes, writes.size());
  EXPECT_EQ(store->Keys().size(), writes.size());
}

// With a single writer, the lane-on store must land on exactly the state
// the lane-off store lands on for the same script (groups of one, same
// records, same recovered contents after a power loss).
TEST(GroupCommit, SingleWriterMatchesLaneOffStateExactly) {
  const auto script = [](CheckpointStore* store) {
    for (uint64_t k = 0; k < 60; ++k) {
      ASSERT_TRUE(store->Put(k, Blob(k)).ok());
    }
    for (uint64_t k = 0; k < 60; k += 3) {
      ASSERT_TRUE(store->Delete(k).ok());
    }
    for (uint64_t k = 1; k < 60; k += 6) {
      ASSERT_TRUE(store->Put(k, Blob(k + 77)).ok());
    }
  };
  const auto state_of = [](CheckpointStore* store) {
    std::map<uint64_t, std::string> state;
    for (uint64_t key : store->Keys()) {
      std::string blob;
      EXPECT_TRUE(store->Get(key, &blob).ok());
      state[key] = blob;
    }
    return state;
  };

  std::map<uint64_t, std::string> on_state, off_state;
  {
    FaultInjectingFileSystem fs;
    {
      auto store =
          MustOpen("/faultfs/on", GroupOptions(&fs, true, size_t{1} << 11));
      script(store.get());
    }
    fs.SimulatePowerLoss();
    auto recovered =
        MustOpen("/faultfs/on", GroupOptions(&fs, true, size_t{1} << 11));
    on_state = state_of(recovered.get());
  }
  {
    FaultInjectingFileSystem fs;
    {
      auto store =
          MustOpen("/faultfs/off", GroupOptions(&fs, false, size_t{1} << 11));
      script(store.get());
    }
    fs.SimulatePowerLoss();
    auto recovered =
        MustOpen("/faultfs/off", GroupOptions(&fs, false, size_t{1} << 11));
    off_state = state_of(recovered.get());
  }
  EXPECT_EQ(on_state, off_state);
  EXPECT_FALSE(on_state.empty());
}

// One failed group sync surfaces an error Status to EVERY writer parked in
// that group, trips the store write-health latch — /healthz goes 503 and
// names the store — and the latch heals on the next successful group.
TEST(GroupCommit, FailedGroupSyncFailsEveryMemberTripsHealthzAndHeals) {
  auto server_or = AdminServer::Start({});
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).value();
  const uint16_t port = server->port();

  FaultInjectingFileSystem fs;
  const std::string dir = "/faultfs/group-health";
  auto store = MustOpen(dir, GroupOptions(&fs));
  ASSERT_TRUE(store->Put(1, "healthy").ok());
  EXPECT_EQ(StatusCodeOf(HttpGet(port, "/healthz")), 200);

  // The disk stops honoring fsync. Every concurrent writer must see its
  // own error — followers included: the leader's failed sync is theirs too.
  fs.set_fail_file_syncs(true);
  constexpr int kWriters = 6;
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        const uint64_t key = 100 + static_cast<uint64_t>(w);
        if (!store->Put(key, Blob(key)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : writers) t.join();
  }
  EXPECT_EQ(failures.load(), kWriters);
  {
    const std::string response = HttpGet(port, "/healthz");
    EXPECT_EQ(StatusCodeOf(response), 503) << response;
    EXPECT_NE(response.find("store:" + dir), std::string::npos) << response;
  }

  // The fault clears: the next groups commit, every writer is acked, and
  // the health latch heals.
  fs.set_fail_file_syncs(false);
  std::atomic<int> successes{0};
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        const uint64_t key = 200 + static_cast<uint64_t>(w);
        if (store->Put(key, Blob(key)).ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : writers) t.join();
  }
  EXPECT_EQ(successes.load(), kWriters);
  EXPECT_EQ(StatusCodeOf(HttpGet(port, "/healthz")), 200);

  // Nothing acked before the fault was harmed, and the healed writes are
  // durable: a power loss keeps them all.
  store.reset();
  fs.SimulatePowerLoss();
  auto recovered = MustOpen(dir, GroupOptions(&fs));
  std::string got;
  ASSERT_TRUE(recovered->Get(1, &got).ok());
  EXPECT_EQ(got, "healthy");
  for (int w = 0; w < kWriters; ++w) {
    const uint64_t key = 200 + static_cast<uint64_t>(w);
    ASSERT_TRUE(recovered->Get(key, &got).ok()) << "key " << key;
    EXPECT_EQ(got, Blob(key));
  }
}

// An armed group crash point aborts the consuming group AND every writer
// parked behind it, and the store refuses further group writes until
// reopened — the in-memory state no longer matches the log.
TEST(GroupCommit, CrashPointAbortsAllQueuedWritersUntilReopen) {
  FaultInjectingFileSystem fs;
  auto store = MustOpen(kDir, GroupOptions(&fs));
  ASSERT_TRUE(store->Put(1, "before").ok());
  store->set_group_crash_point_for_testing(
      CheckpointStore::GroupCrashPoint::kAfterAppendPreSync);
  EXPECT_FALSE(store->Put(2, "doomed").ok());
  EXPECT_FALSE(store->Put(3, "also down").ok());  // Down until reopen.
  store.reset();

  auto reopened = MustOpen(kDir, GroupOptions(&fs));
  std::string got;
  ASSERT_TRUE(reopened->Get(1, &got).ok());
  EXPECT_EQ(got, "before");
  // The doomed record was never acked; appended-but-unsynced bytes may or
  // may not land (here, no power loss, so the in-memory FS kept them) —
  // either way the value must be exact and the store writable.
  if (reopened->Contains(2)) {
    ASSERT_TRUE(reopened->Get(2, &got).ok());
    EXPECT_EQ(got, "doomed");
  }
  ASSERT_TRUE(reopened->Put(4, "after").ok());
}

// Multi-writer hammer across segment rolls and group bounds (the TSan CI
// target): disjoint per-thread key ranges hammered through Put/Delete/
// Apply, with every intent accounted for in the lane counters and the
// whole state surviving a power loss.
TEST(GroupCommit, HammerNothingLostAndEveryIntentCounted) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;
  constexpr uint64_t kRange = 1000;

  FaultInjectingFileSystem fs;
  CheckpointStoreOptions o = GroupOptions(&fs, true, size_t{1} << 12);
  o.group_max_records = 8;
  auto store = MustOpen(kDir, o);

  std::vector<std::map<uint64_t, std::string>> models(kThreads);
  std::atomic<uint64_t> intents{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::map<uint64_t, std::string>& model = models[t];
        const uint64_t base = static_cast<uint64_t>(t) * kRange;
        for (int i = 0; i < kOpsPerThread; ++i) {
          const uint64_t key = base + static_cast<uint64_t>(i) % 37;
          if (i % 7 == 3) {
            ASSERT_TRUE(store->Delete(key).ok());
            model.erase(key);
            intents.fetch_add(1, std::memory_order_relaxed);
          } else if (i % 7 == 5) {
            const std::string first = Blob(key + 7000);
            const std::string second = Blob(key + 9000);
            std::vector<StoreWrite> batch(2);
            batch[0].key = key;
            batch[0].blob = first;
            batch[1].key = key + 500;
            batch[1].blob = second;
            ASSERT_TRUE(store->Apply(batch).ok());
            model[key] = first;
            model[key + 500] = second;
            intents.fetch_add(2, std::memory_order_relaxed);
          } else {
            ASSERT_TRUE(store->Put(key, Blob(key + i)).ok());
            model[key] = Blob(key + i);
            intents.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_FALSE(testing::Test::HasFatalFailure());

  const CheckpointStoreStats stats = store->Stats();
  EXPECT_EQ(stats.group_commit_writes, intents.load());
  EXPECT_GE(stats.group_commit_writes, stats.group_commits);
  EXPECT_GT(stats.group_commits, 0u);

  std::map<uint64_t, std::string> merged;
  for (const auto& model : models) merged.insert(model.begin(), model.end());
  store.reset();
  fs.SimulatePowerLoss();
  auto recovered = MustOpen(kDir, o);
  std::vector<uint64_t> want_keys;
  for (const auto& [key, blob] : merged) want_keys.push_back(key);
  ASSERT_EQ(recovered->Keys(), want_keys);
  for (const auto& [key, blob] : merged) {
    std::string got;
    ASSERT_TRUE(recovered->Get(key, &got).ok()) << "key " << key;
    EXPECT_EQ(got, blob) << "key " << key;
  }
}

}  // namespace
}  // namespace ldphh
