// Shared helpers for the serving-stack tests: building ProtocolConfigs,
// encoding skewed report streams through registry-created clients, direct
// single-threaded aggregation as ground truth, and bit-for-bit comparison
// of EstimateTopK outputs.

#ifndef LDPHH_TESTS_SERVING_TEST_UTIL_H_
#define LDPHH_TESTS_SERVING_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/protocols/aggregator.h"
#include "src/protocols/registry.h"

namespace ldphh {
namespace testutil {

inline ProtocolConfig OracleConfig(const std::string& name, uint64_t domain,
                                   double eps) {
  ProtocolConfig config(name);
  config.SetUint("domain", domain).SetDouble("eps", eps);
  return config;
}

inline ProtocolConfig OlhConfig(uint64_t domain, double eps, uint64_t seed) {
  return OracleConfig("olh", domain, eps).SetUint("seed", seed);
}

inline std::unique_ptr<Aggregator> MustCreate(const ProtocolConfig& config) {
  auto created_or = CreateAggregator(config);
  EXPECT_TRUE(created_or.ok()) << created_or.status().ToString();
  LDPHH_CHECK(created_or.ok(), "test: CreateAggregator failed");
  return std::move(created_or).value();
}

/// Encodes n reports with sequential user indices through a fresh
/// registry-created client. Values are skewed (30% mass on 0) over
/// [0, value_domain) so estimates are far from uniform.
inline std::vector<WireReport> EncodeSkewedReports(const ProtocolConfig& config,
                                                   uint64_t n, uint64_t seed,
                                                   uint64_t value_domain) {
  auto client = MustCreate(config);
  Rng rng(seed);
  std::vector<WireReport> reports;
  reports.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t value =
        rng.Bernoulli(0.3) ? 0 : rng.UniformU64(value_domain);
    auto report_or = client->Encode(i, DomainItem(value), rng);
    EXPECT_TRUE(report_or.ok()) << report_or.status().ToString();
    LDPHH_CHECK(report_or.ok(), "test: Encode failed");
    reports.push_back(report_or.value());
  }
  return reports;
}

/// Single-threaded aggregation of reports [lo, hi) — the ground truth the
/// served estimates are compared against, entry by entry, with ==.
inline std::unique_ptr<Aggregator> DirectAggregate(
    const ProtocolConfig& config, const std::vector<WireReport>& reports,
    size_t lo, size_t hi) {
  auto oracle = MustCreate(config);
  for (size_t i = lo; i < hi; ++i) {
    const Status st = oracle->Aggregate(reports[i]);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return oracle;
}

/// Full estimate list (every domain element for oracles, every recovered
/// candidate for heavy-hitter protocols), canonically ordered.
inline std::vector<HeavyHitterEntry> AllEstimates(Aggregator& agg) {
  auto entries_or = agg.EstimateTopK(std::numeric_limits<size_t>::max());
  EXPECT_TRUE(entries_or.ok()) << entries_or.status().ToString();
  LDPHH_CHECK(entries_or.ok(), "test: EstimateTopK failed");
  return std::move(entries_or).value();
}

/// The acceptance criterion: identical (==, not near) estimate lists.
inline void ExpectSameEstimates(Aggregator& got, Aggregator& want) {
  const auto got_entries = AllEstimates(got);
  const auto want_entries = AllEstimates(want);
  ASSERT_EQ(got_entries.size(), want_entries.size());
  for (size_t i = 0; i < got_entries.size(); ++i) {
    EXPECT_EQ(got_entries[i].item, want_entries[i].item) << "entry " << i;
    EXPECT_EQ(got_entries[i].estimate, want_entries[i].estimate)
        << "entry " << i;
  }
}

}  // namespace testutil
}  // namespace ldphh

#endif  // LDPHH_TESTS_SERVING_TEST_UTIL_H_
