// Tests for src/freq small-domain oracles: Hadamard response (Thm 3.8),
// direct encoding (k-RR), unary encoding (RAPPOR), OLH — plus FWHT.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/math_util.h"
#include "src/common/random.h"
#include "src/freq/direct_encoding.h"
#include "src/freq/fwht.h"
#include "src/freq/hadamard_response.h"
#include "src/freq/olh.h"
#include "src/freq/unary_encoding.h"

namespace ldphh {
namespace {

// ------------------------------------------------------------------ FWHT --

TEST(Fwht, InvolutionUpToScale) {
  Rng rng(1);
  std::vector<double> v(16);
  for (auto& x : v) x = rng.UniformDouble() - 0.5;
  auto w = v;
  Fwht(w);
  Fwht(w);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(w[i], 16.0 * v[i], 1e-9);
}

TEST(Fwht, MatchesDirectHadamardTransform) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  Fwht(w);
  for (uint64_t r = 0; r < 8; ++r) {
    double direct = 0;
    for (uint64_t c = 0; c < 8; ++c) direct += v[c] * HadamardEntry(c, r);
    EXPECT_NEAR(w[r], direct, 1e-9);
  }
}

TEST(Fwht, RejectsNonPowerOfTwo) {
  std::vector<double> v(6, 0.0);
  EXPECT_DEATH(Fwht(v), "");
}

// ------------------------------------------ helpers for oracle testing --

// Runs an oracle over a database of small-domain values and finalizes.
void RunOracle(SmallDomainFO& fo, const std::vector<uint64_t>& values,
               uint64_t seed) {
  Rng rng(seed);
  for (uint64_t v : values) fo.Aggregate(fo.Encode(v, rng));
  fo.Finalize();
}

std::vector<uint64_t> SmallWorkload(uint64_t domain, uint64_t n, Rng& rng,
                                    std::vector<uint64_t>* truth) {
  truth->assign(static_cast<size_t>(domain), 0);
  std::vector<uint64_t> values;
  values.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    // Skewed: value v with weight ~ 1/(v+1).
    uint64_t v = 0;
    const double u = rng.UniformDouble();
    double acc = 0, z = 0;
    for (uint64_t j = 0; j < domain; ++j) z += 1.0 / (j + 1.0);
    for (uint64_t j = 0; j < domain; ++j) {
      acc += 1.0 / ((j + 1.0) * z);
      if (u < acc) {
        v = j;
        break;
      }
    }
    values.push_back(v);
    ++(*truth)[static_cast<size_t>(v)];
  }
  return values;
}

// Exact per-report privacy check: for every pair of inputs and every
// possible report, the probability ratio must be <= e^eps. Estimated by
// massive sampling of the (finite) report distribution.
void CheckReportPrivacyBySampling(const SmallDomainFO& fo, double eps,
                                  uint64_t seed, int samples = 200000) {
  const uint64_t domain = fo.domain_size();
  // Sample report histograms for inputs 0 and 1 (symmetry covers the rest
  // for the symmetric mechanisms under test).
  std::map<uint64_t, double> h0, h1;
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) h0[fo.Encode(0, rng).bits] += 1.0;
  for (int i = 0; i < samples; ++i) h1[fo.Encode(1 % domain, rng).bits] += 1.0;
  // Only check reports with enough mass for the empirical ratio to be
  // meaningful; tolerance covers sampling noise.
  for (const auto& [r, c0] : h0) {
    const auto it = h1.find(r);
    if (c0 < 500 || it == h1.end() || it->second < 500) continue;
    const double ratio = c0 / it->second;
    EXPECT_LE(ratio, std::exp(eps) * 1.25) << "report " << r;
    EXPECT_GE(ratio, std::exp(-eps) / 1.25) << "report " << r;
  }
}

// ------------------------------------------------------- HadamardResponse --

TEST(HadamardResponse, UnbiasedEstimates) {
  const uint64_t domain = 16;
  const uint64_t n = 60000;
  Rng rng(2);
  std::vector<uint64_t> truth;
  const auto values = SmallWorkload(domain, n, rng, &truth);
  HadamardResponseFO fo(domain, 1.0);
  RunOracle(fo, values, 3);
  const double tol = 6.0 * ((std::exp(1.0) + 1) / (std::exp(1.0) - 1)) *
                     std::sqrt(static_cast<double>(n));
  for (uint64_t v = 0; v < domain; ++v) {
    EXPECT_NEAR(fo.Estimate(v), static_cast<double>(truth[v]), tol) << v;
  }
}

TEST(HadamardResponse, ErrorShrinksWithEpsilon) {
  const uint64_t domain = 8;
  const uint64_t n = 40000;
  Rng rng(4);
  std::vector<uint64_t> truth;
  const auto values = SmallWorkload(domain, n, rng, &truth);
  double err_lo = 0, err_hi = 0;
  {
    HadamardResponseFO fo(domain, 0.5);
    RunOracle(fo, values, 5);
    for (uint64_t v = 0; v < domain; ++v) {
      err_lo = std::max(err_lo, std::abs(fo.Estimate(v) - double(truth[v])));
    }
  }
  {
    HadamardResponseFO fo(domain, 4.0);
    RunOracle(fo, values, 5);
    for (uint64_t v = 0; v < domain; ++v) {
      err_hi = std::max(err_hi, std::abs(fo.Estimate(v) - double(truth[v])));
    }
  }
  EXPECT_LT(err_hi, err_lo);
}

TEST(HadamardResponse, ReportIsOneIndexPlusOneBit) {
  HadamardResponseFO fo(100, 1.0);
  EXPECT_EQ(fo.table_size(), 128u);
  Rng rng(6);
  const auto r = fo.Encode(42, rng);
  EXPECT_EQ(r.num_bits, 7 + 1);
  EXPECT_LT(r.bits, 256u);
}

TEST(HadamardResponse, ReportDistributionIsEpsLdp) {
  HadamardResponseFO fo(8, 0.8);
  CheckReportPrivacyBySampling(fo, 0.8, 7);
}

TEST(HadamardResponse, MemoryIsTableSized) {
  HadamardResponseFO fo(1000, 1.0);
  EXPECT_EQ(fo.MemoryBytes(), 1024 * sizeof(double));
}

TEST(HadamardResponse, DomainSizeOne) {
  HadamardResponseFO fo(1, 1.0);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) fo.Aggregate(fo.Encode(0, rng));
  fo.Finalize();
  EXPECT_NEAR(fo.Estimate(0), 100.0, 60.0);
}

// --------------------------------------------------------- DirectEncoding --

TEST(DirectEncoding, UnbiasedEstimates) {
  const uint64_t domain = 10;
  const uint64_t n = 50000;
  Rng rng(9);
  std::vector<uint64_t> truth;
  const auto values = SmallWorkload(domain, n, rng, &truth);
  DirectEncodingFO fo(domain, 1.5);
  RunOracle(fo, values, 10);
  for (uint64_t v = 0; v < domain; ++v) {
    EXPECT_NEAR(fo.Estimate(v), static_cast<double>(truth[v]),
                8.0 * std::sqrt(static_cast<double>(n))) << v;
  }
}

TEST(DirectEncoding, ReportsAreDomainValues) {
  DirectEncodingFO fo(10, 1.0);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) EXPECT_LT(fo.Encode(3, rng).bits, 10u);
}

TEST(DirectEncoding, ExactPrivacyOfKeepProbability) {
  // k-RR ratio: p/q = e^eps exactly.
  const double eps = 1.3;
  DirectEncodingFO fo(6, eps);
  Rng rng(12);
  int kept = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) kept += (fo.Encode(2, rng).bits == 2);
  const double p = static_cast<double>(kept) / trials;
  const double expect = std::exp(eps) / (std::exp(eps) + 5.0);
  EXPECT_NEAR(p, expect, 0.01);
}

TEST(DirectEncoding, ReportDistributionIsEpsLdp) {
  DirectEncodingFO fo(6, 1.0);
  CheckReportPrivacyBySampling(fo, 1.0, 13);
}

// ---------------------------------------------------------- UnaryEncoding --

TEST(UnaryEncoding, UnbiasedEstimates) {
  const uint64_t domain = 12;
  const uint64_t n = 50000;
  Rng rng(14);
  std::vector<uint64_t> truth;
  const auto values = SmallWorkload(domain, n, rng, &truth);
  UnaryEncodingFO fo(domain, 2.0);
  RunOracle(fo, values, 15);
  for (uint64_t v = 0; v < domain; ++v) {
    EXPECT_NEAR(fo.Estimate(v), static_cast<double>(truth[v]),
                8.0 * std::sqrt(static_cast<double>(n))) << v;
  }
}

TEST(UnaryEncoding, ReportWidthIsDomainSize) {
  UnaryEncodingFO fo(20, 1.0);
  Rng rng(16);
  EXPECT_EQ(fo.Encode(5, rng).num_bits, 20);
}

TEST(UnaryEncoding, RejectsOversizedDomain) {
  EXPECT_DEATH(UnaryEncodingFO(57, 1.0), "");
}

TEST(UnaryEncoding, PerBitFlipProbability) {
  const double eps = 2.0;
  UnaryEncodingFO fo(8, eps);
  Rng rng(17);
  int one_bit_set = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    one_bit_set += (fo.Encode(3, rng).bits >> 3) & 1;
  }
  const double p = std::exp(eps / 2) / (std::exp(eps / 2) + 1);
  EXPECT_NEAR(static_cast<double>(one_bit_set) / trials, p, 0.01);
}

// --------------------------------------------------------------------- OLH --

TEST(Olh, UnbiasedEstimates) {
  const uint64_t domain = 64;
  const uint64_t n = 40000;
  Rng rng(18);
  std::vector<uint64_t> truth;
  const auto values = SmallWorkload(domain, n, rng, &truth);
  OlhFO fo(domain, 1.5, /*seed=*/77);
  RunOracle(fo, values, 19);
  for (uint64_t v = 0; v < 8; ++v) {  // Spot-check the head.
    EXPECT_NEAR(fo.Estimate(v), static_cast<double>(truth[v]),
                8.0 * std::sqrt(static_cast<double>(n))) << v;
  }
}

TEST(Olh, HashRangeIsExpEpsPlusOne) {
  OlhFO fo(100, 1.0, 1);
  EXPECT_EQ(fo.hash_range(), static_cast<uint64_t>(std::llround(std::exp(1.0))) + 1);
}

TEST(Olh, ReportsAreInHashRange) {
  OlhFO fo(1000, 2.0, 2);
  Rng rng(20);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_LT(fo.EncodeForUser(i, i % 1000, rng).bits, fo.hash_range());
  }
}

TEST(Olh, MemoryGrowsWithUsers) {
  OlhFO fo(100, 1.0, 3);
  Rng rng(21);
  for (int i = 0; i < 100; ++i) fo.Aggregate(fo.Encode(5, rng));
  // Reports are stored as (user_index, hashed value) pairs so shards can
  // merge out-of-order streams; memory is linear in users either way.
  EXPECT_EQ(fo.MemoryBytes(),
            100 * sizeof(std::pair<uint64_t, uint32_t>));
}

// --------------------------------------------- cross-oracle sanity sweep --

enum class Kind { kHadamard, kDirect, kUnary, kOlh };

class OracleSweep : public ::testing::TestWithParam<std::tuple<Kind, double>> {};

TEST_P(OracleSweep, TotalMassMatchesN) {
  // Summing estimates over the whole domain ~ n for every oracle (the
  // estimates are unbiased and the one-hot loadings sum to 1).
  const auto [kind, eps] = GetParam();
  const uint64_t domain = 16;
  const uint64_t n = 30000;
  Rng rng(22);
  std::vector<uint64_t> truth;
  const auto values = SmallWorkload(domain, n, rng, &truth);
  std::unique_ptr<SmallDomainFO> fo;
  switch (kind) {
    case Kind::kHadamard:
      fo = std::make_unique<HadamardResponseFO>(domain, eps);
      break;
    case Kind::kDirect:
      fo = std::make_unique<DirectEncodingFO>(domain, eps);
      break;
    case Kind::kUnary:
      fo = std::make_unique<UnaryEncodingFO>(domain, eps);
      break;
    case Kind::kOlh:
      fo = std::make_unique<OlhFO>(domain, eps, 5);
      break;
  }
  RunOracle(*fo, values, 23);
  double total = 0;
  for (uint64_t v = 0; v < domain; ++v) total += fo->Estimate(v);
  EXPECT_NEAR(total, static_cast<double>(n),
              25.0 * std::sqrt(static_cast<double>(n) * domain) / eps);
}

INSTANTIATE_TEST_SUITE_P(
    AllOracles, OracleSweep,
    ::testing::Combine(::testing::Values(Kind::kHadamard, Kind::kDirect,
                                         Kind::kUnary, Kind::kOlh),
                       ::testing::Values(0.5, 1.0, 2.0)));

}  // namespace
}  // namespace ldphh
