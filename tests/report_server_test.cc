// Tests for the network ingestion front-end: src/net/ event loop +
// src/server/report_server. Framing round-trips (TCP and UDS), torn and
// coalesced reads, malformed/oversized rejection, deterministic busy acks,
// bounded-memory backpressure (read-throttling, not buffering), idle
// timeouts, graceful drain, and bit-for-bit equality of a concurrent
// multi-client ingest against the single-threaded baseline.

#include "src/server/report_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/report_client.h"
#include "src/server/report_codec.h"
#include "src/server/sharded_aggregator.h"
#include "tests/serving_test_util.h"

namespace ldphh {
namespace {

using testutil::DirectAggregate;
using testutil::EncodeSkewedReports;
using testutil::ExpectSameEstimates;
using testutil::OracleConfig;

// ---------------------------------------------------------------------------
// Raw-socket helpers (tests drive the wire directly; the lint rule banning
// raw socket calls applies to src/, not tests/).

int ConnectTcpRaw(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void WriteAllRaw(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<size_t>(n);
  }
}

// Reads exactly n bytes; returns false on EOF/error.
bool ReadExactRaw(int fd, char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t got = ::recv(fd, buf + off, n - off, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    off += static_cast<size_t>(got);
  }
  return true;
}

// Reads one ack frame; EXPECTs on transport failure.
Status ReadAckRaw(int fd) {
  char header[net::kFrameHeaderSize];
  if (!ReadExactRaw(fd, header, sizeof(header))) {
    ADD_FAILURE() << "EOF while reading ack header";
    return Status::Internal("eof");
  }
  uint32_t length = 0;
  std::memcpy(&length, header, sizeof(length));  // Test host is LE (CI: x86).
  std::string payload(length, '\0');
  if (!ReadExactRaw(fd, payload.data(), payload.size())) {
    ADD_FAILURE() << "EOF while reading ack payload";
    return Status::Internal("eof");
  }
  return net::DecodeStatusPayload(payload);
}

std::string Framed(std::string_view payload) {
  std::string out;
  net::AppendFrame(&out, payload);
  return out;
}

// ---------------------------------------------------------------------------
// Fixtures.

std::string UdsPath(const std::string& name) {
  // sun_path is ~108 bytes; keep it short and per-process.
  return "/tmp/ldphh_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

std::unique_ptr<ShardedAggregator> StartedAggregator(
    const ProtocolConfig& config, int num_shards = 4,
    size_t queue_capacity = 4096) {
  ShardedAggregatorOptions opts;
  opts.num_shards = num_shards;
  opts.queue_capacity = queue_capacity;
  auto agg_or = ShardedAggregator::Create(config, opts);
  EXPECT_TRUE(agg_or.ok()) << agg_or.status().ToString();
  LDPHH_CHECK(agg_or.ok(), "test: aggregator create failed");
  auto agg = std::move(agg_or).value();
  EXPECT_TRUE(agg->Start().ok());
  return agg;
}

std::unique_ptr<ReportServer> StartedServer(ReportServer::Options options,
                                            ReportServer::Sink sink) {
  auto server_or = ReportServer::Create(options, std::move(sink));
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  LDPHH_CHECK(server_or.ok(), "test: server create failed");
  auto server = std::move(server_or).value();
  const Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return server;
}

// A sink whose completion the test controls: calls block until Release().
class GateSink {
 public:
  Status Call(std::string_view payload) {
    (void)payload;
    calls_.fetch_add(1);
    MutexLock lk(&mu_);
    while (!open_) cv_.Wait();
    return Status::OK();
  }
  void Release() {
    MutexLock lk(&mu_);
    open_ = true;
    cv_.SignalAll();
  }
  uint64_t calls() const { return calls_.load(); }

 private:
  Mutex mu_;
  CondVar cv_{&mu_};
  bool open_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> calls_{0};
};

// ---------------------------------------------------------------------------
// EventLoop basics.

TEST(EventLoop, PostRunsTasksAndTimersFire) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  std::atomic<int> ran{0};
  ASSERT_TRUE(loop.Post([&] { ran.fetch_add(1); }));
  loop.RunSync([&] {
    loop.RunAfter(1, [&] { ran.fetch_add(10); });
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() != 11 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 11);
  loop.Stop();
  EXPECT_FALSE(loop.Post([] {}));  // Post after Stop is rejected, not lost.
}

TEST(EventLoop, RunSyncWaitsForCompletion) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  bool done = false;
  loop.RunSync([&] { done = true; });
  EXPECT_TRUE(done);
  loop.Stop();
  // After Stop, RunSync degrades to inline execution.
  bool after = false;
  loop.RunSync([&] { after = true; });
  EXPECT_TRUE(after);
}

// ---------------------------------------------------------------------------
// Framing round-trips.

TEST(ReportServer, FramingRoundTripTcp) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 32, 1.0);
  auto agg = StartedAggregator(config);
  auto server = StartedServer(
      ReportServer::Options{},
      [&agg](std::string_view p) { return agg->TrySubmitWire(p); });

  const auto reports = EncodeSkewedReports(config, 2000, 7, 32);
  auto client_or = net::ReportClient::ConnectTcp("127.0.0.1", server->port(),
                                                 net::ReportClient::Options{});
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();
  const size_t chunk = 250;
  for (size_t lo = 0; lo < reports.size(); lo += chunk) {
    const std::vector<WireReport> slice(
        reports.begin() + static_cast<ptrdiff_t>(lo),
        reports.begin() + static_cast<ptrdiff_t>(lo + chunk));
    ASSERT_TRUE(
        client->Send(EncodeReportBatch(slice, agg->wire_id())).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_EQ(client->stats().frames_acked, reports.size() / chunk);

  ASSERT_TRUE(agg->Drain().ok());
  EXPECT_EQ(agg->Stats().submitted, reports.size());
  server->Stop();
}

TEST(ReportServer, FramingRoundTripUds) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 32, 1.0);
  auto agg = StartedAggregator(config);
  ReportServer::Options options;
  options.enable_tcp = false;
  options.uds_path = UdsPath("roundtrip");
  auto server = StartedServer(
      options, [&agg](std::string_view p) { return agg->TrySubmitWire(p); });

  const auto reports = EncodeSkewedReports(config, 1000, 11, 32);
  auto client_or = net::ReportClient::ConnectUds(options.uds_path,
                                                 net::ReportClient::Options{});
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();
  ASSERT_TRUE(
      client->Send(EncodeReportBatch(reports, agg->wire_id())).ok());
  ASSERT_TRUE(client->Flush().ok());

  ASSERT_TRUE(agg->Drain().ok());
  EXPECT_EQ(agg->Stats().submitted, reports.size());
  server->Stop();
  EXPECT_NE(::access(options.uds_path.c_str(), F_OK), 0)
      << "UDS path should be unlinked on Stop";
}

TEST(ReportServer, PartialAndCoalescedReads) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 16, 1.0);
  auto agg = StartedAggregator(config);
  auto server = StartedServer(
      ReportServer::Options{},
      [&agg](std::string_view p) { return agg->TrySubmitWire(p); });

  const auto reports = EncodeSkewedReports(config, 30, 3, 16);
  const std::vector<WireReport> a(reports.begin(), reports.begin() + 10);
  const std::vector<WireReport> b(reports.begin() + 10, reports.begin() + 20);
  const std::vector<WireReport> c(reports.begin() + 20, reports.end());

  const int fd = ConnectTcpRaw(server->port());
  // Frame 1 dripped one byte at a time: the parser must accumulate across
  // arbitrarily torn reads.
  const std::string frame_a = Framed(EncodeReportBatch(a, agg->wire_id()));
  for (const char byte : frame_a) {
    WriteAllRaw(fd, &byte, 1);
  }
  EXPECT_TRUE(ReadAckRaw(fd).ok());
  // Frames 2 and 3 coalesced into one send: the parser must split them.
  const std::string coalesced = Framed(EncodeReportBatch(b, agg->wire_id())) +
                                Framed(EncodeReportBatch(c, agg->wire_id()));
  WriteAllRaw(fd, coalesced.data(), coalesced.size());
  EXPECT_TRUE(ReadAckRaw(fd).ok());
  EXPECT_TRUE(ReadAckRaw(fd).ok());
  ::close(fd);

  ASSERT_TRUE(agg->Drain().ok());
  EXPECT_EQ(agg->Stats().submitted, reports.size());
  server->Stop();
}

// ---------------------------------------------------------------------------
// Rejection paths.

TEST(ReportServer, MalformedBatchGetsErrorAckAndConnectionSurvives) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 16, 1.0);
  auto agg = StartedAggregator(config);
  auto server = StartedServer(
      ReportServer::Options{},
      [&agg](std::string_view p) { return agg->TrySubmitWire(p); });

  const int fd = ConnectTcpRaw(server->port());
  const std::string garbage = Framed("this is not a report batch");
  WriteAllRaw(fd, garbage.data(), garbage.size());
  const Status ack = ReadAckRaw(fd);
  EXPECT_FALSE(ack.ok());
  EXPECT_NE(ack.code(), StatusCode::kResourceExhausted)
      << "malformed must be permanent, not retryable";

  // A well-formed frame on the same connection still works: per-frame
  // rejection does not poison the stream.
  const auto reports = EncodeSkewedReports(config, 10, 5, 16);
  const std::string good = Framed(EncodeReportBatch(reports, agg->wire_id()));
  WriteAllRaw(fd, good.data(), good.size());
  EXPECT_TRUE(ReadAckRaw(fd).ok());
  ::close(fd);
  server->Stop();
}

TEST(ReportServer, OversizedFrameRejectedFromLengthPrefixAlone) {
  ReportServer::Options options;
  options.max_frame_bytes = 1024;
  std::atomic<uint64_t> sink_calls{0};
  auto server = StartedServer(options, [&sink_calls](std::string_view) {
    sink_calls.fetch_add(1);
    return Status::OK();
  });

  const int fd = ConnectTcpRaw(server->port());
  // A length prefix far beyond the cap, with no body: the server must
  // reject without waiting for (or buffering) the declared bytes.
  const uint32_t huge = 1u << 30;
  char header[4];
  std::memcpy(header, &huge, sizeof(huge));
  WriteAllRaw(fd, header, sizeof(header));
  const Status ack = ReadAckRaw(fd);
  EXPECT_FALSE(ack.ok());
  // The stream cannot resync past a bad prefix: expect EOF next.
  char byte = 0;
  EXPECT_FALSE(ReadExactRaw(fd, &byte, 1));
  ::close(fd);
  EXPECT_EQ(sink_calls.load(), 0u);
  server->Stop();
}

TEST(ReportServer, FullShardQueueAcksRetryableBusy) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 16, 1.0);
  // One shard with a 4-report queue: an 8-report batch can never fit, so
  // the all-or-nothing TrySubmit must answer busy deterministically.
  auto agg = StartedAggregator(config, /*num_shards=*/1,
                               /*queue_capacity=*/4);
  auto server = StartedServer(
      ReportServer::Options{},
      [&agg](std::string_view p) { return agg->TrySubmitWire(p); });

  const auto reports = EncodeSkewedReports(config, 8, 9, 16);
  const int fd = ConnectTcpRaw(server->port());
  const std::string big = Framed(EncodeReportBatch(reports, agg->wire_id()));
  WriteAllRaw(fd, big.data(), big.size());
  const Status busy = ReadAckRaw(fd);
  EXPECT_EQ(busy.code(), StatusCode::kResourceExhausted) << busy.ToString();

  // A batch that fits gets through on the same connection.
  const std::vector<WireReport> small(reports.begin(), reports.begin() + 2);
  const std::string ok = Framed(EncodeReportBatch(small, agg->wire_id()));
  WriteAllRaw(fd, ok.data(), ok.size());
  EXPECT_TRUE(ReadAckRaw(fd).ok());
  ::close(fd);
  server->Stop();
}

TEST(ReportServer, ClientRetriesBusyAcksToCompletion) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 16, 1.0);
  auto agg = StartedAggregator(config);
  // Refuse the first few frames with the retryable status, then accept:
  // the client's backoff-and-resend must deliver everything exactly once
  // from the aggregator's point of view.
  std::atomic<int> refusals_left{5};
  auto server = StartedServer(
      ReportServer::Options{}, [&agg, &refusals_left](std::string_view p) {
        if (refusals_left.fetch_sub(1) > 0) {
          return Status::ResourceExhausted("induced busy");
        }
        return agg->TrySubmitWire(p);
      });

  const auto reports = EncodeSkewedReports(config, 500, 13, 16);
  auto client_or = net::ReportClient::ConnectTcp("127.0.0.1", server->port(),
                                                 net::ReportClient::Options{});
  ASSERT_TRUE(client_or.ok());
  auto client = std::move(client_or).value();
  const size_t chunk = 100;
  for (size_t lo = 0; lo < reports.size(); lo += chunk) {
    const std::vector<WireReport> slice(
        reports.begin() + static_cast<ptrdiff_t>(lo),
        reports.begin() + static_cast<ptrdiff_t>(lo + chunk));
    ASSERT_TRUE(
        client->Send(EncodeReportBatch(slice, agg->wire_id())).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_GE(client->stats().busy_retries, 5u);
  EXPECT_EQ(client->stats().frames_acked, reports.size() / chunk);

  ASSERT_TRUE(agg->Drain().ok());
  EXPECT_EQ(agg->Stats().submitted, reports.size());
  server->Stop();
}

// ---------------------------------------------------------------------------
// Backpressure: overload pauses reads; memory stays bounded.

TEST(ReportServer, BackpressureThrottlesReadsAndBoundsInFlight) {
  GateSink gate;
  ReportServer::Options options;
  options.max_in_flight_frames = 4;
  options.max_frame_bytes = 256 * 1024;
  options.sink_threads = 2;
  auto server = StartedServer(
      options, [&gate](std::string_view p) { return gate.Call(p); });

  // A writer floods frames while the sink is gated shut. With the budget
  // exhausted the server must pause reads — the writer's blocking send
  // stalls against full kernel buffers instead of the server's heap.
  constexpr size_t kFrames = 64;
  const std::string payload(128 * 1024, 'x');
  const std::string frame = Framed(payload);
  const int fd = ConnectTcpRaw(server->port());
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (size_t i = 0; i < kFrames; ++i) {
      WriteAllRaw(fd, frame.data(), frame.size());
    }
    writer_done.store(true);
  });

  // Wait for the throttle to engage.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!server->ReadThrottledForTesting() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(server->ReadThrottledForTesting());
  // The in-flight budget is the memory bound: sampled repeatedly under
  // sustained overload it never exceeds the configured cap.
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(server->InFlightForTesting(), options.max_in_flight_frames);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // 64 × 128 KiB cannot fit in the paused server (budget + one read
  // buffer); the writer must still be stuck in send().
  EXPECT_FALSE(writer_done.load());

  // Release the sink: budget frees, reads resume, everything acks.
  gate.Release();
  std::thread reader([&] {
    for (size_t i = 0; i < kFrames; ++i) {
      EXPECT_TRUE(ReadAckRaw(fd).ok());
    }
  });
  writer.join();
  reader.join();
  ::close(fd);
  EXPECT_EQ(gate.calls(), kFrames);
  server->Stop();
}

// ---------------------------------------------------------------------------
// Timeouts and shutdown.

TEST(ReportServer, IdleConnectionIsDisconnected) {
  ReportServer::Options options;
  options.idle_timeout_ms = 100;
  auto server =
      StartedServer(options, [](std::string_view) { return Status::OK(); });

  const int fd = ConnectTcpRaw(server->port());
  // Do nothing: the sweep must close us. recv returns 0 (EOF) on close.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char byte = 0;
  EXPECT_FALSE(ReadExactRaw(fd, &byte, 1)) << "expected idle disconnect";
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->ActiveConnectionsForTesting() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server->ActiveConnectionsForTesting(), 0u);
  server->Stop();
}

TEST(ReportServer, GracefulStopDrainsInFlightFramesAndFlushesAcks) {
  GateSink gate;
  ReportServer::Options options;
  options.max_in_flight_frames = 4;
  options.sink_threads = 2;
  options.drain_timeout_ms = 10000;
  auto server = StartedServer(
      options, [&gate](std::string_view p) { return gate.Call(p); });

  // 8 small frames: 4 are parsed (budget), 4 stay in the connection's
  // buffer. Stop() must ack the parsed 4 and flush before closing.
  const std::string frame = Framed(std::string(64, 'y'));
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += frame;
  const int fd = ConnectTcpRaw(server->port());
  WriteAllRaw(fd, burst.data(), burst.size());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server->InFlightForTesting() != options.max_in_flight_frames &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server->InFlightForTesting(), options.max_in_flight_frames);

  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    gate.Release();
  });
  server->Stop();  // Blocks in the drain until the gate opens.
  releaser.join();

  // Exactly the 4 parsed frames were acked; then the server closed us.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ReadAckRaw(fd).ok()) << "ack " << i;
  }
  char byte = 0;
  EXPECT_FALSE(ReadExactRaw(fd, &byte, 1)) << "expected close after drain";
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Equivalence: concurrent network ingest == single-threaded baseline.

TEST(ReportServer, ConcurrentClientsMatchSingleThreadedBaseline) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 32, 1.0);
  auto agg = StartedAggregator(config, /*num_shards=*/4);
  auto server = StartedServer(
      ReportServer::Options{},
      [&agg](std::string_view p) { return agg->TrySubmitWire(p); });

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 5000;
  const auto reports =
      EncodeSkewedReports(config, kClients * kPerClient, 2024, 32);
  auto baseline = DirectAggregate(config, reports, 0, reports.size());

  const uint16_t wire_id = agg->wire_id();
  const uint16_t port = server->port();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto client_or = net::ReportClient::ConnectTcp(
          "127.0.0.1", port, net::ReportClient::Options{});
      if (!client_or.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto client = std::move(client_or).value();
      const size_t lo = t * kPerClient;
      const size_t chunk = 500;
      for (size_t off = 0; off < kPerClient; off += chunk) {
        const std::vector<WireReport> slice(
            reports.begin() + static_cast<ptrdiff_t>(lo + off),
            reports.begin() + static_cast<ptrdiff_t>(lo + off + chunk));
        if (!client->Send(EncodeReportBatch(slice, wire_id)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      if (!client->Flush().ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server->Stop();

  auto merged_or = agg->Finish();
  ASSERT_TRUE(merged_or.ok()) << merged_or.status().ToString();
  auto merged = std::move(merged_or).value();
  EXPECT_EQ(agg->Stats().submitted, reports.size());
  EXPECT_EQ(agg->Stats().rejected, 0u);
  ExpectSameEstimates(*merged, *baseline);
}

}  // namespace
}  // namespace ldphh
