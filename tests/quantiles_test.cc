// Tests for src/apps/quantiles: LDP median/quantile estimation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/apps/quantiles.h"
#include "src/common/random.h"

namespace ldphh {
namespace {

// Runs the sketch over a value population.
QuantileSketch RunSketch(const std::vector<uint64_t>& values,
                         const QuantileSketchParams& params, uint64_t seed) {
  QuantileSketch sketch(values.size(), params, seed);
  Rng rng(seed + 1);
  for (uint64_t i = 0; i < values.size(); ++i) {
    sketch.Aggregate(i, sketch.Encode(i, values[static_cast<size_t>(i)], rng));
  }
  sketch.Finalize();
  return sketch;
}

uint64_t TrueQuantile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(q * (values.size() - 1));
  return values[idx];
}

TEST(Quantiles, RejectsBadParameters) {
  QuantileSketchParams p;
  p.value_bits = 1;
  EXPECT_DEATH(QuantileSketch(100, p, 1), "");
  p.value_bits = 30;
  EXPECT_DEATH(QuantileSketch(100, p, 1), "");
  p.value_bits = 16;
  p.epsilon = 0;
  EXPECT_DEATH(QuantileSketch(100, p, 1), "");
}

TEST(Quantiles, CdfEndpoints) {
  QuantileSketchParams p;
  p.value_bits = 8;
  p.epsilon = 2.0;
  std::vector<uint64_t> values(20000, 100);
  const auto sketch = RunSketch(values, p, 3);
  EXPECT_DOUBLE_EQ(sketch.EstimateCdf(0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateCdf(256), 20000.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateCdf(1000), 20000.0);
}

TEST(Quantiles, CdfOfPointMass) {
  QuantileSketchParams p;
  p.value_bits = 8;
  p.epsilon = 2.0;
  const uint64_t n = 40000;
  std::vector<uint64_t> values(n, 100);
  const auto sketch = RunSketch(values, p, 5);
  const double tol =
      30.0 * std::sqrt(static_cast<double>(n)) * p.value_bits / p.epsilon;
  EXPECT_NEAR(sketch.EstimateCdf(100), 0.0, tol);     // Everything is >= 100.
  EXPECT_NEAR(sketch.EstimateCdf(101), static_cast<double>(n), tol);
}

TEST(Quantiles, MedianOfUniform) {
  QuantileSketchParams p;
  p.value_bits = 10;
  p.epsilon = 2.0;
  const uint64_t n = 100000;
  Rng rng(7);
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng.UniformU64(1024);
  const auto sketch = RunSketch(values, p, 9);
  const uint64_t med = sketch.EstimateMedian();
  EXPECT_NEAR(static_cast<double>(med), 512.0, 80.0);
}

TEST(Quantiles, MedianOfSkewedDistribution) {
  QuantileSketchParams p;
  p.value_bits = 10;
  p.epsilon = 2.0;
  const uint64_t n = 100000;
  Rng rng(11);
  std::vector<uint64_t> values(n);
  for (auto& v : values) {
    // Triangular-ish: min of two uniforms.
    v = std::min(rng.UniformU64(1024), rng.UniformU64(1024));
  }
  const auto sketch = RunSketch(values, p, 13);
  const uint64_t truth = TrueQuantile(values, 0.5);  // ~300.
  EXPECT_NEAR(static_cast<double>(sketch.EstimateMedian()),
              static_cast<double>(truth), 80.0);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, TracksTrueQuantileOfBimodal) {
  const double q = GetParam();
  QuantileSketchParams p;
  p.value_bits = 10;
  p.epsilon = 2.0;
  const uint64_t n = 120000;
  Rng rng(17);
  std::vector<uint64_t> values(n);
  for (auto& v : values) {
    // 45/55 split: every tested quantile lands strictly inside a mode
    // (a quantile on the inter-mode gap is inherently ill-conditioned —
    // infinitesimal CDF noise moves the answer across the gap).
    v = rng.Bernoulli(0.45) ? 100 + rng.UniformU64(50) : 800 + rng.UniformU64(50);
  }
  const auto sketch = RunSketch(values, p, 19);
  const uint64_t truth = TrueQuantile(values, q);
  EXPECT_NEAR(static_cast<double>(sketch.EstimateQuantile(q)),
              static_cast<double>(truth), 90.0)
      << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Q, QuantileSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

TEST(Quantiles, AccuracyImprovesWithEpsilon) {
  const uint64_t n = 60000;
  Rng rng(23);
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng.UniformU64(1024);
  double errs[2];
  int i = 0;
  for (double eps : {0.25, 4.0}) {
    QuantileSketchParams p;
    p.value_bits = 10;
    p.epsilon = eps;
    const auto sketch = RunSketch(values, p, 29);
    errs[i++] =
        std::abs(static_cast<double>(sketch.EstimateMedian()) - 512.0);
  }
  EXPECT_LT(errs[1], errs[0] + 30.0);  // Monotone up to quantization noise.
}

TEST(Quantiles, MemoryIsSumOfLevelTables) {
  QuantileSketchParams p;
  p.value_bits = 8;
  p.epsilon = 1.0;
  QuantileSketch sketch(1000, p, 31);
  // Levels 1..8: tables 2,4,...,256 doubles.
  EXPECT_EQ(sketch.MemoryBytes(), (510u) * sizeof(double));
}

TEST(Quantiles, ReportIsShort) {
  QuantileSketchParams p;
  p.value_bits = 16;
  p.epsilon = 1.0;
  QuantileSketch sketch(1000, p, 37);
  Rng rng(41);
  const auto r = sketch.Encode(5, 12345, rng);
  EXPECT_LE(r.num_bits, 17);
}

}  // namespace
}  // namespace ldphh
