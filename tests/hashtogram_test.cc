// Tests for src/freq/hashtogram: the Theorem 3.7 frequency oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/freq/hashtogram.h"
#include "src/workload/workload.h"

namespace ldphh {
namespace {

// Runs the full Hashtogram protocol over a database.
void RunHashtogram(Hashtogram& ht, const std::vector<DomainItem>& db,
                   uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = 0; i < db.size(); ++i) {
    ht.Aggregate(i, ht.Encode(i, db[static_cast<size_t>(i)], rng));
  }
  ht.Finalize();
}

TEST(Hashtogram, AutoParametersReasonable) {
  HashtogramParams p;
  p.beta = 1e-3;
  Hashtogram ht(1 << 20, 1.0, p, 7);
  EXPECT_GE(ht.rows(), 8);
  EXPECT_LE(ht.rows(), 64);
  // T = next_pow2(4 sqrt(n)) = 4096 for n = 2^20.
  EXPECT_EQ(ht.table_size(), 4096u);
  EXPECT_EQ(ht.ReportBits(), 12 + 1);
}

TEST(Hashtogram, EstimatesPlantedFrequencies) {
  const uint64_t n = 100000;
  const Workload w = MakePlantedWorkload(n, 64, {0.3, 0.1, 0.05}, 11);
  HashtogramParams p;
  p.beta = 1e-3;
  Hashtogram ht(n, 1.0, p, 13);
  RunHashtogram(ht, w.database, 17);
  const double tol = 20.0 * std::sqrt(static_cast<double>(n));
  for (const auto& [item, count] : w.heavy) {
    EXPECT_NEAR(ht.Estimate(item), static_cast<double>(count), tol);
  }
}

TEST(Hashtogram, AbsentItemsEstimateNearZero) {
  const uint64_t n = 100000;
  const Workload w = MakePlantedWorkload(n, 64, {0.5}, 19);
  HashtogramParams p;
  Hashtogram ht(n, 1.0, p, 23);
  RunHashtogram(ht, w.database, 29);
  Rng rng(31);
  const double tol = 20.0 * std::sqrt(static_cast<double>(n));
  for (int i = 0; i < 20; ++i) {
    DomainItem absent;
    for (auto& l : absent.limbs) l = rng();
    absent.Truncate(64);
    EXPECT_NEAR(ht.Estimate(absent), 0.0, tol);
  }
}

TEST(Hashtogram, MedianRobustToSingleHugeItem) {
  // One item holds 90% of the mass; estimates of OTHER items must not be
  // dragged by collisions with it (the median's job).
  const uint64_t n = 80000;
  const Workload w = MakePlantedWorkload(n, 64, {0.9, 0.05}, 37);
  HashtogramParams p;
  Hashtogram ht(n, 1.0, p, 41);
  RunHashtogram(ht, w.database, 43);
  const double tol = 20.0 * std::sqrt(static_cast<double>(n));
  EXPECT_NEAR(ht.Estimate(w.heavy[1].first),
              static_cast<double>(w.heavy[1].second), tol);
}

TEST(Hashtogram, SumEstimatorAlsoAccurate) {
  const uint64_t n = 60000;
  const Workload w = MakePlantedWorkload(n, 64, {0.25}, 47);
  HashtogramParams p;
  Hashtogram ht(n, 1.0, p, 53);
  RunHashtogram(ht, w.database, 59);
  EXPECT_NEAR(ht.EstimateSum(w.heavy[0].first),
              static_cast<double>(w.heavy[0].second),
              25.0 * std::sqrt(static_cast<double>(n)));
}

TEST(Hashtogram, ErrorScalesInverselyWithEpsilon) {
  const uint64_t n = 60000;
  const Workload w = MakePlantedWorkload(n, 64, {0.2}, 61);
  double errs[2];
  int idx = 0;
  for (double eps : {0.3, 3.0}) {
    HashtogramParams p;
    Hashtogram ht(n, eps, p, 67);
    RunHashtogram(ht, w.database, 71);
    errs[idx++] = std::abs(ht.Estimate(w.heavy[0].first) -
                           static_cast<double>(w.heavy[0].second));
  }
  // Not a strict inequality pointwise, but with these seeds and a 10x eps
  // gap the low-eps error dominates.
  EXPECT_GT(errs[0], errs[1]);
}

TEST(Hashtogram, MemoryIsRowsTimesTable) {
  HashtogramParams p;
  p.rows = 10;
  p.table_size = 1024;
  Hashtogram ht(100000, 1.0, p, 73);
  EXPECT_EQ(ht.MemoryBytes(), 10 * 1024 * sizeof(double));
}

TEST(Hashtogram, MemorySublinearInN) {
  // O~(sqrt(n)) server memory: growing n 16x grows memory ~4x.
  HashtogramParams p;
  Hashtogram small(1 << 16, 1.0, p, 79);
  Hashtogram large(1 << 24, 1.0, p, 79);
  EXPECT_LE(large.MemoryBytes(), 20 * small.MemoryBytes());
}

TEST(Hashtogram, RowAssignmentIsDeterministicAndBalanced) {
  HashtogramParams p;
  p.rows = 16;
  Hashtogram ht(10000, 1.0, p, 83);
  std::vector<int> counts(16, 0);
  for (uint64_t i = 0; i < 16000; ++i) {
    const int r = ht.RowOf(i);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 16);
    ++counts[static_cast<size_t>(r)];
    EXPECT_EQ(r, ht.RowOf(i));
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(Hashtogram, ReportPrivacyRatioBounded) {
  // The report is (uniform index, RR bit): for any two items the report
  // probability ratio is exactly the RR ratio e^eps. Verify by sampling.
  const double eps = 0.7;
  HashtogramParams p;
  p.rows = 4;
  p.table_size = 8;
  Hashtogram ht(1000, eps, p, 89);
  DomainItem a(123), b(456);
  std::map<uint64_t, double> ha, hb;
  Rng rng(97);
  const int samples = 400000;
  for (int i = 0; i < samples; ++i) ha[ht.Encode(0, a, rng).bits] += 1;
  for (int i = 0; i < samples; ++i) hb[ht.Encode(0, b, rng).bits] += 1;
  for (const auto& [r, ca] : ha) {
    const auto it = hb.find(r);
    if (ca < 2000 || it == hb.end() || it->second < 2000) continue;
    EXPECT_LE(ca / it->second, std::exp(eps) * 1.2);
    EXPECT_GE(ca / it->second, std::exp(-eps) / 1.2);
  }
}

TEST(Hashtogram, DeterministicGivenSeeds) {
  const Workload w = MakePlantedWorkload(20000, 64, {0.3}, 101);
  HashtogramParams p;
  double est[2];
  for (int t = 0; t < 2; ++t) {
    Hashtogram ht(w.database.size(), 1.0, p, 103);
    RunHashtogram(ht, w.database, 107);
    est[t] = ht.Estimate(w.heavy[0].first);
  }
  EXPECT_DOUBLE_EQ(est[0], est[1]);
}

class HashtogramEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(HashtogramEpsSweep, ErrorWithinTheoremEnvelope) {
  // |f^ - f| <= C (1/eps) sqrt(n log(1/beta)) with C covering constants.
  const double eps = GetParam();
  const uint64_t n = 50000;
  const double beta = 1e-3;
  const Workload w = MakePlantedWorkload(n, 64, {0.4, 0.1}, 109);
  HashtogramParams p;
  p.beta = beta;
  Hashtogram ht(n, eps, p, 113);
  RunHashtogram(ht, w.database, 127);
  const double envelope =
      10.0 / eps * std::sqrt(static_cast<double>(n) * std::log(1.0 / beta));
  for (const auto& [item, count] : w.heavy) {
    EXPECT_LE(std::abs(ht.Estimate(item) - static_cast<double>(count)), envelope)
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, HashtogramEpsSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace ldphh
