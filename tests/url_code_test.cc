// Tests for src/codes/url_code: the Theorem 3.6 unique-list-recoverable code.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "src/codes/url_code.h"
#include "src/common/random.h"

namespace ldphh {
namespace {

DomainItem RandomItem(int bits, Rng& rng) {
  DomainItem x;
  for (auto& l : x.limbs) l = rng();
  x.Truncate(bits);
  return x;
}

UrlCodeParams MakeParams(int domain_bits, int m, int y, int d) {
  UrlCodeParams p;
  p.domain_bits = domain_bits;
  p.num_coords = m;
  p.hash_range = y;
  p.expander_degree = d;
  return p;
}

// Builds clean decoder lists for a set of items.
std::vector<std::vector<UrlCode::ListEntry>> CleanLists(
    const UrlCode& code, const std::vector<DomainItem>& items) {
  std::vector<std::vector<UrlCode::ListEntry>> lists(
      static_cast<size_t>(code.params().num_coords));
  for (const DomainItem& x : items) {
    const auto cw = code.Encode(x);
    for (int m = 0; m < code.params().num_coords; ++m) {
      lists[static_cast<size_t>(m)].push_back(
          {cw.y[static_cast<size_t>(m)],
           code.PackPayload(cw.symbols[static_cast<size_t>(m)])});
    }
  }
  return lists;
}

bool Contains(const std::vector<DomainItem>& v, const DomainItem& x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(UrlCode, CreateRejectsBadParameters) {
  EXPECT_FALSE(UrlCode::Create(MakeParams(4, 8, 32, 4), 1).ok());    // Width.
  EXPECT_FALSE(UrlCode::Create(MakeParams(64, 7, 32, 4), 1).ok());   // Odd M.
  EXPECT_FALSE(UrlCode::Create(MakeParams(64, 16, 33, 4), 1).ok());  // Y not 2^k.
  EXPECT_FALSE(UrlCode::Create(MakeParams(64, 16, 32, 3), 1).ok());  // Odd d.
  // Payload overflow: large chunk + many neighbor hashes.
  EXPECT_FALSE(UrlCode::Create(MakeParams(256, 8, 65536, 8), 1).ok());
}

TEST(UrlCode, EncodeShapes) {
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 7)).value();
  Rng rng(1);
  const auto cw = code.Encode(RandomItem(64, rng));
  EXPECT_EQ(cw.y.size(), 16u);
  EXPECT_EQ(cw.symbols.size(), 16u);
  for (const auto& y : cw.y) EXPECT_LT(y, 32);
  for (const auto& s : cw.symbols) {
    EXPECT_EQ(static_cast<int>(s.chunk.size()), code.chunk_symbols());
    EXPECT_EQ(s.nbr_hash.size(), 4u);
  }
}

TEST(UrlCode, TheoremStructureEncIsHashPlusTildeEnc) {
  // Enc(x)_m = (h_m(x), E~nc(x)_m): the hash component must equal the
  // standalone coordinate hash.
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 7)).value();
  Rng rng(2);
  const auto x = RandomItem(64, rng);
  const auto cw = code.Encode(x);
  for (int m = 0; m < 16; ++m) {
    EXPECT_EQ(cw.y[static_cast<size_t>(m)], code.CoordHash(x, m));
  }
}

TEST(UrlCode, NeighborHashesMatchExpander) {
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 7)).value();
  Rng rng(3);
  const auto x = RandomItem(64, rng);
  const auto cw = code.Encode(x);
  const Expander& e = code.expander();
  for (int m = 0; m < 16; ++m) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(cw.symbols[static_cast<size_t>(m)].nbr_hash[static_cast<size_t>(s)],
                cw.y[static_cast<size_t>(e.Neighbor(m, s))]);
    }
  }
}

TEST(UrlCode, PayloadPackUnpackRoundtrip) {
  auto code = std::move(UrlCode::Create(MakeParams(128, 32, 64, 6), 9)).value();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto cw = code.Encode(RandomItem(128, rng));
    for (const auto& s : cw.symbols) {
      const auto round = code.UnpackPayload(code.PackPayload(s));
      EXPECT_EQ(round.chunk, s.chunk);
      EXPECT_EQ(round.nbr_hash, s.nbr_hash);
    }
  }
}

TEST(UrlCode, PayloadBitsWithinWord) {
  auto code = std::move(UrlCode::Create(MakeParams(256, 32, 32, 4), 9)).value();
  EXPECT_LE(code.PayloadBits(), 64);
  EXPECT_EQ(code.PayloadBits(), 8 * code.chunk_symbols() + 4 * 5);
}

class UrlCodeShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(UrlCodeShapeSweep, CleanDecodeRecoversAll) {
  const auto [bits, m, y, d] = GetParam();
  auto code_or = UrlCode::Create(MakeParams(bits, m, y, d),
                                 static_cast<uint64_t>(bits * 1000 + m));
  ASSERT_TRUE(code_or.ok()) << code_or.status().ToString();
  const auto code = std::move(code_or).value();
  Rng rng(static_cast<uint64_t>(bits + m + y + d));
  // Load factor: Y must stay polylog-larger than the list size (Event E5);
  // crowding Y=32 with many items makes per-coordinate collisions routine.
  const int item_count = y >= 64 ? 6 : 3;
  std::vector<DomainItem> items;
  for (int i = 0; i < item_count; ++i) items.push_back(RandomItem(bits, rng));
  const auto out = code.Decode(CleanLists(code, items), rng);
  for (const auto& x : items) {
    EXPECT_TRUE(Contains(out, x)) << "bits=" << bits << " M=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UrlCodeShapeSweep,
    ::testing::Values(std::tuple{16, 8, 16, 4}, std::tuple{16, 8, 32, 4},
                      std::tuple{32, 8, 32, 4}, std::tuple{64, 16, 32, 4},
                      std::tuple{64, 16, 64, 6}, std::tuple{128, 32, 32, 4},
                      std::tuple{128, 32, 64, 6}, std::tuple{256, 32, 32, 4},
                      std::tuple{64, 32, 32, 4}, std::tuple{96, 16, 32, 4}));

TEST(UrlCode, DecodeToleratesCorruptedCoordinates) {
  // Theorem 3.6 contract: x is recovered whenever its encoding appears in
  // (1 - alpha) M of the lists. Drop/replace coordinates up to the margin.
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 21)).value();
  Rng rng(5);
  const auto x = RandomItem(64, rng);
  for (int bad = 0; bad <= 3; ++bad) {
    auto lists = CleanLists(code, {x});
    for (int b = 0; b < bad; ++b) {
      lists[static_cast<size_t>(b)].clear();  // Coordinate entirely missing.
    }
    const auto out = code.Decode(lists, rng);
    EXPECT_TRUE(Contains(out, x)) << "bad=" << bad;
  }
}

TEST(UrlCode, DecodeToleratesGarbageEntries) {
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 22)).value();
  Rng rng(6);
  std::vector<DomainItem> items;
  for (int i = 0; i < 4; ++i) items.push_back(RandomItem(64, rng));
  auto lists = CleanLists(code, items);
  // Add junk entries with fresh hash values and random payloads.
  for (int m = 0; m < 16; ++m) {
    for (int j = 0; j < 6; ++j) {
      lists[static_cast<size_t>(m)].push_back(
          {static_cast<uint16_t>(rng.UniformU64(32)),
           rng() & ((uint64_t{1} << code.PayloadBits()) - 1)});
    }
  }
  const auto out = code.Decode(lists, rng);
  for (const auto& x : items) EXPECT_TRUE(Contains(out, x));
}

TEST(UrlCode, UniquenessDuplicateYDropped) {
  // Definition 3.5 requires distinct y per list; the decoder keeps the
  // first entry. Planting a duplicate y with junk payload must not break
  // recovery of the legitimate first entry.
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 23)).value();
  Rng rng(7);
  const auto x = RandomItem(64, rng);
  auto lists = CleanLists(code, {x});
  for (int m = 0; m < 16; ++m) {
    const auto first = lists[static_cast<size_t>(m)][0];
    lists[static_cast<size_t>(m)].push_back({first.y, ~first.payload});
  }
  const auto out = code.Decode(lists, rng);
  EXPECT_TRUE(Contains(out, x));
}

TEST(UrlCode, NoFalsePositivesFromPureNoise) {
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 24)).value();
  Rng rng(8);
  std::vector<std::vector<UrlCode::ListEntry>> lists(16);
  for (int m = 0; m < 16; ++m) {
    for (int j = 0; j < 10; ++j) {
      lists[static_cast<size_t>(m)].push_back(
          {static_cast<uint16_t>(rng.UniformU64(32)),
           rng() & ((uint64_t{1} << code.PayloadBits()) - 1)});
    }
  }
  const auto out = code.Decode(lists, rng);
  EXPECT_TRUE(out.empty());
}

TEST(UrlCode, ManyCodewordsListRecovery) {
  // L codewords in the lists (the "list" in list-recovery): all recovered.
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 256, 4), 25)).value();
  Rng rng(9);
  std::vector<DomainItem> items;
  for (int i = 0; i < 24; ++i) items.push_back(RandomItem(64, rng));
  const auto out = code.Decode(CleanLists(code, items), rng);
  int found = 0;
  for (const auto& x : items) found += Contains(out, x);
  // Hash collisions among 24 items in Y=256 can erase a coordinate or two;
  // the code margin absorbs them for nearly all items.
  EXPECT_GE(found, 22);
}

TEST(UrlCode, DeterministicGivenSeed) {
  auto a = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 77)).value();
  auto b = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 77)).value();
  Rng rng(10);
  const auto x = RandomItem(64, rng);
  const auto ca = a.Encode(x);
  const auto cb = b.Encode(x);
  EXPECT_EQ(ca.y, cb.y);
  for (int m = 0; m < 16; ++m) {
    EXPECT_EQ(a.PackPayload(ca.symbols[static_cast<size_t>(m)]),
              b.PackPayload(cb.symbols[static_cast<size_t>(m)]));
  }
}

TEST(UrlCode, DecodeRequiresOneListPerCoordinate) {
  auto code = std::move(UrlCode::Create(MakeParams(64, 16, 32, 4), 26)).value();
  Rng rng(11);
  std::vector<std::vector<UrlCode::ListEntry>> short_lists(15);
  EXPECT_DEATH(code.Decode(short_lists, rng), "");
}

}  // namespace
}  // namespace ldphh
