// Tests for src/server/checkpoint_log: CRC-guarded append-only records.

#include "src/server/checkpoint_log.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/fault_fs.h"

namespace ldphh {
namespace {

std::string TempLogPath(const std::string& name) {
  return testing::TempDir() + "/ldphh_" + name + "_" +
         std::to_string(::getpid()) + ".log";
}

class CheckpointLogTest : public testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

// Pins the error propagation [[nodiscard]] Status now enforces at compile
// time: a failed fsync in the durability path must surface to the caller —
// a checkpoint is only declared durable on a Sync() that really succeeded —
// and the writer must heal once the fault clears.
TEST_F(CheckpointLogTest, SyncFailurePropagatesAndHeals) {
  FaultInjectingFileSystem fs;
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open("/fault/sync.ckpt", &fs).ok());
  ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "m").ok());
  fs.set_fail_file_syncs(true);
  const Status failed = writer.Sync();
  EXPECT_FALSE(failed.ok());
  fs.set_fail_file_syncs(false);
  EXPECT_TRUE(writer.Sync().ok());
  EXPECT_TRUE(writer.Close().ok());
}

// The group-commit building blocks: EncodeRecord must produce exactly the
// bytes Append writes (a reader cannot tell them apart), and a sync failure
// after AppendEncoded propagates and heals like any other — the batch is
// only durable on a Sync() that really succeeded.
TEST_F(CheckpointLogTest, EncodeRecordMatchesAppendByteForByte) {
  const std::string payloads[] = {"manifest", "", std::string(3000, 'x')};
  path_ = TempLogPath("appended");
  const std::string encoded_path = TempLogPath("encoded");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(
        writer.Append(CheckpointRecordType::kManifest, payloads[0]).ok());
    ASSERT_TRUE(
        writer.Append(CheckpointRecordType::kShardState, payloads[1]).ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kCustom, payloads[2]).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    std::string batch;
    ASSERT_TRUE(CheckpointWriter::EncodeRecord(CheckpointRecordType::kManifest,
                                               payloads[0], &batch)
                    .ok());
    ASSERT_TRUE(CheckpointWriter::EncodeRecord(
                    CheckpointRecordType::kShardState, payloads[1], &batch)
                    .ok());
    ASSERT_TRUE(CheckpointWriter::EncodeRecord(CheckpointRecordType::kCustom,
                                               payloads[2], &batch)
                    .ok());
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(encoded_path).ok());
    ASSERT_TRUE(writer.AppendEncoded(batch, 3).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(path_), slurp(encoded_path));
  std::remove(encoded_path.c_str());

  // And the batch reads back as three ordinary records.
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  CheckpointRecordType type;
  std::string payload;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(reader.Read(&type, &payload).ok()) << "record " << i;
    EXPECT_EQ(payload, payloads[i]) << "record " << i;
  }
  EXPECT_EQ(reader.Read(&type, &payload).code(), StatusCode::kOutOfRange);
}

TEST_F(CheckpointLogTest, AppendEncodedSyncFailurePropagatesAndHeals) {
  FaultInjectingFileSystem fs;
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open("/fault/batch.ckpt", &fs).ok());
  std::string batch;
  ASSERT_TRUE(CheckpointWriter::EncodeRecord(CheckpointRecordType::kManifest,
                                             "grouped", &batch)
                  .ok());
  ASSERT_TRUE(writer.AppendEncoded(batch, 1).ok());
  fs.set_fail_file_syncs(true);
  EXPECT_FALSE(writer.Sync().ok());  // The batch is NOT durable.
  fs.set_fail_file_syncs(false);
  EXPECT_TRUE(writer.Sync().ok());  // Heals: now it is.
  EXPECT_TRUE(writer.Close().ok());
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open("/fault/batch.ckpt", &fs).ok());
  CheckpointRecordType type;
  std::string payload;
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(payload, "grouped");
}

TEST_F(CheckpointLogTest, RoundTripsRecords) {
  path_ = TempLogPath("roundtrip");
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "manifest").ok());
  ASSERT_TRUE(writer.Append(CheckpointRecordType::kShardState, "").ok());
  std::string big(100000, 'x');
  big[5] = '\0';  // Binary-safe.
  ASSERT_TRUE(writer.Append(CheckpointRecordType::kCustom, big).ok());
  ASSERT_TRUE(writer.Close().ok());

  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  CheckpointRecordType type;
  std::string payload;
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(type, CheckpointRecordType::kManifest);
  EXPECT_EQ(payload, "manifest");
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(type, CheckpointRecordType::kShardState);
  EXPECT_TRUE(payload.empty());
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(type, CheckpointRecordType::kCustom);
  EXPECT_EQ(payload, big);
  EXPECT_EQ(reader.Read(&type, &payload).code(), StatusCode::kOutOfRange);
}

TEST_F(CheckpointLogTest, ReopenAppends) {
  path_ = TempLogPath("reopen");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "one").ok());
  }
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "two").ok());
  }
  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  CheckpointRecordType type;
  std::string payload;
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(payload, "one");
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(payload, "two");
}

TEST_F(CheckpointLogTest, TruncatedTailReadsAsEndOfLog) {
  path_ = TempLogPath("truncated");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "full").ok());
    ASSERT_TRUE(
        writer.Append(CheckpointRecordType::kShardState, "will be torn").ok());
  }
  // Simulate a crash mid-append: chop bytes off the end. Every truncation
  // point must still yield the first record and then a clean end-of-log.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const size_t first_record_size = kCheckpointRecordHeaderSize + 4;
  for (size_t cut = first_record_size; cut < bytes.size(); ++cut) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();

    CheckpointReader reader;
    ASSERT_TRUE(reader.Open(path_).ok());
    CheckpointRecordType type;
    std::string payload;
    ASSERT_TRUE(reader.Read(&type, &payload).ok()) << "cut at " << cut;
    EXPECT_EQ(payload, "full");
    EXPECT_EQ(reader.Read(&type, &payload).code(), StatusCode::kOutOfRange)
        << "cut at " << cut;
  }
}

TEST_F(CheckpointLogTest, CorruptRecordFailsWithDecodeFailure) {
  path_ = TempLogPath("corrupt");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "payload").ok());
  }
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip a payload byte (and separately the type byte): CRC must object.
  for (size_t pos : {kCheckpointRecordHeaderSize - 1, kCheckpointRecordHeaderSize}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();

    CheckpointReader reader;
    ASSERT_TRUE(reader.Open(path_).ok());
    CheckpointRecordType type;
    std::string payload;
    EXPECT_EQ(reader.Read(&type, &payload).code(), StatusCode::kDecodeFailure)
        << "flipped byte " << pos;
  }
}

TEST_F(CheckpointLogTest, HugeCorruptLengthReadsAsEndOfLogWithoutAllocating) {
  path_ = TempLogPath("hugelen");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "ok").ok());
    ASSERT_TRUE(writer.Append(CheckpointRecordType::kCustom, "victim").ok());
  }
  // Corrupt the second record's length field (bytes 4..7 of its header) to
  // 0xfffffff0: the reader must not attempt a ~4 GB resize, and must stop
  // cleanly after the first record.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  const std::streamoff second_header =
      static_cast<std::streamoff>(kCheckpointRecordHeaderSize + 2);
  f.seekp(second_header + 4);
  const char huge[4] = {'\xf0', '\xff', '\xff', '\xff'};
  f.write(huge, 4);
  f.close();

  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  CheckpointRecordType type;
  std::string payload;
  ASSERT_TRUE(reader.Read(&type, &payload).ok());
  EXPECT_EQ(payload, "ok");
  EXPECT_EQ(reader.Read(&type, &payload).code(), StatusCode::kOutOfRange);
}

TEST_F(CheckpointLogTest, OpenMissingFileFails) {
  CheckpointReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/dir/nothing.log").ok());
}

// Regression (ISSUE 3): a record acked by Sync() must survive power loss —
// before the fix, Sync was only fflush, so an OS crash could lose a
// checkpoint the caller had already declared durable. The unsynced tail
// may vanish *or* tear at any byte; recovery must be exact on acked
// records and clean about the rest.
TEST_F(CheckpointLogTest, SyncedRecordSurvivesPowerLossWithTornUnsyncedTail) {
  const std::string path = "/faultfs/checkpoint.log";
  // Size of the unsynced second record, swept over all torn-tail lengths.
  const std::string in_flight = "in flight!!";
  const size_t torn_size = kCheckpointRecordHeaderSize + in_flight.size();
  for (size_t keep = 0; keep <= torn_size; ++keep) {
    FaultInjectingFileSystem fs;
    {
      CheckpointWriter writer;
      ASSERT_TRUE(writer.Open(path, &fs, SyncMode::kFull).ok());
      ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "acked").ok());
      ASSERT_TRUE(writer.Sync().ok());  // Acknowledged: durable from here.
      ASSERT_TRUE(
          writer.Append(CheckpointRecordType::kShardState, in_flight).ok());
      ASSERT_TRUE(writer.Flush().ok());  // To the OS — NOT durable.
    }
    EXPECT_GE(fs.file_sync_count(), 1u) << "keep " << keep;
    EXPECT_GE(fs.dir_sync_count(), 1u)  // Created file's entry synced too.
        << "keep " << keep;
    fs.SimulatePowerLoss(keep);

    CheckpointReader reader;
    ASSERT_TRUE(reader.Open(path, &fs).ok()) << "keep " << keep;
    CheckpointRecordType type;
    std::string payload;
    ASSERT_TRUE(reader.Read(&type, &payload).ok()) << "keep " << keep;
    EXPECT_EQ(payload, "acked");
    const Status tail = reader.Read(&type, &payload);
    if (keep == torn_size) {
      // The whole in-flight record happened to reach the platter: reading
      // it back complete is fine (it was simply never acknowledged).
      EXPECT_TRUE(tail.ok()) << tail.ToString();
      EXPECT_EQ(payload, in_flight);
    } else {
      EXPECT_EQ(tail.code(), StatusCode::kOutOfRange) << "keep " << keep;
    }
  }
}

// Under SyncMode::kNone, Sync degrades to Flush: the old process-crash
// contract, with zero fsyncs issued.
TEST_F(CheckpointLogTest, SyncModeNoneNeverSyncs) {
  FaultInjectingFileSystem fs;
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open("/faultfs/nosync.log", &fs, SyncMode::kNone).ok());
  ASSERT_TRUE(writer.Append(CheckpointRecordType::kManifest, "x").ok());
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(fs.file_sync_count(), 0u);
  EXPECT_EQ(fs.dir_sync_count(), 0u);
}

}  // namespace
}  // namespace ldphh
