// Tests for src/server/admin_server: the HTTP transport itself (status
// codes for malformed, oversized, and unsupported requests; HEAD; custom
// handlers), every default endpoint serving well-formed output, concurrent
// scrapes while a sharded ingest is running full tilt, and /healthz
// flipping to 503 — and healing — when the store's write path fails under
// an injected fsync fault.

#include "src/server/admin_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_fs.h"
#include "src/obs/json_reader.h"
#include "src/server/report_codec.h"
#include "src/server/sharded_aggregator.h"
#include "src/store/checkpoint_store.h"
#include "tests/serving_test_util.h"

namespace ldphh {
namespace {

using testutil::EncodeSkewedReports;
using testutil::OracleConfig;

// Sends \p raw over a fresh connection and returns everything the server
// wrote back (the server always closes, so read-to-EOF terminates).
std::string RawRequest(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

int StatusCodeOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::atoi(response.substr(9, 3).c_str());
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

std::unique_ptr<AdminServer> MustStart(AdminServer::Options options = {}) {
  auto server_or = AdminServer::Start(std::move(options));
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  LDPHH_CHECK(server_or.ok(), "test: AdminServer::Start failed");
  return std::move(server_or).value();
}

obs::JsonValue MustParseJson(const std::string& text) {
  obs::JsonValue v;
  const Status st = obs::ParseJson(text, &v);
  EXPECT_TRUE(st.ok()) << st.ToString() << "\npayload:\n" << text;
  return v;
}

// ------------------------------------------------------------- transport

TEST(AdminServer, BindsAnEphemeralPort) {
  auto server = MustStart();
  EXPECT_NE(server->port(), 0);
  server->Stop();  // Idempotent; destructor stops again.
  server->Stop();
}

TEST(AdminServer, CustomHandlerAndQuerySplit) {
  AdminServer::Options options;
  options.register_default_endpoints = false;
  auto server = MustStart(options);
  server->Handle("/echo", [](const AdminRequest& request) {
    AdminResponse response;
    response.body = request.method + " " + request.path + " q=[" +
                    request.query + "]";
    return response;
  });
  const std::string response = HttpGet(server->port(), "/echo?a=1&b=2");
  EXPECT_EQ(StatusCodeOf(response), 200);
  EXPECT_EQ(BodyOf(response), "GET /echo q=[a=1&b=2]");
}

TEST(AdminServer, RejectsWhatItMust) {
  auto server = MustStart();
  const uint16_t port = server->port();
  EXPECT_EQ(StatusCodeOf(HttpGet(port, "/no-such-endpoint")), 404);
  EXPECT_EQ(StatusCodeOf(RawRequest(
                port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")),
            405);
  EXPECT_EQ(StatusCodeOf(RawRequest(port, "garbage\r\n\r\n")), 400);
  // Request line + headers beyond max_request_bytes → 431.
  const std::string huge = "GET /" + std::string(10000, 'a') +
                           " HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(StatusCodeOf(RawRequest(port, huge)), 431);
}

TEST(AdminServer, HeadOmitsTheBody) {
  auto server = MustStart();
  const std::string response = RawRequest(
      server->port(), "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(response), 200);
  EXPECT_EQ(BodyOf(response), "");
  // Content-Length still describes the GET body.
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
}

// ------------------------------------------------------ default endpoints

TEST(AdminServer, DefaultEndpointsServeWellFormedPayloads) {
  auto server = MustStart();
  const uint16_t port = server->port();

  const std::string index = HttpGet(port, "/");
  EXPECT_EQ(StatusCodeOf(index), 200);
  EXPECT_NE(BodyOf(index).find("/metrics"), std::string::npos);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(StatusCodeOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(BodyOf(metrics).find("# TYPE"), std::string::npos);

  for (const char* path : {"/metrics.json", "/tracez.json", "/spanz",
                           "/statusz"}) {
    const std::string response = HttpGet(port, path);
    EXPECT_EQ(StatusCodeOf(response), 200) << path;
    MustParseJson(BodyOf(response));
  }

  const std::string tracez = HttpGet(port, "/tracez");
  EXPECT_EQ(StatusCodeOf(tracez), 200);

  for (const char* path : {"/healthz", "/readyz"}) {
    const std::string response = HttpGet(port, path);
    // Other tests (and prior suites in this process) may have registered
    // failing checks; well-formed means 200 or 503 with a per-check body.
    const int code = StatusCodeOf(response);
    EXPECT_TRUE(code == 200 || code == 503) << path << ": " << code;
  }
}

// ------------------------------------------- scrapes under ingest load

TEST(AdminServer, ConcurrentScrapesWhileIngesting) {
  auto server = MustStart();
  const uint16_t port = server->port();

  const ProtocolConfig config = OracleConfig("hadamard_response", 256, 1.0);
  ShardedAggregatorOptions opts;
  opts.num_shards = 2;
  opts.queue_capacity = 1 << 12;
  auto agg_or = ShardedAggregator::Create(config, opts);
  ASSERT_TRUE(agg_or.ok()) << agg_or.status().ToString();
  auto agg = std::move(agg_or).value();
  ASSERT_TRUE(agg->Start().ok());

  const std::vector<WireReport> reports =
      EncodeSkewedReports(config, 20000, /*seed=*/11, /*value_domain=*/256);

  std::atomic<bool> ingest_done{false};
  std::thread ingest([&] {
    // Re-submit the same wire batch until the scrapers finish, so every
    // scrape overlaps live SubmitWire/WorkerLoop spans.
    const std::string wire = EncodeReportBatch(reports, agg->wire_id());
    for (int round = 0; round < 50; ++round) {
      if (!agg->SubmitWire(wire).ok()) break;
    }
    EXPECT_TRUE(agg->Drain().ok());
    ingest_done.store(true);
  });

  constexpr int kScrapers = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&, s] {
      const char* paths[] = {"/metrics", "/metrics.json", "/statusz",
                             "/spanz"};
      for (int i = 0; i < 20; ++i) {
        const std::string path = paths[(s + i) % 4];
        const std::string response = HttpGet(port, path);
        if (StatusCodeOf(response) != 200) {
          ++failures;
          continue;
        }
        if (path != "/metrics") {
          obs::JsonValue v;
          if (!obs::ParseJson(BodyOf(response), &v).ok()) ++failures;
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  ingest.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(ingest_done.load());

  // The ingest that ran concurrently is visible in /statusz.
  const obs::JsonValue statusz =
      MustParseJson(BodyOf(HttpGet(port, "/statusz")));
  const obs::JsonValue* sections = statusz.Find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_NE(sections->Find("ingest"), nullptr);
  const obs::JsonValue& ingest_sections = *sections->Find("ingest");
  ASSERT_TRUE(ingest_sections.is_array());
  ASSERT_FALSE(ingest_sections.array.empty());
  const obs::JsonValue& section = ingest_sections.array.back();
  EXPECT_GT(section.Find("submitted")->number_value, 0.0);
  ASSERT_NE(section.Find("protocol_metrics"), nullptr);
  EXPECT_GT(section.Find("protocol_metrics")->Find("num_users")->number_value,
            0.0);
}

// -------------------------------------------------------- health flipping

TEST(AdminServer, HealthzFlipsWithStoreWriteFailuresAndHeals) {
  auto server = MustStart();
  const uint16_t port = server->port();

  FaultInjectingFileSystem fs;
  CheckpointStoreOptions store_opts;
  store_opts.sync_mode = SyncMode::kFull;
  store_opts.background_compaction = false;
  store_opts.file_system = &fs;
  const std::string dir = "/faulty-admin-store";
  auto store_or = CheckpointStore::Open(dir, store_opts);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();

  ASSERT_TRUE(store->Put(1, "healthy write").ok());
  {
    const std::string response = HttpGet(port, "/healthz");
    EXPECT_EQ(StatusCodeOf(response), 200) << response;
    EXPECT_NE(BodyOf(response).find("ok store:" + dir), std::string::npos);
  }

  // The disk stops honoring fsync: the next Put fails and latches the
  // store's write health; /healthz goes 503 and names the store.
  fs.set_fail_file_syncs(true);
  EXPECT_FALSE(store->Put(2, "doomed write").ok());
  {
    const std::string response = HttpGet(port, "/healthz");
    EXPECT_EQ(StatusCodeOf(response), 503) << response;
    EXPECT_NE(BodyOf(response).find("FAIL store:" + dir), std::string::npos);
    EXPECT_NE(BodyOf(response).find("injected sync failure"),
              std::string::npos);
  }

  // The fault clears and the next successful write heals the check.
  fs.set_fail_file_syncs(false);
  ASSERT_TRUE(store->Put(3, "healed write").ok());
  {
    const std::string response = HttpGet(port, "/healthz");
    EXPECT_EQ(StatusCodeOf(response), 200) << response;
  }

  // Destroying the store unregisters its checks: /healthz must not
  // reference it afterwards (the Registration members are declared last
  // exactly so this is safe).
  store.reset();
  EXPECT_EQ(BodyOf(HttpGet(port, "/healthz")).find("store:" + dir),
            std::string::npos);
}

}  // namespace
}  // namespace ldphh
