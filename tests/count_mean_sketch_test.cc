// Tests for src/freq/count_mean_sketch: the Apple-style CMS oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "src/freq/count_mean_sketch.h"
#include "src/workload/workload.h"

namespace ldphh {
namespace {

void RunCms(CountMeanSketch& cms, const std::vector<DomainItem>& db,
            uint64_t seed) {
  Rng rng(seed);
  for (const DomainItem& x : db) cms.Aggregate(cms.Encode(x, rng));
  cms.Finalize();
}

TEST(Cms, AutoParameters) {
  CmsParams p;
  CountMeanSketch cms(1 << 20, 2.0, p, 3);
  EXPECT_EQ(cms.rows(), 16);
  EXPECT_EQ(cms.width(), 2048u);  // next_pow2(2 * 1024).
  EXPECT_EQ(cms.ReportBits(), 2048 + 4);
}

TEST(Cms, EstimatesPlantedFrequencies) {
  const uint64_t n = 60000;
  const Workload w = MakePlantedWorkload(n, 64, {0.3, 0.1}, 5);
  CmsParams p;
  CountMeanSketch cms(n, 2.0, p, 7);
  RunCms(cms, w.database, 11);
  const double tol = 25.0 * std::sqrt(static_cast<double>(n));
  for (const auto& [item, count] : w.heavy) {
    EXPECT_NEAR(cms.Estimate(item), static_cast<double>(count), tol);
  }
}

TEST(Cms, AbsentItemNearZero) {
  const uint64_t n = 60000;
  const Workload w = MakePlantedWorkload(n, 64, {0.5}, 13);
  CmsParams p;
  CountMeanSketch cms(n, 2.0, p, 17);
  RunCms(cms, w.database, 19);
  EXPECT_NEAR(cms.Estimate(DomainItem(0xdeadbeefcafeULL)), 0.0,
              25.0 * std::sqrt(static_cast<double>(n)));
}

TEST(Cms, ReportCarriesWidthBits) {
  CmsParams p;
  p.rows = 8;
  p.width = 128;
  CountMeanSketch cms(1000, 1.0, p, 23);
  Rng rng(29);
  const auto r = cms.Encode(DomainItem(42), rng);
  EXPECT_LT(r.row, 8u);
  EXPECT_EQ(r.bits.size(), 2u);  // 128 bits = 2 words.
  EXPECT_EQ(r.num_bits, 128 + 3);
}

TEST(Cms, PerBitFlipRateMatchesEpsilon) {
  const double eps = 2.0;
  CmsParams p;
  p.rows = 1;
  p.width = 64;
  CountMeanSketch cms(1000, eps, p, 31);
  Rng rng(37);
  // Count ones across reports: expected (W-1) * flip + (1 - flip).
  const double flip = 1.0 / (std::exp(eps / 2) + 1.0);
  double ones = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto r = cms.Encode(DomainItem(7), rng);
    ones += __builtin_popcountll(r.bits[0]);
  }
  EXPECT_NEAR(ones / trials, 63 * flip + (1 - flip), 0.2);
}

TEST(Cms, ErrorImprovesWithEpsilon) {
  const uint64_t n = 50000;
  const Workload w = MakePlantedWorkload(n, 64, {0.25}, 41);
  double errs[2];
  int i = 0;
  for (double eps : {0.5, 4.0}) {
    CmsParams p;
    CountMeanSketch cms(n, eps, p, 43);
    RunCms(cms, w.database, 47);
    errs[i++] = std::abs(cms.Estimate(w.heavy[0].first) -
                         static_cast<double>(w.heavy[0].second));
  }
  EXPECT_GT(errs[0], errs[1]);
}

TEST(Cms, MemorySublinear) {
  CmsParams p;
  CountMeanSketch small(1 << 14, 1.0, p, 53);
  CountMeanSketch large(1 << 22, 1.0, p, 53);
  EXPECT_LE(large.MemoryBytes(), 20 * small.MemoryBytes());
}

TEST(Cms, BadRowRejected) {
  CmsParams p;
  p.rows = 4;
  p.width = 64;
  CountMeanSketch cms(1000, 1.0, p, 59);
  CmsReport r;
  r.row = 9;
  r.bits.assign(1, 0);
  EXPECT_DEATH(cms.Aggregate(r), "");
}

class CmsEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(CmsEpsSweep, TotalMassTracksN) {
  const double eps = GetParam();
  const uint64_t n = 30000;
  const Workload w = MakePlantedWorkload(n, 64, {0.4, 0.2, 0.1}, 61);
  CmsParams p;
  CountMeanSketch cms(n, eps, p, 67);
  RunCms(cms, w.database, 71);
  // The three heavy estimates sum to ~0.7 n.
  double acc = 0;
  for (const auto& [item, count] : w.heavy) acc += cms.Estimate(item);
  EXPECT_NEAR(acc, 0.7 * static_cast<double>(n),
              60.0 * std::sqrt(static_cast<double>(n)) / eps);
}

INSTANTIATE_TEST_SUITE_P(Eps, CmsEpsSweep, ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace ldphh
