// Tests for src/obs/json_reader.h: grammar coverage (literals, numbers,
// strings with escapes and surrogate pairs, nesting), the documented
// deviations (duplicate keys keep the last occurrence, numbers as double),
// error positions, the recursion-depth bound, and a round trip through the
// JsonWriter the expositions are produced with.

#include "src/obs/json_reader.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/json_writer.h"

namespace ldphh {
namespace obs {
namespace {

JsonValue MustParse(std::string_view text) {
  JsonValue v;
  const Status st = ParseJson(text, &v);
  EXPECT_TRUE(st.ok()) << st.ToString() << " parsing: " << text;
  return v;
}

Status ParseError(std::string_view text) {
  JsonValue v;
  Status st = ParseJson(text, &v);
  EXPECT_FALSE(st.ok()) << "expected parse failure for: " << text;
  EXPECT_EQ(st.code(), StatusCode::kDecodeFailure);
  return st;
}

/// ParseError for call sites that only care about the assertions inside it.
void ExpectParseError(std::string_view text) {
  IgnoreStatus(ParseError(text), "the assertions inside ParseError are the"
                                 " point; the message is not inspected");
}

// ----------------------------------------------------------------- scalars

TEST(JsonReader, Literals) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").is_bool());
  EXPECT_TRUE(MustParse("true").bool_value);
  EXPECT_FALSE(MustParse("false").bool_value);
  EXPECT_TRUE(MustParse("  null  ").is_null());  // Surrounding whitespace.
}

TEST(JsonReader, Numbers) {
  EXPECT_DOUBLE_EQ(MustParse("0").number_value, 0.0);
  EXPECT_DOUBLE_EQ(MustParse("-17").number_value, -17.0);
  EXPECT_DOUBLE_EQ(MustParse("3.5").number_value, 3.5);
  EXPECT_DOUBLE_EQ(MustParse("1e3").number_value, 1000.0);
  EXPECT_DOUBLE_EQ(MustParse("-2.5E-2").number_value, -0.025);
  // Exact for the integer range the writers emit (< 2^53).
  EXPECT_DOUBLE_EQ(MustParse("9007199254740992").number_value, 9.007199254740992e15);
}

TEST(JsonReader, Strings) {
  EXPECT_EQ(MustParse("\"\"").string_value, "");
  EXPECT_EQ(MustParse("\"plain\"").string_value, "plain");
  EXPECT_EQ(MustParse("\"a\\\"b\\\\c\\/d\"").string_value, "a\"b\\c/d");
  EXPECT_EQ(MustParse("\"\\b\\f\\n\\r\\t\"").string_value, "\b\f\n\r\t");
  EXPECT_EQ(MustParse("\"\\u0041\"").string_value, "A");
  EXPECT_EQ(MustParse("\"\\u00e9\"").string_value, "\xc3\xa9");      // é
  EXPECT_EQ(MustParse("\"\\u20ac\"").string_value, "\xe2\x82\xac");  // €
  // Surrogate pair → 4-byte UTF-8 (U+1F600).
  EXPECT_EQ(MustParse("\"\\ud83d\\ude00\"").string_value,
            "\xf0\x9f\x98\x80");
}

// -------------------------------------------------------------- containers

TEST(JsonReader, Arrays) {
  const JsonValue v = MustParse("[1, \"two\", [true], {}]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 4u);
  EXPECT_DOUBLE_EQ(v.array[0].number_value, 1.0);
  EXPECT_EQ(v.array[1].string_value, "two");
  ASSERT_TRUE(v.array[2].is_array());
  EXPECT_TRUE(v.array[2].array[0].bool_value);
  EXPECT_TRUE(v.array[3].is_object());
  EXPECT_TRUE(MustParse("[]").array.empty());
}

TEST(JsonReader, Objects) {
  const JsonValue v = MustParse("{\"a\": 1, \"b\": {\"c\": [2]}}");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.Find("a"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("a")->number_value, 1.0);
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  const JsonValue* c = b->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->array[0].number_value, 2.0);
  EXPECT_EQ(v.Find("missing"), nullptr);
  // Find on a non-object is a safe null.
  EXPECT_EQ(MustParse("[1]").Find("a"), nullptr);
}

TEST(JsonReader, DuplicateKeysKeepLast) {
  const JsonValue v = MustParse("{\"k\": 1, \"k\": 2}");
  ASSERT_NE(v.Find("k"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("k")->number_value, 2.0);
}

TEST(JsonReader, InsertionOrderPreserved) {
  const JsonValue v = MustParse("{\"z\": 1, \"a\": 2}");
  ASSERT_EQ(v.object.size(), 2u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
}

// ------------------------------------------------------------------ errors

TEST(JsonReader, SyntaxErrors) {
  ExpectParseError("");
  ExpectParseError("{");
  ExpectParseError("[1,]");
  ExpectParseError("{\"a\" 1}");
  ExpectParseError("{\"a\": 1,}");
  ExpectParseError("nul");
  ExpectParseError("truex");
  ExpectParseError("01");       // Leading zero.
  ExpectParseError("1.");       // Bare decimal point.
  ExpectParseError("+1");       // Leading plus.
  ExpectParseError("\"open");   // Unterminated string.
  ExpectParseError("\"\\q\"");  // Unknown escape.
  ExpectParseError("\"\x01\"");     // Raw control character.
  ExpectParseError("\"\\ud83d\"");  // Lone high surrogate.
  ExpectParseError("\"\\ude00\"");  // Lone low surrogate.
  ExpectParseError("1 2");          // Trailing garbage.
  ExpectParseError("[1] x");
}

TEST(JsonReader, ErrorsNamePosition) {
  const Status st = ParseError("[1, 2, oops]");
  EXPECT_NE(st.message().find("7"), std::string::npos) << st.ToString();
}

TEST(JsonReader, DepthBound) {
  // 64 nested arrays parse; 65 exceed the documented bound.
  std::string ok(64, '[');
  ok += std::string(64, ']');
  MustParse(ok);
  std::string too_deep(65, '[');
  too_deep += std::string(65, ']');
  ExpectParseError(too_deep);
}

// -------------------------------------------------- round trip with writer

TEST(JsonReader, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("quoted \"text\" with \\ and \n");
  w.Key("count").Uint(123456789);
  w.Key("ratio").Double(0.25);
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("list").BeginArray();
  w.Uint(1).Uint(2).Uint(3);
  w.EndArray();
  w.EndObject();

  const JsonValue v = MustParse(w.str());
  EXPECT_EQ(v.Find("name")->string_value, "quoted \"text\" with \\ and \n");
  EXPECT_DOUBLE_EQ(v.Find("count")->number_value, 123456789.0);
  EXPECT_DOUBLE_EQ(v.Find("ratio")->number_value, 0.25);
  EXPECT_TRUE(v.Find("flag")->bool_value);
  EXPECT_TRUE(v.Find("nothing")->is_null());
  ASSERT_EQ(v.Find("list")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("list")->array[2].number_value, 3.0);
}

}  // namespace
}  // namespace obs
}  // namespace ldphh
