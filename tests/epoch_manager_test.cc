// Tests for src/server/epoch_manager: epoch-windowed continuous heavy
// hitters over the segment store. The acceptance criterion asserts == (not
// near): WindowedQuery over persisted epochs must match a fresh
// single-threaded aggregation of the same epochs' reports bit for bit, and
// recovery after a kill at any compaction phase must lose no closed epoch.

#include "src/server/epoch_manager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/protocols/registry.h"
#include "tests/serving_test_util.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

using testutil::AllEstimates;
using testutil::DirectAggregate;
using testutil::EncodeSkewedReports;
using testutil::ExpectSameEstimates;
using testutil::OlhConfig;
using testutil::OracleConfig;

class EpochManagerTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/ldphh_epoch_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
           std::to_string(::getpid());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<CheckpointStore> OpenStore(
      size_t segment_max_bytes = 1 << 16) {
    CheckpointStoreOptions o;
    o.segment_max_bytes = segment_max_bytes;
    o.background_compaction = false;
    auto store_or = CheckpointStore::Open(dir_, o);
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    return std::move(store_or).value();
  }

  std::unique_ptr<EpochManager> OpenManager(const ProtocolConfig& config,
                                            CheckpointStore* store,
                                            const EpochManagerOptions& opts) {
    auto mgr_or = EpochManager::Create(config, store, opts);
    EXPECT_TRUE(mgr_or.ok()) << mgr_or.status().ToString();
    LDPHH_CHECK(mgr_or.ok(), "test: EpochManager::Create failed");
    return std::move(mgr_or).value();
  }

  std::string dir_;
};

// Domain size of an oracle config (the value range reports draw from).
uint64_t DomainOf(const ProtocolConfig& config) {
  return config.GetUintOr("domain", 0);
}

std::vector<WireReport> EncodeReports(const ProtocolConfig& config, uint64_t n,
                                      uint64_t seed) {
  return EncodeSkewedReports(config, n, seed, DomainOf(config));
}

TEST_F(EpochManagerTest, WindowedQueryMatchesFreshAggregation) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 64, 1.0);
  const uint64_t kEpochSize = 5000;
  const auto reports = EncodeReports(config, 6 * kEpochSize, 404);

  auto store = OpenStore();
  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  opts.aggregator.num_shards = 4;
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
  EXPECT_EQ(mgr->current_epoch(), 6u);
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));

  // Sliding window [2, 4] and the full range [0, 5].
  auto window_or = mgr->WindowedQuery(2, 4);
  ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, 2 * kEpochSize, 5 * kEpochSize);
  ExpectSameEstimates(*window, *want);

  auto all_or = mgr->WindowedQuery(0, 5);
  ASSERT_TRUE(all_or.ok());
  auto all = std::move(all_or).value();
  auto want_all = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*all, *want_all);

  // A single-epoch window too.
  auto one_or = mgr->WindowedQuery(5, 5);
  ASSERT_TRUE(one_or.ok());
  auto one = std::move(one_or).value();
  auto want_one =
      DirectAggregate(config, reports, 5 * kEpochSize, 6 * kEpochSize);
  ExpectSameEstimates(*one, *want_one);

  ASSERT_TRUE(mgr->Close().ok());
}

TEST_F(EpochManagerTest, WindowedQueryExactForUserIndexSensitiveOracle) {
  // OLH's estimator depends on user identity, and the epoch layer merges
  // states across time: the composition must still be exact.
  const ProtocolConfig config = OlhConfig(16, 1.0, 77);
  const uint64_t kEpochSize = 2000;
  const auto reports = EncodeReports(config, 4 * kEpochSize, 11);

  auto store = OpenStore();
  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  opts.aggregator.num_shards = 4;
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());

  auto window_or = mgr->WindowedQuery(1, 3);
  ASSERT_TRUE(window_or.ok());
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, kEpochSize, 4 * kEpochSize);
  ExpectSameEstimates(*window, *want);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST_F(EpochManagerTest, QueryingOpenOrMissingEpochFails) {
  const ProtocolConfig config = OracleConfig("rappor_unary", 24, 1.0);
  auto store = OpenStore();
  EpochManagerOptions opts;
  opts.reports_per_epoch = 100;
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  const auto reports = EncodeReports(config, 150, 5);
  for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
  // Epoch 0 closed; epoch 1 open with 50 reports.
  EXPECT_EQ(mgr->current_epoch(), 1u);
  EXPECT_EQ(mgr->reports_in_current_epoch(), 50u);
  EXPECT_TRUE(mgr->WindowedQuery(0, 0).ok());
  EXPECT_EQ(mgr->WindowedQuery(0, 1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr->WindowedQuery(3, 2).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(mgr->Close().ok());
  // Close() persisted the 50-report partial epoch as epoch 1.
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{0, 1}));
}

TEST_F(EpochManagerTest, EmptyEpochMergesAsIdentity) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  auto store = OpenStore();
  EpochManagerOptions opts;
  opts.reports_per_epoch = 1000;
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  const auto reports = EncodeReports(config, 1000, 21);
  for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
  ASSERT_TRUE(mgr->CloseEpoch().ok());  // Epoch 1: zero reports.
  auto window_or = mgr->WindowedQuery(0, 1);
  ASSERT_TRUE(window_or.ok());
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*window, *want);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST_F(EpochManagerTest, RecoveryResumesEpochClockAndKeepsClosedEpochs) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 64, 1.5);
  const uint64_t kEpochSize = 1500;
  const auto reports = EncodeReports(config, 6 * kEpochSize, 99);

  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  opts.aggregator.num_shards = 2;

  // Run 3.5 epochs, then "crash" (drop the manager and the store): the 3
  // closed epochs are durable, the half-open epoch's reports are not.
  {
    auto store = OpenStore();
    auto mgr = OpenManager(config, store.get(), opts);
    ASSERT_TRUE(mgr->Start().ok());
    for (size_t i = 0; i < 3 * kEpochSize + kEpochSize / 2; ++i) {
      ASSERT_TRUE(mgr->Submit(reports[i]).ok());
    }
  }

  // Recover: the epoch clock resumes at 3; clients replay everything after
  // the last closed epoch (reports from index 3 * kEpochSize on).
  auto store = OpenStore();
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  EXPECT_EQ(mgr->current_epoch(), 3u);
  for (size_t i = 3 * kEpochSize; i < reports.size(); ++i) {
    ASSERT_TRUE(mgr->Submit(reports[i]).ok());
  }
  EXPECT_EQ(mgr->current_epoch(), 6u);

  auto all_or = mgr->WindowedQuery(0, 5);
  ASSERT_TRUE(all_or.ok());
  auto all = std::move(all_or).value();
  auto want = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*all, *want);
  ASSERT_TRUE(mgr->Close().ok());
}

// A manager configured differently from the persisted epochs must refuse
// the window with a descriptive error instead of silently merging: the
// config embedded in each epoch blob is the guard.
TEST_F(EpochManagerTest, WindowedQueryRejectsConfigMismatch) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  EpochManagerOptions opts;
  opts.reports_per_epoch = 100;
  {
    auto store = OpenStore();
    auto mgr = OpenManager(config, store.get(), opts);
    ASSERT_TRUE(mgr->Start().ok());
    const auto reports = EncodeReports(config, 100, 9);
    for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
    ASSERT_TRUE(mgr->Close().ok());
  }
  // Same store, different epsilon: the persisted epoch 0 does not belong
  // to this manager's protocol.
  auto store = OpenStore();
  const ProtocolConfig other = OracleConfig("hadamard_response", 32, 2.0);
  auto mgr = OpenManager(other, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  const Status st = mgr->WindowedQuery(0, 0).status();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("written under"), std::string::npos)
      << st.ToString();
  ASSERT_TRUE(mgr->Close().ok());
}

// The wall-clock roll policy (alongside the count-based one), driven by an
// injected fake clock: an epoch open longer than epoch_max_duration closes
// on the next Submit, and the persisted partial epoch is still exact.
TEST_F(EpochManagerTest, WallClockRollClosesEpochMidCount) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  const auto reports = EncodeReports(config, 200, 17);

  auto fake_now = std::make_shared<std::chrono::steady_clock::time_point>();
  auto store = OpenStore();
  EpochManagerOptions opts;
  opts.reports_per_epoch = 1 << 20;  // Count policy never fires here.
  opts.epoch_max_duration = std::chrono::milliseconds(1000);
  opts.clock = [fake_now] { return *fake_now; };
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());

  for (size_t i = 0; i < 10; ++i) ASSERT_TRUE(mgr->Submit(reports[i]).ok());
  EXPECT_EQ(mgr->current_epoch(), 0u);  // Not enough time has passed.

  *fake_now += std::chrono::milliseconds(1500);
  ASSERT_TRUE(mgr->Submit(reports[10]).ok());  // The straw that rolls it.
  EXPECT_EQ(mgr->current_epoch(), 1u);
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{0}));

  auto window_or = mgr->WindowedQuery(0, 0);
  ASSERT_TRUE(window_or.ok());
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, 0, 11);
  ExpectSameEstimates(*window, *want);

  // The clock restarts with the new epoch: no immediate re-roll.
  ASSERT_TRUE(mgr->Submit(reports[11]).ok());
  EXPECT_EQ(mgr->current_epoch(), 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

// PollClock rolls quiet epochs without any Submit traffic — including a
// zero-report epoch (a quiet period is still an epoch).
TEST_F(EpochManagerTest, PollClockRollsQuietEpochs) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  const auto reports = EncodeReports(config, 20, 23);

  auto fake_now = std::make_shared<std::chrono::steady_clock::time_point>();
  auto store = OpenStore();
  EpochManagerOptions opts;
  opts.reports_per_epoch = 1 << 20;
  opts.epoch_max_duration = std::chrono::milliseconds(1000);
  opts.clock = [fake_now] { return *fake_now; };
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());

  for (size_t i = 0; i < 5; ++i) ASSERT_TRUE(mgr->Submit(reports[i]).ok());
  auto rolled_or = mgr->PollClock();
  ASSERT_TRUE(rolled_or.ok());
  EXPECT_FALSE(rolled_or.value());  // Too early.
  EXPECT_EQ(mgr->current_epoch(), 0u);

  *fake_now += std::chrono::milliseconds(1001);
  rolled_or = mgr->PollClock();
  ASSERT_TRUE(rolled_or.ok());
  EXPECT_TRUE(rolled_or.value());
  EXPECT_EQ(mgr->current_epoch(), 1u);
  EXPECT_EQ(mgr->reports_in_current_epoch(), 0u);

  // A fully quiet period closes as an empty epoch and merges as identity.
  *fake_now += std::chrono::milliseconds(1001);
  rolled_or = mgr->PollClock();
  ASSERT_TRUE(rolled_or.ok());
  EXPECT_TRUE(rolled_or.value());
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{0, 1}));

  auto window_or = mgr->WindowedQuery(0, 1);
  ASSERT_TRUE(window_or.ok());
  auto window = std::move(window_or).value();
  auto want = DirectAggregate(config, reports, 0, 5);
  ExpectSameEstimates(*window, *want);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST_F(EpochManagerTest, PruneDropsOldEpochsDurably) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  const uint64_t kEpochSize = 500;
  const auto reports = EncodeReports(config, 6 * kEpochSize, 31);
  auto store = OpenStore(1 << 12);
  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());

  ASSERT_TRUE(mgr->PruneEpochsBefore(4).ok());
  EXPECT_EQ(mgr->PersistedEpochs(), (std::vector<uint64_t>{4, 5}));
  EXPECT_EQ(mgr->WindowedQuery(3, 5).status().code(), StatusCode::kOutOfRange);
  auto kept_or = mgr->WindowedQuery(4, 5);
  ASSERT_TRUE(kept_or.ok());
  auto kept = std::move(kept_or).value();
  auto want = DirectAggregate(config, reports, 4 * kEpochSize, 6 * kEpochSize);
  ExpectSameEstimates(*kept, *want);
  ASSERT_TRUE(mgr->Close().ok());

  // Compaction reclaims the pruned epochs; recovery does not resurrect
  // them, and the clock still resumes after the last kept epoch.
  ASSERT_TRUE(store->Compact().ok());
  store.reset();
  auto reopened_store = OpenStore(1 << 12);
  auto again = OpenManager(config, reopened_store.get(), opts);
  ASSERT_TRUE(again->Start().ok());
  EXPECT_EQ(again->PersistedEpochs(), (std::vector<uint64_t>{4, 5}));
  EXPECT_EQ(again->current_epoch(), 6u);
}

TEST_F(EpochManagerTest, EpochClockSurvivesPruningEverything) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 32, 1.0);
  EpochManagerOptions opts;
  opts.reports_per_epoch = 100;
  {
    auto store = OpenStore();
    auto mgr = OpenManager(config, store.get(), opts);
    ASSERT_TRUE(mgr->Start().ok());
    const auto reports = EncodeReports(config, 500, 3);
    for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
    EXPECT_EQ(mgr->current_epoch(), 5u);
    // Retention drops every persisted epoch; the ids 0..4 were still
    // issued and must never be reused.
    ASSERT_TRUE(mgr->PruneEpochsBefore(5).ok());
    EXPECT_TRUE(mgr->PersistedEpochs().empty());
    ASSERT_TRUE(store->Compact().ok());
  }
  auto store = OpenStore();
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  EXPECT_EQ(mgr->current_epoch(), 5u);
  EXPECT_TRUE(mgr->PersistedEpochs().empty());
  EXPECT_EQ(mgr->WindowedQuery(UINT64_MAX, UINT64_MAX).status().code(),
            StatusCode::kInvalidArgument);
}

// The ISSUE acceptance criterion: a kill at every compaction phase loses no
// closed epoch — the windowed query over all epochs still matches the fresh
// aggregation bit for bit after recovery.
class EpochCompactionCrashTest
    : public EpochManagerTest,
      public testing::WithParamInterface<CheckpointStore::CompactionCrashPoint> {};

TEST_P(EpochCompactionCrashTest, NoClosedEpochLost) {
  const ProtocolConfig config = OracleConfig("hadamard_response", 64, 1.0);
  const uint64_t kEpochSize = 800;
  const uint64_t kEpochs = 8;
  const auto reports = EncodeReports(config, kEpochs * kEpochSize, 7);

  // Tiny segments so the epochs spread across many sealed segments.
  {
    auto store = OpenStore(1 << 10);
    EpochManagerOptions opts;
    opts.reports_per_epoch = kEpochSize;
    opts.aggregator.num_shards = 2;
    auto mgr = OpenManager(config, store.get(), opts);
    ASSERT_TRUE(mgr->Start().ok());
    for (const WireReport& r : reports) ASSERT_TRUE(mgr->Submit(r).ok());
    ASSERT_GT(store->Stats().sealed_segments, 2u);

    store->set_crash_point_for_testing(GetParam());
    ASSERT_TRUE(store->Compact().ok());
    // Kill: neither the manager nor the store get a clean shutdown past
    // this point (the manager's open epoch holds zero reports here).
  }

  auto store = OpenStore(1 << 10);
  EpochManagerOptions opts;
  opts.reports_per_epoch = kEpochSize;
  opts.aggregator.num_shards = 2;
  auto mgr = OpenManager(config, store.get(), opts);
  ASSERT_TRUE(mgr->Start().ok());
  EXPECT_EQ(mgr->current_epoch(), kEpochs);

  std::vector<uint64_t> want_epochs;
  for (uint64_t e = 0; e < kEpochs; ++e) want_epochs.push_back(e);
  EXPECT_EQ(mgr->PersistedEpochs(), want_epochs);

  auto all_or = mgr->WindowedQuery(0, kEpochs - 1);
  ASSERT_TRUE(all_or.ok()) << all_or.status().ToString();
  auto all = std::move(all_or).value();
  auto want = DirectAggregate(config, reports, 0, reports.size());
  ExpectSameEstimates(*all, *want);
  ASSERT_TRUE(mgr->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, EpochCompactionCrashTest,
    testing::Values(
        CheckpointStore::CompactionCrashPoint::kAfterConsolidatedSegment,
        CheckpointStore::CompactionCrashPoint::kAfterTempManifest,
        CheckpointStore::CompactionCrashPoint::kAfterManifestInstall));

}  // namespace
}  // namespace ldphh
