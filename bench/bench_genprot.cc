// Experiment F8 — Section 6 / Theorem 6.1: GenProt turns an
// (eps, delta)-LDP randomizer into a pure 10eps one with utility loss
// n((1/2+eps)^T + 6 T delta e^eps/(1-e^-eps)) and O(log log n)-bit reports.
//
// Series over delta: realized exact epsilon (over sampled public
// randomness), the utility TV bound, and the measured counting error of
// the transformed protocol vs the original.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr double kEps = 0.2;
constexpr uint64_t kN = 20000;

double MaxRealizedEpsilon(const GenProt& gp, const LocalRandomizer& rr,
                          int t_count, int trials, uint64_t seed) {
  Rng rng(seed);
  double worst = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> ys;
    for (int i = 0; i < t_count; ++i) ys.push_back(rr.Sample(0, rng));
    worst = std::max(worst, gp.ExactEpsilonForPublicRandomness(ys));
  }
  return worst;
}

// Debiased counting estimate from resolved randomizer outputs.
double CountEstimate(const std::vector<int>& outputs) {
  const double e = std::exp(kEps);
  double est = 0;
  for (int y : outputs) {
    if (y >= 2) {
      est += (y - 2);
    } else {
      est += ((e + 1) / (e - 1)) * (static_cast<double>(y) - 1.0 / (e + 1));
    }
  }
  return est;
}

void BM_GenProtRealizedEpsilon(benchmark::State& state) {
  const double delta = std::pow(10.0, -static_cast<double>(state.range(0)));
  LeakyRandomizedResponse rr(kEps, delta);
  const int t_count = 24;
  GenProt gp(&rr, kEps, t_count, 0);
  double worst = 0;
  for (auto _ : state) {
    worst = MaxRealizedEpsilon(gp, rr, t_count, 10, 7);
    benchmark::DoNotOptimize(worst);
  }
  state.counters["realized_eps"] = worst;
  state.counters["bound_10eps"] = GenProt::PrivacyBound(kEps);
  state.counters["tv_bound"] = GenProt::UtilityTvBound(kEps, delta, t_count, kN);
}
BENCHMARK(BM_GenProtRealizedEpsilon)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_GenProtRunThroughput(benchmark::State& state) {
  LeakyRandomizedResponse rr(kEps, 1e-7);
  GenProt gp(&rr, kEps, 24, 0);
  std::vector<int> inputs(kN);
  Rng wl(5);
  for (auto& x : inputs) x = wl.Bernoulli(0.4);
  for (auto _ : state) {
    auto run = gp.Run(inputs, 11);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_GenProtRunThroughput)->Unit(benchmark::kMillisecond);

void BM_F8_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F8: GenProt approximate->pure (eps=%.2f, n=%llu) ===\n",
              kEps, static_cast<unsigned long long>(kN));
  const int t_count = 24;
  std::printf("T = %d (Theorem 6.1 needs T >= 5 ln(1/eps) = %d); report = %d "
              "bits (log log n scale)\n",
              t_count, GenProt::MinT(kEps), 5);
  std::printf("%-10s %14s %12s %14s %16s\n", "delta", "realized eps",
              "10*eps", "TV bound", "count err (meas)");
  // Ground truth workload.
  std::vector<int> inputs(kN);
  uint64_t ones = 0;
  Rng wl(5);
  for (auto& x : inputs) {
    x = wl.Bernoulli(0.4);
    ones += x;
  }
  for (int neg : {3, 5, 7, 9}) {
    const double delta = std::pow(10.0, -neg);
    LeakyRandomizedResponse rr(kEps, delta);
    GenProt gp(&rr, kEps, t_count, 0);
    const double realized = MaxRealizedEpsilon(gp, rr, t_count, 10, 7);
    const auto run = gp.Run(inputs, 11);
    const double err =
        std::abs(CountEstimate(run.resolved_output) - static_cast<double>(ones));
    std::printf("%-10.0e %14.3f %12.3f %14.3e %16.1f\n", delta, realized,
                GenProt::PrivacyBound(kEps),
                GenProt::UtilityTvBound(kEps, delta, t_count, kN), err);
  }
  std::printf("shape: realized eps stays under 10*eps for every delta (the\n"
              "transformation yields PURE privacy), and the measured counting\n"
              "error stays at the sqrt(n)/eps noise floor — approximate LDP\n"
              "buys no accuracy over pure LDP (the Section 6 message).\n\n");
}
BENCHMARK(BM_F8_Print)->Iterations(1);

}  // namespace
