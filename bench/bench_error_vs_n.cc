// Experiment F2 — error scaling in n: the frequency-oracle estimate error
// and the heavy-hitter detection threshold both scale as sqrt(n)
// (Theorems 3.7 / 3.13). The printed column err/sqrt(n) should be flat.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr double kEps = 2.0;

// Max frequency-oracle error over the planted heavy items.
double MeasureHashtogramErrorOnce(uint64_t n, uint64_t seed) {
  const Workload w = MakePlantedWorkload(n, 64, {0.3, 0.15, 0.05}, seed);
  HashtogramParams p;
  p.beta = 1e-3;
  Hashtogram ht(n, kEps, p, seed + 1);
  Rng rng(seed + 2);
  for (uint64_t i = 0; i < n; ++i) {
    ht.Aggregate(i, ht.Encode(i, w.database[static_cast<size_t>(i)], rng));
  }
  ht.Finalize();
  double err = 0;
  for (const auto& [item, count] : w.heavy) {
    err = std::max(err, std::abs(ht.Estimate(item) - static_cast<double>(count)));
  }
  return err;
}

// Median over three seeds: one run's max-error is itself a heavy-tailed
// statistic; the median stabilizes the printed scaling curve.
double MeasureHashtogramError(uint64_t n, uint64_t seed) {
  return Median({MeasureHashtogramErrorOnce(n, seed),
                 MeasureHashtogramErrorOnce(n, seed + 100),
                 MeasureHashtogramErrorOnce(n, seed + 200)});
}

void BM_HashtogramErrorVsN(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  double err = 0;
  for (auto _ : state) {
    err = MeasureHashtogramError(n, 42);
    benchmark::DoNotOptimize(err);
  }
  state.counters["max_err"] = err;
  state.counters["err/sqrt(n)"] = err / std::sqrt(static_cast<double>(n));
}
BENCHMARK(BM_HashtogramErrorVsN)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// End-to-end PES error at matched relative planted mass.
void BM_PesErrorVsN(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  PesParams p;
  p.domain_bits = 16;
  p.epsilon = 4.0;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const Workload w = MakePlantedWorkload(n, 16, {0.3, 0.2}, 77 + n);
  double err = 0;
  for (auto _ : state) {
    const auto res = std::move(pes.Run(w.database, 9)).value();
    const auto eval = EvaluateHeavyHitters(w.database, res, w.heavy[1].second);
    err = eval.max_estimate_error;
  }
  state.counters["max_err"] = err;
  state.counters["err/sqrt(n)"] = err / std::sqrt(static_cast<double>(n));
  state.counters["Delta_theory"] = pes.DetectionThreshold(n);
}
BENCHMARK(BM_PesErrorVsN)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_F2_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F2: frequency-oracle error vs n (eps=%.1f) ===\n", kEps);
  std::printf("%-12s %12s %14s\n", "n", "max_err", "err/sqrt(n)");
  for (int ln = 14; ln <= 20; ln += 2) {
    const uint64_t n = uint64_t{1} << ln;
    const double err = MeasureHashtogramError(n, 42);
    std::printf("2^%-10d %12.1f %14.3f\n", ln, err,
                err / std::sqrt(static_cast<double>(n)));
  }
  std::printf("shape: err/sqrt(n) flat => error = Theta(sqrt(n)) "
              "(Theorem 3.7).\n\n");
}
BENCHMARK(BM_F2_Print)->Iterations(1);

}  // namespace
