// Experiment F4 — error scaling in the domain size: the sqrt(log |X|)
// factor of the Theorem 3.13 detection threshold, realized through the
// coordinate split M * Lz = Theta(log |X|). Printed column
// Delta / sqrt(n log|X|) should be roughly flat across domain widths.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr uint64_t kN = 1 << 20;
constexpr double kEps = 4.0;

PesParams ConfigFor(int domain_bits) {
  PesParams p;
  p.domain_bits = domain_bits;
  p.epsilon = kEps;
  p.hash_range = domain_bits <= 32 ? 16 : 32;
  p.expander_degree = 4;
  return p;  // num_coords auto-scales with the width.
}

void BM_PesThresholdVsDomain(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  auto pes = std::move(PrivateExpanderSketch::Create(ConfigFor(bits))).value();
  double thr = 0;
  for (auto _ : state) {
    thr = pes.DetectionThreshold(kN);
    benchmark::DoNotOptimize(thr);
  }
  state.counters["Delta"] = thr;
  state.counters["Delta/sqrt(n*logX)"] =
      thr / std::sqrt(static_cast<double>(kN) * bits);
  state.counters["M"] = pes.num_coords();
  state.counters["Lz"] = pes.payload_bits();
}
BENCHMARK(BM_PesThresholdVsDomain)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// End-to-end recovery at ~1.1x the width-dependent threshold, verifying
// the threshold formula is honest at every width.
void BM_PesRecoveryVsDomain(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  auto pes = std::move(PrivateExpanderSketch::Create(ConfigFor(bits))).value();
  const double frac =
      std::min(0.4, 1.15 * pes.DetectionThreshold(kN) / static_cast<double>(kN));
  const Workload w = MakePlantedWorkload(kN, bits, {frac}, 900 + bits);
  int found = 0;
  for (auto _ : state) {
    const auto res = std::move(pes.Run(w.database, 3)).value();
    for (const auto& e : res.entries) found += (e.item == w.heavy[0].first);
  }
  state.counters["planted_frac"] = frac;
  state.counters["found"] = found;
}
BENCHMARK(BM_PesRecoveryVsDomain)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_F4_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F4: detection threshold vs |X| (n=%llu, eps=%.1f) ===\n",
              static_cast<unsigned long long>(kN), kEps);
  std::printf("%-8s %4s %4s %12s %20s\n", "log|X|", "M", "Lz", "Delta",
              "Delta/sqrt(n log|X|)");
  for (int bits : {16, 32, 64, 128, 256}) {
    auto pes = std::move(PrivateExpanderSketch::Create(ConfigFor(bits))).value();
    const double thr = pes.DetectionThreshold(kN);
    std::printf("%-8d %4d %4d %12.0f %20.2f\n", bits, pes.num_coords(),
                pes.payload_bits(), thr,
                thr / std::sqrt(static_cast<double>(kN) * bits));
  }
  std::printf("shape: last column ~flat => Delta = Theta(sqrt(n log|X|))\n"
              "(Theorem 3.13; the step at the M auto-switch is the\n"
              "constant-factor cost of the chunk re-size).\n\n");
}
BENCHMARK(BM_F4_Print)->Iterations(1);

}  // namespace
