// Experiment A2 — ablation: Theorem 3.6 code parameters. Encode/decode
// throughput and list-recovery success rate as a function of the
// per-coordinate corruption rate alpha, across (M, d, Y) shapes.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

UrlCodeParams Shape(int bits, int m, int y, int d) {
  UrlCodeParams p;
  p.domain_bits = bits;
  p.num_coords = m;
  p.hash_range = y;
  p.expander_degree = d;
  return p;
}

DomainItem RandomItem(int bits, Rng& rng) {
  DomainItem x;
  for (auto& l : x.limbs) l = rng();
  x.Truncate(bits);
  return x;
}

void BM_UrlEncode(benchmark::State& state) {
  auto code = std::move(UrlCode::Create(Shape(64, 16, 32, 4), 3)).value();
  Rng rng(5);
  const auto x = RandomItem(64, rng);
  for (auto _ : state) {
    auto cw = code.Encode(x);
    benchmark::DoNotOptimize(cw);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UrlEncode);

void BM_UrlDecodeClean(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  auto code = std::move(UrlCode::Create(Shape(64, 16, 256, 4), 3)).value();
  Rng rng(7);
  std::vector<std::vector<UrlCode::ListEntry>> lists(16);
  for (int i = 0; i < items; ++i) {
    const auto cw = code.Encode(RandomItem(64, rng));
    for (int m = 0; m < 16; ++m) {
      lists[static_cast<size_t>(m)].push_back(
          {cw.y[static_cast<size_t>(m)],
           code.PackPayload(cw.symbols[static_cast<size_t>(m)])});
    }
  }
  size_t recovered = 0;
  for (auto _ : state) {
    recovered = code.Decode(lists, rng).size();
  }
  state.counters["recovered"] = static_cast<double>(recovered);
}
BENCHMARK(BM_UrlDecodeClean)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

// Recovery rate vs per-coordinate corruption, one shape per Args set.
double RecoveryRate(const UrlCodeParams& shape, double alpha, int trials,
                    uint64_t seed) {
  auto code = std::move(UrlCode::Create(shape, seed)).value();
  Rng rng(seed + 1);
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto x = RandomItem(shape.domain_bits, rng);
    const auto cw = code.Encode(x);
    std::vector<std::vector<UrlCode::ListEntry>> lists(
        static_cast<size_t>(shape.num_coords));
    for (int m = 0; m < shape.num_coords; ++m) {
      if (rng.UniformDouble() < alpha) {
        // Corrupted coordinate: replace with junk (worse than erasure).
        lists[static_cast<size_t>(m)].push_back(
            {static_cast<uint16_t>(rng.UniformU64(shape.hash_range)),
             rng() & ((uint64_t{1} << code.PayloadBits()) - 1)});
      } else {
        lists[static_cast<size_t>(m)].push_back(
            {cw.y[static_cast<size_t>(m)],
             code.PackPayload(cw.symbols[static_cast<size_t>(m)])});
      }
    }
    const auto out = code.Decode(lists, rng);
    for (const auto& o : out) ok += (o == x);
  }
  return static_cast<double>(ok) / trials;
}

void BM_UrlRecoveryVsAlpha(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 100.0;
  double rate = 0;
  for (auto _ : state) {
    rate = RecoveryRate(Shape(64, 16, 32, 4), alpha, 50, 11);
  }
  state.counters["recovery"] = rate;
}
BENCHMARK(BM_UrlRecoveryVsAlpha)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_A2_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== A2: unique-list-recoverable code ablation ===\n");
  struct Row {
    const char* name;
    UrlCodeParams shape;
  };
  const Row rows[] = {
      {"M=16 d=4 Y=32 (default)", Shape(64, 16, 32, 4)},
      {"M=16 d=6 Y=32", Shape(64, 16, 32, 6)},
      {"M=32 d=4 Y=32", Shape(64, 32, 32, 4)},
      {"M=16 d=4 Y=256", Shape(64, 16, 256, 4)},
  };
  std::printf("%-26s", "shape \\ alpha");
  for (double a : {0.0, 0.1, 0.2, 0.3, 0.4}) std::printf(" %7.2f", a);
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-26s", row.name);
    for (double a : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      std::printf(" %7.2f", RecoveryRate(row.shape, a, 50, 11));
    }
    std::printf("\n");
  }
  std::printf("shape: recovery ~1.0 up to the code's alpha budget (rate-1/2\n"
              "RS corrects 25%% coordinate errors; M=32 halves the chunk and\n"
              "doubles the margin), then collapses — the list-recovery\n"
              "threshold of Theorem 3.6.\n\n");
}
BENCHMARK(BM_A2_Print)->Iterations(1);

}  // namespace
