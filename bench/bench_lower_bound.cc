// Experiment F9 — Section 7 / Theorem 7.2: the error-vs-beta curve of a
// real eps-LDP counting protocol on the block-random database, overlaid
// with the lower-bound shape (1/eps) sqrt(n log(1/beta)), plus the
// Appendix A binomial anti-concentration validation (Theorem A.5).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr uint64_t kN = 1 << 15;
constexpr double kEps = 0.5;
constexpr int kTrials = 2000;

void BM_LowerBoundExperiment(benchmark::State& state) {
  LowerBoundExperiment exp;
  for (auto _ : state) {
    exp = RunLowerBoundExperiment(kN, kEps, 1.0, 200, 3);
    benchmark::DoNotOptimize(exp);
  }
  state.counters["median_err"] = ErrorQuantile(exp, 0.5);
  state.counters["q99_err"] = ErrorQuantile(exp, 0.01);
  state.counters["shape_med"] = LowerBoundShape(kN, kEps, 0.5);
}
BENCHMARK(BM_LowerBoundExperiment)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BinomialMinExit(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  double exit = 0;
  for (auto _ : state) {
    exit = BinomialMinExitProbability(
        n, 0.5, static_cast<uint64_t>(0.5 * std::sqrt(n * std::log(20.0))));
    benchmark::DoNotOptimize(exit);
  }
  state.counters["min_exit"] = exit;
}
BENCHMARK(BM_BinomialMinExit)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_F9_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F9: lower bound via anti-concentration "
              "(n=%llu, eps=%.2f, %d trials) ===\n",
              static_cast<unsigned long long>(kN), kEps, kTrials);
  const auto exp = RunLowerBoundExperiment(kN, kEps, 1.0, kTrials, 3);
  std::printf("block bits m = C eps^2 n = %llu\n",
              static_cast<unsigned long long>(exp.m));
  std::printf("%-8s %18s %24s %8s\n", "beta", "measured err@beta",
              "LB shape sqrt(n ln(1/b))/eps", "ratio");
  for (double beta : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005}) {
    const double measured = ErrorQuantile(exp, beta);
    const double shape = LowerBoundShape(kN, kEps, beta);
    std::printf("%-8.3f %18.1f %24.1f %8.3f\n", beta, measured, shape,
                measured / shape);
  }
  std::printf("shape: the ratio is a (roughly constant) c in [0.1, 1]:\n"
              "the realized error of a legitimate eps-LDP counter tracks\n"
              "the Omega((1/eps) sqrt(n log(1/beta))) lower bound, so the\n"
              "Section 3 upper bound is tight in beta (Theorem 7.2).\n\n");

  std::printf("=== Theorem A.5 check: Bin(n, 1/2) min exit probability ===\n");
  std::printf("%-10s %-10s %14s %12s\n", "n", "beta", "|I| = c*s(b)",
              "min exit");
  for (uint64_t n : {uint64_t{1} << 10, uint64_t{1} << 14}) {
    for (double beta : {0.2, 0.05, 0.01}) {
      const uint64_t len =
          static_cast<uint64_t>(0.5 * std::sqrt(n * std::log(1.0 / beta)));
      const double exit = BinomialMinExitProbability(n, 0.5, len);
      std::printf("%-10llu %-10.2f %14llu %12.4f\n",
                  static_cast<unsigned long long>(n), beta,
                  static_cast<unsigned long long>(len), exit);
    }
  }
  std::printf("shape: every interval of length 0.5 sqrt(n ln 1/beta) is\n"
              "exited with probability >= beta (the anti-concentration the\n"
              "proof of Theorem 7.2 needs).\n\n");
}
BENCHMARK(BM_F9_Print)->Iterations(1);

}  // namespace
