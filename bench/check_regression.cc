// Perf-regression gate: compare a fresh google-benchmark JSON dump against
// a committed baseline and fail when throughput regresses past tolerance.
//
//   check_regression <baseline.json> <fresh.json> [flags]
//
// For every benchmark present in the baseline, the gate looks up the same
// name in the fresh run and compares the rate counters google-benchmark
// emits (`items_per_second`, `bytes_per_second` — higher is better). A
// metric fails when fresh/baseline < 1 - tolerance.
//
// Flags:
//   --default-tolerance=<frac>   allowed fractional drop (default 0.35 —
//                                CI machines are noisy, 1-CPU VMs doubly so)
//   --tolerance=<name>=<frac>    per-benchmark override (repeatable; <name>
//                                is the full benchmark name)
//   --normalize                  divide out machine speed: every per-metric
//                                ratio is scaled by the median ratio across
//                                all metrics, so a uniformly slower (or
//                                faster) host cancels and only *relative*
//                                regressions trip the gate
//
// Environment:
//   LDPHH_BENCH_GATE=off         print what would have been checked and
//                                exit 0 — the documented escape hatch for
//                                intentional perf-profile changes (commit a
//                                new baseline in the same PR to re-arm).
//
// Benchmarks present in the fresh run but not the baseline are ignored
// (new benches don't need a baseline yet); baseline entries missing from
// the fresh run only warn (renames shouldn't hard-fail unrelated PRs).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_reader.h"

namespace {

using ldphh::Status;
using ldphh::obs::JsonValue;
using ldphh::obs::ParseJson;

struct Metric {
  std::string bench;   // Full benchmark name.
  std::string counter; // "items_per_second" | "bytes_per_second".
  double baseline = 0.0;
  double fresh = 0.0;
  double ratio = 0.0;  // fresh / baseline (after normalization, if any).
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// benchmark name -> counter name -> value, for every rate counter present.
std::map<std::string, std::map<std::string, double>> ExtractRates(
    const JsonValue& doc) {
  std::map<std::string, std::map<std::string, double>> rates;
  const JsonValue* benches = doc.Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) return rates;
  for (const JsonValue& b : benches->array) {
    const JsonValue* name = b.Find("name");
    const JsonValue* run_type = b.Find("run_type");
    if (name == nullptr || !name->is_string()) continue;
    // Skip aggregate rows (mean/median/stddev of repetitions).
    if (run_type != nullptr && run_type->is_string() &&
        run_type->string_value != "iteration") {
      continue;
    }
    for (const char* counter : {"items_per_second", "bytes_per_second"}) {
      const JsonValue* v = b.Find(counter);
      if (v != nullptr && v->is_number() && v->number_value > 0.0) {
        rates[name->string_value][counter] = v->number_value;
      }
    }
  }
  return rates;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double default_tolerance = 0.35;
  bool normalize = false;
  std::map<std::string, double> per_bench_tolerance;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--default-tolerance=", 0) == 0) {
      default_tolerance = std::atof(arg.c_str() + strlen("--default-tolerance="));
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      const std::string spec = arg.substr(strlen("--tolerance="));
      const size_t eq = spec.rfind('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad flag (want --tolerance=<name>=<frac>): %s\n",
                     arg.c_str());
        return 2;
      }
      per_bench_tolerance[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (arg == "--normalize") {
      normalize = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: check_regression <baseline.json> <fresh.json> "
                 "[--default-tolerance=F] [--tolerance=NAME=F] "
                 "[--normalize]\n");
    return 2;
  }

  const char* gate = std::getenv("LDPHH_BENCH_GATE");
  const bool gate_off = gate != nullptr && std::string(gate) == "off";

  std::string baseline_text, fresh_text;
  if (!ReadFile(positional[0], &baseline_text)) {
    std::fprintf(stderr, "cannot read baseline: %s\n", positional[0].c_str());
    return 2;
  }
  if (!ReadFile(positional[1], &fresh_text)) {
    std::fprintf(stderr, "cannot read fresh run: %s\n", positional[1].c_str());
    return 2;
  }

  JsonValue baseline_doc, fresh_doc;
  if (const Status st = ParseJson(baseline_text, &baseline_doc); !st.ok()) {
    std::fprintf(stderr, "baseline %s: %s\n", positional[0].c_str(),
                 st.message().c_str());
    return 2;
  }
  if (const Status st = ParseJson(fresh_text, &fresh_doc); !st.ok()) {
    std::fprintf(stderr, "fresh %s: %s\n", positional[1].c_str(),
                 st.message().c_str());
    return 2;
  }

  const auto baseline_rates = ExtractRates(baseline_doc);
  const auto fresh_rates = ExtractRates(fresh_doc);

  std::vector<Metric> metrics;
  int missing = 0;
  for (const auto& [bench, counters] : baseline_rates) {
    const auto fit = fresh_rates.find(bench);
    if (fit == fresh_rates.end()) {
      std::fprintf(stderr, "WARN  %s: in baseline but not in fresh run\n",
                   bench.c_str());
      ++missing;
      continue;
    }
    for (const auto& [counter, base_value] : counters) {
      const auto cit = fit->second.find(counter);
      if (cit == fit->second.end()) {
        std::fprintf(stderr, "WARN  %s [%s]: counter absent in fresh run\n",
                     bench.c_str(), counter.c_str());
        continue;
      }
      Metric m;
      m.bench = bench;
      m.counter = counter;
      m.baseline = base_value;
      m.fresh = cit->second;
      m.ratio = m.fresh / m.baseline;
      metrics.push_back(std::move(m));
    }
  }

  if (metrics.empty()) {
    std::fprintf(stderr, "no comparable metrics between %s and %s\n",
                 positional[0].c_str(), positional[1].c_str());
    return gate_off ? 0 : 2;
  }

  double scale = 1.0;
  if (normalize) {
    std::vector<double> ratios;
    ratios.reserve(metrics.size());
    for (const Metric& m : metrics) ratios.push_back(m.ratio);
    const double median = Median(std::move(ratios));
    if (median > 0.0) {
      scale = 1.0 / median;
      std::printf("normalize: median fresh/baseline ratio %.3f "
                  "(scaling all ratios by %.3f)\n",
                  median, scale);
    }
  }

  int failures = 0;
  for (Metric& m : metrics) {
    m.ratio *= scale;
    const auto tit = per_bench_tolerance.find(m.bench);
    const double tolerance =
        tit != per_bench_tolerance.end() ? tit->second : default_tolerance;
    const bool ok = m.ratio >= 1.0 - tolerance;
    std::printf("%s %-40s %-17s base=%12.0f fresh=%12.0f ratio=%.3f "
                "(tolerance %.0f%%)\n",
                ok ? "ok  " : "FAIL", m.bench.c_str(), m.counter.c_str(),
                m.baseline, m.fresh, m.ratio, tolerance * 100.0);
    if (!ok) ++failures;
  }

  if (missing > 0) {
    std::printf("%d baseline benchmark(s) missing from the fresh run "
                "(warned above, not fatal)\n",
                missing);
  }
  if (failures > 0) {
    std::printf("%d metric(s) regressed past tolerance%s\n", failures,
                gate_off ? " — gate is OFF (LDPHH_BENCH_GATE=off), exiting 0"
                         : "");
    if (!gate_off) {
      std::printf("intentional perf change? re-record the baseline in this "
                  "PR, or set LDPHH_BENCH_GATE=off for one run\n");
      return 1;
    }
    return 0;
  }
  std::printf("all %zu metric(s) within tolerance\n", metrics.size());
  return 0;
}
