// Experiment T1 — Table 1 of the paper: server time, user time, server
// memory, communication/user, public randomness/user, and worst-case error
// for PrivateExpanderSketch vs Bitstogram [3] vs Bassily-Smith [4].
//
// The absolute numbers are simulator-scale; the *shape* matches Table 1:
// PES and Bitstogram are O~(n) server / O~(1) user / O~(sqrt n) memory,
// Bassily-Smith pays a domain-scan (n * |X|, i.e. n^2.5 at |X| = n^1.5)
// on the server and materializes Theta(|X|) public randomness per user.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr int kDomainBits = 12;
constexpr double kEps = 4.0;
constexpr double kBeta = 1e-3;

Workload MakeDb(uint64_t n) {
  return MakePlantedWorkload(n, kDomainBits, {0.45, 0.36}, 1234 + n);
}

void ReportRow(benchmark::State& state, const HeavyHitterResult& res,
               const Workload& w) {
  const auto eval = EvaluateHeavyHitters(w.database, res, w.heavy[1].second);
  state.counters["server_s"] = res.metrics.server_seconds;
  state.counters["user_us_avg"] = res.metrics.UserSecondsAvg() * 1e6;
  state.counters["comm_bits"] = res.metrics.CommBitsAvg();
  state.counters["mem_MB"] =
      static_cast<double>(res.metrics.server_memory_bytes) / 1e6;
  state.counters["pubrand_bits"] =
      static_cast<double>(res.metrics.public_random_bits_per_user);
  state.counters["max_err"] = eval.max_estimate_error;
  state.counters["recall"] =
      eval.true_hitters_total
          ? static_cast<double>(eval.true_hitters_found) /
                static_cast<double>(eval.true_hitters_total)
          : 1.0;
}

void BM_Table1_PrivateExpanderSketch(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  PesParams p;
  p.domain_bits = kDomainBits;
  p.epsilon = kEps;
  p.beta = kBeta;
  p.num_coords = 8;
  p.hash_range = 16;
  p.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(p)).value();
  const Workload w = MakeDb(n);
  HeavyHitterResult res;
  for (auto _ : state) {
    res = std::move(pes.Run(w.database, 7)).value();
  }
  ReportRow(state, res, w);
}
BENCHMARK(BM_Table1_PrivateExpanderSketch)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Table1_Bitstogram(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  BitstogramParams p;
  p.domain_bits = kDomainBits;
  p.epsilon = kEps;
  p.beta = kBeta;
  auto proto = std::move(Bitstogram::Create(p)).value();
  const Workload w = MakeDb(n);
  HeavyHitterResult res;
  for (auto _ : state) {
    res = std::move(proto.Run(w.database, 7)).value();
  }
  ReportRow(state, res, w);
}
BENCHMARK(BM_Table1_Bitstogram)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Table1_TreeHist(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  TreeHistParams p;
  p.domain_bits = kDomainBits;
  p.epsilon = kEps;
  p.beta = kBeta;
  auto proto = std::move(TreeHist::Create(p)).value();
  const Workload w = MakeDb(n);
  HeavyHitterResult res;
  for (auto _ : state) {
    res = std::move(proto.Run(w.database, 7)).value();
  }
  ReportRow(state, res, w);
}
BENCHMARK(BM_Table1_TreeHist)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Table1_SuccinctHist(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  SuccinctHistParams p;
  p.domain_bits = kDomainBits;
  p.epsilon = kEps;
  p.beta = kBeta;
  auto proto = std::move(SuccinctHist::Create(p)).value();
  const Workload w = MakeDb(n);
  HeavyHitterResult res;
  for (auto _ : state) {
    res = std::move(proto.Run(w.database, 7)).value();
  }
  ReportRow(state, res, w);
}
// The domain scan is Theta(n 2^D): keep n modest (the point IS the blowup).
BENCHMARK(BM_Table1_SuccinctHist)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Prints the side-by-side Table 1 reproduction once.
void BM_Table1_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  const uint64_t n = 1 << 16;
  const Workload w = MakeDb(n);

  PesParams pp;
  pp.domain_bits = kDomainBits;
  pp.epsilon = kEps;
  pp.beta = kBeta;
  pp.num_coords = 8;
  pp.hash_range = 16;
  pp.expander_degree = 4;
  auto pes = std::move(PrivateExpanderSketch::Create(pp)).value();
  const auto r1 = std::move(pes.Run(w.database, 7)).value();

  BitstogramParams bp;
  bp.domain_bits = kDomainBits;
  bp.epsilon = kEps;
  bp.beta = kBeta;
  auto bits = std::move(Bitstogram::Create(bp)).value();
  const auto r2 = std::move(bits.Run(w.database, 7)).value();

  SuccinctHistParams sp;
  sp.domain_bits = kDomainBits;
  sp.epsilon = kEps;
  sp.beta = kBeta;
  auto sh = std::move(SuccinctHist::Create(sp)).value();
  const auto r3 = std::move(sh.Run(w.database, 7)).value();

  const auto e1 = EvaluateHeavyHitters(w.database, r1, w.heavy[1].second);
  const auto e2 = EvaluateHeavyHitters(w.database, r2, w.heavy[1].second);
  const auto e3 = EvaluateHeavyHitters(w.database, r3, w.heavy[1].second);

  std::printf("\n=== Table 1 reproduction (n=%llu, |X|=2^%d, eps=%.1f) ===\n",
              static_cast<unsigned long long>(n), kDomainBits, kEps);
  std::printf("%-22s %15s %15s %15s\n", "metric", "this work (PES)",
              "Bassily+ [3]", "BassilySmith[4]");
  auto row = [](const char* name, double a, double b, double c) {
    std::printf("%-22s %15.3f %15.3f %15.3f\n", name, a, b, c);
  };
  row("server time (s)", r1.metrics.server_seconds, r2.metrics.server_seconds,
      r3.metrics.server_seconds);
  row("user time (us)", r1.metrics.UserSecondsAvg() * 1e6,
      r2.metrics.UserSecondsAvg() * 1e6, r3.metrics.UserSecondsAvg() * 1e6);
  row("server memory (KB)", r1.metrics.server_memory_bytes / 1e3,
      r2.metrics.server_memory_bytes / 1e3,
      r3.metrics.server_memory_bytes / 1e3);
  row("comm/user (bits)", r1.metrics.CommBitsAvg(), r2.metrics.CommBitsAvg(),
      r3.metrics.CommBitsAvg());
  row("pub.rand/user (bits)",
      static_cast<double>(r1.metrics.public_random_bits_per_user),
      static_cast<double>(r2.metrics.public_random_bits_per_user),
      static_cast<double>(r3.metrics.public_random_bits_per_user));
  row("worst-case error", e1.max_estimate_error, e2.max_estimate_error,
      e3.max_estimate_error);
  row("recall@Delta",
      e1.true_hitters_total
          ? double(e1.true_hitters_found) / e1.true_hitters_total
          : 1,
      e2.true_hitters_total
          ? double(e2.true_hitters_found) / e2.true_hitters_total
          : 1,
      e3.true_hitters_total
          ? double(e3.true_hitters_found) / e3.true_hitters_total
          : 1);
  std::printf(
      "theory:  PES/[3]: server O~(n), user O~(1), mem O~(sqrt n), comm O(1)\n"
      "         [4]: server O~(n^2.5), user O~(n^1.5), pub.rand O~(n^1.5)\n"
      "         error: PES sqrt(n log(|X|/b)); [3] extra sqrt(log(1/b));\n"
      "         [4] extra log^1.5(1/b)\n\n");
}
BENCHMARK(BM_Table1_Print)->Iterations(1);

}  // namespace
