// Experiments F5/F6 — Section 4: advanced grouposition and max-information.
//
// F5: for k-user groups under eps-randomized response, compare
//   (a) the naive central-model bound k*eps,
//   (b) the Theorem 4.2 bound k eps^2/2 + eps sqrt(2k ln(1/delta)),
//   (c) the exact group epsilon from the privacy-loss convolution.
// The sqrt(k) law and (exact <= 4.2-bound <= naive for large k) are the
// paper's claims.
//
// F6: Theorem 4.5 max-information bound vs the central-model eps*n bound.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr double kEps = 0.1;
constexpr double kDelta = 1e-6;

void BM_ExactGroupEpsilon(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  BinaryRandomizedResponse rr(kEps);
  double exact = 0;
  for (auto _ : state) {
    exact = ExactGroupEpsilon(rr, 0, 1, k, kDelta);
    benchmark::DoNotOptimize(exact);
  }
  state.counters["exact"] = exact;
  state.counters["thm4.2"] = AdvancedGroupositionEpsilon(kEps, k, kDelta);
  state.counters["naive"] = NaiveGroupEpsilon(kEps, k);
  state.counters["exact/sqrt(k)"] = exact / std::sqrt(static_cast<double>(k));
}
BENCHMARK(BM_ExactGroupEpsilon)->RangeMultiplier(4)->Range(4, 4096);

void BM_PldSelfCompose(benchmark::State& state) {
  // Cost of the exact convolution machinery itself.
  const int k = static_cast<int>(state.range(0));
  BinaryRandomizedResponse rr(kEps);
  const auto base = PrivacyLossDistribution::FromRandomizer(rr, 0, 1);
  for (auto _ : state) {
    auto pld = base.SelfCompose(k);
    benchmark::DoNotOptimize(pld.DeltaForEpsilon(1.0));
  }
}
BENCHMARK(BM_PldSelfCompose)->RangeMultiplier(4)->Range(16, 4096);

void BM_F5_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  BinaryRandomizedResponse rr(kEps);
  std::printf("\n=== F5: advanced grouposition (eps=%.2f, delta=%g) ===\n",
              kEps, kDelta);
  std::printf("%-8s %12s %12s %12s %14s\n", "k", "naive k*eps", "Thm 4.2",
              "exact", "exact/sqrt(k)");
  for (int k : {4, 16, 64, 256, 1024, 4096}) {
    const double naive = NaiveGroupEpsilon(kEps, k);
    const double bound = AdvancedGroupositionEpsilon(kEps, k, kDelta);
    const double exact = ExactGroupEpsilon(rr, 0, 1, k, kDelta);
    std::printf("%-8d %12.3f %12.3f %12.3f %14.4f\n", k, naive, bound, exact,
                exact / std::sqrt(static_cast<double>(k)));
  }
  std::printf("shape: exact/sqrt(k) ~flat and exact <= Thm4.2 bound; the\n"
              "bound crosses below naive once sqrt(2k ln(1/d)) < k, i.e.\n"
              "group privacy degrades as sqrt(k) in the local model.\n\n");

  std::printf("=== F6: max-information bounds (Theorem 4.5) ===\n");
  std::printf("%-10s %-8s %16s %16s\n", "n", "beta", "Thm4.5 (nats)",
              "central eps*n");
  for (uint64_t n : {uint64_t{1} << 10, uint64_t{1} << 16, uint64_t{1} << 22}) {
    for (double beta : {1e-2, 1e-6}) {
      std::printf("%-10llu %-8.0e %16.2f %16.2f\n",
                  static_cast<unsigned long long>(n), beta,
                  MaxInformationBound(kEps, n, beta),
                  CentralMaxInformationBound(kEps, n));
    }
  }
  std::printf("shape: Thm 4.5 = n eps^2/2 + eps sqrt(2n ln 1/beta) beats\n"
              "eps*n for eps << 1 — and holds for NON-product inputs, unlike\n"
              "the central-model bound.\n\n");
}
BENCHMARK(BM_F5_Print)->Iterations(1);

}  // namespace
