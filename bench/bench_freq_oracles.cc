// Experiment A1 — ablation: frequency-oracle choice. Throughput of the
// client encode and server aggregate paths, and accuracy of each oracle at
// matched (n, eps) — Hadamard response vs k-RR vs RAPPOR-unary vs OLH on a
// small domain, plus the large-domain Hashtogram.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr uint64_t kDomain = 32;
constexpr uint64_t kN = 100000;
constexpr double kEps = 1.0;

std::vector<uint64_t> MakeValues(std::vector<uint64_t>* truth) {
  Rng rng(13);
  truth->assign(kDomain, 0);
  std::vector<uint64_t> values(kN);
  for (auto& v : values) {
    v = rng.UniformU64(4) == 0 ? rng.UniformU64(4) : rng.UniformU64(kDomain);
    ++(*truth)[static_cast<size_t>(v)];
  }
  return values;
}

std::unique_ptr<SmallDomainFO> MakeOracle(int kind) {
  switch (kind) {
    case 0: return std::make_unique<HadamardResponseFO>(kDomain, kEps);
    case 1: return std::make_unique<DirectEncodingFO>(kDomain, kEps);
    case 2: return std::make_unique<UnaryEncodingFO>(kDomain, kEps);
    default: return std::make_unique<OlhFO>(kDomain, kEps, 17);
  }
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "hadamard";
    case 1: return "k-rr";
    case 2: return "rappor";
    default: return "olh";
  }
}

void BM_OracleEncode(benchmark::State& state) {
  auto fo = MakeOracle(static_cast<int>(state.range(0)));
  Rng rng(7);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fo->Encode(v++ % kDomain, rng));
  }
  state.SetLabel(KindName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleEncode)->DenseRange(0, 3);

void BM_OracleEndToEnd(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  std::vector<uint64_t> truth;
  const auto values = MakeValues(&truth);
  double max_err = 0;
  for (auto _ : state) {
    auto fo = MakeOracle(kind);
    Rng rng(23);
    for (uint64_t v : values) fo->Aggregate(fo->Encode(v, rng));
    fo->Finalize();
    max_err = 0;
    for (uint64_t v = 0; v < kDomain; ++v) {
      max_err = std::max(max_err, std::abs(fo->Estimate(v) -
                                           static_cast<double>(truth[v])));
    }
  }
  state.SetLabel(KindName(kind));
  state.counters["max_err"] = max_err;
  state.counters["err/sqrt(n)"] = max_err / std::sqrt(static_cast<double>(kN));
}
BENCHMARK(BM_OracleEndToEnd)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_HashtogramEndToEnd(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const Workload w = MakePlantedWorkload(n, 64, {0.3, 0.1}, 29);
  double max_err = 0;
  for (auto _ : state) {
    HashtogramParams p;
    p.beta = 1e-3;
    Hashtogram ht(n, kEps, p, 31);
    Rng rng(37);
    for (uint64_t i = 0; i < n; ++i) {
      ht.Aggregate(i, ht.Encode(i, w.database[static_cast<size_t>(i)], rng));
    }
    ht.Finalize();
    max_err = 0;
    for (const auto& [item, count] : w.heavy) {
      max_err = std::max(
          max_err, std::abs(ht.Estimate(item) - static_cast<double>(count)));
    }
  }
  state.counters["max_err"] = max_err;
  state.counters["err/sqrt(n)"] = max_err / std::sqrt(static_cast<double>(n));
}
BENCHMARK(BM_HashtogramEndToEnd)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_CountMeanSketchEndToEnd(benchmark::State& state) {
  // The Apple-deployment oracle (paper ref [33]) on the same workload as
  // Hashtogram: same sketch-family accuracy, W-bit reports.
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const Workload w = MakePlantedWorkload(n, 64, {0.3, 0.1}, 29);
  double max_err = 0;
  int report_bits = 0;
  for (auto _ : state) {
    CmsParams p;
    CountMeanSketch cms(n, kEps, p, 31);
    Rng rng(37);
    for (uint64_t i = 0; i < n; ++i) {
      const auto r = cms.Encode(w.database[static_cast<size_t>(i)], rng);
      report_bits = r.num_bits;
      cms.Aggregate(r);
    }
    cms.Finalize();
    max_err = 0;
    for (const auto& [item, count] : w.heavy) {
      max_err = std::max(
          max_err, std::abs(cms.Estimate(item) - static_cast<double>(count)));
    }
  }
  state.counters["max_err"] = max_err;
  state.counters["err/sqrt(n)"] = max_err / std::sqrt(static_cast<double>(n));
  state.counters["report_bits"] = report_bits;
}
BENCHMARK(BM_CountMeanSketchEndToEnd)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_A1_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== A1: frequency-oracle ablation "
              "(K=%llu, n=%llu, eps=%.1f) ===\n",
              static_cast<unsigned long long>(kDomain),
              static_cast<unsigned long long>(kN), kEps);
  std::printf("%-12s %10s %12s %14s %12s\n", "oracle", "max_err",
              "report bits", "server mem B", "query cost");
  std::vector<uint64_t> truth;
  const auto values = MakeValues(&truth);
  for (int kind = 0; kind < 4; ++kind) {
    auto fo = MakeOracle(kind);
    Rng rng(23);
    int bits = 0;
    for (uint64_t v : values) {
      const auto r = fo->Encode(v, rng);
      bits = r.num_bits;
      fo->Aggregate(r);
    }
    fo->Finalize();
    double max_err = 0;
    for (uint64_t v = 0; v < kDomain; ++v) {
      max_err = std::max(max_err, std::abs(fo->Estimate(v) -
                                           static_cast<double>(truth[v])));
    }
    std::printf("%-12s %10.1f %12d %14zu %12s\n", KindName(kind), max_err,
                bits, fo->MemoryBytes(), kind == 3 ? "O(n)" : "O(1)");
  }
  std::printf("shape: at eps=1 and K=32, hadamard/olh/k-rr are within a\n"
              "small factor; k-rr degrades as sqrt(K) for larger domains,\n"
              "rappor pays K-bit reports, olh pays O(n) per query. The\n"
              "reduction uses hadamard (Thm 3.8) inside groups and the\n"
              "row-hashed Hashtogram (Thm 3.7) globally.\n\n");
}
BENCHMARK(BM_A1_Print)->Iterations(1);

}  // namespace
