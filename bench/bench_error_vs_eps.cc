// Experiment F3 — error scaling in eps: the 1/eps law of the error bounds
// (Theorems 3.7 / 3.13 / 7.2). The printed column err * eps should be flat
// for eps <= 1 (where c_eps ~ 2/eps) and bend as c_eps -> 1 for large eps.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr uint64_t kN = 1 << 18;

double MeasureHashtogramErrorOnce(double eps, uint64_t seed) {
  const Workload w = MakePlantedWorkload(kN, 64, {0.3, 0.1}, seed);
  HashtogramParams p;
  p.beta = 1e-3;
  Hashtogram ht(kN, eps, p, seed + 1);
  Rng rng(seed + 2);
  for (uint64_t i = 0; i < kN; ++i) {
    ht.Aggregate(i, ht.Encode(i, w.database[static_cast<size_t>(i)], rng));
  }
  ht.Finalize();
  double err = 0;
  for (const auto& [item, count] : w.heavy) {
    err = std::max(err, std::abs(ht.Estimate(item) - static_cast<double>(count)));
  }
  return err;
}

// Median over five seeds: stabilizes the printed 1/eps scaling curve.
double MeasureHashtogramError(double eps, uint64_t seed) {
  std::vector<double> runs;
  for (uint64_t t = 0; t < 5; ++t) {
    runs.push_back(MeasureHashtogramErrorOnce(eps, seed + 100 * t));
  }
  return Median(std::move(runs));
}

void BM_HashtogramErrorVsEps(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  double err = 0;
  for (auto _ : state) {
    err = MeasureHashtogramError(eps, 42);
    benchmark::DoNotOptimize(err);
  }
  const double e = std::exp(eps);
  state.counters["max_err"] = err;
  state.counters["err*eps"] = err * eps;
  state.counters["err/c_eps"] = err / ((e + 1) / (e - 1));
}
BENCHMARK(BM_HashtogramErrorVsEps)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_F3_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F3: frequency-oracle error vs eps (n=%llu) ===\n",
              static_cast<unsigned long long>(kN));
  std::printf("%-8s %12s %12s %12s\n", "eps", "max_err", "err*eps",
              "err/c_eps");
  for (double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double err = MeasureHashtogramError(eps, 42);
    const double e = std::exp(eps);
    std::printf("%-8.2f %12.1f %12.1f %12.1f\n", eps, err, err * eps,
                err / ((e + 1) / (e - 1)));
  }
  std::printf("shape: err/c_eps flat => error = Theta(c_eps sqrt(n)), i.e.\n"
              "Theta(sqrt(n)/eps) in the small-eps regime (the 1/eps law).\n\n");
}
BENCHMARK(BM_F3_Print)->Iterations(1);

}  // namespace
