// Experiment F1 — the paper's headline: the PES reduction removes the
// sqrt(log(1/beta)) factor Theorem 3.3 charges the Bitstogram reduction.
//
// Two series over beta = 2^-2 .. 2^-20:
//   (a) detection thresholds: PES's Delta is beta-independent (its
//       coordinate split M*Lz does not grow with beta) while Bitstogram's
//       cohort count rho = log2(1/beta) inflates Delta by sqrt(rho);
//   (b) measured minimum detectable frequency (bisection): Bitstogram's
//       grows with beta while PES's stays flat, and the curves cross near
//       beta = 2^-10 at this configuration (who-wins crossover).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr int kDomainBits = 64;
constexpr double kEps = 4.0;
constexpr uint64_t kN = 1 << 18;

PesParams PesConfig(double beta) {
  PesParams p;
  p.domain_bits = kDomainBits;
  p.epsilon = kEps;
  p.beta = beta;
  p.num_coords = 16;
  p.hash_range = 32;
  p.expander_degree = 4;
  return p;
}

BitstogramParams BitsConfig(double beta) {
  BitstogramParams p;
  p.domain_bits = kDomainBits;
  p.epsilon = kEps;
  p.beta = beta;
  return p;
}

void BM_DetectionThreshold_PES(benchmark::State& state) {
  const double beta = std::pow(2.0, -static_cast<double>(state.range(0)));
  auto pes = std::move(PrivateExpanderSketch::Create(PesConfig(beta))).value();
  double thr = 0;
  for (auto _ : state) {
    thr = pes.DetectionThreshold(kN);
    benchmark::DoNotOptimize(thr);
  }
  state.counters["Delta"] = thr;
  state.counters["Delta/sqrt(n)"] = thr / std::sqrt(static_cast<double>(kN));
}
BENCHMARK(BM_DetectionThreshold_PES)->DenseRange(2, 20, 3);

void BM_DetectionThreshold_Bitstogram(benchmark::State& state) {
  const double beta = std::pow(2.0, -static_cast<double>(state.range(0)));
  auto bits = std::move(Bitstogram::Create(BitsConfig(beta))).value();
  double thr = 0;
  for (auto _ : state) {
    thr = bits.DetectionThreshold(kN);
    benchmark::DoNotOptimize(thr);
  }
  state.counters["Delta"] = thr;
  state.counters["Delta/sqrt(n)"] = thr / std::sqrt(static_cast<double>(kN));
  state.counters["cohorts"] = bits.cohorts();
}
BENCHMARK(BM_DetectionThreshold_Bitstogram)->DenseRange(2, 20, 3);

// Empirical minimum detectable frequency at each beta, by bisection on the
// planted fraction (2-of-2 trials must recover the item). This is the
// honest "who wins where" curve: the Bitstogram minimum grows with
// sqrt(log(1/beta)) (its cohort split and threshold), the PES minimum does
// not depend on beta.
template <typename Protocol>
double EmpiricalMinFraction(Protocol& proto, double lo, double hi, int lbeta) {
  for (int step = 0; step < 5; ++step) {
    const double mid = 0.5 * (lo + hi);
    int found = 0;
    for (int t = 0; t < 2; ++t) {
      const Workload w = MakePlantedWorkload(
          kN, kDomainBits, {mid}, 9000 + 131 * lbeta + 17 * step + t);
      const auto res = std::move(proto.Run(w.database, 500 + t)).value();
      for (const auto& e : res.entries) found += (e.item == w.heavy[0].first);
    }
    if (found == 2) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void BM_EmpiricalThresholdCrossover(benchmark::State& state) {
  const int lbeta = static_cast<int>(state.range(0));
  const double beta = std::pow(2.0, -static_cast<double>(lbeta));
  auto pes = std::move(PrivateExpanderSketch::Create(PesConfig(beta))).value();
  auto bits = std::move(Bitstogram::Create(BitsConfig(beta))).value();
  double pes_min = 0;
  double bits_min = 0;
  for (auto _ : state) {
    pes_min = EmpiricalMinFraction(pes, 0.02, 0.55, lbeta);
    bits_min = EmpiricalMinFraction(bits, 0.02, 0.55, lbeta);
  }
  state.counters["pes_min_frac"] = pes_min;
  state.counters["bits_min_frac"] = bits_min;
  state.counters["cohorts"] = bits.cohorts();
}
BENCHMARK(BM_EmpiricalThresholdCrossover)
    ->Arg(2)
    ->Arg(10)
    ->Arg(18)
    ->Arg(26)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_F1_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F1: error vs failure probability (n=%llu, eps=%.1f) ===\n",
              static_cast<unsigned long long>(kN), kEps);
  std::printf("%-10s %16s %16s %10s\n", "beta", "PES Delta",
              "Bitstogram Delta", "ratio");
  for (int lb = 2; lb <= 20; lb += 3) {
    const double beta = std::pow(2.0, -lb);
    auto pes = std::move(PrivateExpanderSketch::Create(PesConfig(beta))).value();
    auto bits = std::move(Bitstogram::Create(BitsConfig(beta))).value();
    const double tp = pes.DetectionThreshold(kN);
    const double tb = bits.DetectionThreshold(kN);
    std::printf("2^-%-7d %16.0f %16.0f %10.2f\n", lb, tp, tb, tb / tp);
  }
  std::printf("shape: PES flat in beta (paper: sqrt(n log(|X|/beta)) with\n"
              "log(1/beta) inside the same log); Bitstogram grows as\n"
              "sqrt(log(1/beta)) (Theorem 3.3's extra factor).\n\n");
}
BENCHMARK(BM_F1_Print)->Iterations(1);

}  // namespace
