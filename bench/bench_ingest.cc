// Ingestion-service throughput: reports/sec through ShardedAggregator as a
// function of shard count, the wire-codec encode/decode rates, and the
// full network path — framed batches over TCP/UDS loopback through
// ReportServer, in-memory and with durability on (kFull + group commit).
//
//   ./bench_ingest --benchmark_counters_tabular=true
//
// The acceptance metric for the server subsystem is BM_ShardedIngest at
// shard counts {1, 2, 4, 8}: items_per_second is ingested reports/sec.
// For the network front-end it is BM_NetIngestDurable: reports/sec over
// loopback with every epoch checkpoint fsync'd.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/metrics_dump.h"
#include "src/common/random.h"
#include "src/net/report_client.h"
#include "src/protocols/registry.h"
#include "src/server/epoch_manager.h"
#include "src/server/report_codec.h"
#include "src/server/report_server.h"
#include "src/server/sharded_aggregator.h"
#include "src/store/checkpoint_store.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

// RAPPOR-style unary encoding: Aggregate walks all K histogram bits per
// report, so per-report server work is substantial enough for sharding to
// matter (Hadamard response at one add per report is producer-bound).
constexpr uint64_t kDomain = 56;
constexpr uint64_t kNumReports = 1 << 18;

ProtocolConfig Config() {
  ProtocolConfig config("rappor_unary");
  config.SetUint("domain", kDomain).SetDouble("eps", 1.0);
  return config;
}

// Client-side encodes are expensive relative to aggregation, so the report
// stream is produced once and replayed by every benchmark iteration.
const std::vector<WireReport>& Reports() {
  static const std::vector<WireReport>* reports = [] {
    auto client = std::move(CreateAggregator(Config())).value();
    Rng rng(2024);
    auto* r = new std::vector<WireReport>();
    r->reserve(kNumReports);
    for (uint64_t i = 0; i < kNumReports; ++i) {
      const uint64_t value = rng.Bernoulli(0.25) ? 42 : rng.UniformU64(kDomain);
      r->push_back(client->Encode(i, DomainItem(value), rng).value());
    }
    return r;
  }();
  return *reports;
}

void BM_ShardedIngest(benchmark::State& state) {
  const auto& reports = Reports();
  ShardedAggregatorOptions opts;
  opts.num_shards = static_cast<int>(state.range(0));
  opts.queue_capacity = 1 << 14;
  opts.batch_size = 512;
  for (auto _ : state) {
    auto agg_or = ShardedAggregator::Create(Config(), opts);
    if (!agg_or.ok()) {
      // SkipWithError only marks the run; falling through to .value() on an
      // error would abort the whole bench job.
      state.SkipWithError("Create failed");
      return;
    }
    auto agg = std::move(agg_or).value();
    if (!agg->Start().ok()) state.SkipWithError("Start failed");
    if (!agg->SubmitBatch(reports).ok()) state.SkipWithError("Submit failed");
    auto merged = agg->Finish();
    if (!merged.ok()) state.SkipWithError("Finish failed");
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
  state.counters["shards"] = static_cast<double>(opts.num_shards);
}
BENCHMARK(BM_ShardedIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The report stream of Reports(), pre-framed into 512-report batch
// payloads stamped with the protocol's registry wire id (stable across
// aggregator instances), so the network benches measure transport +
// ingestion, not encoding.
const std::vector<std::string>& BatchFrames() {
  static const std::vector<std::string>* frames = [] {
    const auto& reports = Reports();
    const uint16_t wire_id =
        std::move(ShardedAggregator::Create(Config(), {})).value()->wire_id();
    constexpr size_t kBatch = 512;
    auto* f = new std::vector<std::string>();
    f->reserve(reports.size() / kBatch + 1);
    for (size_t lo = 0; lo < reports.size(); lo += kBatch) {
      const size_t hi = lo + kBatch < reports.size() ? lo + kBatch
                                                     : reports.size();
      f->push_back(EncodeReportBatch(
          std::vector<WireReport>(reports.begin() + lo, reports.begin() + hi),
          wire_id));
    }
    return f;
  }();
  return *frames;
}

std::string BenchUdsPath() {
  return fs::temp_directory_path().string() + "/ldphh_bench_net_" +
         std::to_string(::getpid()) + ".sock";
}

// Drives `clients` threads, each with its own ReportClient, through the
// pre-framed batches round-robin, then flushes (every frame acked).
bool DriveClients(const ReportServer& server, bool uds, int clients) {
  const auto& frames = BatchFrames();
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &frames, &ok, uds, clients, c] {
      auto client_or =
          uds ? net::ReportClient::ConnectUds(server.uds_path(),
                                              net::ReportClient::Options{})
              : net::ReportClient::ConnectTcp("127.0.0.1", server.port(),
                                              net::ReportClient::Options{});
      if (!client_or.ok()) {
        ok.store(false);
        return;
      }
      auto client = std::move(client_or).value();
      for (size_t i = static_cast<size_t>(c); i < frames.size();
           i += static_cast<size_t>(clients)) {
        if (!client->Send(frames[i]).ok()) {
          ok.store(false);
          return;
        }
      }
      if (!client->Flush().ok()) ok.store(false);
    });
  }
  for (std::thread& t : threads) t.join();
  return ok.load();
}

// Full network path, in-memory sink: N loopback clients -> ReportServer ->
// ShardedAggregator::TrySubmitWire (busy acks retried client-side).
void NetIngest(benchmark::State& state, bool uds) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ShardedAggregatorOptions opts;
    opts.num_shards = 2;
    // Deep queues: on a small machine the shard workers, loop, sinks, and
    // clients all share cores, so shallow queues turn into busy-ack storms
    // and the bench measures the client's retry backoff instead of the
    // transport. Backpressure behavior is covered by tests, not here.
    opts.queue_capacity = 1 << 17;
    opts.batch_size = 512;
    auto agg_or = ShardedAggregator::Create(Config(), opts);
    if (!agg_or.ok() || !agg_or.value()->Start().ok()) {
      state.SkipWithError("aggregator start failed");
      return;
    }
    auto agg = std::move(agg_or).value();
    ReportServer::Options server_opts;
    server_opts.enable_tcp = !uds;
    if (uds) server_opts.uds_path = BenchUdsPath();
    auto server_or = ReportServer::Create(
        server_opts,
        [&agg](std::string_view p) { return agg->TrySubmitWire(p); });
    if (!server_or.ok() || !server_or.value()->Start().ok()) {
      state.SkipWithError("server start failed");
      return;
    }
    auto server = std::move(server_or).value();
    if (!DriveClients(*server, uds, clients)) {
      state.SkipWithError("client failed");
      return;
    }
    server->Stop();
    auto merged = agg->Finish();
    if (!merged.ok() || agg->Stats().submitted != kNumReports) {
      state.SkipWithError("ingest incomplete");
      return;
    }
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
  state.counters["clients"] = static_cast<double>(clients);
}

void BM_NetIngestTcp(benchmark::State& state) { NetIngest(state, false); }
BENCHMARK(BM_NetIngestTcp)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_NetIngestUds(benchmark::State& state) { NetIngest(state, true); }
BENCHMARK(BM_NetIngestUds)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The acceptance column: loopback TCP with durability all the way on —
// EpochManager epochs checkpointed through a CheckpointStore in
// SyncMode::kFull with group commit, an fsync'd snapshot every 2^15
// reports plus the final Close. sink_threads = 1 because EpochManager's
// control surface is single-threaded.
void BM_NetIngestDurable(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const std::string dir = fs::temp_directory_path().string() +
                          "/ldphh_bench_net_durable_" +
                          std::to_string(::getpid());
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    CheckpointStoreOptions store_opts;
    store_opts.sync_mode = SyncMode::kFull;
    store_opts.group_commit = true;
    auto store_or = CheckpointStore::Open(dir, store_opts);
    if (!store_or.ok()) {
      state.SkipWithError("store open failed");
      return;
    }
    auto store = std::move(store_or).value();
    EpochManagerOptions manager_opts;
    manager_opts.reports_per_epoch = 1 << 15;
    manager_opts.aggregator.num_shards = 2;
    manager_opts.aggregator.queue_capacity = 1 << 14;
    manager_opts.aggregator.batch_size = 512;
    auto manager_or = EpochManager::Create(Config(), store.get(),
                                           manager_opts);
    if (!manager_or.ok() || !manager_or.value()->Start().ok()) {
      state.SkipWithError("epoch manager start failed");
      return;
    }
    auto manager = std::move(manager_or).value();
    ReportServer::Options server_opts;
    server_opts.sink_threads = 1;
    auto server_or = ReportServer::Create(
        server_opts,
        [&manager](std::string_view p) { return manager->SubmitWire(p); });
    if (!server_or.ok() || !server_or.value()->Start().ok()) {
      state.SkipWithError("server start failed");
      return;
    }
    auto server = std::move(server_or).value();
    state.ResumeTiming();
    if (!DriveClients(*server, /*uds=*/false, clients)) {
      state.SkipWithError("client failed");
      return;
    }
    server->Stop();
    if (!manager->Close().ok()) {
      state.SkipWithError("close failed");
      return;
    }
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
  state.counters["clients"] = static_cast<double>(clients);
}
BENCHMARK(BM_NetIngestDurable)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EncodeBatch(benchmark::State& state) {
  const auto& reports = Reports();
  for (auto _ : state) {
    std::string wire = EncodeReportBatch(reports);
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
}
BENCHMARK(BM_EncodeBatch)->Unit(benchmark::kMillisecond);

void BM_DecodeBatch(benchmark::State& state) {
  const std::string wire = EncodeReportBatch(Reports());
  for (auto _ : state) {
    std::vector<WireReport> out;
    out.reserve(kNumReports);
    if (!DecodeReportBatch(wire, &out).ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ldphh
