// Ingestion-service throughput: reports/sec through ShardedAggregator as a
// function of shard count, plus the wire-codec encode/decode rates.
//
//   ./bench_ingest --benchmark_counters_tabular=true
//
// The acceptance metric for the server subsystem is BM_ShardedIngest at
// shard counts {1, 2, 4, 8}: items_per_second is ingested reports/sec.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/metrics_dump.h"
#include "src/common/random.h"
#include "src/protocols/registry.h"
#include "src/server/report_codec.h"
#include "src/server/sharded_aggregator.h"

namespace ldphh {
namespace {

// RAPPOR-style unary encoding: Aggregate walks all K histogram bits per
// report, so per-report server work is substantial enough for sharding to
// matter (Hadamard response at one add per report is producer-bound).
constexpr uint64_t kDomain = 56;
constexpr uint64_t kNumReports = 1 << 18;

ProtocolConfig Config() {
  ProtocolConfig config("rappor_unary");
  config.SetUint("domain", kDomain).SetDouble("eps", 1.0);
  return config;
}

// Client-side encodes are expensive relative to aggregation, so the report
// stream is produced once and replayed by every benchmark iteration.
const std::vector<WireReport>& Reports() {
  static const std::vector<WireReport>* reports = [] {
    auto client = std::move(CreateAggregator(Config())).value();
    Rng rng(2024);
    auto* r = new std::vector<WireReport>();
    r->reserve(kNumReports);
    for (uint64_t i = 0; i < kNumReports; ++i) {
      const uint64_t value = rng.Bernoulli(0.25) ? 42 : rng.UniformU64(kDomain);
      r->push_back(client->Encode(i, DomainItem(value), rng).value());
    }
    return r;
  }();
  return *reports;
}

void BM_ShardedIngest(benchmark::State& state) {
  const auto& reports = Reports();
  ShardedAggregatorOptions opts;
  opts.num_shards = static_cast<int>(state.range(0));
  opts.queue_capacity = 1 << 14;
  opts.batch_size = 512;
  for (auto _ : state) {
    auto agg_or = ShardedAggregator::Create(Config(), opts);
    if (!agg_or.ok()) {
      // SkipWithError only marks the run; falling through to .value() on an
      // error would abort the whole bench job.
      state.SkipWithError("Create failed");
      return;
    }
    auto agg = std::move(agg_or).value();
    if (!agg->Start().ok()) state.SkipWithError("Start failed");
    if (!agg->SubmitBatch(reports).ok()) state.SkipWithError("Submit failed");
    auto merged = agg->Finish();
    if (!merged.ok()) state.SkipWithError("Finish failed");
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
  state.counters["shards"] = static_cast<double>(opts.num_shards);
}
BENCHMARK(BM_ShardedIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EncodeBatch(benchmark::State& state) {
  const auto& reports = Reports();
  for (auto _ : state) {
    std::string wire = EncodeReportBatch(reports);
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
}
BENCHMARK(BM_EncodeBatch)->Unit(benchmark::kMillisecond);

void BM_DecodeBatch(benchmark::State& state) {
  const std::string wire = EncodeReportBatch(Reports());
  for (auto _ : state) {
    std::vector<WireReport> out;
    out.reserve(kNumReports);
    if (!DecodeReportBatch(wire, &out).ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNumReports));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ldphh
