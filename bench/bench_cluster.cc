// Experiment A3 — ablation: the clustering decoder (Theorem B.3
// substitute). Recovery of planted expander clusters vs noise-edge rate,
// and the cost of the spectral machinery.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/core/ldphh.h"
#include "src/graphs/cluster.h"

namespace {

using namespace ldphh;

Graph Planted(int count, int m, int d, int noise, uint64_t seed,
              std::vector<std::vector<int>>* truth) {
  Rng rng(seed);
  Graph g(count * m);
  truth->clear();
  for (int c = 0; c < count; ++c) {
    auto e = std::move(Expander::Sample(m, d, 1.0, seed * 37 + c)).value();
    std::vector<int> members;
    for (int v = 0; v < m; ++v) {
      members.push_back(c * m + v);
      for (int s = 0; s < d; ++s) {
        const int w = e.Neighbor(v, s);
        if (w > v || (w == v && e.PairedSlot(v, s) > s)) {
          g.AddEdge(c * m + v, c * m + w);
        }
      }
    }
    truth->push_back(members);
  }
  for (int i = 0; i < noise; ++i) {
    g.AddEdge(static_cast<int>(rng.UniformU64(count * m)),
              static_cast<int>(rng.UniformU64(count * m)));
  }
  return g;
}

double AvgRecovery(const std::vector<std::vector<int>>& truth,
                   const std::vector<std::vector<int>>& found) {
  double acc = 0;
  for (const auto& t : truth) {
    std::set<int> ts(t.begin(), t.end());
    double best = 0;
    for (const auto& f : found) {
      int hit = 0;
      for (int v : f) hit += ts.count(v) > 0;
      best = std::max(best, static_cast<double>(hit) / ts.size());
    }
    acc += best;
  }
  return acc / truth.size();
}

void BM_ClusterRecoveryVsNoise(benchmark::State& state) {
  const int noise = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> truth;
  Graph g = Planted(8, 16, 6, noise, 1000 + noise, &truth);
  Rng rng(3);
  double rec = 0;
  for (auto _ : state) {
    const auto found = FindSpectralClusters(g, ClusterOptions{}, rng);
    rec = AvgRecovery(truth, found);
  }
  state.counters["recovery"] = rec;
  state.counters["noise_edges"] = noise;
}
BENCHMARK(BM_ClusterRecoveryVsNoise)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_ClusterThroughput(benchmark::State& state) {
  const int clusters = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> truth;
  Graph g = Planted(clusters, 16, 6, clusters * 2, 77, &truth);
  Rng rng(5);
  for (auto _ : state) {
    auto found = FindSpectralClusters(g, ClusterOptions{}, rng);
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * clusters);
}
BENCHMARK(BM_ClusterThroughput)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_A3_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== A3: clustering decoder ablation (8 planted 16-vertex "
              "d=6 expanders) ===\n");
  std::printf("%-14s %10s\n", "noise edges", "recovery");
  Rng rng(3);
  for (int noise : {0, 8, 32, 64, 128, 256, 512}) {
    std::vector<std::vector<int>> truth;
    Graph g = Planted(8, 16, 6, noise, 1000 + noise, &truth);
    const auto found = FindSpectralClusters(g, ClusterOptions{}, rng);
    std::printf("%-14d %10.3f\n", noise, AvgRecovery(truth, found));
  }
  std::printf("shape: recovery ~1.0 while the noise rate per cluster stays\n"
              "below the eta-spectral-cluster budget (Definition B.2), then\n"
              "degrades gracefully as clusters merge — the Theorem B.3\n"
              "contract the URL-code decoder relies on.\n\n");
}
BENCHMARK(BM_A3_Print)->Iterations(1);

}  // namespace
