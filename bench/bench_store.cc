// Storage-path throughput: checkpoint (epoch) writes, recovery replay, and
// segment compaction through CheckpointStore, plus the CRC32C kernel that
// sits under every record append and replay.
//
//   ./bench_store --benchmark_counters_tabular=true
//
// The acceptance metrics are BM_StorePut (epochs/s = items_per_second,
// MB/s = bytes_per_second), BM_StoreRecovery (replayed epochs/s), and
// BM_StoreCompaction (consolidated MB/s). BM_StorePut runs one column per
// SyncMode (none/data/full) so the fsync cost of power-loss durability is
// on the record — see docs/storage.md for reference numbers. The
// multi-writer columns (BM_StorePutMultiWriter / BM_StorePutGroupCommit)
// measure N concurrent acknowledged-durable writers with the group-commit
// lane off vs on; the group column's syncs_per_put counter is the
// coalescing ratio (group commits per acked intent). The replica
// columns (BM_ReplicaTailCatchup / BM_ReplicaIdlePoll / BM_ReplicaGet)
// measure the read-only follower: tail-lag absorption per poll, the idle
// poll floor, and snapshot read throughput.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/metrics_dump.h"
#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/store/checkpoint_store.h"
#include "src/store/replica_store.h"

namespace fs = std::filesystem;

namespace ldphh {
namespace {

// A representative epoch snapshot: the serialized state of a 64-bin oracle
// plus the envelope is O(1 KB); the 16 KB variant models wide-domain or
// hashtogram-backed epochs.
std::string EpochBlob(uint64_t epoch, size_t size) {
  std::string blob;
  blob.reserve(size);
  Rng rng(epoch ^ 0xb10b);
  while (blob.size() < size) {
    blob.push_back(static_cast<char>(rng.UniformU64(256)));
  }
  return blob;
}

std::string BenchDir(const char* name) {
  return fs::temp_directory_path().string() + "/ldphh_bench_store_" + name +
         "_" + std::to_string(::getpid());
}

CheckpointStoreOptions BenchOptions(SyncMode sync_mode = SyncMode::kNone) {
  CheckpointStoreOptions o;
  o.segment_max_bytes = 1 << 20;
  o.background_compaction = false;  // Measured explicitly below.
  o.sync_mode = sync_mode;
  return o;
}

// Checkpoint-write throughput per SyncMode: none (flush-to-OS, the pre-
// fsync contract), data (fdatasync per Put), full (fsync per Put). The
// none→full gap is the price of power-loss durability.
void BM_StorePut(benchmark::State& state) {
  const size_t blob_size = static_cast<size_t>(state.range(0));
  const SyncMode sync_mode = static_cast<SyncMode>(state.range(1));
  const std::string dir = BenchDir("put");
  uint64_t epoch = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    auto store =
        std::move(CheckpointStore::Open(dir, BenchOptions(sync_mode))).value();
    state.ResumeTiming();
    for (int e = 0; e < 256; ++e) {
      if (!store->Put(epoch, EpochBlob(epoch, blob_size)).ok()) {
        state.SkipWithError("Put failed");
        break;
      }
      ++epoch;
    }
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetBytesProcessed(state.iterations() * 256 *
                          static_cast<int64_t>(blob_size));
  state.SetLabel(std::string("sync=") + SyncModeName(sync_mode));
}
BENCHMARK(BM_StorePut)
    ->Args({1 << 10, 0})->Args({1 << 10, 1})->Args({1 << 10, 2})
    ->Args({1 << 14, 0})->Args({1 << 14, 1})->Args({1 << 14, 2})
    ->Unit(benchmark::kMillisecond);

// Concurrent acknowledged-durable writers against one store, kFull @1 KB —
// the group-commit lane's reason to exist. Every thread's Put must be
// durable on return; with the lane off each Put pays its own fsync, with it
// on the queue leader coalesces every waiting writer into one append + one
// sync. syncs_per_put (group commits / acked intents, from the store's own
// counters) is the coalescing evidence: <0.3 at 8 writers means groups
// average more than 3 intents. The single-writer lane-on state is pinned
// bit-for-bit by tests/group_commit_test.cc, so only the multi-writer
// columns run with the lane enabled here.
std::unique_ptr<CheckpointStore> shared_put_store;
std::string shared_put_dir;

void RunStorePutConcurrent(benchmark::State& state, bool group_commit) {
  constexpr size_t kBlob = 1 << 10;
  if (state.thread_index() == 0) {
    shared_put_dir = BenchDir(group_commit ? "put_group" : "put_mt");
    fs::remove_all(shared_put_dir);
    CheckpointStoreOptions options = BenchOptions(SyncMode::kFull);
    options.group_commit = group_commit;
    shared_put_store =
        std::move(CheckpointStore::Open(shared_put_dir, options)).value();
  }
  // Pre-built blobs: the timed region measures the store, not the RNG.
  std::vector<std::string> blobs;
  for (uint64_t b = 0; b < 64; ++b) blobs.push_back(EpochBlob(b, kBlob));
  const uint64_t base = static_cast<uint64_t>(state.thread_index() + 1) << 32;
  uint64_t i = 0;
  for (auto _ : state) {
    if (!shared_put_store->Put(base + (i & 4095), blobs[i & 63]).ok()) {
      state.SkipWithError("Put failed");
      break;
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(kBlob));
  state.SetLabel(std::string("sync=full group=") +
                 (group_commit ? "on" : "off"));
  if (state.thread_index() == 0) {
    const CheckpointStoreStats stats = shared_put_store->Stats();
    state.counters["syncs_per_put"] =
        group_commit
            ? static_cast<double>(stats.group_commits) /
                  std::max<double>(
                      1.0, static_cast<double>(stats.group_commit_writes))
            : 1.0;
    shared_put_store.reset();
    fs::remove_all(shared_put_dir);
  }
}

void BM_StorePutMultiWriter(benchmark::State& state) {
  RunStorePutConcurrent(state, /*group_commit=*/false);
}
BENCHMARK(BM_StorePutMultiWriter)
    ->Threads(1)->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_StorePutGroupCommit(benchmark::State& state) {
  RunStorePutConcurrent(state, /*group_commit=*/true);
}
BENCHMARK(BM_StorePutGroupCommit)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_StoreRecovery(benchmark::State& state) {
  const size_t blob_size = static_cast<size_t>(state.range(0));
  constexpr int kEpochs = 512;
  const std::string dir = BenchDir("recovery");
  fs::remove_all(dir);
  uint64_t bytes = 0;
  {
    auto store = std::move(CheckpointStore::Open(dir, BenchOptions())).value();
    for (uint64_t e = 0; e < kEpochs; ++e) {
      const std::string blob = EpochBlob(e, blob_size);
      bytes += blob.size();
      if (!store->Put(e, blob).ok()) state.SkipWithError("Put failed");
    }
  }
  for (auto _ : state) {
    auto store_or = CheckpointStore::Open(dir, BenchOptions());
    if (!store_or.ok()) state.SkipWithError("Open failed");
    benchmark::DoNotOptimize(store_or);
    // Each Open seals the previous active segment and rolls a fresh one;
    // the replayed byte count is unchanged, so iterations are comparable.
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * kEpochs);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_StoreRecovery)->Arg(1 << 10)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_StoreCompaction(benchmark::State& state) {
  // Half the epochs are superseded once, so compaction both merges and
  // drops — the steady-state shape under a sliding retention window.
  constexpr int kEpochs = 256;
  constexpr size_t kBlob = 1 << 12;
  const std::string dir = BenchDir("compact");
  CheckpointStoreOptions options = BenchOptions();
  options.segment_max_bytes = 1 << 16;  // Many sealed inputs per pass.
  uint64_t consolidated_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    {
      auto store = std::move(CheckpointStore::Open(dir, options)).value();
      for (uint64_t e = 0; e < kEpochs; ++e) {
        if (!store->Put(e, EpochBlob(e, kBlob)).ok()) {
          state.SkipWithError("Put failed");
        }
      }
      for (uint64_t e = 0; e < kEpochs; e += 2) {
        if (!store->Put(e, EpochBlob(e + 1000, kBlob)).ok()) {
          state.SkipWithError("Put failed");
        }
      }
      consolidated_bytes = kEpochs * kBlob;
      state.ResumeTiming();
      if (!store->Compact().ok()) state.SkipWithError("Compact failed");
      state.PauseTiming();
    }
    state.ResumeTiming();
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * kEpochs);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(consolidated_bytes));
}
BENCHMARK(BM_StoreCompaction)->Unit(benchmark::kMillisecond);

// Replica tail catch-up: one Refresh() after the primary wrote `batch`
// 1 KB puts. items_per_second is the write rate a tailing replica can
// absorb; the batch column maps to poll cadence (how much lag one poll
// swallows). Sealed segments come from the replica's cache, so the pass
// replays only what the primary appended since the last poll.
void BM_ReplicaTailCatchup(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  constexpr size_t kBlob = 1 << 10;
  const std::string dir = BenchDir("replica_tail");
  fs::remove_all(dir);
  auto store = std::move(CheckpointStore::Open(dir, BenchOptions())).value();
  auto replica =
      std::move(ReplicaStore::Open(dir, ReplicaStoreOptions())).value();
  uint64_t key = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < batch; ++i) {
      if (!store->Put(key % 4096, EpochBlob(key, kBlob)).ok()) {
        state.SkipWithError("Put failed");
        return;  // Resume/PauseTiming after a skip aborts the binary.
      }
      ++key;
    }
    state.ResumeTiming();
    auto advanced_or = replica->Refresh();
    if (!advanced_or.ok()) {
      state.SkipWithError("Refresh failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetBytesProcessed(state.iterations() * batch *
                          static_cast<int64_t>(kBlob));
  store.reset();
  replica.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_ReplicaTailCatchup)->Arg(1)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The steady-state idle poll — nothing new since the last refresh. This is
// the floor a tight poll_interval costs: one MANIFEST read plus one stat.
void BM_ReplicaIdlePoll(benchmark::State& state) {
  const std::string dir = BenchDir("replica_idle");
  fs::remove_all(dir);
  auto store = std::move(CheckpointStore::Open(dir, BenchOptions())).value();
  for (uint64_t e = 0; e < 64; ++e) {
    if (!store->Put(e, EpochBlob(e, 1 << 10)).ok()) {
      state.SkipWithError("Put failed");
      return;
    }
  }
  auto replica =
      std::move(ReplicaStore::Open(dir, ReplicaStoreOptions())).value();
  for (auto _ : state) {
    auto advanced_or = replica->Refresh();
    if (!advanced_or.ok() || advanced_or.value()) {
      state.SkipWithError("idle poll observed a change");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  store.reset();
  replica.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_ReplicaIdlePoll);

// Replica snapshot read throughput: Gets against the immutable snapshot
// (pointer chase + blob copy, no lock shared with the tail).
void BM_ReplicaGet(benchmark::State& state) {
  constexpr uint64_t kEntries = 1024;
  constexpr size_t kBlob = 1 << 10;
  const std::string dir = BenchDir("replica_get");
  fs::remove_all(dir);
  auto store = std::move(CheckpointStore::Open(dir, BenchOptions())).value();
  for (uint64_t e = 0; e < kEntries; ++e) {
    if (!store->Put(e, EpochBlob(e, kBlob)).ok()) {
      state.SkipWithError("Put failed");
      return;
    }
  }
  auto replica =
      std::move(ReplicaStore::Open(dir, ReplicaStoreOptions())).value();
  uint64_t key = 0;
  std::string blob;
  for (auto _ : state) {
    if (!replica->Get(key, &blob).ok()) {
      state.SkipWithError("Get failed");
      return;
    }
    benchmark::DoNotOptimize(blob);
    key = (key + 1) % kEntries;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(kBlob));
  store.reset();
  replica.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_ReplicaGet);

void BM_Crc32c(benchmark::State& state) {
  const bool hardware = state.range(0) != 0;
  if (hardware && !internal::Crc32cHardwareAvailable()) {
    state.SkipWithError("no hardware CRC32C on this CPU");
    return;
  }
  const std::string buf = EpochBlob(7, 1 << 16);
  uint32_t crc = 0;
  for (auto _ : state) {
    crc = hardware ? Crc32c(buf.data(), buf.size(), crc)
                   : internal::Crc32cSoftware(buf.data(), buf.size(), crc);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
  state.SetLabel(hardware ? "dispatched" : "table");
}
BENCHMARK(BM_Crc32c)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ldphh
