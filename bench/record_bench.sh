#!/usr/bin/env bash
# Regenerate the committed benchmark baselines at the repo root:
#   BENCH_ingest.json   — ingestion + wire-codec throughput (bench_ingest)
#   BENCH_store.json    — storage/replica throughput (bench_store)
#
# Runs a Release build (bench numbers from Debug/RelWithDebInfo are not
# comparable) and writes google-benchmark's JSON straight to the repo root.
# Each run also archives the process-wide metrics registry next to the
# bench JSON (BENCH_*.metrics.json, not committed) via bench/metrics_dump.h
# so an instrumented run's counters/latency histograms are inspectable.
#
# Usage:  bench/record_bench.sh [build-dir]     (default: build-release)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-release}"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target bench_ingest bench_store -j "$(nproc)"

run() {
  local bench="$1" out="$2"
  LDPHH_DUMP_METRICS="${out%.json}.metrics.json" \
    "${build_dir}/${bench}" \
      --benchmark_format=json \
      --benchmark_out="${out}" \
      --benchmark_out_format=json
}

run bench_ingest "${repo_root}/BENCH_ingest.json"
run bench_store "${repo_root}/BENCH_store.json"

echo "wrote ${repo_root}/BENCH_ingest.json and ${repo_root}/BENCH_store.json"
