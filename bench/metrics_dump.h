// Optional end-of-run metrics dump for benchmarks.
//
// The benches link benchmark::benchmark_main, so there is no main() of our
// own to hang a dump on; instead this header installs an at-exit object
// whose destructor writes the process-wide metrics registry as JSON — the
// same obs::MetricsRegistry::DumpJson() serializer the serving stack
// exposes — so bench output and runtime exposition share one formatter.
//
// Off by default (zero cost for normal runs). Enable with
//   LDPHH_DUMP_METRICS=<path>   write JSON to <path>
//   LDPHH_DUMP_METRICS=-        write JSON to stderr
// (bench/record_bench.sh uses this to archive instrumented runs.)
//
// Long-running benches can additionally set
//   LDPHH_DUMP_METRICS_INTERVAL_MS=<ms>
// to snapshot periodically from a background thread: each snapshot
// overwrites the target file (so the file always holds one valid JSON
// document — a poor man's live /metrics.json for processes with no admin
// port). The at-exit dump still runs last, so the final state always wins.

#ifndef LDPHH_BENCH_METRICS_DUMP_H_
#define LDPHH_BENCH_METRICS_DUMP_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace ldphh {
namespace bench {

inline void DumpMetricsTo(const char* path) {
  // Global() is a leaked singleton, so it outlives static destruction.
  const std::string json = obs::MetricsRegistry::Global().DumpJson();
  if (std::string(path) == "-") {
    std::fprintf(stderr, "%s\n", json.c_str());
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

struct MetricsDumpAtExit {
  MetricsDumpAtExit() {
    const char* path = std::getenv("LDPHH_DUMP_METRICS");
    const char* interval = std::getenv("LDPHH_DUMP_METRICS_INTERVAL_MS");
    if (path == nullptr || *path == '\0' || interval == nullptr) return;
    const long ms = std::atol(interval);
    if (ms <= 0) return;
    ticker_ = std::thread([this, path = std::string(path), ms] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this] { return stop_; });
        if (stop_) break;
        lock.unlock();
        DumpMetricsTo(path.c_str());
        lock.lock();
      }
    });
  }

  ~MetricsDumpAtExit() {
    if (ticker_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      ticker_.join();
    }
    const char* path = std::getenv("LDPHH_DUMP_METRICS");
    if (path == nullptr || *path == '\0') return;
    DumpMetricsTo(path);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread ticker_;
};

inline MetricsDumpAtExit metrics_dump_at_exit;

}  // namespace bench
}  // namespace ldphh

#endif  // LDPHH_BENCH_METRICS_DUMP_H_
