// Optional end-of-run metrics dump for benchmarks.
//
// The benches link benchmark::benchmark_main, so there is no main() of our
// own to hang a dump on; instead this header installs an at-exit object
// whose destructor writes the process-wide metrics registry as JSON — the
// same obs::MetricsRegistry::DumpJson() serializer the serving stack
// exposes — so bench output and runtime exposition share one formatter.
//
// Off by default (zero cost for normal runs). Enable with
//   LDPHH_DUMP_METRICS=<path>   write JSON to <path>
//   LDPHH_DUMP_METRICS=-        write JSON to stderr
// (bench/record_bench.sh uses this to archive instrumented runs.)

#ifndef LDPHH_BENCH_METRICS_DUMP_H_
#define LDPHH_BENCH_METRICS_DUMP_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/metrics.h"

namespace ldphh {
namespace bench {

struct MetricsDumpAtExit {
  ~MetricsDumpAtExit() {
    const char* path = std::getenv("LDPHH_DUMP_METRICS");
    if (path == nullptr || *path == '\0') return;
    // Global() is a leaked singleton, so it outlives static destruction.
    const std::string json = obs::MetricsRegistry::Global().DumpJson();
    if (std::string(path) == "-") {
      std::fprintf(stderr, "%s\n", json.c_str());
      return;
    }
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
};

inline MetricsDumpAtExit metrics_dump_at_exit;

}  // namespace bench
}  // namespace ldphh

#endif  // LDPHH_BENCH_METRICS_DUMP_H_
