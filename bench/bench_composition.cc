// Experiment F7 — Section 5: composition for randomized response. The
// shell-composed M~ achieves pure eps~ = O(eps sqrt(k ln 1/beta)) while
// staying beta-close to the plain k-fold composition M.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/ldphh.h"

namespace {

using namespace ldphh;

constexpr double kEps = 0.05;
constexpr double kBeta = 0.01;

void BM_ShellExactEpsilon(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ShellComposedRR m(kEps, k, kBeta);
  double exact = 0;
  for (auto _ : state) {
    exact = m.ExactEpsilon();
    benchmark::DoNotOptimize(exact);
  }
  state.counters["exact"] = exact;
  state.counters["thm5.1_bound"] = m.EpsilonBound();
  state.counters["naive"] = m.NaiveEpsilon();
  state.counters["tv_to_M"] = m.TvToPlainComposition();
  state.counters["exact/sqrt(k)"] = exact / std::sqrt(static_cast<double>(k));
}
BENCHMARK(BM_ShellExactEpsilon)->RangeMultiplier(4)->Range(16, 4096);

void BM_ShellApply(benchmark::State& state) {
  // Per-call cost of the M~ sampler (the user-side operation).
  const int k = static_cast<int>(state.range(0));
  ShellComposedRR m(kEps, k, kBeta);
  Rng rng(7);
  std::vector<uint8_t> x(static_cast<size_t>(k), 1);
  for (auto _ : state) {
    auto y = m.Apply(x, rng);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_ShellApply)->Arg(64)->Arg(1024);

void BM_F7_Print(benchmark::State& state) {
  for (auto _ : state) {
  }
  std::printf("\n=== F7: composition for RR (eps=%.2f, beta=%.2f) ===\n", kEps,
              kBeta);
  std::printf("%-8s %10s %12s %12s %12s %10s\n", "k", "naive", "Thm5.1",
              "exact eps~", "eps~/sqrt(k)", "TV(M~,M)");
  for (int k : {16, 64, 256, 1024, 4096}) {
    ShellComposedRR m(kEps, k, kBeta);
    const double exact = m.ExactEpsilon();
    std::printf("%-8d %10.3f %12.3f %12.3f %12.4f %10.2e\n", k,
                m.NaiveEpsilon(), m.EpsilonBound(), exact,
                exact / std::sqrt(static_cast<double>(k)),
                m.TvToPlainComposition());
  }
  std::printf("shape: exact eps~ grows as sqrt(k) and sits under the\n"
              "Theorem 5.1 bound 6 eps sqrt(k ln 1/beta); the naive pure\n"
              "composition k*eps is overtaken by k ~ (stronger for small\n"
              "eps). TV column certifies the beta-closeness (utility).\n\n");
}
BENCHMARK(BM_F7_Print)->Iterations(1);

}  // namespace
