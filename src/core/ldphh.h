/// \file ldphh.h
/// \brief Umbrella header: the public API of the ldphh library.
///
/// ldphh reproduces "Heavy Hitters and the Structure of Local Privacy"
/// (Bun, Nelson, Stemmer — PODS 2018). The primary entry points:
///
///  - `PrivateExpanderSketch` (src/protocols/private_expander_sketch.h):
///    the paper's optimal-error eps-LDP heavy-hitters protocol.
///  - `Bitstogram`, `SuccinctHist`, `FreqScan`: the baselines of Table 1.
///  - `Hashtogram`, `HadamardResponseFO`, `DirectEncodingFO`,
///    `UnaryEncodingFO`, `OlhFO`: frequency oracles (Definition 3.2).
///  - Section 4-7 structural results: `AdvancedGroupositionEpsilon`,
///    `MaxInformationBound`, `ShellComposedRR`, `GenProt`,
///    `RunLowerBoundExperiment`.
///
/// See README.md for a quickstart and DESIGN.md for the system inventory.

#ifndef LDPHH_CORE_LDPHH_H_
#define LDPHH_CORE_LDPHH_H_

#include "src/apps/quantiles.h"             // IWYU pragma: export
#include "src/codes/reed_solomon.h"         // IWYU pragma: export
#include "src/codes/url_code.h"             // IWYU pragma: export
#include "src/common/bit_util.h"            // IWYU pragma: export
#include "src/common/math_util.h"           // IWYU pragma: export
#include "src/common/random.h"              // IWYU pragma: export
#include "src/common/status.h"              // IWYU pragma: export
#include "src/freq/count_mean_sketch.h"     // IWYU pragma: export
#include "src/freq/direct_encoding.h"       // IWYU pragma: export
#include "src/freq/hadamard_response.h"     // IWYU pragma: export
#include "src/freq/hashtogram.h"            // IWYU pragma: export
#include "src/freq/olh.h"                   // IWYU pragma: export
#include "src/freq/unary_encoding.h"        // IWYU pragma: export
#include "src/graphs/expander.h"            // IWYU pragma: export
#include "src/hashing/kwise_hash.h"         // IWYU pragma: export
#include "src/ldp/anticoncentration.h"      // IWYU pragma: export
#include "src/ldp/composition.h"            // IWYU pragma: export
#include "src/ldp/genprot.h"                // IWYU pragma: export
#include "src/ldp/grouposition.h"           // IWYU pragma: export
#include "src/ldp/privacy_loss.h"           // IWYU pragma: export
#include "src/ldp/randomizer.h"             // IWYU pragma: export
#include "src/protocols/aggregator.h"       // IWYU pragma: export
#include "src/protocols/bitstogram.h"       // IWYU pragma: export
#include "src/protocols/freq_scan.h"        // IWYU pragma: export
#include "src/protocols/heavy_hitters.h"    // IWYU pragma: export
#include "src/protocols/private_expander_sketch.h"  // IWYU pragma: export
#include "src/protocols/protocol_config.h"  // IWYU pragma: export
#include "src/protocols/registry.h"         // IWYU pragma: export
#include "src/protocols/succinct_hist.h"    // IWYU pragma: export
#include "src/protocols/treehist.h"         // IWYU pragma: export
#include "src/server/checkpoint_log.h"      // IWYU pragma: export
#include "src/server/epoch_manager.h"       // IWYU pragma: export
#include "src/server/report_codec.h"        // IWYU pragma: export
#include "src/server/sharded_aggregator.h"  // IWYU pragma: export
#include "src/store/checkpoint_store.h"     // IWYU pragma: export
#include "src/workload/workload.h"          // IWYU pragma: export

namespace ldphh {

/// Library version.
inline constexpr const char* kVersion = "1.0.0";

}  // namespace ldphh

#endif  // LDPHH_CORE_LDPHH_H_
