/// \file fault_fs.h
/// \brief In-memory FileSystem with power-loss fault injection.
///
/// The test double behind the durability suite (tests/power_loss_test.cc):
/// a fully in-memory FileSystem that models exactly what POSIX promises —
/// and nothing more:
///
///   - Appended bytes live in the file's volatile content; only
///     `WritableFile::Sync(kData|kFull)` copies them to the durable image.
///   - A created, deleted, or renamed directory *entry* is volatile until
///     `SyncDirectory(parent)` runs; an fsynced file whose entry was never
///     synced is unreachable after power loss, and a deleted-but-unsynced
///     entry resurrects.
///   - `SimulatePowerLoss()` discards every volatile byte and entry,
///     leaving the directory tree exactly as a machine would find it after
///     the power came back. Optionally a prefix of each file's unsynced
///     tail survives (sector-granularity writes), which is how the torn
///     tails the recovery paths must tolerate are produced.
///
/// Deterministic, thread-safe, no real I/O — a store opened against this
/// filesystem must touch no actual disk (asserted in the tests: routing
/// any write path around the file layer shows up as a real file).

#ifndef LDPHH_COMMON_FAULT_FS_H_
#define LDPHH_COMMON_FAULT_FS_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/common/file.h"
#include "src/common/mutex.h"

namespace ldphh {

/// \brief The fault-injecting in-memory FileSystem.
class FaultInjectingFileSystem : public FileSystem {
 public:
  FaultInjectingFileSystem() = default;

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  StatusOr<bool> FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirectories(const std::string& dir) override;
  Status SyncDirectory(const std::string& dir) override;
  Status ListDirectory(const std::string& dir,
                       std::vector<std::string>* names) override;

  /// Power loss: every file reverts to its last-synced content and the
  /// namespace reverts to its last-synced entries. Files created but never
  /// directory-synced vanish; deletes and renames never directory-synced
  /// un-happen. Per file, up to \p unsynced_tail_bytes_kept bytes of the
  /// unsynced tail survive (0 = drop everything unsynced), modelling the
  /// torn sector-granularity tail a real disk can leave.
  void SimulatePowerLoss(size_t unsynced_tail_bytes_kept = 0);

  /// Counters for asserting the store actually syncs where it claims to.
  uint64_t file_sync_count() const;
  uint64_t dir_sync_count() const;

  /// While set, every WritableFile::Sync(kData|kFull) fails with kInternal
  /// and durability does not advance — a disk that stopped honoring fsync.
  /// The health-check tests flip this to drive a store's write path into
  /// (and back out of) a failing state.
  void set_fail_file_syncs(bool fail);

 private:
  friend class FaultWritableFile;
  friend class FaultSequentialFile;

  /// Inode fields are protected by the owning filesystem's mu_ (every
  /// access in fault_fs.cc holds it); per-inode GUARDED_BY cannot express
  /// "the lock of the filesystem that owns me".
  struct Inode {
    std::string content;  ///< Volatile view (what reads observe).
    std::string durable;  ///< Survives power loss (if the entry does too).
  };

  mutable Mutex mu_;
  /// Current namespace: what Open/List/Exists observe.
  std::map<std::string, std::shared_ptr<Inode>> live_ GUARDED_BY(mu_);
  /// Durable namespace: what survives power loss.
  std::map<std::string, std::shared_ptr<Inode>> durable_ns_ GUARDED_BY(mu_);
  uint64_t file_syncs_ GUARDED_BY(mu_) = 0;
  uint64_t dir_syncs_ GUARDED_BY(mu_) = 0;
  bool fail_file_syncs_ GUARDED_BY(mu_) = false;
};

}  // namespace ldphh

#endif  // LDPHH_COMMON_FAULT_FS_H_
