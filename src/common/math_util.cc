#include "src/common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/status.h"

namespace ldphh {

double LogFactorial(uint64_t n) { return std::lgamma(static_cast<double>(n) + 1.0); }

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double LogBinomialPmf(uint64_t n, uint64_t k, double p) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (p <= 0.0) return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  return LogBinomial(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double BinomialUpperTail(uint64_t n, uint64_t k, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  double acc = -std::numeric_limits<double>::infinity();
  for (uint64_t j = k; j <= n; ++j) acc = LogSumExp(acc, LogBinomialPmf(n, j, p));
  return std::min(1.0, std::exp(acc));
}

double BinomialLowerTail(uint64_t n, uint64_t k, double p) {
  if (k >= n) return 1.0;
  double acc = -std::numeric_limits<double>::infinity();
  for (uint64_t j = 0; j <= k; ++j) acc = LogSumExp(acc, LogBinomialPmf(n, j, p));
  return std::min(1.0, std::exp(acc));
}

double ChernoffUpper(double mu, double alpha) {
  return std::exp(-alpha * alpha * mu / 3.0);
}

double ChernoffLower(double mu, double alpha) {
  return std::exp(-alpha * alpha * mu / 2.0);
}

double PoissonTailBound(double mu, double alpha) {
  return std::exp(-alpha * alpha * mu / 2.0);
}

double LogPoissonPmf(double mu, uint64_t k) {
  if (mu <= 0.0) return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  return static_cast<double>(k) * std::log(mu) - mu - LogFactorial(k);
}

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double HoeffdingUpper(double t, uint64_t n, double c) {
  if (n == 0 || c <= 0.0) return t > 0.0 ? 0.0 : 1.0;
  return std::exp(-2.0 * t * t / (static_cast<double>(n) * 4.0 * c * c));
}

double BinomialAntiConcentrationLower(uint64_t n, double p, double t) {
  LDPHH_DCHECK(p > 0.0 && p <= 0.5, "BinomialAntiConcentrationLower: p in (0, 1/2]");
  const double np = static_cast<double>(n) * p;
  if (t < std::sqrt(3.0 * np) || t > np / 2.0) return 0.0;  // Outside validity.
  return std::exp(-9.0 * t * t / np);
}

double LogSumExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(const std::vector<double>& xs) {
  double acc = -std::numeric_limits<double>::infinity();
  for (double x : xs) acc = LogSumExp(acc, x);
  return acc;
}

double Median(std::vector<double> xs) {
  LDPHH_CHECK(!xs.empty(), "Median of empty vector");
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + mid - 1, xs.begin() + mid);
  return 0.5 * (hi + xs[mid - 1]);
}

double TotalVariation(const std::vector<double>& p, const std::vector<double>& q) {
  LDPHH_CHECK(p.size() == q.size(), "TotalVariation: size mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) acc += std::abs(p[i] - q[i]);
  return 0.5 * acc;
}

uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return uint64_t{1} << (64 - __builtin_clzll(x - 1));
}

int CeilLog2(uint64_t x) {
  LDPHH_DCHECK(x >= 1, "CeilLog2 of zero");
  if (x == 1) return 0;
  return 64 - __builtin_clzll(x - 1);
}

}  // namespace ldphh
