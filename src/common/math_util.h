/// \file math_util.h
/// \brief Probability tails, entropy, and combinatorics used throughout the
/// paper's analysis (Theorems 3.9-3.12, 7.5, A.4, A.5) and the experiments.

#ifndef LDPHH_COMMON_MATH_UTIL_H_
#define LDPHH_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace ldphh {

/// Natural log of n! via lgamma.
double LogFactorial(uint64_t n);

/// Natural log of the binomial coefficient C(n, k); -inf if k > n.
double LogBinomial(uint64_t n, uint64_t k);

/// log of the Binomial(n, p) pmf at k.
double LogBinomialPmf(uint64_t n, uint64_t k, double p);

/// Exact Binomial(n, p) upper tail Pr[X >= k], summed in log space.
double BinomialUpperTail(uint64_t n, uint64_t k, double p);

/// Exact Binomial(n, p) lower tail Pr[X <= k].
double BinomialLowerTail(uint64_t n, uint64_t k, double p);

/// Multiplicative Chernoff upper-tail bound exp(-a^2 mu / 3) (Thm 3.11(1)).
double ChernoffUpper(double mu, double alpha);

/// Multiplicative Chernoff lower-tail bound exp(-a^2 mu / 2) (Thm 3.11(2)).
double ChernoffLower(double mu, double alpha);

/// Poisson tail bound of Theorem 3.10: Pr[|X - mu| >= alpha mu] pieces.
double PoissonTailBound(double mu, double alpha);

/// log of the Poisson(mu) pmf at k.
double LogPoissonPmf(double mu, uint64_t k);

/// Binary entropy H(p) in bits; H(0)=H(1)=0.
double BinaryEntropy(double p);

/// Hoeffding bound Pr[S - E S >= t] <= exp(-2 t^2 / (n c^2)) for n summands
/// bounded in magnitude by c.
double HoeffdingUpper(double t, uint64_t n, double c);

/// \brief Anti-concentration lower bound of Lemma 5.5 / Theorem A.4.
///
/// Returns the Klein-Young style lower bound exp(-9 t^2 / (n p)) on
/// Pr[Bin(n, p) <= np - t], valid for sqrt(3 n p) <= t <= n p / 2.
double BinomialAntiConcentrationLower(uint64_t n, double p, double t);

/// Numerically stable log(exp(a) + exp(b)).
double LogSumExp(double a, double b);

/// Numerically stable log-sum-exp of a vector.
double LogSumExp(const std::vector<double>& xs);

/// Median of a vector (copies; average of middle two for even length).
double Median(std::vector<double> xs);

/// Exact Kolmogorov-style total variation distance between two discrete
/// distributions given as aligned probability vectors.
double TotalVariation(const std::vector<double>& p, const std::vector<double>& q);

/// Next power of two >= x (x >= 1).
uint64_t NextPow2(uint64_t x);

/// Integer ceil(log2(x)) for x >= 1.
int CeilLog2(uint64_t x);

}  // namespace ldphh

#endif  // LDPHH_COMMON_MATH_UTIL_H_
