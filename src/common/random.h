/// \file random.h
/// \brief Deterministic pseudo-randomness for protocols and experiments.
///
/// All randomness in the library flows through `Rng` (xoshiro256++ seeded
/// via splitmix64). Protocol "public randomness" is modeled as seeds handed
/// to every party, so runs are exactly reproducible given a master seed.

#ifndef LDPHH_COMMON_RANDOM_H_
#define LDPHH_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace ldphh {

/// splitmix64 step; used for seeding and cheap stateless mixing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (Stafford variant 13).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// \brief xoshiro256++ generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can drive
/// `std::uniform_int_distribution` etc., but the library prefers the
/// built-in helpers below (portable across standard libraries).
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next 64 uniform random bits.
  uint64_t operator()() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method.
  uint64_t UniformU64(uint64_t bound) {
    // Debiased multiply-high; bound == 0 is a caller bug.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Uniform sign in {-1, +1}.
  int Sign() { return ((*this)() & 1) ? 1 : -1; }

  /// Forks an independent child generator (for per-party randomness).
  Rng Fork() { return Rng((*this)()); }

  /// Forks a deterministic child for a numbered stream without advancing
  /// this generator: the child seed is a splitmix64 expansion of
  /// (state fingerprint, stream_id), so distinct stream ids yield
  /// statistically independent streams and shard workers can each take
  /// `rng.Fork(shard_id)` from one master Rng in any order.
  Rng Fork(uint64_t stream_id) const {
    uint64_t sm = s_[0] ^ Rotl(s_[2], 29) ^ Mix64(stream_id);
    uint64_t seed = SplitMix64(sm);
    seed ^= SplitMix64(sm);
    return Rng(seed);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace ldphh

#endif  // LDPHH_COMMON_RANDOM_H_
