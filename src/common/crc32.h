/// \file crc32.h
/// \brief CRC-32C (Castagnoli) over byte buffers.
///
/// Guards the server wire format, checkpoint records, and the segment store
/// against bit rot and torn writes (the leveldb record-format idiom). The
/// public entry point dispatches once, at first use, to the fastest
/// implementation the CPU offers: the SSE4.2 CRC32 instruction on x86-64,
/// the ARMv8 CRC32C instructions on aarch64, or the portable table fallback
/// everywhere else. All three compute the identical function.

#ifndef LDPHH_COMMON_CRC32_H_
#define LDPHH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ldphh {

/// CRC-32C of `data[0, n)`, seeded with `init` (pass a previous crc to
/// extend over concatenated buffers).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

/// Masked crc per the leveldb convention: storing a crc of data that itself
/// contains crcs is safer when the stored value is not a fixed point.
inline uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

namespace internal {

/// The portable table implementation, exported so tests and benchmarks can
/// cross-check the hardware path against it on the same inputs.
uint32_t Crc32cSoftware(const void* data, size_t n, uint32_t init = 0);

/// True iff Crc32c() dispatches to a hardware CRC32C instruction on this
/// machine (SSE4.2 or ARMv8 CRC, detected at runtime).
bool Crc32cHardwareAvailable();

}  // namespace internal

}  // namespace ldphh

#endif  // LDPHH_COMMON_CRC32_H_
