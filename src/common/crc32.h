/// \file crc32.h
/// \brief CRC-32C (Castagnoli) over byte buffers.
///
/// Guards the server wire format and checkpoint records against bit rot and
/// torn writes (the leveldb record-format idiom). Software slice-by-one
/// table implementation; fast enough for the record sizes involved, and
/// portable (no SSE4.2 requirement).

#ifndef LDPHH_COMMON_CRC32_H_
#define LDPHH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ldphh {

/// CRC-32C of `data[0, n)`, seeded with `init` (pass a previous crc to
/// extend over concatenated buffers).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

/// Masked crc per the leveldb convention: storing a crc of data that itself
/// contains crcs is safer when the stored value is not a fixed point.
inline uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace ldphh

#endif  // LDPHH_COMMON_CRC32_H_
