/// \file thread_annotations.h
/// \brief Clang Thread Safety Analysis annotation macros.
///
/// The leveldb/abseil discipline, adapted: lock-protected members declare
/// their lock with GUARDED_BY, methods that must be called with a lock held
/// declare it with REQUIRES, and the analysis proves — at compile time, on
/// every clang build — that no code path touches guarded state without the
/// right lock. The macros expand to clang attributes under clang and to
/// nothing elsewhere, so GCC builds are unaffected.
///
/// The analysis only understands annotated capability types, not raw
/// std::mutex: use ldphh::Mutex / ldphh::MutexLock / ldphh::CondVar from
/// src/common/mutex.h (tools/lint.sh enforces this for src/). Enable the
/// analysis with -DLDPHH_THREAD_SAFETY=ON (clang only), which adds
/// -Wthread-safety -Werror=thread-safety; the CI static-analysis job runs
/// it on every push. docs/static_analysis.md spells out the conventions.

#ifndef LDPHH_COMMON_THREAD_ANNOTATIONS_H_
#define LDPHH_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define LDPHH_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define LDPHH_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on non-clang
#endif

/// Declares a type as a capability (a lock). Goes on the class.
#define CAPABILITY(x) LDPHH_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction.
#define SCOPED_CAPABILITY LDPHH_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reading requires holding it (shared or exclusive), writing requires
/// holding it exclusively.
#define GUARDED_BY(x) LDPHH_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Like GUARDED_BY for pointers: the pointed-to data is protected, the
/// pointer itself may be read freely.
#define PT_GUARDED_BY(x) LDPHH_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that callers must hold the capability exclusively on entry
/// (and still hold it on exit). The convention for *Locked() helpers.
#define REQUIRES(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Spelled-out alias some codebases (leveldb) use for REQUIRES.
#define EXCLUSIVE_LOCKS_REQUIRED(...) REQUIRES(__VA_ARGS__)

/// Shared (reader) variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (and does not release it).
#define ACQUIRE(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define RELEASE(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the capability held (it acquires
/// it itself; catches self-deadlock).
#define EXCLUDES(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Try-acquire: first argument is the success return value.
#define TRY_ACQUIRE(...) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) LDPHH_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Runtime assertion that the calling thread holds the capability; tells
/// the analysis to assume it from here on.
#define ASSERT_CAPABILITY(x) \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the locking is sound anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  LDPHH_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // LDPHH_COMMON_THREAD_ANNOTATIONS_H_
