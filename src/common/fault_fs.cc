#include "src/common/fault_fs.h"

#include <algorithm>
#include <cstring>

namespace ldphh {

namespace {

Status NotFound(const char* op, const std::string& path) {
  return Status::Internal(std::string("fault fs: ") + op +
                          " failed for " + path + ": no such file");
}

}  // namespace

/// \brief WritableFile over a fault-fs inode. Append grows the volatile
/// content; Sync copies it to the durable image. Flush is a no-op: the
/// volatile content *is* the OS view (process crashes are modelled by
/// simply dropping the store object, which loses nothing here — only
/// SimulatePowerLoss destroys state).
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingFileSystem* fs,
                    std::shared_ptr<FaultInjectingFileSystem::Inode> inode)
      : fs_(fs), inode_(std::move(inode)) {}

  Status Append(std::string_view data) override {
    if (inode_ == nullptr) {
      return Status::FailedPrecondition("fault fs: Append on closed file");
    }
    MutexLock lk(&fs_->mu_);
    inode_->content.append(data.data(), data.size());
    return Status::OK();
  }

  Status Flush() override {
    if (inode_ == nullptr) {
      return Status::FailedPrecondition("fault fs: Flush on closed file");
    }
    return Status::OK();
  }

  Status Sync(SyncMode mode) override {
    LDPHH_RETURN_IF_ERROR(Flush());
    if (mode == SyncMode::kNone) return Status::OK();
    MutexLock lk(&fs_->mu_);
    if (fs_->fail_file_syncs_) {
      return Status::Internal("fault fs: injected sync failure");
    }
    inode_->durable = inode_->content;
    ++fs_->file_syncs_;
    return Status::OK();
  }

  Status Close() override {
    inode_.reset();
    return Status::OK();
  }

 private:
  FaultInjectingFileSystem* const fs_;
  std::shared_ptr<FaultInjectingFileSystem::Inode> inode_;
};

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectingFileSystem* fs,
                      std::shared_ptr<FaultInjectingFileSystem::Inode> inode,
                      uint64_t size)
      : fs_(fs), inode_(std::move(inode)), size_(size) {}

  Status Read(char* buf, size_t n, size_t* bytes_read) override {
    MutexLock lk(&fs_->mu_);
    const std::string& content = inode_->content;
    const size_t avail =
        offset_ < content.size() ? content.size() - offset_ : 0;
    const size_t got = std::min(n, avail);
    std::memcpy(buf, content.data() + offset_, got);
    offset_ += got;
    *bytes_read = got;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    offset_ += static_cast<size_t>(n);
    return Status::OK();
  }

  uint64_t Tell() const override { return offset_; }
  uint64_t size() const override { return size_; }

 private:
  FaultInjectingFileSystem* const fs_;
  const std::shared_ptr<FaultInjectingFileSystem::Inode> inode_;
  const uint64_t size_;
  size_t offset_ = 0;
};

StatusOr<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::NewWritableFile(const std::string& path) {
  MutexLock lk(&mu_);
  auto it = live_.find(path);
  std::shared_ptr<Inode> inode;
  if (it == live_.end()) {
    inode = std::make_shared<Inode>();
    live_[path] = inode;  // A volatile entry until the directory syncs.
  } else {
    inode = it->second;
  }
  return std::unique_ptr<WritableFile>(new FaultWritableFile(this, inode));
}

StatusOr<std::unique_ptr<SequentialFile>>
FaultInjectingFileSystem::NewSequentialFile(const std::string& path) {
  MutexLock lk(&mu_);
  const auto it = live_.find(path);
  if (it == live_.end()) return NotFound("open", path);
  return std::unique_ptr<SequentialFile>(new FaultSequentialFile(
      this, it->second, it->second->content.size()));
}

StatusOr<bool> FaultInjectingFileSystem::FileExists(const std::string& path) {
  MutexLock lk(&mu_);
  return live_.count(path) != 0;
}

StatusOr<uint64_t> FaultInjectingFileSystem::FileSize(
    const std::string& path) {
  MutexLock lk(&mu_);
  const auto it = live_.find(path);
  if (it == live_.end()) return NotFound("stat", path);
  return static_cast<uint64_t>(it->second->content.size());
}

Status FaultInjectingFileSystem::Truncate(const std::string& path,
                                          uint64_t size) {
  MutexLock lk(&mu_);
  const auto it = live_.find(path);
  if (it == live_.end()) return NotFound("truncate", path);
  if (size < it->second->content.size()) it->second->content.resize(size);
  // The durable image is left alone: an unsynced truncate can un-happen
  // on power loss, exactly like the real thing. Recovery re-truncates.
  return Status::OK();
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  MutexLock lk(&mu_);
  live_.erase(path);  // Absent is OK; durable entry dies at SyncDirectory.
  return Status::OK();
}

Status FaultInjectingFileSystem::RenameFile(const std::string& from,
                                            const std::string& to) {
  MutexLock lk(&mu_);
  const auto it = live_.find(from);
  if (it == live_.end()) return NotFound("rename", from);
  live_[to] = it->second;  // Replaces any existing target, like rename(2).
  live_.erase(from);
  return Status::OK();
}

Status FaultInjectingFileSystem::CreateDirectories(const std::string&) {
  // Directory creation is modelled as durable and always succeeding; the
  // namespace is flat path->inode maps, so there is nothing to record.
  return Status::OK();
}

Status FaultInjectingFileSystem::SyncDirectory(const std::string& dir) {
  MutexLock lk(&mu_);
  ++dir_syncs_;
  // The durable namespace under `dir` becomes the live namespace: entries
  // created/renamed-in become durable, deleted/renamed-away entries die.
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (ParentDirectory(it->first) == dir && live_.count(it->first) == 0) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_) {
    if (ParentDirectory(path) == dir) durable_ns_[path] = inode;
  }
  return Status::OK();
}

Status FaultInjectingFileSystem::ListDirectory(
    const std::string& dir, std::vector<std::string>* names) {
  MutexLock lk(&mu_);
  names->clear();
  for (const auto& [path, inode] : live_) {
    if (ParentDirectory(path) == dir) {
      names->push_back(path.substr(dir.size() + 1));
    }
  }
  return Status::OK();
}

void FaultInjectingFileSystem::SimulatePowerLoss(
    size_t unsynced_tail_bytes_kept) {
  MutexLock lk(&mu_);
  for (auto& [path, inode] : durable_ns_) {
    std::string survives = inode->durable;
    // If the volatile content extends the durable image, a torn prefix of
    // the unsynced tail may have reached a sector before the lights went
    // out.
    if (unsynced_tail_bytes_kept > 0 &&
        inode->content.size() > survives.size() &&
        inode->content.compare(0, survives.size(), survives) == 0) {
      const size_t extra = std::min(unsynced_tail_bytes_kept,
                                    inode->content.size() - survives.size());
      survives.append(inode->content, survives.size(), extra);
    }
    inode->content = survives;
    inode->durable = std::move(survives);
  }
  live_ = durable_ns_;
}

uint64_t FaultInjectingFileSystem::file_sync_count() const {
  MutexLock lk(&mu_);
  return file_syncs_;
}

void FaultInjectingFileSystem::set_fail_file_syncs(bool fail) {
  MutexLock lk(&mu_);
  fail_file_syncs_ = fail;
}

uint64_t FaultInjectingFileSystem::dir_sync_count() const {
  MutexLock lk(&mu_);
  return dir_syncs_;
}

}  // namespace ldphh
