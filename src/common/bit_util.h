/// \file bit_util.h
/// \brief Bit-level helpers: popcount parity, bit extraction, byte packing.
///
/// Domain elements in the library are fixed-width bitstrings (`DomainItem`,
/// up to 256 bits). These helpers implement the symbol/bit views the
/// protocols need (Algorithm PrivateExpanderSketch decodes payloads bitwise,
/// the ECC views items as byte strings).

#ifndef LDPHH_COMMON_BIT_UTIL_H_
#define LDPHH_COMMON_BIT_UTIL_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ldphh {

/// Parity of the 64-bit inner product <a, b> over GF(2).
inline int ParityOfAnd(uint64_t a, uint64_t b) {
  return __builtin_parityll(a & b);
}

/// +1 / -1 Hadamard matrix entry H[row, col] = (-1)^{<row, col>}.
inline int HadamardEntry(uint64_t row, uint64_t col) {
  return ParityOfAnd(row, col) ? -1 : 1;
}

/// \brief A domain element: a fixed-width bitstring of up to 256 bits.
///
/// `bits` holds the item little-endian in 64-bit limbs; `width` is the
/// logical number of bits (log2 |X|). Items compare by value.
struct DomainItem {
  std::array<uint64_t, 4> limbs{0, 0, 0, 0};

  DomainItem() = default;
  /// Constructs from a 64-bit value.
  explicit DomainItem(uint64_t v) { limbs[0] = v; }

  bool operator==(const DomainItem& o) const { return limbs == o.limbs; }
  bool operator!=(const DomainItem& o) const { return !(*this == o); }
  bool operator<(const DomainItem& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limbs[i] != o.limbs[i]) return limbs[i] < o.limbs[i];
    }
    return false;
  }

  /// Bit i (0-based, little-endian).
  int Bit(int i) const { return (limbs[i >> 6] >> (i & 63)) & 1; }

  /// Sets bit i to \p v.
  void SetBit(int i, int v) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (v) {
      limbs[i >> 6] |= mask;
    } else {
      limbs[i >> 6] &= ~mask;
    }
  }

  /// Byte i (0-based). Width callers guarantee i < 32.
  uint8_t Byte(int i) const {
    return static_cast<uint8_t>(limbs[i >> 3] >> ((i & 7) * 8));
  }

  /// Sets byte i.
  void SetByte(int i, uint8_t b) {
    const int shift = (i & 7) * 8;
    limbs[i >> 3] &= ~(uint64_t{0xff} << shift);
    limbs[i >> 3] |= static_cast<uint64_t>(b) << shift;
  }

  /// Truncates the item to \p width bits (zeroes the rest).
  void Truncate(int width) {
    for (int i = 0; i < 4; ++i) {
      const int lo = i * 64;
      if (width <= lo) {
        limbs[i] = 0;
      } else if (width < lo + 64) {
        limbs[i] &= (uint64_t{1} << (width - lo)) - 1;
      }
    }
  }

  /// A stable 64-bit fingerprint (for hashing into std containers).
  uint64_t Fingerprint() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t l : limbs) {
      h ^= l + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  /// Hex rendering, most significant limb first, for diagnostics.
  std::string ToHex() const;

  /// Packs the first \p width bits into bytes (little-endian byte order).
  std::vector<uint8_t> ToBytes(int width) const;

  /// Unpacks from bytes (inverse of ToBytes).
  static DomainItem FromBytes(const std::vector<uint8_t>& bytes, int width);

  /// Encodes a string into a \p width-bit item (UTF-8 bytes, truncated or
  /// zero-padded). Lossless for strings of at most width/8 bytes.
  static DomainItem FromString(const std::string& s, int width);

  /// Decodes back to a string (strips trailing NULs).
  std::string ToString(int width) const;
};

struct DomainItemHash {
  size_t operator()(const DomainItem& x) const {
    return static_cast<size_t>(x.Fingerprint());
  }
};

}  // namespace ldphh

#endif  // LDPHH_COMMON_BIT_UTIL_H_
