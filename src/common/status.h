/// \file status.h
/// \brief Lightweight Status / StatusOr error-handling primitives.
///
/// Follows the RocksDB/Arrow idiom: recoverable failures propagate as
/// `Status` values rather than exceptions. Programmer errors (violated
/// preconditions that indicate a bug, not bad input) use LDPHH_DCHECK.

#ifndef LDPHH_COMMON_STATUS_H_
#define LDPHH_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace ldphh {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a malformed parameter.
  kFailedPrecondition,///< Object not in a state that admits the call.
  kOutOfRange,        ///< Index or value outside the permitted range.
  kDecodeFailure,     ///< A codec could not recover a codeword.
  kInternal,          ///< Invariant violation inside the library.
  kResourceExhausted, ///< A Las Vegas procedure ran out of retries.
};

/// \brief Result of an operation that can fail without a payload.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise.
///
/// `[[nodiscard]]`: a dropped Status is a swallowed failure — every caller
/// must handle it, propagate it (LDPHH_RETURN_IF_ERROR), or discard it
/// explicitly through IgnoreStatus() with a stated reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with message \p msg.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a FailedPrecondition status with message \p msg.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns an OutOfRange status with message \p msg.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a DecodeFailure status with message \p msg.
  static Status DecodeFailure(std::string msg) {
    return Status(StatusCode::kDecodeFailure, std::move(msg));
  }
  /// Returns an Internal status with message \p msg.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a ResourceExhausted status with message \p msg.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The diagnostic message (empty for OK).
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kDecodeFailure: return "DecodeFailure";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of a non-OK StatusOr aborts (programmer error), so
/// callers must check `ok()` first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicitly OK).
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status.
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() && "StatusOr from OK status");
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// The held value; aborts if not OK.
  const T& value() const& {
    if (!ok()) Die();
    return std::get<T>(payload_);
  }
  /// The held value (move); aborts if not OK.
  T&& value() && {
    if (!ok()) Die();
    return std::get<T>(std::move(payload_));
  }
  /// Pointer-style accessors for the held value.
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  [[noreturn]] void Die() const {
    std::fprintf(stderr, "StatusOr value() on error: %s\n",
                 std::get<Status>(payload_).ToString().c_str());
    std::abort();
  }

  std::variant<T, Status> payload_;
};

/// Discards \p status on purpose. The one sanctioned way to drop a Status:
/// unlike a bare `(void)` cast it forces the writer to state *why* the
/// failure does not matter, and the reason is greppable next to the call.
inline void IgnoreStatus(const Status& status, const char* reason) {
  (void)status;
  (void)reason;
}

/// Propagates a non-OK Status out of the enclosing function.
#define LDPHH_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::ldphh::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Aborts with a message if \p cond is false. Enabled in all build types:
/// the invariants guarded here are cheap and the library is research-grade.
#define LDPHH_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "LDPHH_CHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, (msg));                        \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

/// Debug-only precondition check.
#ifdef NDEBUG
#define LDPHH_DCHECK(cond, msg) \
  do {                          \
  } while (0)
#else
#define LDPHH_DCHECK(cond, msg) LDPHH_CHECK(cond, msg)
#endif

}  // namespace ldphh

#endif  // LDPHH_COMMON_STATUS_H_
