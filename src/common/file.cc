#include "src/common/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace ldphh {

namespace {

constexpr size_t kWriteBufferSize = 1 << 16;
constexpr size_t kReadBufferSize = 1 << 16;

Status PosixError(const char* op, const std::string& path) {
  return Status::Internal(std::string("file: ") + op + " failed for " + path +
                          ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {
    buffer_.reserve(kWriteBufferSize);
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      IgnoreStatus(FlushBuffer(),
                   "destructor flush is best-effort; durability needed an"
                   " explicit Sync");
      ::close(fd_);
    }
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("file: Append on closed file");
    }
    if (buffer_.size() + data.size() <= kWriteBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    LDPHH_RETURN_IF_ERROR(FlushBuffer());
    if (data.size() <= kWriteBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("file: Flush on closed file");
    }
    return FlushBuffer();
  }

  Status Sync(SyncMode mode) override {
    LDPHH_RETURN_IF_ERROR(Flush());
    if (mode == SyncMode::kNone) return Status::OK();
    const int rc =
        mode == SyncMode::kData ? ::fdatasync(fd_) : ::fsync(fd_);
    if (rc != 0) return PosixError("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status st = FlushBuffer();
    if (::close(fd_) != 0 && st.ok()) st = PosixError("close", path_);
    fd_ = -1;
    return st;
  }

 private:
  Status FlushBuffer() {
    if (buffer_.empty()) return Status::OK();
    LDPHH_RETURN_IF_ERROR(WriteRaw(buffer_.data(), buffer_.size()));
    buffer_.clear();
    return Status::OK();
  }

  Status WriteRaw(const char* data, size_t n) {
    while (n > 0) {
      const ssize_t written = ::write(fd_, data, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return PosixError("write", path_);
      }
      data += written;
      n -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  int fd_;
  const std::string path_;
  std::string buffer_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {
    buffer_.resize(kReadBufferSize);
  }

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(char* buf, size_t n, size_t* bytes_read) override {
    size_t got = 0;
    while (got < n) {
      if (buffer_pos_ < buffer_len_) {
        const size_t chunk = std::min(n - got, buffer_len_ - buffer_pos_);
        std::memcpy(buf + got, buffer_.data() + buffer_pos_, chunk);
        buffer_pos_ += chunk;
        got += chunk;
        continue;
      }
      const ssize_t r = ::read(fd_, buffer_.data(), buffer_.size());
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("read", path_);
      }
      if (r == 0) break;  // EOF.
      buffer_len_ = static_cast<size_t>(r);
      buffer_pos_ = 0;
    }
    offset_ += got;
    *bytes_read = got;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    // Consume from the read-ahead buffer first, then lseek past the rest —
    // no byte of the skipped range is transferred from the kernel.
    const uint64_t buffered =
        std::min<uint64_t>(n, buffer_len_ - buffer_pos_);
    buffer_pos_ += static_cast<size_t>(buffered);
    const uint64_t remaining = n - buffered;
    if (remaining > 0) {
      if (::lseek(fd_, static_cast<off_t>(remaining), SEEK_CUR) < 0) {
        return PosixError("lseek", path_);
      }
      buffer_pos_ = 0;
      buffer_len_ = 0;
    }
    offset_ += n;
    return Status::OK();
  }

  uint64_t Tell() const override { return offset_; }
  uint64_t size() const override { return size_; }

 private:
  int fd_;
  const uint64_t size_;
  const std::string path_;
  uint64_t offset_ = 0;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  size_t buffer_len_ = 0;
};

class PosixFileSystem : public FileSystem {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError("open", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError("open", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return PosixError("fstat", path);
    }
    return std::unique_ptr<SequentialFile>(new PosixSequentialFile(
        fd, static_cast<uint64_t>(st.st_size), path));
  }

  StatusOr<bool> FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT || errno == ENOTDIR) return false;
    return PosixError("stat", path);
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return PosixError("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError("truncate", path);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return PosixError("unlink", path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename", to);
    }
    return Status::OK();
  }

  Status CreateDirectories(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("file: create_directories failed for " + dir +
                              ": " + ec.message());
    }
    return Status::OK();
  }

  Status SyncDirectory(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return PosixError("open dir", dir);
    Status st;
    if (::fsync(fd) != 0) {
      // Some filesystems refuse fsync on a directory fd; the entries are
      // then as durable as that filesystem can make them.
      if (errno != EINVAL && errno != ENOTSUP && errno != EBADF) {
        st = PosixError("fsync dir", dir);
      }
    }
    ::close(fd);
    return st;
  }

  Status ListDirectory(const std::string& dir,
                       std::vector<std::string>* names) override {
    names->clear();
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      return Status::Internal("file: list failed for " + dir + ": " +
                              ec.message());
    }
    for (const auto& entry : it) {
      names->push_back(entry.path().filename().string());
    }
    return Status::OK();
  }
};

}  // namespace

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone: return "none";
    case SyncMode::kData: return "data";
    case SyncMode::kFull: return "full";
  }
  return "unknown";
}

Status FileSystem::RenameAndSync(const std::string& from,
                                 const std::string& to) {
  LDPHH_RETURN_IF_ERROR(RenameFile(from, to));
  return SyncDirectory(ParentDirectory(to));
}

FileSystem* FileSystem::Default() {
  static PosixFileSystem* const kDefault = new PosixFileSystem();
  return kDefault;
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace ldphh
