/// \file mutex.h
/// \brief Annotated mutex / condition-variable / scoped-lock wrappers.
///
/// Clang Thread Safety Analysis (src/common/thread_annotations.h) can only
/// reason about lock types that declare themselves capabilities — a raw
/// std::mutex is invisible to it. These wrappers are that declaration and
/// nothing more: `Mutex` is a std::mutex whose Lock/Unlock carry
/// ACQUIRE/RELEASE attributes, `MutexLock` is the std::lock_guard
/// equivalent the analysis understands (SCOPED_CAPABILITY), and `CondVar`
/// is the leveldb-style condition variable bound to one Mutex at
/// construction. All of src/ locks through these (tools/lint.sh rejects
/// a bare std::mutex outside this file), so `-Wthread-safety` covers every
/// lock acquisition in the tree.
///
/// Wait discipline: CondVar has no predicate overloads on purpose — spell
/// the loop (`while (!cond) cv.Wait();`) so the guarded reads in the
/// predicate are visibly under the lock the analysis tracks.

#ifndef LDPHH_COMMON_MUTEX_H_
#define LDPHH_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace ldphh {

class CondVar;

/// \brief An annotated std::mutex (a thread-safety-analysis capability).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock holder over the whole enclosing scope (the
/// std::lock_guard idiom, visible to the analysis).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to one Mutex (leveldb's port::CondVar).
///
/// Wait/TimedWait atomically release the bound mutex while blocked and
/// reacquire it before returning; the caller must hold it. Signal/SignalAll
/// need no lock.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until signaled (spurious wakeups possible — always loop on the
  /// condition). The bound mutex must be held.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait, but returns false once \p timeout elapses un-signaled.
  bool TimedWait(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const bool signaled = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return signaled;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace ldphh

#endif  // LDPHH_COMMON_MUTEX_H_
