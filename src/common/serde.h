/// \file serde.h
/// \brief Little-endian binary put/get helpers for the wire formats.
///
/// `Put*` appends to a std::string buffer; `ByteReader` consumes a
/// std::string_view with bounds-checked, Status-returning reads so corrupt
/// or truncated input surfaces as `kDecodeFailure` instead of UB. Shared by
/// the report codec, the mergeable-oracle state snapshots, and the
/// checkpoint log.

#ifndef LDPHH_COMMON_SERDE_H_
#define LDPHH_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ldphh {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>(v >> 8);
  out->append(buf, 2);
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

/// Doubles travel as their IEEE-754 bit pattern: state snapshots must be
/// bit-exact across save/restore for the merge-equivalence guarantees.
inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

/// LEB128-style varint (user indices are usually small; reports stay compact).
inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s.data(), s.size());
}

/// \brief Bounds-checked sequential reader over a byte buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  size_t position() const { return pos_; }

  Status ReadU8(uint8_t* v) {
    if (remaining() < 1) return Truncated("u8");
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU16(uint16_t* v) {
    if (remaining() < 2) return Truncated("u16");
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 2;
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (remaining() < 4) return Truncated("u32");
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (remaining() < 8) return Truncated("u64");
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadDouble(double* v) {
    uint64_t bits = 0;
    LDPHH_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, 8);
    return Status::OK();
  }

  Status ReadVarint64(uint64_t* v) {
    *v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return Truncated("varint");
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      *v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return Status::OK();
    }
    return Status::DecodeFailure("serde: varint exceeds 64 bits");
  }

  Status ReadBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return Truncated("bytes");
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadLengthPrefixed(std::string_view* out) {
    uint64_t n = 0;
    LDPHH_RETURN_IF_ERROR(ReadVarint64(&n));
    if (n > remaining()) return Truncated("length-prefixed bytes");
    return ReadBytes(static_cast<size_t>(n), out);
  }

 private:
  static Status Truncated(const char* what) {
    return Status::DecodeFailure(std::string("serde: truncated input reading ") +
                                 what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace ldphh

#endif  // LDPHH_COMMON_SERDE_H_
