#include "src/common/bit_util.h"

#include <cstdio>

namespace ldphh {

std::string DomainItem::ToHex() const {
  char buf[4 * 16 + 1];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx%016llx%016llx",
                static_cast<unsigned long long>(limbs[3]),
                static_cast<unsigned long long>(limbs[2]),
                static_cast<unsigned long long>(limbs[1]),
                static_cast<unsigned long long>(limbs[0]));
  return std::string(buf);
}

std::vector<uint8_t> DomainItem::ToBytes(int width) const {
  const int nbytes = (width + 7) / 8;
  LDPHH_DCHECK(nbytes <= 32, "DomainItem width exceeds 256 bits");
  std::vector<uint8_t> out(nbytes);
  for (int i = 0; i < nbytes; ++i) out[i] = Byte(i);
  if (width % 8 != 0) {
    out[nbytes - 1] &= static_cast<uint8_t>((1u << (width % 8)) - 1);
  }
  return out;
}

DomainItem DomainItem::FromBytes(const std::vector<uint8_t>& bytes, int width) {
  DomainItem x;
  const int nbytes = std::min<int>(static_cast<int>(bytes.size()), 32);
  for (int i = 0; i < nbytes; ++i) x.SetByte(i, bytes[i]);
  x.Truncate(width);
  return x;
}

DomainItem DomainItem::FromString(const std::string& s, int width) {
  DomainItem x;
  const int nbytes = std::min<int>(static_cast<int>(s.size()), (width + 7) / 8);
  for (int i = 0; i < nbytes && i < 32; ++i) {
    x.SetByte(i, static_cast<uint8_t>(s[i]));
  }
  x.Truncate(width);
  return x;
}

std::string DomainItem::ToString(int width) const {
  std::string out;
  const int nbytes = (width + 7) / 8;
  for (int i = 0; i < nbytes && i < 32; ++i) {
    const char c = static_cast<char>(Byte(i));
    if (c == '\0') break;
    out.push_back(c);
  }
  return out;
}

}  // namespace ldphh
