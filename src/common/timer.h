/// \file timer.h
/// \brief Wall-clock timing for the Table-1 resource measurements.

#ifndef LDPHH_COMMON_TIMER_H_
#define LDPHH_COMMON_TIMER_H_

#include <chrono>

namespace ldphh {

/// Monotonic stopwatch. Started on construction; `Seconds()` reads elapsed
/// time without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed nanoseconds.
  int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ldphh

#endif  // LDPHH_COMMON_TIMER_H_
