/// \file file.h
/// \brief Power-loss-grade file abstraction under every byte-to-disk path.
///
/// The repo's storage stack (checkpoint_log, checkpoint_store, epoch
/// manager) used to write through stdio: `fflush` made data visible to the
/// OS, which survives a process crash but not an OS crash or power loss —
/// segment data, a renamed MANIFEST, and directory entries can all vanish
/// or reorder. This layer gives every writer the discipline a production
/// store uses (the leveldb/rocksdb Env idiom, scaled down):
///
///   - `WritableFile` over a POSIX fd: `Append` buffers in user space,
///     `Flush` hands bytes to the OS (`write(2)`), `Sync(data|full)`
///     makes them power-loss durable (`fdatasync(2)` / `fsync(2)`).
///   - `SyncDirectory(path)`: `fsync` on the directory fd, the only way a
///     created, deleted, or renamed *entry* becomes durable.
///   - `RenameAndSync(tmp, final)`: the write-temp + rename + parent-dir
///     sync install step every MANIFEST-style pointer swap needs.
///   - An injectable `FileSystem` factory so tests can substitute a
///     fault-injecting implementation (src/common/fault_fs.h) that drops
///     all unsynced bytes and unsynced directory entries on simulated
///     power loss.
///   - A `ReadableFileSystem` slice (open/stat/list, no mutation) — the
///     view a read-only replica tailing another process's store directory
///     is allowed to hold, enforced by the type system rather than by
///     convention. `FileSystem` extends it with the write side, so the
///     fault-injecting test filesystem drives replica tests unchanged.
///
/// Contract: data is durable only after `Sync` with `kData`/`kFull` *and*
/// (for a newly created file) a sync of its parent directory. `Sync` with
/// `kNone` degrades to `Flush` — the old crash-of-process-only contract —
/// so callers can expose the knob without branching.

#ifndef LDPHH_COMMON_FILE_H_
#define LDPHH_COMMON_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ldphh {

/// How far a Sync pushes bytes toward the platter.
enum class SyncMode : int {
  kNone = 0,  ///< Flush to the OS only: process-crash safe, power-loss unsafe.
  kData = 1,  ///< fdatasync: data + the metadata needed to read it back.
  kFull = 2,  ///< fsync: data + all file metadata.
};

/// Human-readable name ("none" / "data" / "full") for logs and benchmarks.
const char* SyncModeName(SyncMode mode);

/// \brief Append-only writable file over a POSIX fd (or a test double).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers \p data for writing; no durability implied.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes to the OS (write(2)): survives a process crash.
  virtual Status Flush() = 0;

  /// Flushes, then makes the file's bytes power-loss durable per \p mode
  /// (kNone degrades to Flush). Does NOT sync the parent directory entry.
  virtual Status Sync(SyncMode mode) = 0;

  /// Flushes and closes. Does not sync: callers that need durability must
  /// Sync first.
  virtual Status Close() = 0;
};

/// \brief Sequentially readable file.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to \p n bytes into \p buf; \p *bytes_read < n means EOF.
  virtual Status Read(char* buf, size_t n, size_t* bytes_read) = 0;

  /// Advances the read cursor \p n bytes without reading them (lseek on
  /// POSIX — no data transfer). Tell() reflects the skip, so a replay that
  /// skips a verified prefix reports absolute offsets. Skipping past EOF
  /// is allowed; subsequent Reads simply return 0 bytes.
  virtual Status Skip(uint64_t n) = 0;

  /// Byte offset of the read cursor.
  virtual uint64_t Tell() const = 0;

  /// File size observed at Open (the files replayed here are not
  /// concurrently appended).
  virtual uint64_t size() const = 0;
};

/// \brief The read-only slice of a filesystem: open, stat, list — no
/// mutation. A read-only replica (src/store/replica_store.h) holds this
/// view of the primary's store directory, so the compiler enforces that a
/// follower can never write, truncate, or delete what it tails.
class ReadableFileSystem {
 public:
  virtual ~ReadableFileSystem() = default;

  virtual StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  virtual StatusOr<bool> FileExists(const std::string& path) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  /// File names (not paths) in \p dir, unordered.
  virtual Status ListDirectory(const std::string& dir,
                               std::vector<std::string>* names) = 0;
};

/// \brief Factory + namespace operations; inject a fault-injecting one in
/// tests (src/common/fault_fs.h), use Default() in production.
class FileSystem : public ReadableFileSystem {
 public:
  /// Opens \p path for appending (creating it if absent) — the layer is
  /// append-only; fresh-content callers remove the file first.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Truncates \p path to \p size bytes (recovery chops damaged tails).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Unlinks \p path; an absent file is OK (sweeps are idempotent).
  virtual Status RemoveFile(const std::string& path) = 0;

  /// rename(2): atomic replace, durable only after SyncDirectory.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status CreateDirectories(const std::string& dir) = 0;

  /// Makes \p dir's entries (creations, deletions, renames) durable.
  virtual Status SyncDirectory(const std::string& dir) = 0;

  /// The MANIFEST install step: rename \p from over \p to, then sync the
  /// parent directory so a crash cannot resurrect the old pointee or
  /// leave the new entry dangling.
  Status RenameAndSync(const std::string& from, const std::string& to);

  /// The production POSIX filesystem (a process-lifetime singleton).
  static FileSystem* Default();
};

/// Directory part of \p path ("." when there is none).
std::string ParentDirectory(const std::string& path);

}  // namespace ldphh

#endif  // LDPHH_COMMON_FILE_H_
