#include "src/common/crc32.h"

namespace ldphh {

namespace {

// CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) byte table,
// generated once at first use.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~init;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace ldphh
