#include "src/common/crc32.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define LDPHH_CRC32_X86 1
#include <cpuid.h>
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__linux__) && defined(__GNUC__)
// getauxval is Linux-only; other aarch64 hosts (e.g. macOS) take the
// table path rather than growing per-OS detection code.
#define LDPHH_CRC32_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

#include <cstring>

namespace ldphh {

namespace {

// CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) byte table,
// generated once at first use.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

using CrcFn = uint32_t (*)(const void*, size_t, uint32_t);

#if defined(LDPHH_CRC32_X86)

// SSE4.2 path: the CRC32 instruction implements exactly the Castagnoli
// polynomial over 1/8-byte chunks. The target attribute scopes the ISA
// extension to this function, so the library still builds for and runs on
// pre-Nehalem CPUs (the table path is chosen at runtime instead).
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t n,
                                                          uint32_t init) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~init;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // Unaligned-safe.
    c = static_cast<uint32_t>(_mm_crc32_u64(c, chunk));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  return ~c;
}

bool DetectHardwareCrc() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & bit_SSE4_2) != 0;
}

#elif defined(LDPHH_CRC32_ARM)

__attribute__((target("+crc"))) uint32_t Crc32cHardware(const void* data,
                                                        size_t n,
                                                        uint32_t init) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~init;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = __crc32cd(c, chunk);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return ~c;
}

bool DetectHardwareCrc() {
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
}

#else

bool DetectHardwareCrc() { return false; }

#endif

CrcFn ResolveCrcFn() {
#if defined(LDPHH_CRC32_X86) || defined(LDPHH_CRC32_ARM)
  if (DetectHardwareCrc()) return &Crc32cHardware;
#endif
  return &internal::Crc32cSoftware;
}

}  // namespace

namespace internal {

uint32_t Crc32cSoftware(const void* data, size_t n, uint32_t init) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~init;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

bool Crc32cHardwareAvailable() { return DetectHardwareCrc(); }

}  // namespace internal

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  static const CrcFn fn = ResolveCrcFn();
  return fn(data, n, init);
}

}  // namespace ldphh
