/// \file json_reader.h
/// \brief Minimal JSON parser — the read half of json_writer.h.
///
/// Two in-tree consumers need to *read* JSON without third-party
/// dependencies: `bench/check_regression` parses google-benchmark output
/// against the committed baselines, and the admin-plane tests validate
/// what /statusz, /spanz and /metrics.json serve. This parser covers the
/// full JSON grammar (objects, arrays, strings with escapes, numbers,
/// literals) into a plain Value tree with a bounded recursion depth.
///
/// Not a general-purpose library: numbers are held as double (exact for
/// the u64 range the expositions emit up to 2^53, which covers every
/// value the writers produce from real measurements), object keys keep
/// insertion order, and duplicate keys keep the last occurrence.

#ifndef LDPHH_OBS_JSON_READER_H_
#define LDPHH_OBS_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ldphh {
namespace obs {

/// \brief One parsed JSON value (a tree).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Key → value, insertion order preserved.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (last occurrence wins); null when absent or when
  /// this value is not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses \p text (one complete JSON document; trailing garbage is an
/// error) into \p out. kDecodeFailure with a position-annotated message on
/// any syntax error; nesting deeper than 64 containers is rejected.
Status ParseJson(std::string_view text, JsonValue* out);

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_JSON_READER_H_
