/// \file statusz.h
/// \brief Per-layer status snapshots behind the /statusz endpoint.
///
/// Metrics are flat name→value families; /statusz is the structured view:
/// each live component registers a named section callback that renders its
/// current shape — the ingest layer's protocol/shards/queue depths, the
/// store's segment set, the epoch window, the replica's lag, the privacy
/// ledger's spend — as one JSON object through the shared JsonWriter. One
/// scrape of /statusz then answers "what is this process serving, and
/// where is it at?" without correlating a dozen metric families.
///
/// Registration is RAII (same idiom as health.h): the handle unregisters
/// on destruction, so sections exist exactly while their component does.
/// Multiple instances of a layer (two stores in one process) each register
/// under the same section name; the dump renders an array per name.
/// Section callbacks run under the registry lock and may take their
/// component's own locks (Stats()-grade) — a component must never register
/// or unregister while holding a lock its callback also takes.

#ifndef LDPHH_OBS_STATUSZ_H_
#define LDPHH_OBS_STATUSZ_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/obs/json_writer.h"

namespace ldphh {
namespace obs {

/// \brief The section directory (see file comment). Thread-safe.
class StatuszRegistry {
 public:
  /// The process-wide registry (never destroyed). Components default to
  /// this; tests may build their own for isolation.
  static StatuszRegistry& Global();

  StatuszRegistry() = default;
  StatuszRegistry(const StatuszRegistry&) = delete;
  StatuszRegistry& operator=(const StatuszRegistry&) = delete;

  /// Renders one section instance. The writer is positioned at a value:
  /// emit exactly one (conventionally BeginObject()...EndObject()).
  using SectionFn = std::function<void(JsonWriter&)>;

  /// \brief RAII registration handle; move-only, unregisters on destruction.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Reset();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
        other.id_ = 0;
      }
      return *this;
    }
    ~Registration() { Reset(); }

    /// Unregisters now (idempotent).
    void Reset();

   private:
    friend class StatuszRegistry;
    Registration(StatuszRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    StatuszRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  /// Registers \p fn as one instance of section \p name ("ingest",
  /// "store", "replica", "epoch", "privacy").
  Registration Register(std::string name, SectionFn fn);

  /// {"sections":{"<name>":[<instance>, ...], ...}} — names sorted,
  /// instances in registration order. What /statusz serves.
  std::string DumpJson() const;

  /// Unregisters everything. Test isolation only.
  void ResetForTesting();

 private:
  struct Section {
    std::string name;
    SectionFn fn;
  };

  void Unregister(uint64_t id);

  mutable Mutex mu_;
  /// Keyed by id: registration order.
  std::map<uint64_t, Section> sections_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_STATUSZ_H_
