#include "src/obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace ldphh {
namespace obs {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Key() already emitted the separator comma and the colon.
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  frames_.push_back(true);
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  frames_.pop_back();
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  frames_.push_back(false);
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  frames_.pop_back();
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
  out_.push_back('"');
  AppendEscaped(key);
  out_.append("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  AppendEscaped(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_.append(FormatDouble(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_.append(json.data(), json.size());
  return *this;
}

std::string JsonWriter::FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  // Integers up to 2^53 print exactly without a trailing ".0"; everything
  // else takes the shortest form that round-trips through %.17g, trimmed of
  // the noise digits %.17g adds to short decimals (try %.15g / %.16g first).
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return std::string(buf);
}

void JsonWriter::AppendEscaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\n': out_.append("\\n"); break;
      case '\r': out_.append("\\r"); break;
      case '\t': out_.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
}

}  // namespace obs
}  // namespace ldphh
