#include "src/obs/health.h"

#include <algorithm>
#include <utility>

namespace ldphh {
namespace obs {

HealthRegistry& HealthRegistry::Global() {
  static HealthRegistry* const g = new HealthRegistry();
  return *g;
}

void HealthRegistry::Registration::Reset() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

HealthRegistry::Registration HealthRegistry::Register(std::string name,
                                                      CheckFn fn,
                                                      bool readiness_only) {
  MutexLock lk(&mu_);
  const uint64_t id = next_id_++;
  checks_[id] = Check{std::move(name), readiness_only, std::move(fn)};
  return Registration(this, id);
}

void HealthRegistry::Unregister(uint64_t id) {
  MutexLock lk(&mu_);
  checks_.erase(id);
}

std::vector<HealthRegistry::CheckResult> HealthRegistry::RunChecks() const {
  std::vector<CheckResult> results;
  {
    MutexLock lk(&mu_);
    results.reserve(checks_.size());
    // Run under the lock: a component destroying itself concurrently blocks
    // in its Registration::Reset until the pass is done, so a check can
    // never observe a half-dead component. The checks are atomics-read
    // cheap by contract.
    for (const auto& [id, check] : checks_) {
      results.push_back(
          CheckResult{check.name, check.readiness_only, check.fn()});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const CheckResult& a, const CheckResult& b) {
              return a.name < b.name;
            });
  return results;
}

bool HealthRegistry::Healthy() const {
  for (const CheckResult& r : RunChecks()) {
    if (!r.readiness_only && !r.status.ok()) return false;
  }
  return true;
}

bool HealthRegistry::Ready() const {
  for (const CheckResult& r : RunChecks()) {
    if (!r.status.ok()) return false;
  }
  return true;
}

void HealthRegistry::ResetForTesting() {
  MutexLock lk(&mu_);
  checks_.clear();
}

}  // namespace obs
}  // namespace ldphh
