/// \file metrics.h
/// \brief Process-wide metrics: lock-cheap counters, gauges, and
/// log-bucketed histograms with Prometheus-style text and JSON exposition.
///
/// The serving/storage stack (sharded ingest, segment store, epochs,
/// replicas, privacy accounting) produces operational numbers at wildly
/// different rates — per-report counters on the ingest hot path, per-fsync
/// latencies, once-per-epoch durations. This layer makes all of them cheap
/// to record and uniform to read:
///
///   - **Counter**: monotone u64, thread-sharded (striped cache-line-padded
///     relaxed atomics) so a hot-path `Increment()` costs a few ns and never
///     takes a lock. Stripe sums are exact — every increment lands in
///     exactly one stripe — so totals are exact, not sampled.
///   - **Gauge**: a double that can go up and down (queue depth, replication
///     lag, cumulative privacy loss). Single atomic; `Set` is a store,
///     `Add` a CAS loop.
///   - **Histogram**: log-bucketed u64 distribution (latencies in ns, sizes
///     in bytes). Buckets are 8-per-octave (3 mantissa bits after the
///     leading one), so any recorded value is off from its bucket midpoint
///     by at most 1/16 ≈ 6.25% relative — see BucketOf/BucketLower/
///     BucketUpper, which the accuracy test pins. Observe() is two relaxed
///     fetch_adds (bucket + sum) on a striped shard.
///
/// **Ownership and exposition.** Instruments are created through a
/// `MetricsRegistry` (usually `MetricsRegistry::Global()`) and owned by the
/// component that records into them — that keeps per-instance `Stats()`
/// snapshots exact (two stores in one process do not bleed into each
/// other's struct). The registry tracks every live instrument per name and
/// *folds a counter's or histogram's final value into a retained total when
/// the instrument is destroyed*, so the process-wide `DumpText()` /
/// `DumpJson()` exposition stays monotone across instance churn (an epoch
/// roll builds a fresh ShardedAggregator per epoch; its counts must not
/// vanish from the exposition when the epoch closes). Gauges are dropped on
/// retire — a dead instance's last queue depth is not a fact about the
/// process.
///
/// Names follow the Prometheus convention (`ldphh_<layer>_<what>[_total]`,
/// unit suffixes like `_ns` / `_bytes`); an optional label set may be
/// embedded in the name (`ldphh_ingest_queue_depth{shard="3"}`) for
/// counters and gauges. docs/observability.md enumerates every metric the
/// stack exports.

#ifndef LDPHH_OBS_METRICS_H_
#define LDPHH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"

namespace ldphh {
namespace obs {

class MetricsRegistry;

/// Stable per-thread id used to pick an atomic stripe (id mod stripes).
uint32_t ThreadStripeId();

/// \brief Monotone counter, striped for contention-free hot-path updates.
class Counter {
 public:
  ~Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    cells_[ThreadStripeId() % kStripes].v.fetch_add(n,
                                                    std::memory_order_relaxed);
  }

  /// Exact total across stripes.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  static constexpr size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
  MetricsRegistry* const registry_;
  const std::string name_;
};

/// \brief A double-valued level (may go up and down).
class Gauge {
 public:
  ~Gauge();
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  std::atomic<double> value_{0.0};
  MetricsRegistry* const registry_;
  const std::string name_;
};

/// \brief Log-bucketed u64 histogram (see file comment for the bucketing).
class Histogram {
 public:
  /// 8 sub-buckets per octave: 3 mantissa bits after the implicit leading 1.
  static constexpr int kSubBucketBits = 3;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 8
  /// Indices are contiguous: values 0..7 get exact buckets; beyond that the
  /// top (1 + kSubBucketBits) significant bits pick the bucket.
  static constexpr int kNumBuckets = 62 * 8;  // Max index 60*8+15 = 495.

  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
    Shard& s = shards_[ThreadStripeId() % kShards];
    s.buckets[static_cast<size_t>(BucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Exact number of observations / exact sum of observed values.
  uint64_t Count() const;
  uint64_t Sum() const;

  /// A merged copy of the bucket array (index -> count).
  std::vector<uint64_t> BucketCounts() const;

  /// Quantile estimate from the bucket midpoints (q in [0, 1]); 0 when
  /// empty. Off by at most the bucket's half-width (<= 6.25% relative).
  double Quantile(double q) const;

  /// Bucket index of \p value.
  static int BucketOf(uint64_t value) {
    if (value < kSubBuckets) return static_cast<int>(value);
    const int msb = 63 - __builtin_clzll(value);
    const int octave = msb - kSubBucketBits;  // >= 0.
    return static_cast<int>(
        (static_cast<uint64_t>(octave) << kSubBucketBits) +
        (value >> (msb - kSubBucketBits)));
  }
  /// Smallest / largest value the bucket holds (inclusive).
  static uint64_t BucketLower(int index) {
    if (index < static_cast<int>(2 * kSubBuckets)) {
      return static_cast<uint64_t>(index);
    }
    const int octave = (index >> kSubBucketBits) - 1;
    const uint64_t h = static_cast<uint64_t>(index) -
                       (static_cast<uint64_t>(octave) << kSubBucketBits);
    return h << octave;
  }
  static uint64_t BucketUpper(int index) {
    if (index < static_cast<int>(2 * kSubBuckets)) {
      return static_cast<uint64_t>(index);
    }
    const int octave = (index >> kSubBucketBits) - 1;
    const uint64_t h = static_cast<uint64_t>(index) -
                       (static_cast<uint64_t>(octave) << kSubBucketBits);
    return ((h + 1) << octave) - 1;
  }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  /// Fewer stripes than Counter: a histogram is ~4 KB of buckets per shard,
  /// and Observe sits on paths (fsync, batch aggregate) that run at most a
  /// few hundred k/s per thread.
  static constexpr size_t kShards = 4;
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
  MetricsRegistry* const registry_;
  const std::string name_;
};

/// \brief The process-wide instrument directory and exposition surface.
///
/// Thread-safe. Creation/retirement/dump take one registry mutex; recording
/// into an instrument never does.
class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed). Components default to
  /// this; tests may build their own for isolation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates (and registers) an instrument. Multiple live instruments may
  /// share a name — the exposition sums them; `help`/`unit` are taken from
  /// the first registration. A name must keep one instrument type for the
  /// registry's lifetime. Labels (`name{k="v"}`) are allowed on counters
  /// and gauges; help/type exposition lines use the base name.
  std::shared_ptr<Counter> NewCounter(std::string name, std::string help,
                                      std::string unit = "");
  std::shared_ptr<Gauge> NewGauge(std::string name, std::string help,
                                  std::string unit = "");
  std::shared_ptr<Histogram> NewHistogram(std::string name, std::string help,
                                          std::string unit = "");

  /// Prometheus-style text exposition: `# HELP` / `# TYPE` per base name,
  /// one sample line per name (live instruments summed with retired
  /// totals), histogram `_bucket{le=...}` lines for nonempty buckets plus
  /// `{le="+Inf"}`, `_sum`, `_count`. Gauge families with no live
  /// instrument are omitted.
  std::string DumpText() const;

  /// The same data as one JSON document:
  /// {"metrics":[{name,type,unit,help,value|count/sum/quantiles/buckets}]}.
  std::string DumpJson() const;

  /// Every name currently exposed (sorted). For tests.
  std::vector<std::string> Names() const;

  /// Drops every family, including retired totals. Live instruments keep
  /// working but are no longer exposed (their retirement becomes a no-op).
  /// Test isolation only.
  void ResetForTesting();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::string unit;
    std::set<const Counter*> counters;
    std::set<const Gauge*> gauges;
    std::set<const Histogram*> histograms;
    /// Folded-in totals of retired counter/histogram instruments.
    uint64_t retired_count = 0;
    uint64_t retired_sum = 0;  // Histogram value sum.
    std::vector<uint64_t> retired_buckets;
  };

  /// Summed live+retired view of one family (computed under mu_).
  struct FamilySnapshot {
    std::string name;
    Type type;
    std::string help;
    std::string unit;
    bool has_live = false;
    uint64_t counter_value = 0;
    double gauge_value = 0.0;
    uint64_t hist_count = 0;
    uint64_t hist_sum = 0;
    std::vector<uint64_t> hist_buckets;
  };

  Family& FamilyFor(const std::string& name, Type type, std::string* help,
                    std::string* unit) REQUIRES(mu_);
  void Retire(const Counter* c);
  void Retire(const Gauge* g);
  void Retire(const Histogram* h);
  std::vector<FamilySnapshot> SnapshotLocked() const REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

/// The base name of a possibly labeled metric name ("a{b=...}" -> "a").
std::string_view BaseName(std::string_view name);

/// Renders `name{label_key="label_value"}` — the one way labels are spelled.
std::string LabeledName(std::string_view name, std::string_view label_key,
                        std::string_view label_value);

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_METRICS_H_
