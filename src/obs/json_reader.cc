#include "src/obs/json_reader.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ldphh {
namespace obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // Last occurrence wins, like the parse.
  }
  return found;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    LDPHH_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the document");
    }
    return Status::OK();
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::DecodeFailure("json: " + what + " at offset " +
                                 std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Expect("null");
      default:
        return ParseNumber(out);
    }
  }

  Status Expect(const char* keyword) {
    const size_t len = std::strlen(keyword);
    if (text_.compare(pos_, len, keyword) != 0) {
      return Fail(std::string("expected '") + keyword + "'");
    }
    pos_ += len;
    return Status::OK();
  }

  Status ParseKeyword(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      out->bool_value = true;
      return Expect("true");
    }
    out->bool_value = false;
    return Expect("false");
  }

  bool ConsumeDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  Status ParseNumber(JsonValue* out) {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — strtod alone would admit "01", "1.", "+1", ".5", "inf", hex.
    const size_t start = pos_;
    Consume('-');
    if (Consume('0')) {
      // A leading zero stands alone ("01" is two tokens, i.e. an error).
    } else if (!ConsumeDigits()) {
      pos_ = start;
      return Fail("expected a value");
    }
    if (Consume('.') && !ConsumeDigits()) {
      pos_ = start;
      return Fail("digits required after the decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!Consume('+')) Consume('-');
      if (!ConsumeDigits()) {
        pos_ = start;
        return Fail("digits required in the exponent");
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return Fail("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    out->clear();
    if (!Consume('"')) return Fail("expected '\"'");
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          LDPHH_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!Consume('\\') || !Consume('u')) {
              return Fail("lone high surrogate");
            }
            uint32_t low = 0;
            LDPHH_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          --pos_;
          return Fail("bad escape character");
      }
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    // \p depth counts enclosing containers; this object is container
    // depth + 1, and more than kMaxDepth containers are rejected.
    if (depth >= kMaxDepth) return Fail("nesting too deep");
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      LDPHH_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      LDPHH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    if (depth >= kMaxDepth) return Fail("nesting too deep");
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      LDPHH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  const std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue{};
  return Parser(text).Parse(out);
}

}  // namespace obs
}  // namespace ldphh
