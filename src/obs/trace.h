/// \file trace.h
/// \brief Bounded ring buffer of structured trace events.
///
/// Metrics answer "how much / how fast"; the trace ring answers "what
/// happened, in what order" for the rare structural transitions of the
/// stack — epoch rolls, segment installs, compaction phases, manifest
/// reloads, power-loss recovery actions. Each event carries a category, a
/// name, a short free-form detail string, two optional numeric arguments,
/// and a timestamp (nanoseconds on the process-wide steady clock, so
/// events order correctly across threads).
///
/// The ring holds the most recent `capacity` events in fixed memory;
/// older events are overwritten and counted in `dropped()`. Recording is
/// mutex-guarded — these events fire at per-epoch / per-compaction rates,
/// thousands of times below where lock cost would matter — which keeps
/// the dump a trivially consistent snapshot.

#ifndef LDPHH_OBS_TRACE_H_
#define LDPHH_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"

namespace ldphh {
namespace obs {

/// \brief One recorded event (see file comment).
struct TraceEvent {
  /// Nanoseconds on the process steady clock at Record() time.
  uint64_t timestamp_ns = 0;
  /// Subsystem, e.g. "epoch", "store", "replica", "recovery".
  std::string category;
  /// What happened, e.g. "close", "compaction_phase_a", "manifest_reload".
  std::string name;
  /// Free-form context, truncated to a bounded length at record time.
  std::string detail;
  /// Event-defined numeric arguments (ids, counts, durations).
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

/// \brief Fixed-capacity ring of TraceEvents.
class TraceRing {
 public:
  /// The process-wide ring (never destroyed), capacity kDefaultCapacity.
  static TraceRing& Global();

  static constexpr size_t kDefaultCapacity = 1024;
  /// Longest detail string kept; the tail is replaced with "..." beyond it.
  static constexpr size_t kMaxDetailBytes = 160;

  explicit TraceRing(size_t capacity = kDefaultCapacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(std::string_view category, std::string_view name,
              std::string_view detail = {}, uint64_t arg0 = 0,
              uint64_t arg1 = 0);

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events overwritten since construction / last Clear.
  uint64_t dropped() const;

  /// One line per event: `[<t_ns>] <category>/<name> arg0=.. arg1=.. <detail>`.
  std::string DumpText() const;

  /// {"dropped":N,"events":[{ts_ns,category,name,detail,arg0,arg1}]}.
  std::string DumpJson() const;

  /// Empties the ring and zeroes the dropped count. Test isolation only.
  void Clear();

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  /// Ring storage, capacity_ slots.
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;     // Slot the next event lands in.
  size_t size_ GUARDED_BY(mu_) = 0;     // Live events (<= capacity_).
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_TRACE_H_
