/// \file span.h
/// \brief Request-scoped spans with a bounded per-family slow-span sampler.
///
/// Metrics answer "how much / how fast on average"; the trace ring answers
/// "what structural transitions happened". Spans answer the question
/// neither can: *why was this one request slow?* A `Span` measures one
/// logical operation (a SubmitWire call, a store Put, a replica poll, an
/// epoch close) and carries a bounded child breakdown (decode vs enqueue,
/// append vs fsync vs roll). On destruction the span reports into its
/// `SpanFamily`, which keeps exact count/total-duration tallies plus the
/// **top-N slowest** spans seen since the last clear — the /spanz endpoint
/// (src/server/admin_server.h) dumps them with their child breakdowns, so
/// one scrape shows where the tail latency of every hot path went.
///
/// Cost model (the hot-path contract): a completed span is two steady-clock
/// reads and two relaxed `fetch_add`s; the sampler's mutex is only touched
/// when the span's duration reaches the family's retain threshold — a
/// relaxed atomic that is 0 only until the top-N fills, then rises
/// monotonically (it can only grow until Clear), so steady-state fast
/// traffic never contends. Children are recorded into a small inline
/// vector owned by the span (no sharing until the final report) and are
/// dropped (counted) past `kMaxChildrenPerSpan`.
///
/// Spans are intentionally *not* distributed tracing: no ids, no
/// propagation, no export protocol — the smallest structure that makes a
/// single process's tail latency inspectable.

#ifndef LDPHH_OBS_SPAN_H_
#define LDPHH_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"

namespace ldphh {
namespace obs {

class SpanFamily;
class SpanSampler;

/// Nanoseconds on the process-wide steady clock (the same clock the trace
/// ring stamps with, so spans and trace events order consistently).
uint64_t SpanNowNs();

/// One timed sub-step of a span ("decode", "fsync", "roll").
struct SpanChild {
  std::string name;
  uint64_t duration_ns = 0;
};

/// The retained record of one completed span.
struct SpanRecord {
  uint64_t start_ns = 0;     ///< SpanNowNs() at construction.
  uint64_t duration_ns = 0;  ///< Total wall time.
  /// Small numeric context (batch size, key, epoch id) — free to set,
  /// meaningful per family.
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  /// Free-form context; empty on hot paths (it would allocate per span).
  std::string detail;
  std::vector<SpanChild> children;
  uint64_t dropped_children = 0;  ///< Children beyond kMaxChildrenPerSpan.
};

/// \brief Per-operation-family tallies + the top-N slowest spans.
///
/// Obtained from SpanSampler::Family(); shared by every Span of that
/// family. Thread-safe.
class SpanFamily {
 public:
  /// Reports one completed span (Span's destructor calls this; tests call
  /// it directly with synthetic durations). Count/total update with relaxed
  /// atomics; the record is retained only if it is among the top-N slowest.
  void Record(SpanRecord record);

  const std::string& name() const { return name_; }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t TotalNs() const { return total_ns_.load(std::memory_order_relaxed); }

  /// The retained slowest spans, slowest first.
  std::vector<SpanRecord> Slowest() const;

  /// Drops the retained spans and zeroes the tallies (threshold resets, so
  /// retention warms up again).
  void Clear();

 private:
  friend class SpanSampler;
  SpanFamily(std::string name, size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  const std::string name_;
  const size_t capacity_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  /// Minimum duration that can still enter the top-N. 0 until the set
  /// fills; then the smallest retained duration, non-decreasing until
  /// Clear(). Read relaxed on the fast path: a stale-low value costs one
  /// harmless mutex trip, a stale-high value is impossible (monotone).
  std::atomic<uint64_t> threshold_ns_{0};
  mutable Mutex mu_;
  /// Sorted, slowest first.
  std::vector<SpanRecord> slowest_ GUARDED_BY(mu_);
};

/// \brief The process-wide directory of span families.
class SpanSampler {
 public:
  /// The process-wide sampler (never destroyed). Components default to
  /// this; tests may build their own for isolation.
  static SpanSampler& Global();

  /// Slowest spans retained per family.
  static constexpr size_t kDefaultPerFamilyCapacity = 8;
  /// Children kept per span; further AddChild calls count into
  /// SpanRecord::dropped_children.
  static constexpr size_t kMaxChildrenPerSpan = 16;

  explicit SpanSampler(size_t per_family_capacity = kDefaultPerFamilyCapacity);
  SpanSampler(const SpanSampler&) = delete;
  SpanSampler& operator=(const SpanSampler&) = delete;

  /// The family named \p name, created on first use. The returned handle is
  /// stable for the sampler's lifetime — components fetch it once at
  /// construction and hand the raw pointer to their Spans.
  std::shared_ptr<SpanFamily> Family(std::string name);

  /// Every family, name-sorted.
  std::vector<std::shared_ptr<SpanFamily>> Families() const;

  /// {"families":[{name,count,total_duration_ns,avg_duration_ns,
  ///   slowest:[{start_ns,duration_ns,arg0,arg1,detail,
  ///             children:[{name,duration_ns}],dropped_children}]}]}
  /// — what /spanz serves.
  std::string DumpJson() const;

  /// Clears every family's retained spans and tallies (families persist).
  /// Test isolation only.
  void ResetForTesting();

 private:
  const size_t per_family_capacity_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<SpanFamily>> families_ GUARDED_BY(mu_);
};

/// \brief RAII measurement of one operation (see file comment for cost).
///
/// A null family disables the span entirely (every method is a cheap
/// no-op), so call sites need no branches. Not thread-safe: a span belongs
/// to the one thread timing the operation.
class Span {
 public:
  explicit Span(SpanFamily* family)
      : family_(family), start_ns_(family != nullptr ? SpanNowNs() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Records a completed sub-step.
  void AddChild(std::string_view name, uint64_t duration_ns);

  /// Numeric context retained with the record (batch size, key, ...).
  void set_args(uint64_t arg0, uint64_t arg1 = 0) {
    arg0_ = arg0;
    arg1_ = arg1;
  }
  /// Free-form context. Allocates — keep off per-report hot paths.
  void set_detail(std::string detail) {
    if (family_ != nullptr) detail_ = std::move(detail);
  }

  uint64_t ElapsedNs() const {
    return family_ != nullptr ? SpanNowNs() - start_ns_ : 0;
  }

  /// \brief RAII child timer: times its scope into the parent span.
  /// \p name must outlive the scope (string literals at every call site).
  class ChildScope {
   public:
    ChildScope(Span* span, std::string_view name)
        : span_(span != nullptr && span->family_ != nullptr ? span : nullptr),
          name_(name),
          start_ns_(span_ != nullptr ? SpanNowNs() : 0) {}
    ChildScope(const ChildScope&) = delete;
    ChildScope& operator=(const ChildScope&) = delete;
    ~ChildScope() {
      if (span_ != nullptr) span_->AddChild(name_, SpanNowNs() - start_ns_);
    }

   private:
    Span* const span_;
    const std::string_view name_;
    const uint64_t start_ns_;
  };

  /// Times the enclosing scope as a child named \p name.
  ChildScope Child(std::string_view name) { return ChildScope(this, name); }

 private:
  friend class ChildScope;
  SpanFamily* const family_;
  const uint64_t start_ns_;
  uint64_t arg0_ = 0;
  uint64_t arg1_ = 0;
  std::string detail_;
  std::vector<SpanChild> children_;
  uint64_t dropped_children_ = 0;
};

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_SPAN_H_
