#include "src/obs/span.h"

#include <algorithm>
#include <chrono>

#include "src/obs/json_writer.h"

namespace ldphh {
namespace obs {

uint64_t SpanNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ------------------------------------------------------------------ family --

void SpanFamily::Record(SpanRecord record) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(record.duration_ns, std::memory_order_relaxed);
  // Fast path: the threshold only rises (until Clear), so a duration below
  // a relaxed-loaded value can never belong in the top-N. A racing Clear
  // at worst drops this one span from the freshly emptied set — the
  // tallies above are already in.
  if (record.duration_ns < threshold_ns_.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lk(&mu_);
  if (slowest_.size() >= capacity_ &&
      record.duration_ns <= slowest_.back().duration_ns) {
    return;  // The threshold rose while we raced to the lock.
  }
  const auto pos = std::upper_bound(
      slowest_.begin(), slowest_.end(), record,
      [](const SpanRecord& a, const SpanRecord& b) {
        return a.duration_ns > b.duration_ns;
      });
  slowest_.insert(pos, std::move(record));
  if (slowest_.size() > capacity_) slowest_.pop_back();
  if (slowest_.size() >= capacity_) {
    threshold_ns_.store(slowest_.back().duration_ns,
                        std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> SpanFamily::Slowest() const {
  MutexLock lk(&mu_);
  return slowest_;
}

void SpanFamily::Clear() {
  MutexLock lk(&mu_);
  slowest_.clear();
  threshold_ns_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- sampler --

SpanSampler& SpanSampler::Global() {
  static SpanSampler* const g = new SpanSampler();
  return *g;
}

SpanSampler::SpanSampler(size_t per_family_capacity)
    : per_family_capacity_(per_family_capacity > 0 ? per_family_capacity : 1) {}

std::shared_ptr<SpanFamily> SpanSampler::Family(std::string name) {
  MutexLock lk(&mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_
             .emplace(name, std::shared_ptr<SpanFamily>(new SpanFamily(
                                name, per_family_capacity_)))
             .first;
  }
  return it->second;
}

std::vector<std::shared_ptr<SpanFamily>> SpanSampler::Families() const {
  MutexLock lk(&mu_);
  std::vector<std::shared_ptr<SpanFamily>> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) out.push_back(family);
  return out;
}

std::string SpanSampler::DumpJson() const {
  JsonWriter w;
  w.BeginObject().Key("families").BeginArray();
  for (const auto& family : Families()) {
    const uint64_t count = family->Count();
    const uint64_t total = family->TotalNs();
    w.BeginObject();
    w.Key("name").String(family->name());
    w.Key("count").Uint(count);
    w.Key("total_duration_ns").Uint(total);
    w.Key("avg_duration_ns")
        .Uint(count > 0 ? total / count : 0);
    w.Key("slowest").BeginArray();
    for (const SpanRecord& r : family->Slowest()) {
      w.BeginObject();
      w.Key("start_ns").Uint(r.start_ns);
      w.Key("duration_ns").Uint(r.duration_ns);
      if (r.arg0 != 0 || r.arg1 != 0) {
        w.Key("arg0").Uint(r.arg0);
        w.Key("arg1").Uint(r.arg1);
      }
      if (!r.detail.empty()) w.Key("detail").String(r.detail);
      if (!r.children.empty()) {
        w.Key("children").BeginArray();
        for (const SpanChild& c : r.children) {
          w.BeginObject();
          w.Key("name").String(c.name);
          w.Key("duration_ns").Uint(c.duration_ns);
          w.EndObject();
        }
        w.EndArray();
      }
      if (r.dropped_children > 0) {
        w.Key("dropped_children").Uint(r.dropped_children);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

void SpanSampler::ResetForTesting() {
  for (const auto& family : Families()) family->Clear();
}

// -------------------------------------------------------------------- span --

Span::~Span() {
  if (family_ == nullptr) return;
  SpanRecord record;
  record.start_ns = start_ns_;
  record.duration_ns = SpanNowNs() - start_ns_;
  record.arg0 = arg0_;
  record.arg1 = arg1_;
  record.detail = std::move(detail_);
  record.children = std::move(children_);
  record.dropped_children = dropped_children_;
  family_->Record(std::move(record));
}

void Span::AddChild(std::string_view name, uint64_t duration_ns) {
  if (family_ == nullptr) return;
  if (children_.size() >= SpanSampler::kMaxChildrenPerSpan) {
    ++dropped_children_;
    return;
  }
  children_.push_back(SpanChild{std::string(name), duration_ns});
}

}  // namespace obs
}  // namespace ldphh
