#include "src/obs/statusz.h"

#include <utility>

namespace ldphh {
namespace obs {

StatuszRegistry& StatuszRegistry::Global() {
  static StatuszRegistry* const g = new StatuszRegistry();
  return *g;
}

void StatuszRegistry::Registration::Reset() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

StatuszRegistry::Registration StatuszRegistry::Register(std::string name,
                                                        SectionFn fn) {
  MutexLock lk(&mu_);
  const uint64_t id = next_id_++;
  sections_[id] = Section{std::move(name), std::move(fn)};
  return Registration(this, id);
}

void StatuszRegistry::Unregister(uint64_t id) {
  MutexLock lk(&mu_);
  sections_.erase(id);
}

std::string StatuszRegistry::DumpJson() const {
  // Group ids by section name (ids order = registration order within a
  // name; the outer map sorts the names).
  std::map<std::string, std::vector<const SectionFn*>> by_name;
  MutexLock lk(&mu_);
  for (const auto& [id, section] : sections_) {
    by_name[section.name].push_back(&section.fn);
  }
  // Render under the lock: a component destroying itself concurrently
  // blocks in Registration::Reset until the dump is done, so a section
  // callback can never touch a half-dead component.
  JsonWriter w;
  w.BeginObject().Key("sections").BeginObject();
  for (const auto& [name, fns] : by_name) {
    w.Key(name).BeginArray();
    for (const SectionFn* fn : fns) (*fn)(w);
    w.EndArray();
  }
  w.EndObject().EndObject();
  return w.str();
}

void StatuszRegistry::ResetForTesting() {
  MutexLock lk(&mu_);
  sections_.clear();
}

}  // namespace obs
}  // namespace ldphh
