/// \file health.h
/// \brief Process-wide health registry behind /healthz and /readyz.
///
/// Components register named check functions for the conditions that make
/// the process servable — the store's last write succeeded, the replica's
/// lag is under its bound, the privacy budget is not exhausted — and the
/// admin plane (src/server/admin_server.h) runs them per scrape:
///
///   - **/healthz** (liveness) runs the non-readiness-only checks: "this
///     process is broken, restart it" conditions (a store whose appends
///     fail). Any failure → 503.
///   - **/readyz** (readiness) runs *every* check, adding the "do not send
///     me traffic yet" conditions (a replica still catching up). Lag is a
///     readiness matter, not a liveness one: a lagging replica heals by
///     tailing, not by restarting.
///
/// Registration is RAII: the returned handle unregisters on destruction,
/// so a component's checks live exactly as long as the component. Check
/// functions run under the registry lock — keep them to reading a few
/// atomics/gauges (every registered check does), and never register or
/// hold a lock that a check function also takes.

#ifndef LDPHH_OBS_HEALTH_H_
#define LDPHH_OBS_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"

namespace ldphh {
namespace obs {

/// \brief The check directory (see file comment). Thread-safe.
class HealthRegistry {
 public:
  /// The process-wide registry (never destroyed). Components default to
  /// this; tests may build their own for isolation.
  static HealthRegistry& Global();

  HealthRegistry() = default;
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  /// OK = healthy; any error Status = unhealthy, message shown in the
  /// endpoint body. Must be fast and lock-light (runs under the registry
  /// lock, once per scrape).
  using CheckFn = std::function<Status()>;

  /// \brief RAII registration handle; move-only, unregisters on destruction.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Reset();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
        other.id_ = 0;
      }
      return *this;
    }
    ~Registration() { Reset(); }

    /// Unregisters now (idempotent).
    void Reset();

   private:
    friend class HealthRegistry;
    Registration(HealthRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    HealthRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  /// Registers \p fn under \p name. With \p readiness_only the check gates
  /// /readyz but not /healthz (see file comment for the split).
  Registration Register(std::string name, CheckFn fn,
                        bool readiness_only = false);

  struct CheckResult {
    std::string name;
    bool readiness_only = false;
    Status status;
  };

  /// Runs every check, name-sorted results.
  std::vector<CheckResult> RunChecks() const;

  /// All non-readiness-only checks OK? (/healthz; trivially true with no
  /// checks registered).
  bool Healthy() const;
  /// All checks OK? (/readyz).
  bool Ready() const;

  /// Unregisters everything. Test isolation only (components holding a
  /// Registration keep a dangling id; their Reset becomes a no-op).
  void ResetForTesting();

 private:
  struct Check {
    std::string name;
    bool readiness_only = false;
    CheckFn fn;
  };

  void Unregister(uint64_t id);

  mutable Mutex mu_;
  std::map<uint64_t, Check> checks_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_HEALTH_H_
