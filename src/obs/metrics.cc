#include "src/obs/metrics.h"

#include <algorithm>
#include <atomic>

#include "src/obs/json_writer.h"

namespace ldphh {
namespace obs {

uint32_t ThreadStripeId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string_view BaseName(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

std::string LabeledName(std::string_view name, std::string_view label_key,
                        std::string_view label_value) {
  std::string out;
  out.reserve(name.size() + label_key.size() + label_value.size() + 5);
  out.append(name).push_back('{');
  out.append(label_key).append("=\"").append(label_value).append("\"}");
  return out;
}

Counter::~Counter() { registry_->Retire(this); }
Gauge::~Gauge() { registry_->Retire(this); }
Histogram::~Histogram() { registry_->Retire(this); }

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& b : s.buckets) total += b.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      merged[static_cast<size_t>(i)] +=
          s.buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

namespace {

/// Midpoint-of-bucket quantile over a merged bucket array; 0 when empty.
double QuantileFromBuckets(const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // The smallest rank whose cumulative count covers quantile q.
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      const int idx = static_cast<int>(i);
      return (static_cast<double>(Histogram::BucketLower(idx)) +
              static_cast<double>(Histogram::BucketUpper(idx))) /
             2.0;
    }
  }
  return static_cast<double>(Histogram::BucketUpper(
      static_cast<int>(buckets.size()) - 1));
}

}  // namespace

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(BucketCounts(), q);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: instruments owned by static-duration objects may retire during
  // process teardown, after a normal static registry would be gone.
  static MetricsRegistry* const g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    Type type,
                                                    std::string* help,
                                                    std::string* unit) {
  Family& f = families_[name];
  if (f.counters.empty() && f.gauges.empty() && f.histograms.empty() &&
      f.help.empty()) {
    f.type = type;
    f.help = std::move(*help);
    f.unit = std::move(*unit);
  }
  return f;
}

std::shared_ptr<Counter> MetricsRegistry::NewCounter(std::string name,
                                                     std::string help,
                                                     std::string unit) {
  std::shared_ptr<Counter> c(new Counter(this, name));
  MutexLock lock(&mu_);
  FamilyFor(name, Type::kCounter, &help, &unit).counters.insert(c.get());
  return c;
}

std::shared_ptr<Gauge> MetricsRegistry::NewGauge(std::string name,
                                                 std::string help,
                                                 std::string unit) {
  std::shared_ptr<Gauge> g(new Gauge(this, name));
  MutexLock lock(&mu_);
  FamilyFor(name, Type::kGauge, &help, &unit).gauges.insert(g.get());
  return g;
}

std::shared_ptr<Histogram> MetricsRegistry::NewHistogram(std::string name,
                                                         std::string help,
                                                         std::string unit) {
  std::shared_ptr<Histogram> h(new Histogram(this, name));
  MutexLock lock(&mu_);
  FamilyFor(name, Type::kHistogram, &help, &unit).histograms.insert(h.get());
  return h;
}

void MetricsRegistry::Retire(const Counter* c) {
  MutexLock lock(&mu_);
  auto it = families_.find(c->name_);
  if (it == families_.end()) return;  // ResetForTesting dropped the family.
  it->second.counters.erase(c);
  it->second.retired_count += c->Value();
}

void MetricsRegistry::Retire(const Gauge* g) {
  MutexLock lock(&mu_);
  auto it = families_.find(g->name_);
  if (it == families_.end()) return;
  it->second.gauges.erase(g);
}

void MetricsRegistry::Retire(const Histogram* h) {
  MutexLock lock(&mu_);
  auto it = families_.find(h->name_);
  if (it == families_.end()) return;
  Family& f = it->second;
  f.histograms.erase(h);
  const std::vector<uint64_t> buckets = h->BucketCounts();
  if (f.retired_buckets.empty()) {
    f.retired_buckets.assign(Histogram::kNumBuckets, 0);
  }
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    f.retired_buckets[static_cast<size_t>(i)] +=
        buckets[static_cast<size_t>(i)];
    f.retired_count += buckets[static_cast<size_t>(i)];
  }
  f.retired_sum += h->Sum();
}

std::vector<MetricsRegistry::FamilySnapshot> MetricsRegistry::SnapshotLocked()
    const {
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, f] : families_) {
    FamilySnapshot s;
    s.name = name;
    s.type = f.type;
    s.help = f.help;
    s.unit = f.unit;
    switch (f.type) {
      case Type::kCounter:
        s.has_live = !f.counters.empty();
        s.counter_value = f.retired_count;
        for (const Counter* c : f.counters) s.counter_value += c->Value();
        break;
      case Type::kGauge:
        s.has_live = !f.gauges.empty();
        // A dead instance's last level is not a fact about the process; a
        // gauge family with no live instrument is skipped by the dumps.
        for (const Gauge* g : f.gauges) s.gauge_value += g->Value();
        break;
      case Type::kHistogram: {
        s.has_live = !f.histograms.empty();
        s.hist_count = f.retired_count;
        s.hist_sum = f.retired_sum;
        s.hist_buckets = f.retired_buckets;
        if (s.hist_buckets.empty()) {
          s.hist_buckets.assign(Histogram::kNumBuckets, 0);
        }
        for (const Histogram* h : f.histograms) {
          const std::vector<uint64_t> buckets = h->BucketCounts();
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            s.hist_buckets[static_cast<size_t>(i)] +=
                buckets[static_cast<size_t>(i)];
            s.hist_count += buckets[static_cast<size_t>(i)];
          }
          s.hist_sum += h->Sum();
        }
        break;
      }
    }
    if (f.type == Type::kGauge && !s.has_live) continue;
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

const char* TypeString(int type) {
  switch (type) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

std::string MetricsRegistry::DumpText() const {
  std::vector<FamilySnapshot> snap;
  {
    MutexLock lock(&mu_);
    snap = SnapshotLocked();
  }
  std::string out;
  std::string last_base;
  for (const FamilySnapshot& s : snap) {
    const std::string base(BaseName(s.name));
    if (base != last_base) {
      out.append("# HELP ").append(base).push_back(' ');
      out.append(s.help);
      if (!s.unit.empty()) out.append(" (").append(s.unit).push_back(')');
      out.push_back('\n');
      out.append("# TYPE ").append(base).push_back(' ');
      out.append(TypeString(static_cast<int>(s.type)));
      out.push_back('\n');
      last_base = base;
    }
    switch (s.type) {
      case Type::kCounter:
        out.append(s.name).push_back(' ');
        out.append(std::to_string(s.counter_value)).push_back('\n');
        break;
      case Type::kGauge:
        out.append(s.name).push_back(' ');
        out.append(JsonWriter::FormatDouble(s.gauge_value)).push_back('\n');
        break;
      case Type::kHistogram: {
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const uint64_t c = s.hist_buckets[static_cast<size_t>(i)];
          if (c == 0) continue;
          cumulative += c;
          out.append(s.name).append("_bucket{le=\"");
          out.append(std::to_string(Histogram::BucketUpper(i)));
          out.append("\"} ").append(std::to_string(cumulative));
          out.push_back('\n');
        }
        out.append(s.name).append("_bucket{le=\"+Inf\"} ");
        out.append(std::to_string(s.hist_count)).push_back('\n');
        out.append(s.name).append("_sum ");
        out.append(std::to_string(s.hist_sum)).push_back('\n');
        out.append(s.name).append("_count ");
        out.append(std::to_string(s.hist_count)).push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::vector<FamilySnapshot> snap;
  {
    MutexLock lock(&mu_);
    snap = SnapshotLocked();
  }
  JsonWriter w;
  w.BeginObject().Key("metrics").BeginArray();
  for (const FamilySnapshot& s : snap) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("type").String(TypeString(static_cast<int>(s.type)));
    if (!s.unit.empty()) w.Key("unit").String(s.unit);
    w.Key("help").String(s.help);
    switch (s.type) {
      case Type::kCounter:
        w.Key("value").Uint(s.counter_value);
        break;
      case Type::kGauge:
        w.Key("value").Double(s.gauge_value);
        break;
      case Type::kHistogram: {
        w.Key("count").Uint(s.hist_count);
        w.Key("sum").Uint(s.hist_sum);
        w.Key("p50").Double(QuantileFromBuckets(s.hist_buckets, 0.50));
        w.Key("p90").Double(QuantileFromBuckets(s.hist_buckets, 0.90));
        w.Key("p99").Double(QuantileFromBuckets(s.hist_buckets, 0.99));
        w.Key("buckets").BeginArray();
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const uint64_t c = s.hist_buckets[static_cast<size_t>(i)];
          if (c == 0) continue;
          w.BeginObject();
          w.Key("le").Uint(Histogram::BucketUpper(i));
          w.Key("count").Uint(c);
          w.EndObject();
        }
        w.EndArray();
        break;
      }
    }
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<FamilySnapshot> snap;
  {
    MutexLock lock(&mu_);
    snap = SnapshotLocked();
  }
  std::vector<std::string> names;
  names.reserve(snap.size());
  for (const FamilySnapshot& s : snap) names.push_back(s.name);
  return names;
}

void MetricsRegistry::ResetForTesting() {
  MutexLock lock(&mu_);
  families_.clear();
}

}  // namespace obs
}  // namespace ldphh
