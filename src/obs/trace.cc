#include "src/obs/trace.h"

#include <chrono>

#include "src/obs/json_writer.h"

namespace ldphh {
namespace obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceRing& TraceRing::Global() {
  // Leaked for the same reason as MetricsRegistry::Global: static-duration
  // components may record during process teardown.
  static TraceRing* const g = new TraceRing(kDefaultCapacity);
  return *g;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  events_.resize(capacity_);
}

void TraceRing::Record(std::string_view category, std::string_view name,
                       std::string_view detail, uint64_t arg0, uint64_t arg1) {
  TraceEvent e;
  e.timestamp_ns = SteadyNowNs();
  e.category.assign(category);
  e.name.assign(name);
  if (detail.size() > kMaxDetailBytes) {
    e.detail.assign(detail.substr(0, kMaxDetailBytes));
    e.detail.append("...");
  } else {
    e.detail.assign(detail);
  }
  e.arg0 = arg0;
  e.arg1 = arg1;

  MutexLock lock(&mu_);
  if (size_ == capacity_) ++dropped_;
  events_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits at next_ once the ring has wrapped, else at 0.
  const size_t first = size_ == capacity_ ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(first + i) % capacity_]);
  }
  return out;
}

uint64_t TraceRing::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

std::string TraceRing::DumpText() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  for (const TraceEvent& e : events) {
    out.push_back('[');
    out.append(std::to_string(e.timestamp_ns));
    out.append("] ");
    out.append(e.category).push_back('/');
    out.append(e.name);
    out.append(" arg0=").append(std::to_string(e.arg0));
    out.append(" arg1=").append(std::to_string(e.arg1));
    if (!e.detail.empty()) {
      out.push_back(' ');
      out.append(e.detail);
    }
    out.push_back('\n');
  }
  const uint64_t d = dropped();
  if (d > 0) {
    out.append("... ").append(std::to_string(d)).append(" older events dropped\n");
  }
  return out;
}

std::string TraceRing::DumpJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("dropped").Uint(dropped());
  w.Key("events").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("ts_ns").Uint(e.timestamp_ns);
    w.Key("category").String(e.category);
    w.Key("name").String(e.name);
    if (!e.detail.empty()) w.Key("detail").String(e.detail);
    w.Key("arg0").Uint(e.arg0);
    w.Key("arg1").Uint(e.arg1);
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

void TraceRing::Clear() {
  MutexLock lock(&mu_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace obs
}  // namespace ldphh
