/// \file json_writer.h
/// \brief Minimal streaming JSON serializer — the one emitter behind every
/// machine-readable surface in the tree.
///
/// MetricsRegistry::DumpJson, TraceRing::DumpJson, ProtocolMetrics::ToJson,
/// and the benchmark metric dumps all render through this writer, so their
/// output shares one escaping/number-formatting policy instead of N hand-
/// rolled printf emitters drifting apart.
///
/// Usage is push-style with automatic comma management:
///
///   JsonWriter w;
///   w.BeginObject().Key("name").String("x").Key("v").Uint(3).EndObject();
///   w.str();  // {"name":"x","v":3}
///
/// Not a general-purpose library: no pretty printing, no parsing. Doubles
/// render with round-trip precision; NaN/Inf (not representable in JSON)
/// render as null.

#ifndef LDPHH_OBS_JSON_WRITER_H_
#define LDPHH_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ldphh {
namespace obs {

/// \brief Push-style JSON emitter (see file comment).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next value call supplies its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  /// Round-trip precision; NaN/Inf emit null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices \p json — an already-serialized JSON value — in value
  /// position, with the same comma management as any other value. The
  /// caller vouches for its validity (it is emitted verbatim); the use
  /// case is embedding one ToJson() document inside another without
  /// re-parsing it.
  JsonWriter& Raw(std::string_view json);

  /// The serialized document so far.
  const std::string& str() const { return out_; }

  /// Formats \p value the way Double() does (shortest round-trip form) —
  /// shared with the text expositions so numbers print identically in the
  /// JSON and Prometheus-style dumps.
  static std::string FormatDouble(double value);

 private:
  void BeforeValue();
  void AppendEscaped(std::string_view s);

  std::string out_;
  /// One frame per open container: true = object, false = array.
  std::vector<bool> frames_;
  /// Whether the current container already holds a value (comma needed).
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace ldphh

#endif  // LDPHH_OBS_JSON_WRITER_H_
