/// \file spectral.h
/// \brief Power-iteration spectral primitives for small graphs.
///
/// Used (a) to certify expanders (second adjacency eigenvalue in magnitude,
/// Lemma B.1 regime) and (b) to compute Fiedler-style sweep cuts for the
/// cluster-preserving clustering decoder (Theorem B.3 substitute).

#ifndef LDPHH_GRAPHS_SPECTRAL_H_
#define LDPHH_GRAPHS_SPECTRAL_H_

#include <vector>

#include "src/common/random.h"
#include "src/graphs/graph.h"

namespace ldphh {

/// \brief Estimates |lambda_2|, the second-largest-in-magnitude adjacency
/// eigenvalue of a connected d-regular graph.
///
/// Power iteration on A with deflation against the all-ones principal
/// eigenvector. \p iters iterations of cost O(|E|) each. The estimate
/// converges from below for generic starts, so callers certifying
/// "lambda_2 <= target" should add slack to the target.
double SecondAdjacencyEigenvalue(const Graph& g, int iters, Rng& rng);

/// \brief Fiedler-style vector: approximate eigenvector of the second-
/// smallest eigenvalue of the (unnormalized) Laplacian L = D - A.
///
/// Computed by power iteration on (c I - L) with c = 2 * max degree,
/// deflating the constant vector. Returns one value per vertex.
std::vector<double> ApproximateFiedlerVector(const Graph& g, int iters, Rng& rng);

/// Result of a sweep cut.
struct SweepCut {
  std::vector<int> side_a;   ///< Vertices on the low side of the cut.
  std::vector<int> side_b;   ///< Vertices on the high side.
  double conductance = 1.0;  ///< cut(A,B) / min(vol(A), vol(B)).
};

/// \brief Best sweep cut along the ordering induced by \p scores.
///
/// Sorts vertices by score and returns the prefix/suffix split minimizing
/// conductance. \p scores must have one entry per vertex of \p g.
SweepCut BestSweepCut(const Graph& g, const std::vector<double>& scores);

}  // namespace ldphh

#endif  // LDPHH_GRAPHS_SPECTRAL_H_
