#include "src/graphs/spectral.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ldphh {

namespace {

// y = A x.
void AdjacencyApply(const Graph& g, const std::vector<double>& x,
                    std::vector<double>* y) {
  const int n = g.NumVertices();
  y->assign(static_cast<size_t>(n), 0.0);
  for (int u = 0; u < n; ++u) {
    double acc = 0.0;
    for (int w : g.Neighbors(u)) acc += x[static_cast<size_t>(w)];
    (*y)[static_cast<size_t>(u)] = acc;
  }
}

void SubtractMean(std::vector<double>* x) {
  const double mean =
      std::accumulate(x->begin(), x->end(), 0.0) / static_cast<double>(x->size());
  for (double& v : *x) v -= mean;
}

double Norm(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

}  // namespace

double SecondAdjacencyEigenvalue(const Graph& g, int iters, Rng& rng) {
  const int n = g.NumVertices();
  if (n <= 1) return 0.0;
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng.UniformDouble() - 0.5;
  SubtractMean(&x);
  double nx = Norm(x);
  if (nx == 0.0) return 0.0;
  for (double& v : x) v /= nx;

  std::vector<double> y;
  double estimate = 0.0;
  for (int it = 0; it < iters; ++it) {
    AdjacencyApply(g, x, &y);
    SubtractMean(&y);  // Deflate drift back into the principal eigenspace.
    const double ny = Norm(y);
    if (ny == 0.0) return 0.0;
    estimate = ny;  // ||A x|| for unit x -> |lambda_2| in the limit.
    for (size_t i = 0; i < y.size(); ++i) x[i] = y[i] / ny;
  }
  return estimate;
}

std::vector<double> ApproximateFiedlerVector(const Graph& g, int iters, Rng& rng) {
  const int n = g.NumVertices();
  std::vector<double> x(static_cast<size_t>(n));
  if (n == 0) return x;
  int max_deg = 1;
  for (int u = 0; u < n; ++u) max_deg = std::max(max_deg, g.Degree(u));
  const double c = 2.0 * static_cast<double>(max_deg);

  for (double& v : x) v = rng.UniformDouble() - 0.5;
  SubtractMean(&x);
  std::vector<double> ax;
  for (int it = 0; it < iters; ++it) {
    // y = (c I - L) x = c x - D x + A x.
    AdjacencyApply(g, x, &ax);
    std::vector<double> y(static_cast<size_t>(n));
    for (int u = 0; u < n; ++u) {
      y[static_cast<size_t>(u)] =
          (c - static_cast<double>(g.Degree(u))) * x[static_cast<size_t>(u)] +
          ax[static_cast<size_t>(u)];
    }
    SubtractMean(&y);
    const double ny = Norm(y);
    if (ny == 0.0) break;
    for (int u = 0; u < n; ++u) x[static_cast<size_t>(u)] = y[static_cast<size_t>(u)] / ny;
  }
  return x;
}

SweepCut BestSweepCut(const Graph& g, const std::vector<double>& scores) {
  const int n = g.NumVertices();
  LDPHH_CHECK(static_cast<int>(scores.size()) == n, "BestSweepCut: score size");
  SweepCut best;
  if (n < 2) {
    for (int u = 0; u < n; ++u) best.side_a.push_back(u);
    return best;
  }
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[static_cast<size_t>(a)] <
                                       scores[static_cast<size_t>(b)]; });

  std::vector<int> pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pos[static_cast<size_t>(order[i])] = i;

  const int64_t total_vol = [&] {
    int64_t v = 0;
    for (int u = 0; u < n; ++u) v += g.Degree(u);
    return v;
  }();

  // Sweep: move vertices from side B to side A in score order, maintaining
  // the cut size incrementally.
  int64_t cut = 0;
  int64_t vol_a = 0;
  double best_cond = 2.0;
  int best_prefix = 1;
  for (int i = 0; i + 1 < n; ++i) {
    const int u = order[static_cast<size_t>(i)];
    vol_a += g.Degree(u);
    for (int w : g.Neighbors(u)) {
      if (w == u) continue;  // Self-loops never cross a cut.
      if (pos[static_cast<size_t>(w)] <= i) {
        --cut;  // Edge now internal to A.
      } else {
        ++cut;  // Edge crosses the cut.
      }
    }
    const int64_t vol_b = total_vol - vol_a;
    const int64_t mn = std::min(vol_a, vol_b);
    const double cond =
        mn > 0 ? static_cast<double>(cut) / static_cast<double>(mn) : 2.0;
    if (cond < best_cond) {
      best_cond = cond;
      best_prefix = i + 1;
    }
  }

  best.conductance = best_cond;
  best.side_a.assign(order.begin(), order.begin() + best_prefix);
  best.side_b.assign(order.begin() + best_prefix, order.end());
  std::sort(best.side_a.begin(), best.side_a.end());
  std::sort(best.side_b.begin(), best.side_b.end());
  return best;
}

}  // namespace ldphh
