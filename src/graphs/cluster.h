/// \file cluster.h
/// \brief Cluster-preserving clustering (Theorem B.3 of the paper, from
/// Larsen-Nelson-Nguyen-Thorup 2016), practical variant.
///
/// Contract (Definition B.2 / Theorem B.3): given a graph containing
/// eta-spectral clusters (vertex sets with at most an eta fraction of
/// incident edges leaving, and internal edge density close to that of a
/// regular graph), return disjoint vertex sets such that every eta-spectral
/// cluster matches one returned set up to O(eta) * vol symmetric difference.
///
/// Implementation (DESIGN.md substitution 3): connected components, then
/// recursive spectral sweep-cut partitioning — a component whose best
/// Fiedler sweep cut has conductance below the threshold is split and both
/// sides are recursed on; otherwise the component is emitted as a cluster.
/// Low-degree peeling (the decoder's "degree <= d/2" rule) is left to the
/// caller, which knows the expander degree.

#ifndef LDPHH_GRAPHS_CLUSTER_H_
#define LDPHH_GRAPHS_CLUSTER_H_

#include <vector>

#include "src/common/random.h"
#include "src/graphs/graph.h"

namespace ldphh {

/// Options for the clustering decoder.
struct ClusterOptions {
  /// Conductance threshold: a component is split while its best sweep cut
  /// has conductance below this value. Matches the eta of the contract.
  double conductance_threshold = 0.15;
  /// Components smaller than this are emitted without spectral work.
  int min_split_size = 4;
  /// Power-iteration budget for the Fiedler vector.
  int fiedler_iters = 60;
  /// Recursion depth cap (defensive; log-depth expected).
  int max_depth = 32;
};

/// \brief Finds spectral clusters in \p g.
///
/// Returns disjoint vertex sets (original vertex ids, sorted). Isolated
/// vertices are returned as singleton clusters; callers typically filter by
/// size/degree afterwards.
std::vector<std::vector<int>> FindSpectralClusters(const Graph& g,
                                                   const ClusterOptions& options,
                                                   Rng& rng);

}  // namespace ldphh

#endif  // LDPHH_GRAPHS_CLUSTER_H_
