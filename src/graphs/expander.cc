#include "src/graphs/expander.h"

#include <algorithm>
#include <numeric>

#include "src/graphs/spectral.h"

namespace ldphh {

StatusOr<Expander> Expander::Sample(int num_vertices, int degree,
                                    double lambda_target_fraction, uint64_t seed,
                                    int max_attempts) {
  if (num_vertices < 2) {
    return Status::InvalidArgument("Expander: need at least 2 vertices");
  }
  if (degree < 2 || degree % 2 != 0) {
    return Status::InvalidArgument("Expander: degree must be even and >= 2");
  }
  Rng rng(seed);

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Expander e(num_vertices, degree);
    e.slots_.assign(static_cast<size_t>(num_vertices * degree), Slot{});
    std::vector<int> next_slot(static_cast<size_t>(num_vertices), 0);

    // Union of degree/2 random 2-factors: each factor is a uniformly random
    // *fixed-point-free* permutation's functional graph, contributing edges
    // (i, pi(i)). Self-loops (fixed points) waste half a vertex's degree
    // and, at small M, leave vertices hanging by a single neighbor — a
    // single erased decoder layer could then disconnect the copy. Parallel
    // edges are tolerated only once the early attempts fail (simple
    // d-regular graphs may not exist for tiny M).
    const bool require_simple = attempt < (max_attempts + 1) / 2;
    std::vector<int> perm(static_cast<size_t>(num_vertices));
    bool ok = true;
    std::vector<std::vector<int>> seen(static_cast<size_t>(num_vertices));
    for (int f = 0; f < degree / 2 && ok; ++f) {
      std::iota(perm.begin(), perm.end(), 0);
      bool fixed_point = true;
      for (int tries = 0; tries < 64 && fixed_point; ++tries) {
        for (int i = num_vertices - 1; i > 0; --i) {
          const int j =
              static_cast<int>(rng.UniformU64(static_cast<uint64_t>(i) + 1));
          std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
        }
        fixed_point = false;
        for (int i = 0; i < num_vertices; ++i) {
          if (perm[static_cast<size_t>(i)] == i) fixed_point = true;
        }
      }
      if (fixed_point) {
        ok = false;
        break;
      }
      for (int i = 0; i < num_vertices && ok; ++i) {
        const int j = perm[static_cast<size_t>(i)];
        if (require_simple) {
          auto& adj = seen[static_cast<size_t>(i)];
          if (std::find(adj.begin(), adj.end(), j) != adj.end()) {
            ok = false;
            break;
          }
          adj.push_back(j);
          seen[static_cast<size_t>(j)].push_back(i);
        }
        const int si = next_slot[static_cast<size_t>(i)]++;
        const int sj = next_slot[static_cast<size_t>(j)]++;
        e.slots_[static_cast<size_t>(i * degree + si)] = Slot{j, sj};
        e.slots_[static_cast<size_t>(j * degree + sj)] = Slot{i, si};
        e.graph_.AddEdge(i, j);
      }
    }
    if (!ok) continue;

    if (e.graph_.ConnectedComponents().size() != 1) continue;

    Rng cert_rng(rng());
    const double lam = SecondAdjacencyEigenvalue(e.graph_, 200, cert_rng);
    e.lambda2_ = lam;
    if (lam <= lambda_target_fraction * static_cast<double>(degree) + 1e-9) {
      return e;
    }
  }
  return Status::ResourceExhausted(
      "Expander::Sample: no certified expander within retry budget");
}

}  // namespace ldphh
