/// \file graph.h
/// \brief Small undirected multigraphs (adjacency-list based).
///
/// The decoder of the Theorem 3.6 unique-list-recoverable code builds a
/// layered graph on [M] x [Y] vertices per bucket; these graphs are small
/// (thousands of vertices), so a simple adjacency-list representation is
/// the right tool.

#ifndef LDPHH_GRAPHS_GRAPH_H_
#define LDPHH_GRAPHS_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ldphh {

/// \brief Undirected multigraph with fixed vertex count.
class Graph {
 public:
  /// Creates an edgeless graph on \p num_vertices vertices.
  explicit Graph(int num_vertices) : adj_(static_cast<size_t>(num_vertices)) {}

  /// Adds an undirected edge (u, v). Parallel edges and self-loops allowed;
  /// a self-loop contributes 2 to the degree.
  void AddEdge(int u, int v) {
    LDPHH_DCHECK(u >= 0 && u < NumVertices(), "AddEdge: u out of range");
    LDPHH_DCHECK(v >= 0 && v < NumVertices(), "AddEdge: v out of range");
    adj_[static_cast<size_t>(u)].push_back(v);
    if (u != v) {
      adj_[static_cast<size_t>(v)].push_back(u);
    } else {
      adj_[static_cast<size_t>(u)].push_back(v);  // Self-loop: degree += 2.
    }
    ++num_edges_;
  }

  int NumVertices() const { return static_cast<int>(adj_.size()); }
  int64_t NumEdges() const { return num_edges_; }

  /// Neighbors of \p u (with multiplicity).
  const std::vector<int>& Neighbors(int u) const {
    return adj_[static_cast<size_t>(u)];
  }

  /// Degree of \p u (self-loops count twice).
  int Degree(int u) const {
    return static_cast<int>(adj_[static_cast<size_t>(u)].size());
  }

  /// Sum of degrees of the vertices in \p set.
  int64_t Volume(const std::vector<int>& set) const;

  /// Connected components as lists of vertices (singletons included).
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// Connected components restricted to \p alive vertices (mask by vertex).
  std::vector<std::vector<int>> ConnectedComponents(
      const std::vector<bool>& alive) const;

  /// \brief Vertex-induced subgraph.
  /// \param vertices  the kept vertices (need not be sorted).
  /// \param old_to_new  output: map from original id to subgraph id
  ///   (size NumVertices(), -1 for dropped vertices). May be null.
  Graph InducedSubgraph(const std::vector<int>& vertices,
                        std::vector<int>* old_to_new = nullptr) const;

 private:
  std::vector<std::vector<int>> adj_;
  int64_t num_edges_ = 0;
};

}  // namespace ldphh

#endif  // LDPHH_GRAPHS_GRAPH_H_
