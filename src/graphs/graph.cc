#include "src/graphs/graph.h"

#include <algorithm>

namespace ldphh {

int64_t Graph::Volume(const std::vector<int>& set) const {
  int64_t vol = 0;
  for (int v : set) vol += Degree(v);
  return vol;
}

std::vector<std::vector<int>> Graph::ConnectedComponents() const {
  std::vector<bool> alive(static_cast<size_t>(NumVertices()), true);
  return ConnectedComponents(alive);
}

std::vector<std::vector<int>> Graph::ConnectedComponents(
    const std::vector<bool>& alive) const {
  const int n = NumVertices();
  std::vector<int> state(static_cast<size_t>(n), 0);  // 0 unseen, 1 done
  std::vector<std::vector<int>> comps;
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (state[s] || !alive[static_cast<size_t>(s)]) continue;
    comps.emplace_back();
    stack.push_back(s);
    state[s] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      comps.back().push_back(u);
      for (int w : Neighbors(u)) {
        if (!state[w] && alive[static_cast<size_t>(w)]) {
          state[w] = 1;
          stack.push_back(w);
        }
      }
    }
    std::sort(comps.back().begin(), comps.back().end());
  }
  return comps;
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices,
                             std::vector<int>* old_to_new) const {
  std::vector<int> map(static_cast<size_t>(NumVertices()), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    map[static_cast<size_t>(vertices[i])] = static_cast<int>(i);
  }
  Graph sub(static_cast<int>(vertices.size()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    const int u = vertices[i];
    int self_loop_halves = 0;
    for (int w : Neighbors(u)) {
      const int nw = map[static_cast<size_t>(w)];
      if (nw < 0) continue;
      if (static_cast<int>(i) < nw) {
        // Each cross edge appears once from the lower new id.
        sub.AddEdge(static_cast<int>(i), nw);
      } else if (static_cast<int>(i) == nw) {
        // A self-loop appears twice in the adjacency list; add once per pair.
        if (++self_loop_halves % 2 == 0) sub.AddEdge(nw, nw);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return sub;
}

}  // namespace ldphh
