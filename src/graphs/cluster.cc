#include "src/graphs/cluster.h"

#include <algorithm>

#include "src/graphs/spectral.h"

namespace ldphh {

namespace {

// Recursively partitions the subgraph induced on `vertices` (original ids).
void SplitRecursive(const Graph& g, std::vector<int> vertices,
                    const ClusterOptions& options, int depth, Rng& rng,
                    std::vector<std::vector<int>>* out) {
  if (static_cast<int>(vertices.size()) < options.min_split_size ||
      depth >= options.max_depth) {
    out->push_back(std::move(vertices));
    return;
  }

  Graph sub = g.InducedSubgraph(vertices);
  // The induced subgraph may have disconnected after a previous cut.
  const auto comps = sub.ConnectedComponents();
  if (comps.size() > 1) {
    for (const auto& comp : comps) {
      std::vector<int> orig;
      orig.reserve(comp.size());
      for (int v : comp) orig.push_back(vertices[static_cast<size_t>(v)]);
      SplitRecursive(g, std::move(orig), options, depth + 1, rng, out);
    }
    return;
  }

  const std::vector<double> fiedler =
      ApproximateFiedlerVector(sub, options.fiedler_iters, rng);
  const SweepCut cut = BestSweepCut(sub, fiedler);
  if (cut.conductance >= options.conductance_threshold || cut.side_a.empty() ||
      cut.side_b.empty()) {
    out->push_back(std::move(vertices));  // Internally well-connected: emit.
    return;
  }

  std::vector<int> a;
  std::vector<int> b;
  a.reserve(cut.side_a.size());
  b.reserve(cut.side_b.size());
  for (int v : cut.side_a) a.push_back(vertices[static_cast<size_t>(v)]);
  for (int v : cut.side_b) b.push_back(vertices[static_cast<size_t>(v)]);
  SplitRecursive(g, std::move(a), options, depth + 1, rng, out);
  SplitRecursive(g, std::move(b), options, depth + 1, rng, out);
}

}  // namespace

std::vector<std::vector<int>> FindSpectralClusters(const Graph& g,
                                                   const ClusterOptions& options,
                                                   Rng& rng) {
  std::vector<std::vector<int>> out;
  for (auto& comp : g.ConnectedComponents()) {
    SplitRecursive(g, std::move(comp), options, 0, rng, &out);
  }
  for (auto& cluster : out) std::sort(cluster.begin(), cluster.end());
  return out;
}

}  // namespace ldphh
