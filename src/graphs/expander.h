/// \file expander.h
/// \brief d-regular spectral expanders with a Las Vegas certificate.
///
/// Theorem 3.6 needs a d-regular lambda-spectral expander F on M vertices.
/// Following the paper's own footnote 7 ("a random graph is a spectral
/// expander with high probability ... spectral expansion can be verified
/// efficiently"), we sample F as a union of d/2 random 2-factors and certify
/// the spectral gap by power iteration, resampling until the certificate
/// passes (Las Vegas).
///
/// The expander is also consumed as an ordered slot structure: every vertex
/// m has exactly d neighbor slots Gamma(m)[0..d-1], and slot s of m is
/// paired with a specific slot s' of the neighbor. The unique-list-
/// recoverable code needs this pairing to match edge suggestions.

#ifndef LDPHH_GRAPHS_EXPANDER_H_
#define LDPHH_GRAPHS_EXPANDER_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/graphs/graph.h"

namespace ldphh {

/// \brief A certified d-regular expander on M vertices with slot structure.
class Expander {
 public:
  /// \brief Samples and certifies an expander.
  ///
  /// \param num_vertices  M >= 2.
  /// \param degree        d, even, >= 2.
  /// \param lambda_target fraction of d allowed for |lambda_2|; the default
  ///   1.0 disables certification (any regular graph passes), while values
  ///   near 2 sqrt(d-1)/d ~ Ramanujan are achievable for moderate d.
  /// \param seed          deterministic sampling seed.
  /// \param max_attempts  Las Vegas retry budget.
  static StatusOr<Expander> Sample(int num_vertices, int degree,
                                   double lambda_target_fraction, uint64_t seed,
                                   int max_attempts = 64);

  int num_vertices() const { return num_vertices_; }
  int degree() const { return degree_; }
  /// The certified bound on |lambda_2| (estimate from the certificate run).
  double lambda2() const { return lambda2_; }

  /// Neighbor in slot \p s of vertex \p m.
  int Neighbor(int m, int s) const {
    return slots_[static_cast<size_t>(m * degree_ + s)].vertex;
  }
  /// The slot index at the neighbor that pairs with (m, s): if
  /// Neighbor(m, s) == m2 and PairedSlot(m, s) == s2 then
  /// Neighbor(m2, s2) == m and PairedSlot(m2, s2) == s.
  int PairedSlot(int m, int s) const {
    return slots_[static_cast<size_t>(m * degree_ + s)].back_slot;
  }

  /// The underlying multigraph.
  const Graph& graph() const { return graph_; }

 private:
  struct Slot {
    int vertex = -1;
    int back_slot = -1;
  };

  Expander(int num_vertices, int degree)
      : num_vertices_(num_vertices), degree_(degree), graph_(num_vertices) {}

  int num_vertices_;
  int degree_;
  double lambda2_ = 0.0;
  Graph graph_;
  std::vector<Slot> slots_;
};

}  // namespace ldphh

#endif  // LDPHH_GRAPHS_EXPANDER_H_
