/// \file frame.h
/// \brief Length-prefixed framing for the report-ingestion wire protocol.
///
/// Every message on a ReportServer connection — in either direction — is a
/// frame:
///
///     u32 LE payload_length | payload bytes
///
/// Client→server payloads are `report_codec` batches (EncodeReportBatch
/// output, which carries its own "LDPB" magic, version, and CRC). The
/// server answers every request frame, in order, with an ack frame whose
/// payload is a serialized Status:
///
///     u8 status_code | UTF-8 message bytes (may be empty)
///
/// `status_code` is the numeric value of `ldphh::StatusCode`; codes a
/// newer server might add decode as kInternal on an older client rather
/// than failing. kResourceExhausted acks are *retryable*: the batch was
/// not enqueued, and the client should back off and resend.
///
/// These helpers are deliberately dumb — no IO, no allocation beyond the
/// output string — so the exact same code frames and parses on both the
/// server's non-blocking path and the client's blocking path, and in
/// tests.

#ifndef LDPHH_NET_FRAME_H_
#define LDPHH_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ldphh {
namespace net {

/// Frame header size: the u32 length prefix.
inline constexpr size_t kFrameHeaderSize = 4;

/// Appends `u32 LE length | payload` to \p out.
void AppendFrame(std::string* out, std::string_view payload);

/// Appends an ack frame carrying \p status to \p out.
void AppendStatusFrame(std::string* out, const Status& status);

/// Outcome of TryParseFrame.
enum class FrameParse {
  kFrame,     ///< A complete frame was extracted.
  kNeedMore,  ///< The buffer holds only a partial frame; read more.
  kBad,       ///< Protocol violation (oversized frame); close the connection.
};

/// Attempts to extract one frame from the front of \p buffer.
///
/// On kFrame, \p payload points into \p buffer and \p consumed is the
/// total frame size (header + payload) to drop from the buffer. On kBad,
/// \p error describes the violation. A declared length above
/// \p max_payload_bytes is rejected *before* its bytes are buffered, so a
/// hostile length prefix cannot make the server allocate.
FrameParse TryParseFrame(std::string_view buffer, size_t max_payload_bytes,
                         std::string_view* payload, size_t* consumed,
                         Status* error);

/// Decodes an ack-frame payload (`u8 code | message`) back into a Status.
/// Unknown codes decode as kInternal.
Status DecodeStatusPayload(std::string_view payload);

}  // namespace net
}  // namespace ldphh

#endif  // LDPHH_NET_FRAME_H_
