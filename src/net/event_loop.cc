#include "src/net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ldphh {
namespace net {

namespace {

constexpr int kIdlePollMs = 100;  // Stop-check cadence with nothing due.

short PollEventsOf(uint32_t events) {
  short out = 0;
  if (events & kFdReadable) out |= POLLIN;
  if (events & kFdWritable) out |= POLLOUT;
  return out;
}

uint32_t FdEventsOf(short revents) {
  uint32_t out = 0;
  if (revents & POLLIN) out |= kFdReadable;
  if (revents & POLLOUT) out |= kFdWritable;
  if (revents & (POLLERR | POLLNVAL)) out |= kFdError;
  if (revents & POLLHUP) out |= kFdHangup;
  return out;
}

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("EventLoop: already started");
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("EventLoop: pipe: ") +
                            std::strerror(errno));
  }
  wakeup_read_fd_ = fds[0];
  wakeup_write_fd_ = fds[1];
  ::fcntl(wakeup_read_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(wakeup_write_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(wakeup_read_fd_, F_SETFD, FD_CLOEXEC);
  ::fcntl(wakeup_write_fd_, F_SETFD, FD_CLOEXEC);
  thread_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!started_.load() || stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    MutexLock lk(&tasks_mu_);
    accepting_tasks_ = false;
  }
  if (wakeup_write_fd_ >= 0) {
    const char byte = 0;
    // A full pipe already guarantees a pending wakeup.
    while (::write(wakeup_write_fd_, &byte, 1) < 0 && errno == EINTR) {
    }
  }
  if (thread_.joinable()) thread_.join();
  if (wakeup_read_fd_ >= 0) {
    ::close(wakeup_read_fd_);
    ::close(wakeup_write_fd_);
    wakeup_read_fd_ = wakeup_write_fd_ = -1;
  }
}

bool EventLoop::InLoopThread() const {
  return loop_thread_id_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

bool EventLoop::Post(Task task) {
  {
    MutexLock lk(&tasks_mu_);
    if (!accepting_tasks_) return false;
    tasks_.push_back(std::move(task));
  }
  if (wakeup_write_fd_ >= 0) {
    const char byte = 0;
    while (::write(wakeup_write_fd_, &byte, 1) < 0 && errno == EINTR) {
    }
  }
  return true;
}

void EventLoop::RunSync(Task task) {
  if (InLoopThread() || !thread_.joinable() ||
      stopping_.load(std::memory_order_acquire)) {
    // On the loop thread, or the loop thread is gone (pre-Start or
    // post-Stop): nothing to synchronize with — run inline.
    task();
    return;
  }
  Mutex mu;
  CondVar done_cv(&mu);
  bool done = false;
  const bool posted = Post([&] {
    task();
    MutexLock lk(&mu);
    done = true;
    done_cv.SignalAll();
  });
  if (!posted) {
    // Stop() won the race; the loop thread is draining/joined. Wait for the
    // join to finish would deadlock-free require it elsewhere; the final
    // drain runs every task already queued, and ours was rejected — safe to
    // run inline once stopping_ is visible (the loop no longer touches
    // loop-owned state concurrently with a rejected poster only after
    // join; be conservative and run it inline anyway: rejected tasks are
    // teardown-path tasks and teardown is single-threaded per owner).
    task();
    return;
  }
  MutexLock lk(&mu);
  while (!done) done_cv.Wait();
}

void EventLoop::WatchFd(int fd, uint32_t events, FdCallback callback) {
  LDPHH_DCHECK(InLoopThread(), "EventLoop::WatchFd off the loop thread");
  Watch watch;
  watch.events = events;
  watch.callback = std::move(callback);
  fds_[fd] = std::move(watch);
}

void EventLoop::SetInterest(int fd, uint32_t events) {
  LDPHH_DCHECK(InLoopThread(), "EventLoop::SetInterest off the loop thread");
  const auto it = fds_.find(fd);
  if (it != fds_.end()) it->second.events = events;
}

void EventLoop::UnwatchFd(int fd) {
  LDPHH_DCHECK(InLoopThread(), "EventLoop::UnwatchFd off the loop thread");
  fds_.erase(fd);
}

uint64_t EventLoop::RunAfter(int64_t delay_ms, Task task) {
  LDPHH_DCHECK(InLoopThread(), "EventLoop::RunAfter off the loop thread");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(delay_ms < 0 ? 0 : delay_ms);
  Timer timer;
  timer.id = next_timer_id_++;
  timer.task = std::move(task);
  const uint64_t id = timer.id;
  timers_.emplace(deadline, std::move(timer));
  return id;
}

void EventLoop::CancelTimer(uint64_t timer_id) {
  LDPHH_DCHECK(InLoopThread(), "EventLoop::CancelTimer off the loop thread");
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == timer_id) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::LoopThread() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  while (!stopping_.load(std::memory_order_acquire)) {
    RunLoopOnce();
  }
  // Final drain: run tasks posted up to the Stop() cutoff so teardown
  // handshakes (RunSync) cannot be lost.
  std::deque<Task> rest;
  {
    MutexLock lk(&tasks_mu_);
    rest.swap(tasks_);
  }
  for (Task& task : rest) task();
}

void EventLoop::RunLoopOnce() {
  // Snapshot: callbacks may mutate fds_ freely during dispatch.
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size() + 1);
  pollfd wake{};
  wake.fd = wakeup_read_fd_;
  wake.events = POLLIN;
  pfds.push_back(wake);
  for (const auto& [fd, watch] : fds_) {
    pollfd p{};
    p.fd = fd;
    p.events = PollEventsOf(watch.events);
    pfds.push_back(p);
  }

  const int ready = ::poll(pfds.data(), pfds.size(), NextPollTimeoutMs());
  if (ready < 0 && errno != EINTR) {
    // poll() can only fail here on EINTR or resource exhaustion; back off
    // rather than spin.
    ::usleep(1000);
  }

  if (pfds[0].revents != 0) DrainWakeupPipe();

  // Posted tasks first (they often change interest sets), then fd events,
  // then timers.
  for (;;) {
    Task task;
    {
      MutexLock lk(&tasks_mu_);
      if (tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }

  for (size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    const auto it = fds_.find(pfds[i].fd);
    if (it == fds_.end()) continue;  // Unwatched mid-dispatch.
    const uint32_t events = FdEventsOf(pfds[i].revents);
    if (events == 0) continue;
    // Deliver what is still of interest, plus errors and hangups, which
    // poll() reports unconditionally. A plain POLLIN against a since-paused
    // watcher is skipped (and not re-reported: the next cycle's poll() will
    // not request it), so pausing reads never spins the loop.
    const uint32_t masked = events & (it->second.events | kFdError | kFdHangup);
    if (masked == 0) continue;
    FdCallback callback = it->second.callback;  // The callback may unwatch.
    callback(masked);
  }

  RunDueTimers();
}

void EventLoop::DrainWakeupPipe() {
  char buf[256];
  while (::read(wakeup_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunDueTimers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    Task task = std::move(timers_.begin()->second.task);
    timers_.erase(timers_.begin());
    task();
  }
}

int EventLoop::NextPollTimeoutMs() const {
  if (timers_.empty()) return kIdlePollMs;
  const auto now = std::chrono::steady_clock::now();
  const auto next = timers_.begin()->first;
  if (next <= now) return 0;
  const int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count() +
      1;
  return static_cast<int>(ms < kIdlePollMs ? ms : kIdlePollMs);
}

}  // namespace net
}  // namespace ldphh
