#include "src/net/frame.h"

namespace ldphh {
namespace net {

namespace {

void AppendU32Le(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  AppendU32Le(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

void AppendStatusFrame(std::string* out, const Status& status) {
  AppendU32Le(out, static_cast<uint32_t>(1 + status.message().size()));
  out->push_back(static_cast<char>(status.code()));
  out->append(status.message());
}

FrameParse TryParseFrame(std::string_view buffer, size_t max_payload_bytes,
                         std::string_view* payload, size_t* consumed,
                         Status* error) {
  if (buffer.size() < kFrameHeaderSize) return FrameParse::kNeedMore;
  const uint32_t length = ReadU32Le(buffer.data());
  if (length > max_payload_bytes) {
    *error = Status::InvalidArgument(
        "net: frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_payload_bytes));
    return FrameParse::kBad;
  }
  if (buffer.size() < kFrameHeaderSize + length) return FrameParse::kNeedMore;
  *payload = buffer.substr(kFrameHeaderSize, length);
  *consumed = kFrameHeaderSize + length;
  return FrameParse::kFrame;
}

Status DecodeStatusPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::Internal("net: empty ack payload");
  }
  const auto raw = static_cast<unsigned char>(payload[0]);
  std::string message(payload.substr(1));
  switch (static_cast<StatusCode>(raw)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kDecodeFailure:
      return Status::DecodeFailure(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
  }
  return Status::Internal("net: unknown ack status code " +
                          std::to_string(raw) + ": " + message);
}

}  // namespace net
}  // namespace ldphh
