/// \file event_loop.h
/// \brief A single-threaded, poll()-driven reactor.
///
/// `src/net/` is the one place in the tree allowed to touch raw sockets
/// (tools/lint.sh enforces it). The EventLoop is its core: one thread
/// owns a `poll()` cycle over a set of watched file descriptors, a
/// monotonic timer queue, and a task queue fed from other threads through
/// a self-pipe wakeup. Everything registered with the loop — listeners,
/// connections, timers — is touched only from the loop thread, so none of
/// it needs locks; the only synchronized state is the posted-task queue.
///
/// Threading contract:
///   - `WatchFd` / `SetInterest` / `UnwatchFd` / `RunAfter` / `CancelTimer`
///     must be called on the loop thread (checked with LDPHH_DCHECK).
///   - `Post` is thread-safe and wakes the loop; the task runs on the loop
///     thread in FIFO order.
///   - `RunSync` posts a task and blocks until it has run — the teardown
///     primitive (close a listener, snapshot loop-owned state). Called on
///     the loop thread it runs inline; called after Stop() it also runs
///     inline (the loop thread is joined, so there is no concurrency left
///     to synchronize with).
///
/// The loop never owns file descriptors: whoever watched an fd closes it
/// (after unwatching). Dispatch is snapshot-based — a callback may unwatch
/// any fd, including its own, mid-cycle; stale snapshot entries are
/// re-checked against the live table before delivery.

#ifndef LDPHH_NET_EVENT_LOOP_H_
#define LDPHH_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"

namespace ldphh {
namespace net {

/// Bitmask delivered to fd callbacks (a stable alias for the poll bits,
/// so callers do not include <poll.h>).
enum FdEvents : uint32_t {
  kFdReadable = 1u << 0,  ///< POLLIN: data (or EOF) to read.
  kFdWritable = 1u << 1,  ///< POLLOUT.
  kFdError = 1u << 2,     ///< POLLERR | POLLNVAL.
  /// POLLHUP. Unlike the others this cannot be masked off at the poll()
  /// level, so it is always delivered even when the watcher's interest set
  /// is empty (a read-paused connection whose peer vanished must still
  /// find out, without the loop spinning on an undeliverable event).
  kFdHangup = 1u << 3,
};

/// \brief The reactor (see file comment).
class EventLoop {
 public:
  using Task = std::function<void()>;
  /// \p events is an FdEvents bitmask of what fired.
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the wakeup pipe and spawns the loop thread. Call once.
  Status Start();

  /// Requests stop, wakes the loop, and joins the thread. Pending posted
  /// tasks run before the thread exits; watched fds stay registered (their
  /// owners unwatch/close during their own teardown, via RunSync if they
  /// outlive the loop). Idempotent.
  void Stop();

  /// True iff called from the loop thread.
  bool InLoopThread() const;

  /// Enqueues \p task for the loop thread (thread-safe). Returns false —
  /// and drops the task — once Stop() has begun and the final drain is
  /// over.
  bool Post(Task task);

  /// Runs \p task on the loop thread and waits for it to finish (see the
  /// threading contract in the file comment).
  void RunSync(Task task);

  /// Watches \p fd. \p events is an FdEvents mask; \p callback fires on
  /// the loop thread. Loop thread only.
  void WatchFd(int fd, uint32_t events, FdCallback callback);

  /// Replaces the interest mask of a watched fd. Loop thread only.
  void SetInterest(int fd, uint32_t events);

  /// Stops watching \p fd (the caller still owns and closes it). Loop
  /// thread only.
  void UnwatchFd(int fd);

  /// Runs \p task on the loop thread after \p delay_ms. Returns a timer id
  /// for CancelTimer. Loop thread only.
  uint64_t RunAfter(int64_t delay_ms, Task task);

  /// Cancels a pending timer (no-op if already fired). Loop thread only.
  void CancelTimer(uint64_t timer_id);

  /// Watched-fd count (loop thread only; tests).
  size_t WatchedFdsForTesting() const { return fds_.size(); }

 private:
  struct Watch {
    uint32_t events = 0;
    FdCallback callback;
  };
  struct Timer {
    uint64_t id = 0;
    Task task;
  };

  void LoopThread();
  void RunLoopOnce();
  void DrainWakeupPipe();
  void RunDueTimers();
  int NextPollTimeoutMs() const;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};

  int wakeup_read_fd_ = -1;
  int wakeup_write_fd_ = -1;

  Mutex tasks_mu_;
  std::deque<Task> tasks_ GUARDED_BY(tasks_mu_);
  bool accepting_tasks_ GUARDED_BY(tasks_mu_) = true;

  // Loop-thread-only state (no locks by design; see file comment).
  std::map<int, Watch> fds_;
  std::multimap<std::chrono::steady_clock::time_point, Timer> timers_;
  uint64_t next_timer_id_ = 1;
};

}  // namespace net
}  // namespace ldphh

#endif  // LDPHH_NET_EVENT_LOOP_H_
