/// \file report_client.h
/// \brief Blocking client for the ReportServer framing protocol.
///
/// ReportClient is the producer half of the ingestion wire: it connects
/// over TCP or a Unix-domain socket, sends length-prefixed report-batch
/// frames (see frame.h), and consumes the server's in-order per-frame
/// acks. It is deliberately simple — blocking sockets, one thread — and
/// exists for examples, tests, and the loopback benchmark; a production
/// emitter would embed the same framing into its own IO stack.
///
/// Two behaviors make it usable against a server that exercises real
/// backpressure:
///
///   - **Pipelining.** Up to `Options::pipeline_window` frames may be in
///     flight before Send() blocks on an ack, so per-frame latency does
///     not bound throughput. Flush() drains all outstanding acks.
///   - **Retry + reconnect.** A kResourceExhausted ack means the batch was
///     *not* enqueued (the server's all-or-nothing TrySubmit refused it);
///     the client backs off and resends the same payload. On an IO error
///     or server drop it reconnects and resends every unacked frame.
///     Delivery is therefore *at-least-once*: a crash between enqueue and
///     ack can duplicate a batch on reconnect. LDP reports are unordered
///     and duplicates only perturb counts by one report's worth, so this
///     is the right trade for a telemetry pipeline (see docs/server.md).
///
/// Not thread-safe: one ReportClient per producer thread.

#ifndef LDPHH_NET_REPORT_CLIENT_H_
#define LDPHH_NET_REPORT_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ldphh {
namespace net {

/// \brief Blocking framing-protocol client (see file comment).
class ReportClient {
 public:
  struct Options {
    /// Max frames in flight before Send() blocks waiting for an ack.
    size_t pipeline_window = 64;
    /// Blocking send/recv timeout. A server that acks nothing for this
    /// long counts as an IO error (triggers reconnect).
    int io_timeout_ms = 5000;
    /// Backoff before resending a frame the server acked as busy.
    int busy_backoff_ms = 1;
    /// Upper bound on the (doubling) busy backoff.
    int busy_backoff_max_ms = 50;
    /// Reconnect attempts before giving up on an IO error.
    int max_reconnect_attempts = 5;
    /// Backoff between reconnect attempts.
    int reconnect_backoff_ms = 20;
  };

  /// Counters for tests and the benchmark harness.
  struct Stats {
    uint64_t frames_acked = 0;    ///< Frames the server accepted.
    uint64_t frames_rejected = 0; ///< Frames acked with a permanent error.
    uint64_t busy_retries = 0;    ///< Resends after a busy (retryable) ack.
    uint64_t reconnects = 0;      ///< Successful reconnections.
  };

  /// Connects over TCP to \p host:\p port.
  static StatusOr<std::unique_ptr<ReportClient>> ConnectTcp(
      const std::string& host, uint16_t port, const Options& options);

  /// Connects over the Unix-domain socket at \p path.
  static StatusOr<std::unique_ptr<ReportClient>> ConnectUds(
      const std::string& path, const Options& options);

  ~ReportClient();
  ReportClient(const ReportClient&) = delete;
  ReportClient& operator=(const ReportClient&) = delete;

  /// Submits one report-batch payload (EncodeReportBatch output). Returns
  /// once the frame is written and the pipeline window has room again —
  /// NOT once this frame is acked; call Flush() for that. A non-OK return
  /// is either a permanent server-side rejection of some in-flight frame
  /// (kInvalidArgument / kDecodeFailure / ...) or a connection failure
  /// that reconnection could not cure.
  Status Send(std::string_view payload);

  /// Blocks until every in-flight frame is acked (retrying busy acks).
  Status Flush();

  const Stats& stats() const { return stats_; }

 private:
  struct Endpoint {
    bool is_uds = false;
    std::string host_or_path;
    uint16_t port = 0;
  };

  ReportClient(Endpoint endpoint, const Options& options);

  Status Connect();
  Status WriteFrame(const std::string& payload);
  /// Reads and applies one ack: pops or requeues the head of pending_.
  Status AwaitAck();
  Status ReadExact(char* buf, size_t n);
  Status WriteAll(const char* buf, size_t n);
  /// Tears down the socket, reconnects, and resends all pending frames.
  Status Reconnect();

  const Endpoint endpoint_;
  const Options options_;
  int fd_ = -1;
  int busy_backoff_ms_ = 0;
  std::deque<std::string> pending_;  ///< In-flight payloads, send order.
  Stats stats_;
};

}  // namespace net
}  // namespace ldphh

#endif  // LDPHH_NET_REPORT_CLIENT_H_
