#include "src/net/report_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/net/frame.h"

namespace ldphh {
namespace net {

namespace {

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

ReportClient::ReportClient(Endpoint endpoint, const Options& options)
    : endpoint_(std::move(endpoint)), options_(options) {}

ReportClient::~ReportClient() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<ReportClient>> ReportClient::ConnectTcp(
    const std::string& host, uint16_t port, const Options& options) {
  Endpoint endpoint;
  endpoint.is_uds = false;
  endpoint.host_or_path = host;
  endpoint.port = port;
  std::unique_ptr<ReportClient> client(
      new ReportClient(std::move(endpoint), options));
  LDPHH_RETURN_IF_ERROR(client->Connect());
  return client;
}

StatusOr<std::unique_ptr<ReportClient>> ReportClient::ConnectUds(
    const std::string& path, const Options& options) {
  Endpoint endpoint;
  endpoint.is_uds = true;
  endpoint.host_or_path = path;
  std::unique_ptr<ReportClient> client(
      new ReportClient(std::move(endpoint), options));
  LDPHH_RETURN_IF_ERROR(client->Connect());
  return client;
}

Status ReportClient::Connect() {
  int fd = -1;
  if (endpoint_.is_uds) {
    sockaddr_un addr{};
    if (endpoint_.host_or_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("ReportClient: unix path too long");
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::Internal(std::string("ReportClient: socket: ") +
                              std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint_.host_or_path.c_str(),
                endpoint_.host_or_path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status status =
          Status::Internal(std::string("ReportClient: connect ") +
                           endpoint_.host_or_path + ": " +
                           std::strerror(errno));
      ::close(fd);
      return status;
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint_.port);
    if (::inet_pton(AF_INET, endpoint_.host_or_path.c_str(), &addr.sin_addr) !=
        1) {
      return Status::InvalidArgument("ReportClient: bad host '" +
                                     endpoint_.host_or_path +
                                     "' (numeric IPv4 only)");
    }
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::Internal(std::string("ReportClient: socket: ") +
                              std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status status = Status::Internal(
          std::string("ReportClient: connect ") + endpoint_.host_or_path +
          ":" + std::to_string(endpoint_.port) + ": " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  SetIoTimeout(fd, options_.io_timeout_ms);
  fd_ = fd;
  return Status::OK();
}

Status ReportClient::Send(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("ReportClient: not connected");
  }
  std::string owned(payload);
  Status write_status = WriteFrame(owned);
  if (!write_status.ok()) {
    // The frame may be half-written; Reconnect resends all of pending_,
    // so enqueue before reconnecting to avoid losing this payload.
    pending_.push_back(std::move(owned));
    return Reconnect();
  }
  pending_.push_back(std::move(owned));
  while (pending_.size() >= options_.pipeline_window) {
    LDPHH_RETURN_IF_ERROR(AwaitAck());
  }
  return Status::OK();
}

Status ReportClient::Flush() {
  while (!pending_.empty()) {
    LDPHH_RETURN_IF_ERROR(AwaitAck());
  }
  return Status::OK();
}

Status ReportClient::WriteFrame(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(&frame, payload);
  return WriteAll(frame.data(), frame.size());
}

Status ReportClient::AwaitAck() {
  char header[kFrameHeaderSize];
  Status io = ReadExact(header, sizeof(header));
  if (!io.ok()) return Reconnect();
  const uint32_t length =
      static_cast<uint32_t>(static_cast<unsigned char>(header[0])) |
      (static_cast<uint32_t>(static_cast<unsigned char>(header[1])) << 8) |
      (static_cast<uint32_t>(static_cast<unsigned char>(header[2])) << 16) |
      (static_cast<uint32_t>(static_cast<unsigned char>(header[3])) << 24);
  if (length == 0 || length > (1u << 16)) {
    // Ack frames are a status byte plus a short message; anything else
    // means the stream is out of sync — resync via reconnect.
    return Reconnect();
  }
  std::string payload(length, '\0');
  io = ReadExact(payload.data(), payload.size());
  if (!io.ok()) return Reconnect();

  const Status ack = DecodeStatusPayload(payload);
  if (pending_.empty()) {
    return Status::Internal("ReportClient: ack with no frame in flight");
  }
  if (ack.ok()) {
    pending_.pop_front();
    ++stats_.frames_acked;
    busy_backoff_ms_ = 0;
    return Status::OK();
  }
  if (ack.code() == StatusCode::kResourceExhausted) {
    // Retryable: the server refused to enqueue, nothing was consumed.
    // Resend the same payload after a (doubling) backoff.
    std::string payload_again = std::move(pending_.front());
    pending_.pop_front();
    ++stats_.busy_retries;
    busy_backoff_ms_ = busy_backoff_ms_ == 0
                           ? options_.busy_backoff_ms
                           : busy_backoff_ms_ * 2;
    if (busy_backoff_ms_ > options_.busy_backoff_max_ms) {
      busy_backoff_ms_ = options_.busy_backoff_max_ms;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(busy_backoff_ms_));
    Status write_status = WriteFrame(payload_again);
    pending_.push_back(std::move(payload_again));
    if (!write_status.ok()) return Reconnect();
    return Status::OK();
  }
  // Permanent rejection (malformed batch, unknown protocol, ...): the
  // server consumed and answered the frame; drop it and surface the error.
  pending_.pop_front();
  ++stats_.frames_rejected;
  return ack;
}

Status ReportClient::ReadExact(char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t got = ::recv(fd_, buf + off, n - off, 0);
    if (got > 0) {
      off += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got == 0) return Status::Internal("ReportClient: server closed");
    return Status::Internal(std::string("ReportClient: recv: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status ReportClient::WriteAll(const char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t put = ::send(fd_, buf + off, n - off, MSG_NOSIGNAL);
    if (put > 0) {
      off += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("ReportClient: send: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status ReportClient::Reconnect() {
  for (int attempt = 0; attempt < options_.max_reconnect_attempts; ++attempt) {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.reconnect_backoff_ms));
    }
    Status status = Connect();
    if (!status.ok()) continue;
    // Resend every unacked frame on the fresh connection (at-least-once).
    bool resent_all = true;
    for (const std::string& payload : pending_) {
      status = WriteFrame(payload);
      if (!status.ok()) {
        resent_all = false;
        break;
      }
    }
    if (resent_all) {
      ++stats_.reconnects;
      return Status::OK();
    }
  }
  return Status::Internal("ReportClient: reconnect failed after " +
                          std::to_string(options_.max_reconnect_attempts) +
                          " attempts");
}

}  // namespace net
}  // namespace ldphh
