/// \file connection.h
/// \brief A buffered non-blocking stream connection on an EventLoop.
///
/// Connection wraps one accepted (or connected) socket fd in the loop's
/// non-blocking discipline: a capped inbound buffer filled on POLLIN, a
/// capped outbound buffer drained on POLLOUT, and two callbacks — `on_data`
/// whenever new bytes land in the inbound buffer, `on_closed` exactly once
/// when the connection dies (peer EOF, IO error, buffer-cap violation, or
/// an explicit Close()).
///
/// Backpressure is first-class: `PauseRead()` removes POLLIN from the
/// interest set, so the kernel socket buffer — and eventually the peer's
/// TCP window — absorbs the load instead of this process's memory. A
/// paused connection still learns about peer death (POLLHUP is delivered
/// regardless of interest; see event_loop.h). `ResumeRead()` re-arms
/// POLLIN and, if bytes are already buffered, re-fires `on_data` so no
/// already-received frame is stranded.
///
/// All methods are loop-thread-only. Callbacks run on the loop thread and
/// may destroy the Connection (the usual `on_closed` pattern erases it
/// from the owner's map); internal code never touches members after
/// invoking a callback that may do so.

#ifndef LDPHH_NET_CONNECTION_H_
#define LDPHH_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/net/event_loop.h"

namespace ldphh {
namespace net {

/// \brief One buffered stream socket (see file comment).
class Connection {
 public:
  struct Options {
    /// Inbound-buffer cap. If a consumer leaves more than this unconsumed,
    /// the connection is closed (a frame parser that respects its own
    /// max-frame limit never hits this).
    size_t read_buffer_cap = 1u << 20;
    /// Outbound-buffer cap. Exceeding it means the peer is not draining
    /// its socket (slow client); the connection is closed.
    size_t write_buffer_cap = 1u << 20;
  };

  /// `on_data` fires on the loop thread when the inbound buffer grew;
  /// consume via buffer()/Consume(). `on_closed` fires exactly once with
  /// the reason; the callback may delete the Connection.
  using DataFn = std::function<void(Connection*)>;
  using ClosedFn = std::function<void(Connection*, const Status&)>;

  /// Takes ownership of \p fd (switched to non-blocking). Loop thread only.
  Connection(EventLoop* loop, int fd, const Options& options, DataFn on_data,
             ClosedFn on_closed);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  bool closed() const { return closed_; }
  bool read_paused() const { return read_paused_; }

  /// Unconsumed inbound bytes.
  const std::string& buffer() const { return read_buffer_; }
  /// Drops the first \p n bytes of the inbound buffer.
  void Consume(size_t n);

  /// Queues \p data for the peer (appends to the outbound buffer, attempts
  /// an immediate flush, arms POLLOUT for the rest). Closes the connection
  /// if the outbound cap is exceeded — the caller learns via on_closed.
  void Send(std::string_view data);

  /// Bytes queued but not yet written to the socket.
  size_t pending_write_bytes() const { return write_buffer_.size(); }

  /// Stops / resumes reading from the socket (see file comment).
  void PauseRead();
  void ResumeRead();

  /// Closes immediately with \p reason; fires on_closed (once).
  void Close(const Status& reason);

 private:
  void HandleEvents(uint32_t events);
  /// Runs on_data; returns false if the connection closed (and was
  /// possibly deleted) during the callback.
  bool DeliverData();
  /// Reads until EAGAIN/EOF, delivering to on_data whenever the buffer cap
  /// fills mid-read so the consumer can drain or pause before the cap is
  /// judged exceeded; returns false if the connection closed.
  bool FillFromSocket();
  /// Writes until EAGAIN/empty; returns false if the connection closed.
  bool FlushToSocket();
  void UpdateInterest();

  EventLoop* const loop_;
  int fd_;
  const Options options_;
  const DataFn on_data_;
  const ClosedFn on_closed_;

  std::string read_buffer_;
  std::string write_buffer_;
  bool read_paused_ = false;
  bool closed_ = false;
  /// Liveness sentinel: callbacks may delete `this`, so internal code that
  /// must continue after a callback snapshots this pointer and checks the
  /// flag (the destructor flips it) before touching members again.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace net
}  // namespace ldphh

#endif  // LDPHH_NET_CONNECTION_H_
