#include "src/net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ldphh {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("net: fcntl O_NONBLOCK: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Listener::Listener(EventLoop* loop, int fd, uint16_t port, std::string path,
                   AcceptFn on_accept)
    : loop_(loop),
      fd_(fd),
      port_(port),
      path_(std::move(path)),
      on_accept_(std::move(on_accept)) {}

StatusOr<std::unique_ptr<Listener>> Listener::ListenTcp(
    EventLoop* loop, const std::string& bind_address, uint16_t port,
    AcceptFn on_accept) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("net: socket: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("net: bad bind address '" + bind_address +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(
        std::string("net: bind ") + bind_address + ":" + std::to_string(port) +
        ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::Internal(std::string("net: listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status = Status::Internal(
        std::string("net: getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  LDPHH_RETURN_IF_ERROR(SetNonBlocking(fd));

  std::unique_ptr<Listener> listener(new Listener(
      loop, fd, ntohs(bound.sin_port), std::string(), std::move(on_accept)));
  Listener* raw = listener.get();
  loop->RunSync([raw] {
    raw->loop_->WatchFd(raw->fd_, kFdReadable,
                        [raw](uint32_t) { raw->HandleReadable(); });
  });
  return listener;
}

StatusOr<std::unique_ptr<Listener>> Listener::ListenUds(
    EventLoop* loop, const std::string& path, AcceptFn on_accept) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("net: bad unix socket path '" + path +
                                   "' (empty or longer than sun_path)");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("net: socket(AF_UNIX): ") +
                            std::strerror(errno));
  }
  // A previous instance that died without Close() leaves the socket file
  // behind, and bind() would fail on it forever; unlink unconditionally
  // (callers own the path namespace they pass in).
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::Internal(std::string("net: bind ") + path +
                                           ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status =
        Status::Internal(std::string("net: listen: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(path.c_str());
    return status;
  }
  LDPHH_RETURN_IF_ERROR(SetNonBlocking(fd));

  std::unique_ptr<Listener> listener(
      new Listener(loop, fd, 0, path, std::move(on_accept)));
  Listener* raw = listener.get();
  loop->RunSync([raw] {
    raw->loop_->WatchFd(raw->fd_, kFdReadable,
                        [raw](uint32_t) { raw->HandleReadable(); });
  });
  return listener;
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  loop_->RunSync([this] {
    if (closed_) return;
    closed_ = true;
    loop_->UnwatchFd(fd_);
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  });
}

void Listener::HandleReadable() {
  // Accept everything ready; the listening fd is non-blocking.
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error.
    }
    // Accepted sockets start in blocking mode regardless of the listening
    // socket's flags; consumers that want non-blocking set it themselves.
    on_accept_(fd);
  }
}

}  // namespace net
}  // namespace ldphh
