#include "src/net/connection.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace ldphh {
namespace net {

Connection::Connection(EventLoop* loop, int fd, const Options& options,
                       DataFn on_data, ClosedFn on_closed)
    : loop_(loop),
      fd_(fd),
      options_(options),
      on_data_(std::move(on_data)),
      on_closed_(std::move(on_closed)) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  loop_->WatchFd(fd_, kFdReadable,
                 [this](uint32_t events) { HandleEvents(events); });
}

Connection::~Connection() {
  *alive_ = false;
  if (!closed_) {
    // Owner destroyed us without Close(): silent teardown, no callback.
    closed_ = true;
    loop_->UnwatchFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::Consume(size_t n) {
  read_buffer_.erase(0, n < read_buffer_.size() ? n : read_buffer_.size());
}

void Connection::Send(std::string_view data) {
  if (closed_) return;
  if (write_buffer_.empty()) {
    // Fast path: the socket is usually writable; skip the POLLOUT round
    // trip for whatever fits right now.
    while (!data.empty()) {
      const ssize_t n = ::write(fd_, data.data(), data.size());
      if (n > 0) {
        data.remove_prefix(static_cast<size_t>(n));
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      Close(Status::Internal(std::string("net: write: ") +
                             std::strerror(errno)));
      return;
    }
    if (data.empty()) return;
  }
  write_buffer_.append(data.data(), data.size());
  if (write_buffer_.size() > options_.write_buffer_cap) {
    Close(Status::ResourceExhausted(
        "net: outbound buffer cap exceeded (slow client)"));
    return;
  }
  UpdateInterest();
}

void Connection::PauseRead() {
  if (closed_ || read_paused_) return;
  read_paused_ = true;
  UpdateInterest();
}

void Connection::ResumeRead() {
  if (closed_ || !read_paused_) return;
  read_paused_ = false;
  UpdateInterest();
  if (!read_buffer_.empty() && on_data_) {
    // Bytes that arrived before the pause are still waiting; deliver them
    // from a fresh stack frame (not reentrantly under the caller).
    auto alive = alive_;
    DataFn on_data = on_data_;
    Connection* self = this;
    loop_->Post([alive, on_data, self] {
      if (*alive && !self->closed_) on_data(self);
    });
  }
}

void Connection::Close(const Status& reason) {
  if (closed_) return;
  closed_ = true;
  loop_->UnwatchFd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_closed_) {
    ClosedFn on_closed = on_closed_;
    on_closed(this, reason);  // May delete `this`; touch nothing after.
  }
}

void Connection::HandleEvents(uint32_t events) {
  const auto alive = alive_;
  if (events & kFdError) {
    Close(Status::Internal("net: socket error (POLLERR)"));
    return;
  }
  if (events & kFdWritable) {
    if (!FlushToSocket()) return;  // Closed (and possibly deleted).
    if (!*alive || closed_) return;
  }
  if (events & (kFdReadable | kFdHangup)) FillFromSocket();
}

bool Connection::DeliverData() {
  if (!on_data_) return true;
  const auto alive = alive_;
  DataFn on_data = on_data_;
  on_data(this);  // May Close() (and delete) us.
  return *alive && !closed_;
}

bool Connection::FillFromSocket() {
  // A hangup against a read-paused connection lands here too (the loop
  // always delivers kFdHangup); reading is still correct — we pick up any
  // final bytes plus the EOF.
  bool got_data = false;
  bool saw_eof = false;
  for (;;) {
    if (read_buffer_.size() >= options_.read_buffer_cap) {
      // Cap reached mid-fill: let the consumer drain (or pause us) before
      // judging this an overflow. Closing here would turn a fast sender
      // into a protocol error even though the consumer never got to run.
      got_data = false;
      if (!DeliverData()) return false;
      if (read_paused_) break;  // Consumer applied backpressure.
      if (read_buffer_.size() >= options_.read_buffer_cap) {
        // Consumer could make no room: the buffer holds data it cannot
        // consume (cap is sized to fit any one well-formed frame).
        Close(Status::ResourceExhausted("net: inbound buffer cap exceeded"));
        return false;
      }
    }
    char buf[16384];
    const size_t want = std::min(
        sizeof(buf), options_.read_buffer_cap - read_buffer_.size());
    const ssize_t n = ::read(fd_, buf, want);
    if (n > 0) {
      read_buffer_.append(buf, static_cast<size_t>(n));
      got_data = true;
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    Close(Status::Internal(std::string("net: read: ") + std::strerror(errno)));
    return false;
  }
  if (got_data && !DeliverData()) return false;
  if (saw_eof) {
    Close(Status::OK());  // Clean peer close.
    return false;
  }
  return true;
}

bool Connection::FlushToSocket() {
  size_t off = 0;
  while (off < write_buffer_.size()) {
    const ssize_t n =
        ::write(fd_, write_buffer_.data() + off, write_buffer_.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    write_buffer_.erase(0, off);
    Close(Status::Internal(std::string("net: write: ") + std::strerror(errno)));
    return false;
  }
  write_buffer_.erase(0, off);
  UpdateInterest();
  return true;
}

void Connection::UpdateInterest() {
  if (closed_) return;
  uint32_t events = 0;
  if (!read_paused_) events |= kFdReadable;
  if (!write_buffer_.empty()) events |= kFdWritable;
  loop_->SetInterest(fd_, events);
}

}  // namespace net
}  // namespace ldphh
