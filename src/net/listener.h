/// \file listener.h
/// \brief Listening sockets (TCP and Unix-domain) on an EventLoop.
///
/// A Listener owns one non-blocking listening socket registered with an
/// EventLoop; every accepted connection is handed to the accept callback
/// on the loop thread as a plain (blocking) file descriptor whose
/// ownership transfers to the callback. This is the only accept/bind/
/// listen code in the tree — AdminServer and ReportServer both listen
/// through it (tools/lint.sh keeps raw socket calls out of everything but
/// `src/net/`).
///
/// TCP listeners support port 0 (ephemeral; the resolved port is read
/// back before ListenTcp returns). Unix-domain listeners bind a
/// filesystem path; a stale socket file from a dead process is unlinked
/// before binding, and the path is unlinked again on Close().
///
/// Close() is safe from any thread (it synchronizes with the loop via
/// RunSync) and idempotent; the destructor calls it. The accept callback
/// will not be invoked after Close() returns.

#ifndef LDPHH_NET_LISTENER_H_
#define LDPHH_NET_LISTENER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/net/event_loop.h"

namespace ldphh {
namespace net {

/// \brief One listening socket (see file comment).
class Listener {
 public:
  /// Called on the loop thread with an accepted fd (blocking mode);
  /// ownership of the fd transfers to the callback.
  using AcceptFn = std::function<void(int fd)>;

  /// Binds and listens on \p bind_address:\p port (port 0 = ephemeral) and
  /// registers with \p loop. The loop must already be started.
  static StatusOr<std::unique_ptr<Listener>> ListenTcp(
      EventLoop* loop, const std::string& bind_address, uint16_t port,
      AcceptFn on_accept);

  /// Binds and listens on Unix-domain socket \p path (unlinking any stale
  /// socket file first) and registers with \p loop.
  static StatusOr<std::unique_ptr<Listener>> ListenUds(EventLoop* loop,
                                                       const std::string& path,
                                                       AcceptFn on_accept);

  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound TCP port (resolved when 0 was requested); 0 for UDS.
  uint16_t port() const { return port_; }
  /// The bound UDS path; empty for TCP.
  const std::string& path() const { return path_; }

  /// Unregisters and closes the socket (unlinks the UDS path). Safe from
  /// any thread; idempotent.
  void Close();

 private:
  Listener(EventLoop* loop, int fd, uint16_t port, std::string path,
           AcceptFn on_accept);

  void HandleReadable();

  EventLoop* const loop_;
  int fd_;
  const uint16_t port_;
  const std::string path_;
  const AcceptFn on_accept_;
  bool closed_ = false;  ///< Guarded by the loop thread (all access via RunSync/loop).
};

}  // namespace net
}  // namespace ldphh

#endif  // LDPHH_NET_LISTENER_H_
