#include "src/ldp/genprot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math_util.h"

namespace ldphh {

GenProt::GenProt(const LocalRandomizer* randomizer, double eps, int t_count,
                 int default_input)
    : randomizer_(randomizer),
      eps_(eps),
      t_count_(t_count),
      default_input_(default_input) {
  LDPHH_CHECK(randomizer != nullptr, "GenProt: null randomizer");
  LDPHH_CHECK(eps > 0.0 && eps <= 0.25, "GenProt: Theorem 6.1 needs eps <= 1/4");
  LDPHH_CHECK(t_count >= 1, "GenProt: T >= 1");
  LDPHH_CHECK(default_input >= 0 && default_input < randomizer->num_inputs(),
              "GenProt: bad default input");
  report_bits_ = CeilLog2(NextPow2(static_cast<uint64_t>(t_count)));
  if (report_bits_ == 0) report_bits_ = 1;
}

int GenProt::MinT(double eps) {
  return static_cast<int>(std::ceil(5.0 * std::log(1.0 / eps)));
}

double GenProt::UtilityTvBound(double eps, double delta, int t_count, uint64_t n) {
  const double nd = static_cast<double>(n);
  const double td = static_cast<double>(t_count);
  return nd * (std::pow(0.5 + eps, td) +
               6.0 * td * delta * std::exp(eps) / (1.0 - std::exp(-eps)));
}

double GenProt::ClampedProb(int x, int y) const {
  const double lp = randomizer_->LogProb(x, y);
  const double lq = randomizer_->LogProb(default_input_, y);
  double p;
  if (lq == -std::numeric_limits<double>::infinity()) {
    p = 1.0;  // Ratio is +inf; certainly outside the good band.
  } else {
    p = 0.5 * std::exp(lp - lq);
  }
  const double lo = std::exp(-2.0 * eps_) / 2.0;
  const double hi = std::exp(2.0 * eps_) / 2.0;
  if (p < lo || p > hi) return 0.5;  // Step 2b: clamp bad ratios to 1/2.
  return p;
}

GenProtRun GenProt::Run(const std::vector<int>& inputs, uint64_t seed) const {
  Rng public_rng(seed);
  GenProtRun out;
  out.report_bits = report_bits_;
  out.chosen_index.reserve(inputs.size());
  out.resolved_output.reserve(inputs.size());

  std::vector<int> ys(static_cast<size_t>(t_count_));
  std::vector<int> successes;
  for (size_t i = 0; i < inputs.size(); ++i) {
    // Step 1: public samples y_{i,t} ~ A(bot).
    for (int t = 0; t < t_count_; ++t) {
      ys[static_cast<size_t>(t)] = randomizer_->Sample(default_input_, public_rng);
    }
    // Steps 2a-2f: the user's private selection.
    Rng user_rng = public_rng.Fork();
    successes.clear();
    for (int t = 0; t < t_count_; ++t) {
      const double p = ClampedProb(inputs[i], ys[static_cast<size_t>(t)]);
      if (user_rng.Bernoulli(p)) successes.push_back(t);
    }
    int g;
    if (successes.empty()) {
      g = static_cast<int>(user_rng.UniformU64(static_cast<uint64_t>(t_count_)));
    } else {
      g = successes[user_rng.UniformU64(successes.size())];
    }
    out.chosen_index.push_back(g);
    out.resolved_output.push_back(ys[static_cast<size_t>(g)]);
  }
  return out;
}

std::vector<double> GenProt::UserOutputDistribution(
    const std::vector<int>& public_ys, int x) const {
  LDPHH_CHECK(static_cast<int>(public_ys.size()) == t_count_,
              "UserOutputDistribution: need T public samples");
  const int t_cnt = t_count_;
  std::vector<double> p(static_cast<size_t>(t_cnt));
  for (int t = 0; t < t_cnt; ++t) {
    p[static_cast<size_t>(t)] = ClampedProb(x, public_ys[static_cast<size_t>(t)]);
  }

  std::vector<double> dist(static_cast<size_t>(t_cnt), 0.0);
  double prob_all_zero = 1.0;
  for (int t = 0; t < t_cnt; ++t) prob_all_zero *= 1.0 - p[static_cast<size_t>(t)];

  for (int g = 0; g < t_cnt; ++g) {
    // W = number of successes among t != g; exact Poisson-binomial DP.
    std::vector<double> w_dist(static_cast<size_t>(t_cnt), 0.0);
    w_dist[0] = 1.0;
    int support = 0;
    for (int t = 0; t < t_cnt; ++t) {
      if (t == g) continue;
      ++support;
      for (int w = support; w >= 1; --w) {
        w_dist[static_cast<size_t>(w)] =
            w_dist[static_cast<size_t>(w)] * (1.0 - p[static_cast<size_t>(t)]) +
            w_dist[static_cast<size_t>(w - 1)] * p[static_cast<size_t>(t)];
      }
      w_dist[0] *= 1.0 - p[static_cast<size_t>(t)];
    }
    double expect_inv = 0.0;
    for (int w = 0; w < t_cnt; ++w) {
      expect_inv += w_dist[static_cast<size_t>(w)] / static_cast<double>(w + 1);
    }
    dist[static_cast<size_t>(g)] =
        p[static_cast<size_t>(g)] * expect_inv +
        prob_all_zero / static_cast<double>(t_cnt);
  }
  return dist;
}

double GenProt::ExactEpsilonForPublicRandomness(
    const std::vector<int>& public_ys) const {
  double worst = 0.0;
  const int n_in = randomizer_->num_inputs();
  std::vector<std::vector<double>> dists;
  dists.reserve(static_cast<size_t>(n_in));
  for (int x = 0; x < n_in; ++x) dists.push_back(UserOutputDistribution(public_ys, x));
  for (int x = 0; x < n_in; ++x) {
    for (int xp = 0; xp < n_in; ++xp) {
      if (x == xp) continue;
      for (int g = 0; g < t_count_; ++g) {
        const double a = dists[static_cast<size_t>(x)][static_cast<size_t>(g)];
        const double b = dists[static_cast<size_t>(xp)][static_cast<size_t>(g)];
        worst = std::max(worst, std::log(a) - std::log(b));
      }
    }
  }
  return worst;
}

}  // namespace ldphh
