/// \file anticoncentration.h
/// \brief The Section 7 / Appendix A lower-bound machinery.
///
/// Theorem 7.2 shows every (eps, delta)-LDP frequency protocol has
/// worst-case error Omega((1/eps) sqrt(n log(1/beta))) at failure
/// probability beta. The proof plants m = C eps^2 n independent random bits,
/// each copied into n/m users; conditioned on the transcript the bits stay
/// near-uniform, so the true count anti-concentrates (Theorem 7.5 /
/// Corollary 7.6 / Theorem A.5) inside any interval shorter than
/// sqrt(m log(1/beta)).
///
/// This header provides (a) exact binomial anti-concentration checks that
/// validate Theorem A.5 numerically and (b) the experiment harness that
/// measures the realized error-vs-beta curve of an actual eps-LDP counting
/// protocol on the block-random database, for the F9 bench.

#ifndef LDPHH_LDP_ANTICONCENTRATION_H_
#define LDPHH_LDP_ANTICONCENTRATION_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace ldphh {

/// \brief Exact min over interval placements of Pr[Bin(n, p) outside I]
/// for an interval of integer length \p interval_len.
///
/// Theorem A.5 asserts this stays >= beta whenever
/// interval_len <= c sqrt(n log(1/beta)); the tests sweep this claim.
double BinomialMinExitProbability(uint64_t n, double p, uint64_t interval_len);

/// Result of the Section 7 experiment.
struct LowerBoundExperiment {
  uint64_t n = 0;          ///< Number of users.
  uint64_t m = 0;          ///< Number of planted random bits (C eps^2 n).
  double eps = 0.0;
  std::vector<double> abs_errors;  ///< |Est - true count|, one per trial.
};

/// \brief Runs the Theorem 7.2 experiment.
///
/// Per trial: draw S in {0,1}^m uniformly, replicate into the block
/// database D in {0,1}^n (Y_i = X_{ceil(im/n)}), run the canonical eps-LDP
/// counting protocol (binary randomized response with debiased sum — the
/// X = {0,1} frequency oracle), and record the absolute counting error.
LowerBoundExperiment RunLowerBoundExperiment(uint64_t n, double eps,
                                             double block_constant, int trials,
                                             uint64_t seed);

/// The (1 - beta) empirical quantile of the absolute errors.
double ErrorQuantile(const LowerBoundExperiment& exp, double beta);

/// The lower-bound shape (1/eps) sqrt(n ln(1/beta)) for overlaying.
double LowerBoundShape(uint64_t n, double eps, double beta);

}  // namespace ldphh

#endif  // LDPHH_LDP_ANTICONCENTRATION_H_
