/// \file composition.h
/// \brief Composition for randomized response (Section 5, Theorem 5.1).
///
/// M applies independent eps-randomized response to each of k bits; naive
/// composition prices this at k * eps. Theorem 5.1's algorithm M~ replaces
/// the out-of-shell outputs of M (total probability <= beta) by a uniform
/// sample outside the shell, and the result is *pure*
/// 6 eps sqrt(k ln(1/beta))-LDP while being beta-close to M on every input.
///
/// Because Pr[M~(x) = y] depends only on the Hamming distance d(x, y), the
/// class implements an exact analysis: the realized pure-DP parameter
/// (max log ratio over all input pairs and outputs, found by enumerating
/// feasible distance pairs) and the exact total-variation distance to M.

#ifndef LDPHH_LDP_COMPOSITION_H_
#define LDPHH_LDP_COMPOSITION_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace ldphh {

/// \brief Theorem 5.1's algorithm M~ over {0,1}^k.
class ShellComposedRR {
 public:
  /// \param epsilon  per-bit RR parameter.
  /// \param k        number of bits.
  /// \param beta     shell failure probability (Theorem 5.1's beta).
  ShellComposedRR(double epsilon, int k, double beta);

  /// Applies M~ to \p x (k bits, one per vector entry).
  std::vector<uint8_t> Apply(const std::vector<uint8_t>& x, Rng& rng) const;

  /// Applies the plain composition M (k independent RRs) — the reference.
  std::vector<uint8_t> ApplyPlain(const std::vector<uint8_t>& x, Rng& rng) const;

  /// The "good" shell: distances d with |d - k/(e^eps+1)| <= sqrt(k ln(2/beta)/2).
  int shell_lo() const { return shell_lo_; }
  int shell_hi() const { return shell_hi_; }

  /// Pr[M(x) lands outside the shell] (exact; <= beta by Hoeffding).
  double OutOfShellProb() const;

  /// \brief Exact realized pure-DP parameter of M~:
  /// max over x, x', y of ln(Pr[M~(x)=y] / Pr[M~(x')=y]).
  double ExactEpsilon() const;

  /// Theorem 5.1's guaranteed bound eps~ = 6 eps sqrt(k ln(1/beta)).
  double EpsilonBound() const;

  /// Exact total-variation distance between M~(x) and M(x) (same for all x).
  double TvToPlainComposition() const;

  /// The naive composition price k * eps (comparison row).
  double NaiveEpsilon() const { return epsilon_ * static_cast<double>(k_); }

  /// log Pr[M~(x) = y] for an output at Hamming distance \p d from x.
  double LogProbAtDistance(int d) const;
  /// log Pr[M(x) = y] at distance d (plain composition).
  double LogPlainProbAtDistance(int d) const;

  int k() const { return k_; }
  double epsilon() const { return epsilon_; }
  double beta() const { return beta_; }

 private:
  bool InShell(int d) const { return d >= shell_lo_ && d <= shell_hi_; }
  /// Is there an output y with d(x,y)=da, d(x',y)=db given d(x,x')=h?
  static bool Feasible(int k, int h, int da, int db);
  /// Any feasible db outside the shell for this (h, da)?
  bool FeasibleOutside(int h, int da) const;

  double epsilon_;
  int k_;
  double beta_;
  double keep_prob_;       ///< e^eps / (e^eps + 1).
  int shell_lo_;
  int shell_hi_;
  double log_out_prob_;    ///< log of the per-output mass outside the shell.
  double out_shell_mass_;  ///< Pr[M(x) outside shell] (exact).
  std::vector<double> log_out_count_by_d_;  ///< log C(k,d) for d outside.
};

}  // namespace ldphh

#endif  // LDPHH_LDP_COMPOSITION_H_
