/// \file randomizer.h
/// \brief Discrete local randomizers with exact output distributions.
///
/// A `LocalRandomizer` is the object of Definition 2.2: a randomized map
/// from a finite input set to a finite output set. Exposing exact log
/// probabilities lets the library *verify* differential privacy claims
/// numerically (Definition 1.1 / 2.1), build privacy-loss distributions
/// (Section 4), and compute the density ratios GenProt needs (Section 6).

#ifndef LDPHH_LDP_RANDOMIZER_H_
#define LDPHH_LDP_RANDOMIZER_H_

#include <cmath>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace ldphh {

/// \brief A finite-domain local randomizer with exact probabilities.
class LocalRandomizer {
 public:
  virtual ~LocalRandomizer() = default;

  /// Number of distinct inputs.
  virtual int num_inputs() const = 0;
  /// Number of distinct outputs.
  virtual int num_outputs() const = 0;
  /// Short diagnostic name.
  virtual std::string Name() const = 0;

  /// log Pr[A(x) = y]; -inf allowed.
  virtual double LogProb(int x, int y) const = 0;

  /// Samples an output for input \p x. The default implementation inverts
  /// the cdf; subclasses may override with a faster sampler.
  virtual int Sample(int x, Rng& rng) const;

  /// Pr[A(x) = y].
  double Prob(int x, int y) const { return std::exp(LogProb(x, y)); }

  /// \brief Exact pure-DP parameter: max over x, x', y of |log ratio|.
  ///
  /// Infinite if some output has positive probability under one input and
  /// zero under another.
  double ExactEpsilon() const;

  /// \brief Exact hockey-stick divergence delta(eps) =
  /// max_{x,x'} sum_y max(0, Pr[A(x)=y] - e^eps Pr[A(x')=y]).
  double ExactDelta(double eps) const;

  /// Verifies that every row is a probability distribution (sums to 1
  /// within tolerance). For tests.
  Status CheckStochastic(double tol = 1e-9) const;
};

/// \brief Binary randomized response (Warner): keep the bit w.p.
/// e^eps/(e^eps+1). The canonical eps-LDP randomizer (Section 5's M_i).
class BinaryRandomizedResponse final : public LocalRandomizer {
 public:
  explicit BinaryRandomizedResponse(double epsilon);

  int num_inputs() const override { return 2; }
  int num_outputs() const override { return 2; }
  std::string Name() const override { return "binary-rr"; }
  double LogProb(int x, int y) const override;
  int Sample(int x, Rng& rng) const override;

  double epsilon() const { return epsilon_; }
  double keep_prob() const { return keep_prob_; }

 private:
  double epsilon_;
  double keep_prob_;
};

/// \brief k-ary randomized response over [K].
class KaryRandomizedResponse final : public LocalRandomizer {
 public:
  KaryRandomizedResponse(int k, double epsilon);

  int num_inputs() const override { return k_; }
  int num_outputs() const override { return k_; }
  std::string Name() const override { return "k-ary-rr"; }
  double LogProb(int x, int y) const override;
  int Sample(int x, Rng& rng) const override;

 private:
  int k_;
  double epsilon_;
  double keep_prob_;
  double other_prob_;
};

/// \brief The canonical (eps, delta)-LDP randomizer: with probability delta
/// output the input in the clear (a "privacy catastrophe"), otherwise run
/// eps-randomized response. Its hockey-stick divergence at eps is exactly
/// delta, making it the worst-case test input for GenProt (Section 6).
class LeakyRandomizedResponse final : public LocalRandomizer {
 public:
  LeakyRandomizedResponse(double epsilon, double delta);

  int num_inputs() const override { return 2; }
  /// Outputs: 0/1 = RR bit; 2/3 = leaked clear bit (distinct symbols so the
  /// failure event is visible, as in the worst-case construction).
  int num_outputs() const override { return 4; }
  std::string Name() const override { return "leaky-rr"; }
  double LogProb(int x, int y) const override;
  int Sample(int x, Rng& rng) const override;

  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }

 private:
  double epsilon_;
  double delta_;
  double keep_prob_;
};

}  // namespace ldphh

#endif  // LDPHH_LDP_RANDOMIZER_H_
