#include "src/ldp/grouposition.h"

#include <cmath>

#include "src/common/status.h"

namespace ldphh {

double AdvancedGroupositionEpsilon(double eps, int k, double delta) {
  LDPHH_CHECK(k >= 0, "AdvancedGroupositionEpsilon: k >= 0");
  LDPHH_CHECK(delta > 0.0 && delta < 1.0, "AdvancedGroupositionEpsilon: delta");
  const double kd = static_cast<double>(k);
  return kd * eps * eps / 2.0 + eps * std::sqrt(2.0 * kd * std::log(1.0 / delta));
}

double NaiveGroupEpsilon(double eps, int k) {
  return eps * static_cast<double>(k);
}

ApproxGroupPrivacy AdvancedGroupositionApprox(double eps, double delta, int k,
                                              double delta_prime) {
  ApproxGroupPrivacy out;
  out.eps_prime = AdvancedGroupositionEpsilon(eps, k, delta_prime);
  out.delta_total = delta + static_cast<double>(k) * delta_prime;
  return out;
}

double MaxInformationBound(double eps, uint64_t n, double beta) {
  const double nd = static_cast<double>(n);
  return nd * eps * eps / 2.0 + eps * std::sqrt(2.0 * nd * std::log(1.0 / beta));
}

double CentralMaxInformationBound(double eps, uint64_t n) {
  return eps * static_cast<double>(n);
}

double ExactGroupEpsilon(const LocalRandomizer& a, int x, int x_prime, int k,
                         double delta) {
  const auto pld =
      PrivacyLossDistribution::FromRandomizer(a, x, x_prime).SelfCompose(k);
  return pld.EpsilonForDelta(delta);
}

double ExactGroupDelta(const LocalRandomizer& a, int x, int x_prime, int k,
                       double eps_prime) {
  const auto pld =
      PrivacyLossDistribution::FromRandomizer(a, x, x_prime).SelfCompose(k);
  return pld.DeltaForEpsilon(eps_prime);
}

}  // namespace ldphh
