#include "src/ldp/randomizer.h"

#include <algorithm>
#include <limits>

namespace ldphh {

int LocalRandomizer::Sample(int x, Rng& rng) const {
  const double u = rng.UniformDouble();
  double cum = 0.0;
  const int m = num_outputs();
  for (int y = 0; y < m; ++y) {
    cum += Prob(x, y);
    if (u < cum) return y;
  }
  return m - 1;  // Numerical slack.
}

double LocalRandomizer::ExactEpsilon() const {
  double worst = 0.0;
  const int n = num_inputs();
  const int m = num_outputs();
  for (int x = 0; x < n; ++x) {
    for (int xp = 0; xp < n; ++xp) {
      if (x == xp) continue;
      for (int y = 0; y < m; ++y) {
        const double lp = LogProb(x, y);
        const double lq = LogProb(xp, y);
        if (lp == -std::numeric_limits<double>::infinity()) continue;
        if (lq == -std::numeric_limits<double>::infinity()) {
          return std::numeric_limits<double>::infinity();
        }
        worst = std::max(worst, lp - lq);
      }
    }
  }
  return worst;
}

double LocalRandomizer::ExactDelta(double eps) const {
  double worst = 0.0;
  const int n = num_inputs();
  const int m = num_outputs();
  for (int x = 0; x < n; ++x) {
    for (int xp = 0; xp < n; ++xp) {
      if (x == xp) continue;
      double acc = 0.0;
      for (int y = 0; y < m; ++y) {
        acc += std::max(0.0, Prob(x, y) - std::exp(eps) * Prob(xp, y));
      }
      worst = std::max(worst, acc);
    }
  }
  return worst;
}

Status LocalRandomizer::CheckStochastic(double tol) const {
  for (int x = 0; x < num_inputs(); ++x) {
    double acc = 0.0;
    for (int y = 0; y < num_outputs(); ++y) acc += Prob(x, y);
    if (std::abs(acc - 1.0) > tol) {
      return Status::Internal(Name() + ": row " + std::to_string(x) +
                              " sums to " + std::to_string(acc));
    }
  }
  return Status::OK();
}

BinaryRandomizedResponse::BinaryRandomizedResponse(double epsilon)
    : epsilon_(epsilon) {
  LDPHH_CHECK(epsilon > 0.0, "BinaryRandomizedResponse: epsilon must be > 0");
  keep_prob_ = std::exp(epsilon) / (std::exp(epsilon) + 1.0);
}

double BinaryRandomizedResponse::LogProb(int x, int y) const {
  LDPHH_DCHECK(x >= 0 && x < 2 && y >= 0 && y < 2, "binary-rr: out of range");
  return std::log(x == y ? keep_prob_ : 1.0 - keep_prob_);
}

int BinaryRandomizedResponse::Sample(int x, Rng& rng) const {
  return rng.Bernoulli(keep_prob_) ? x : 1 - x;
}

KaryRandomizedResponse::KaryRandomizedResponse(int k, double epsilon)
    : k_(k), epsilon_(epsilon) {
  LDPHH_CHECK(k >= 2, "KaryRandomizedResponse: k >= 2");
  LDPHH_CHECK(epsilon > 0.0, "KaryRandomizedResponse: epsilon must be > 0");
  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + static_cast<double>(k) - 1.0);
  other_prob_ = 1.0 / (e + static_cast<double>(k) - 1.0);
}

double KaryRandomizedResponse::LogProb(int x, int y) const {
  LDPHH_DCHECK(x >= 0 && x < k_ && y >= 0 && y < k_, "k-ary-rr: out of range");
  return std::log(x == y ? keep_prob_ : other_prob_);
}

int KaryRandomizedResponse::Sample(int x, Rng& rng) const {
  if (rng.Bernoulli(keep_prob_)) return x;
  int other = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(k_ - 1)));
  if (other >= x) ++other;
  return other;
}

LeakyRandomizedResponse::LeakyRandomizedResponse(double epsilon, double delta)
    : epsilon_(epsilon), delta_(delta) {
  LDPHH_CHECK(epsilon > 0.0, "LeakyRandomizedResponse: epsilon must be > 0");
  LDPHH_CHECK(delta >= 0.0 && delta < 1.0, "LeakyRandomizedResponse: delta");
  keep_prob_ = std::exp(epsilon) / (std::exp(epsilon) + 1.0);
}

double LeakyRandomizedResponse::LogProb(int x, int y) const {
  LDPHH_DCHECK(x >= 0 && x < 2 && y >= 0 && y < 4, "leaky-rr: out of range");
  if (y >= 2) {
    // Clear-channel symbol: emitted only on the delta-failure, and only for
    // the matching input bit.
    return (y - 2 == x) ? std::log(delta_)
                        : -std::numeric_limits<double>::infinity();
  }
  const double rr = (x == y) ? keep_prob_ : 1.0 - keep_prob_;
  return std::log((1.0 - delta_) * rr);
}

int LeakyRandomizedResponse::Sample(int x, Rng& rng) const {
  if (rng.Bernoulli(delta_)) return 2 + x;
  return rng.Bernoulli(keep_prob_) ? x : 1 - x;
}

}  // namespace ldphh
