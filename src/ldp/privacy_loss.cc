#include "src/ldp/privacy_loss.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "src/obs/metrics.h"

namespace ldphh {

namespace {
constexpr double kGrid = 1e-9;
}  // namespace

int64_t PrivacyLossDistribution::Quantize(double loss) {
  return static_cast<int64_t>(std::llround(loss / kGrid));
}

double PrivacyLossDistribution::Dequantize(int64_t q) {
  return static_cast<double>(q) * kGrid;
}

PrivacyLossDistribution PrivacyLossDistribution::FromRandomizer(
    const LocalRandomizer& a, int x, int x_prime) {
  PrivacyLossDistribution pld;
  for (int y = 0; y < a.num_outputs(); ++y) {
    const double p = a.Prob(x, y);
    if (p <= 0.0) continue;
    const double q = a.Prob(x_prime, y);
    if (q <= 0.0) {
      pld.infinity_mass_ += p;
      continue;
    }
    pld.atoms_[Quantize(std::log(p) - std::log(q))] += p;
  }
  return pld;
}

PrivacyLossDistribution PrivacyLossDistribution::Identity() {
  PrivacyLossDistribution pld;
  pld.atoms_[0] = 1.0;
  return pld;
}

PrivacyLossDistribution PrivacyLossDistribution::Compose(
    const PrivacyLossDistribution& other) const {
  PrivacyLossDistribution out;
  // Infinity mass absorbs: any component hitting an impossible output makes
  // the composed output impossible under x'.
  out.infinity_mass_ =
      infinity_mass_ + other.infinity_mass_ - infinity_mass_ * other.infinity_mass_;
  for (const auto& [la, pa] : atoms_) {
    for (const auto& [lb, pb] : other.atoms_) {
      out.atoms_[la + lb] += pa * pb;
    }
  }
  return out;
}

PrivacyLossDistribution PrivacyLossDistribution::SelfCompose(int k) const {
  LDPHH_CHECK(k >= 0, "SelfCompose: negative k");
  PrivacyLossDistribution acc = Identity();
  PrivacyLossDistribution base = *this;
  while (k > 0) {
    if (k & 1) acc = acc.Compose(base);
    k >>= 1;
    if (k > 0) base = base.Compose(base);
  }
  return acc;
}

double PrivacyLossDistribution::DeltaForEpsilon(double eps) const {
  double acc = infinity_mass_;
  for (const auto& [lq, p] : atoms_) {
    const double loss = Dequantize(lq);
    if (loss > eps) acc += p * (1.0 - std::exp(eps - loss));
  }
  return acc;
}

double PrivacyLossDistribution::EpsilonForDelta(double delta) const {
  if (infinity_mass_ > delta) {
    return std::numeric_limits<double>::infinity();
  }
  if (DeltaForEpsilon(0.0) <= delta) {
    double lo = 0.0;
    // delta(0) already small enough; still search down to negative eps? The
    // standard convention reports the smallest nonnegative eps.
    return lo;
  }
  double lo = 0.0;
  double hi = std::max(1e-9, MaxLoss());
  for (int it = 0; it < 200 && hi - lo > 1e-12 * std::max(1.0, hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (DeltaForEpsilon(mid) <= delta) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double PrivacyLossDistribution::ExpectedLoss() const {
  double acc = 0.0;
  for (const auto& [lq, p] : atoms_) acc += p * Dequantize(lq);
  return acc;  // Conditional on finite loss; callers check infinity_mass.
}

double PrivacyLossDistribution::MaxLoss() const {
  if (atoms_.empty()) return 0.0;
  return Dequantize(atoms_.rbegin()->first);
}

// ------------------------------------------------------------------ ledger --

namespace {

struct LedgerInstruments {
  std::shared_ptr<obs::Gauge> epsilon_spent;
  std::shared_ptr<obs::Counter> reports_accounted;
};

LedgerInstruments& Instruments() {
  static LedgerInstruments* const g = new LedgerInstruments{
      obs::MetricsRegistry::Global().NewGauge(
          "ldphh_privacy_epsilon_spent",
          "Worst-case cumulative per-user epsilon (max per-report eps "
          "accepted)"),
      obs::MetricsRegistry::Global().NewCounter(
          "ldphh_privacy_reports_accounted_total",
          "Randomized reports whose privacy spend was accounted"),
  };
  return *g;
}

}  // namespace

PrivacyBudgetLedger& PrivacyBudgetLedger::Global() {
  // Only the process-wide ledger is an admin-plane citizen; test-local
  // ledgers stay out of the global registries. Registration happens here
  // rather than in the constructor, where `this == &Global()` would
  // recurse into this very initializer.
  static PrivacyBudgetLedger* const g = [] {
    auto* ledger = new PrivacyBudgetLedger();
    ledger->health_ = obs::HealthRegistry::Global().Register(
        "privacy_budget", [ledger] { return ledger->BudgetHealth(); });
    ledger->statusz_ = obs::StatuszRegistry::Global().Register(
        "privacy", [ledger](obs::JsonWriter& w) {
          double max_eps, volume, budget;
          uint64_t reports;
          {
            MutexLock lock(&ledger->mu_);
            max_eps = ledger->max_epsilon_;
            volume = ledger->weighted_volume_;
            budget = ledger->epsilon_budget_;
            reports = ledger->reports_;
          }
          w.BeginObject();
          w.Key("max_epsilon").Double(max_eps);
          w.Key("weighted_epsilon_volume").Double(volume);
          w.Key("reports_accounted").Uint(reports);
          w.Key("epsilon_budget").Double(budget);
          w.Key("budget_exhausted").Bool(budget > 0.0 && max_eps > budget);
          w.EndObject();
        });
    return ledger;
  }();
  return *g;
}

PrivacyBudgetLedger::PrivacyBudgetLedger() { Instruments(); }

void PrivacyBudgetLedger::RecordSpend(double eps, uint64_t reports,
                                      std::string_view scope) {
  if (reports == 0) return;
  SpendHook hook;
  {
    MutexLock lock(&mu_);
    max_epsilon_ = std::max(max_epsilon_, eps);
    weighted_volume_ += eps * static_cast<double>(reports);
    reports_ += reports;
    if (this == &Global()) {
      Instruments().epsilon_spent->Set(max_epsilon_);
    }
    hook = hook_;
  }
  if (this == &Global()) {
    Instruments().reports_accounted->Increment(reports);
  }
  if (hook) hook(eps, reports, scope);
}

double PrivacyBudgetLedger::MaxEpsilon() const {
  MutexLock lock(&mu_);
  return max_epsilon_;
}

double PrivacyBudgetLedger::WeightedEpsilonVolume() const {
  MutexLock lock(&mu_);
  return weighted_volume_;
}

uint64_t PrivacyBudgetLedger::ReportsAccounted() const {
  MutexLock lock(&mu_);
  return reports_;
}

void PrivacyBudgetLedger::SetSpendHook(SpendHook hook) {
  MutexLock lock(&mu_);
  hook_ = std::move(hook);
}

void PrivacyBudgetLedger::SetEpsilonBudget(double budget) {
  MutexLock lock(&mu_);
  epsilon_budget_ = budget;
}

double PrivacyBudgetLedger::EpsilonBudget() const {
  MutexLock lock(&mu_);
  return epsilon_budget_;
}

Status PrivacyBudgetLedger::BudgetHealth() const {
  MutexLock lock(&mu_);
  if (epsilon_budget_ > 0.0 && max_epsilon_ > epsilon_budget_) {
    return Status::FailedPrecondition(
        "privacy budget exhausted: max epsilon " +
        std::to_string(max_epsilon_) + " exceeds declared budget " +
        std::to_string(epsilon_budget_));
  }
  return Status::OK();
}

void PrivacyBudgetLedger::ResetForTesting() {
  MutexLock lock(&mu_);
  max_epsilon_ = 0.0;
  weighted_volume_ = 0.0;
  reports_ = 0;
  epsilon_budget_ = 0.0;
  if (this == &Global()) Instruments().epsilon_spent->Set(0.0);
}

}  // namespace ldphh
