#include "src/ldp/composition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math_util.h"
#include "src/common/status.h"

namespace ldphh {

ShellComposedRR::ShellComposedRR(double epsilon, int k, double beta)
    : epsilon_(epsilon), k_(k), beta_(beta) {
  LDPHH_CHECK(epsilon > 0.0, "ShellComposedRR: epsilon must be positive");
  LDPHH_CHECK(k >= 1, "ShellComposedRR: k must be >= 1");
  LDPHH_CHECK(beta > 0.0 && beta < 1.0, "ShellComposedRR: beta in (0,1)");
  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + 1.0);
  const double center = static_cast<double>(k) / (e + 1.0);
  const double radius = std::sqrt(static_cast<double>(k) * std::log(2.0 / beta) / 2.0);
  shell_lo_ = std::max(0, static_cast<int>(std::ceil(center - radius)));
  shell_hi_ = std::min(k, static_cast<int>(std::floor(center + radius)));
  LDPHH_CHECK(shell_lo_ <= shell_hi_, "ShellComposedRR: empty shell (beta too large)");

  // Exact out-of-shell mass of M(x): sum over out-of-shell distances of
  // C(k,d) q^d p^{k-d}, and the log cardinality of the out-of-shell set.
  double out_mass_log = -std::numeric_limits<double>::infinity();
  double out_count_log = -std::numeric_limits<double>::infinity();
  for (int d = 0; d <= k; ++d) {
    if (InShell(d)) continue;
    const double lc = LogBinomial(static_cast<uint64_t>(k), static_cast<uint64_t>(d));
    out_count_log = LogSumExp(out_count_log, lc);
    out_mass_log = LogSumExp(out_mass_log, lc + LogPlainProbAtDistance(d));
  }
  if (out_count_log == -std::numeric_limits<double>::infinity()) {
    // Shell covers the whole cube; M~ == M and no output ever re-routes.
    out_shell_mass_ = 0.0;
    log_out_prob_ = -std::numeric_limits<double>::infinity();
  } else {
    out_shell_mass_ = std::exp(out_mass_log);
    log_out_prob_ = out_mass_log - out_count_log;
  }
}

double ShellComposedRR::LogPlainProbAtDistance(int d) const {
  return static_cast<double>(d) * std::log(1.0 - keep_prob_) +
         static_cast<double>(k_ - d) * std::log(keep_prob_);
}

double ShellComposedRR::LogProbAtDistance(int d) const {
  if (InShell(d)) return LogPlainProbAtDistance(d);
  return log_out_prob_;
}

double ShellComposedRR::OutOfShellProb() const { return out_shell_mass_; }

std::vector<uint8_t> ShellComposedRR::ApplyPlain(const std::vector<uint8_t>& x,
                                                 Rng& rng) const {
  LDPHH_CHECK(static_cast<int>(x.size()) == k_, "ApplyPlain: wrong length");
  std::vector<uint8_t> y(x);
  for (auto& bit : y) {
    if (!rng.Bernoulli(keep_prob_)) bit ^= 1;
  }
  return y;
}

std::vector<uint8_t> ShellComposedRR::Apply(const std::vector<uint8_t>& x,
                                            Rng& rng) const {
  LDPHH_CHECK(static_cast<int>(x.size()) == k_, "Apply: wrong length");
  std::vector<uint8_t> y = ApplyPlain(x, rng);
  int d = 0;
  for (int i = 0; i < k_; ++i) d += (y[static_cast<size_t>(i)] != x[static_cast<size_t>(i)]);
  if (InShell(d)) return y;

  // Re-route: uniform over outputs outside the shell. Sample the distance
  // first (weights C(k,d) for out-of-shell d), then flip that many uniformly
  // chosen coordinates of x.
  std::vector<double> weights;
  std::vector<int> dists;
  double total_log = -std::numeric_limits<double>::infinity();
  for (int dd = 0; dd <= k_; ++dd) {
    if (InShell(dd)) continue;
    const double lc =
        LogBinomial(static_cast<uint64_t>(k_), static_cast<uint64_t>(dd));
    dists.push_back(dd);
    weights.push_back(lc);
    total_log = LogSumExp(total_log, lc);
  }
  // CDF inversion in log space.
  const double u = std::max(1e-300, rng.UniformDouble());
  double acc = -std::numeric_limits<double>::infinity();
  int chosen = dists.back();
  for (size_t i = 0; i < dists.size(); ++i) {
    acc = LogSumExp(acc, weights[i]);
    if (std::exp(acc - total_log) >= u) {
      chosen = dists[i];
      break;
    }
  }
  // Flip `chosen` distinct random coordinates (Fisher-Yates prefix).
  std::vector<int> idx(static_cast<size_t>(k_));
  for (int i = 0; i < k_; ++i) idx[static_cast<size_t>(i)] = i;
  for (int i = 0; i < chosen; ++i) {
    const int j = i + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(k_ - i)));
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  std::vector<uint8_t> out(x);
  for (int i = 0; i < chosen; ++i) out[static_cast<size_t>(idx[static_cast<size_t>(i)])] ^= 1;
  return out;
}

bool ShellComposedRR::Feasible(int k, int h, int da, int db) {
  if (da < 0 || da > k || db < 0 || db > k) return false;
  if (da + db < h) return false;
  if (std::abs(da - db) > h) return false;
  if (da + db > 2 * k - h) return false;
  return (da + db - h) % 2 == 0;
}

bool ShellComposedRR::FeasibleOutside(int h, int da) const {
  // Feasible db for fixed (h, da) form an arithmetic progression of step 2:
  // db in [max(h-da, da-h), min(da+h, 2k-h-da)] with db = da + h (mod 2).
  const int lo = std::max(h - da, da - h);
  const int hi = std::min(da + h, 2 * k_ - h - da);
  if (lo > hi) return false;
  auto aligned = [&](int v) {
    if ((v + da + h) % 2 != 0) ++v;
    return v;
  };
  // Any aligned value in [lo, hi] outside [shell_lo_, shell_hi_]?
  const int first = aligned(lo);
  if (first <= hi && first < shell_lo_) return true;                  // Below shell.
  const int above = aligned(std::max(lo, shell_hi_ + 1));
  if (above <= hi) return true;                                       // Above shell.
  return false;
}

double ShellComposedRR::ExactEpsilon() const {
  // Pr[M~(x)=y] depends on d(x,y) and shell membership only; maximize the
  // log ratio over d(x,x') = h and feasible distance pairs.
  double worst = 0.0;
  const bool has_outside = log_out_prob_ != -std::numeric_limits<double>::infinity();
  for (int h = 1; h <= k_; ++h) {
    // Case in-in: ratio = (q/p)^{da - db}; maximized at extreme feasible
    // distances within the shell.
    for (int da = shell_lo_; da <= shell_hi_; ++da) {
      for (int db = shell_lo_; db <= shell_hi_; ++db) {
        if (!Feasible(k_, h, da, db)) continue;
        worst = std::max(worst, std::abs(LogPlainProbAtDistance(da) -
                                         LogPlainProbAtDistance(db)));
      }
      if (has_outside && FeasibleOutside(h, da)) {
        // Cases in-out and out-in.
        worst = std::max(worst,
                         std::abs(LogPlainProbAtDistance(da) - log_out_prob_));
      }
    }
    // Case out-out: identical per-output mass; ratio 1.
  }
  return worst;
}

double ShellComposedRR::EpsilonBound() const {
  return 6.0 * epsilon_ *
         std::sqrt(static_cast<double>(k_) * std::log(1.0 / beta_));
}

double ShellComposedRR::TvToPlainComposition() const {
  // M~ and M agree inside the shell; outside, M~ spreads out_shell_mass_
  // uniformly. TV = 1/2 sum_{d outside} C(k,d) |P_out - P_M(d)|.
  double acc = 0.0;
  for (int d = 0; d <= k_; ++d) {
    if (InShell(d)) continue;
    const double lc =
        LogBinomial(static_cast<uint64_t>(k_), static_cast<uint64_t>(d));
    const double pm = std::exp(lc + LogPlainProbAtDistance(d));
    const double pt = std::exp(lc + log_out_prob_);
    acc += std::abs(pt - pm);
  }
  return 0.5 * acc;
}

}  // namespace ldphh
