/// \file grouposition.h
/// \brief Advanced grouposition and max-information (Section 4).
///
/// In the local model, changing k of the n inputs changes the transcript
/// distribution by roughly sqrt(k) * eps rather than k * eps: the privacy
/// loss is a sum of k independent, mean-O(eps^2) bounded terms, so Hoeffding
/// concentrates it (Theorem 4.2). The same bound yields the max-information
/// guarantee of Theorem 4.5, which holds for *arbitrary* (non-product)
/// input distributions — unlike the central model.

#ifndef LDPHH_LDP_GROUPOSITION_H_
#define LDPHH_LDP_GROUPOSITION_H_

#include "src/ldp/privacy_loss.h"
#include "src/ldp/randomizer.h"

namespace ldphh {

/// Theorem 4.2: for an eps-LDP protocol and inputs differing in k entries,
/// Pr[loss > eps'] <= delta for eps' = k eps^2 / 2 + eps sqrt(2 k ln(1/delta)).
double AdvancedGroupositionEpsilon(double eps, int k, double delta);

/// The naive (central-model style) group-privacy parameter k * eps.
double NaiveGroupEpsilon(double eps, int k);

/// Theorem 4.3: the approximate-LDP extension. Returns the eps' of
/// Theorem 4.2 evaluated at delta'; the caller's total delta becomes
/// delta + k * delta_prime.
struct ApproxGroupPrivacy {
  double eps_prime;
  double delta_total;
};
ApproxGroupPrivacy AdvancedGroupositionApprox(double eps, double delta, int k,
                                              double delta_prime);

/// Theorem 4.5: beta-approximate max-information bound (in nats) of an
/// eps-LDP protocol on n users: n eps^2 / 2 + eps sqrt(2 n ln(1/beta)).
double MaxInformationBound(double eps, uint64_t n, double beta);

/// The central-model pure-DP max-information bound O(eps * n) (Dwork et
/// al.); the comparison row for the F6 experiment. Uses the constant from
/// [8]: I_inf(A, n) <= eps * n * log2(e) bits -> eps * n nats.
double CentralMaxInformationBound(double eps, uint64_t n);

/// \brief Exact group-privacy curve for a product of k identical
/// randomizers, all k coordinates flipped from x to x'.
///
/// Returns the exact smallest eps' with hockey-stick delta(eps') <= delta,
/// computed from the k-fold convolution of the single-coordinate PLD. This
/// is the ground truth the Theorem 4.2 bound is compared against.
double ExactGroupEpsilon(const LocalRandomizer& a, int x, int x_prime, int k,
                         double delta);

/// Exact delta at a given eps' for the same setting.
double ExactGroupDelta(const LocalRandomizer& a, int x, int x_prime, int k,
                       double eps_prime);

}  // namespace ldphh

#endif  // LDPHH_LDP_GROUPOSITION_H_
