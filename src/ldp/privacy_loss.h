/// \file privacy_loss.h
/// \brief Privacy-loss distributions (Definition 4.1) with exact arithmetic
/// on discrete randomizers.
///
/// The privacy loss random variable L_{A(x), A(x')} takes value
/// ln(Pr[A(x)=y]/Pr[A(x')=y]) with y ~ A(x). Composing independent
/// randomizers convolves their loss distributions; the library uses this to
/// compute *exact* group-privacy curves delta(eps') for k-user groups and
/// compare them against the advanced-grouposition bound of Theorem 4.2.

#ifndef LDPHH_LDP_PRIVACY_LOSS_H_
#define LDPHH_LDP_PRIVACY_LOSS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/ldp/randomizer.h"

namespace ldphh {

/// \brief A discrete privacy-loss distribution.
///
/// Losses are kept on an exact quantized grid (1e-9 nats) so that repeated
/// convolution of identical atoms (e.g. +-eps for randomized response)
/// merges exactly instead of exploding the support.
class PrivacyLossDistribution {
 public:
  /// The PLD of the pair (A(x), A(x')).
  static PrivacyLossDistribution FromRandomizer(const LocalRandomizer& a, int x,
                                                int x_prime);

  /// The trivial PLD (loss identically 0).
  static PrivacyLossDistribution Identity();

  /// PLD of running both mechanisms independently (loss = sum of losses).
  PrivacyLossDistribution Compose(const PrivacyLossDistribution& other) const;

  /// k-fold self-composition (exponentiation by squaring).
  PrivacyLossDistribution SelfCompose(int k) const;

  /// Hockey-stick divergence: delta(eps) = E_{l ~ L}[max(0, 1 - e^{eps - l})]
  /// plus any mass on outputs impossible under x'.
  double DeltaForEpsilon(double eps) const;

  /// Smallest eps with delta(eps) <= delta (bisection; inf if impossible).
  double EpsilonForDelta(double delta) const;

  /// E[L]; the "expected privacy loss" (= KL divergence), at most eps^2/2
  /// for an eps-DP randomizer (used in the Theorem 4.2 proof).
  double ExpectedLoss() const;

  /// Largest finite loss in the support.
  double MaxLoss() const;

  /// Mass on outputs with Pr[A(x')=y] = 0 (infinite loss).
  double infinity_mass() const { return infinity_mass_; }

  /// Number of support atoms (diagnostics).
  size_t SupportSize() const { return atoms_.size(); }

 private:
  PrivacyLossDistribution() = default;

  static int64_t Quantize(double loss);
  static double Dequantize(int64_t q);

  std::map<int64_t, double> atoms_;  ///< quantized loss -> probability.
  double infinity_mass_ = 0.0;
};

}  // namespace ldphh

#endif  // LDPHH_LDP_PRIVACY_LOSS_H_
