/// \file privacy_loss.h
/// \brief Privacy-loss distributions (Definition 4.1) with exact arithmetic
/// on discrete randomizers.
///
/// The privacy loss random variable L_{A(x), A(x')} takes value
/// ln(Pr[A(x)=y]/Pr[A(x')=y]) with y ~ A(x). Composing independent
/// randomizers convolves their loss distributions; the library uses this to
/// compute *exact* group-privacy curves delta(eps') for k-user groups and
/// compare them against the advanced-grouposition bound of Theorem 4.2.

#ifndef LDPHH_LDP_PRIVACY_LOSS_H_
#define LDPHH_LDP_PRIVACY_LOSS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/ldp/randomizer.h"
#include "src/obs/health.h"
#include "src/obs/statusz.h"

namespace ldphh {

/// \brief A discrete privacy-loss distribution.
///
/// Losses are kept on an exact quantized grid (1e-9 nats) so that repeated
/// convolution of identical atoms (e.g. +-eps for randomized response)
/// merges exactly instead of exploding the support.
class PrivacyLossDistribution {
 public:
  /// The PLD of the pair (A(x), A(x')).
  static PrivacyLossDistribution FromRandomizer(const LocalRandomizer& a, int x,
                                                int x_prime);

  /// The trivial PLD (loss identically 0).
  static PrivacyLossDistribution Identity();

  /// PLD of running both mechanisms independently (loss = sum of losses).
  PrivacyLossDistribution Compose(const PrivacyLossDistribution& other) const;

  /// k-fold self-composition (exponentiation by squaring).
  PrivacyLossDistribution SelfCompose(int k) const;

  /// Hockey-stick divergence: delta(eps) = E_{l ~ L}[max(0, 1 - e^{eps - l})]
  /// plus any mass on outputs impossible under x'.
  double DeltaForEpsilon(double eps) const;

  /// Smallest eps with delta(eps) <= delta (bisection; inf if impossible).
  double EpsilonForDelta(double delta) const;

  /// E[L]; the "expected privacy loss" (= KL divergence), at most eps^2/2
  /// for an eps-DP randomizer (used in the Theorem 4.2 proof).
  double ExpectedLoss() const;

  /// Largest finite loss in the support.
  double MaxLoss() const;

  /// Mass on outputs with Pr[A(x')=y] = 0 (infinite loss).
  double infinity_mass() const { return infinity_mass_; }

  /// Number of support atoms (diagnostics).
  size_t SupportSize() const { return atoms_.size(); }

 private:
  PrivacyLossDistribution() = default;

  static int64_t Quantize(double loss);
  static double Dequantize(int64_t q);

  std::map<int64_t, double> atoms_;  ///< quantized loss -> probability.
  double infinity_mass_ = 0.0;
};

/// \brief Runtime accounting of privacy budget actually spent by the
/// serving stack.
///
/// The PLD machinery above answers "what does running this mechanism
/// cost?" analytically; the ledger records what the ingest path *did*: each
/// batch of accepted reports under an eps-LDP randomizer calls
/// `RecordSpend(eps, reports)`. Under pure worst-case sequential
/// composition the cumulative per-user loss is bounded by the max eps seen
/// (each user contributes one report per epoch under one randomizer); the
/// ledger conservatively tracks both the max and the eps-weighted report
/// volume so an operator can apply either view.
///
/// The cumulative epsilon is exported as the `ldphh_privacy_epsilon_spent`
/// gauge and accounted reports as `ldphh_privacy_reports_accounted_total`.
/// A forward hook lets a multi-tenant budget manager observe every spend
/// (tenant attribution rides in via `scope`) and enforce its own caps.
class PrivacyBudgetLedger {
 public:
  /// The process-wide ledger (never destroyed) — what the serving stack
  /// records into.
  static PrivacyBudgetLedger& Global();

  PrivacyBudgetLedger();
  PrivacyBudgetLedger(const PrivacyBudgetLedger&) = delete;
  PrivacyBudgetLedger& operator=(const PrivacyBudgetLedger&) = delete;

  /// Called once per accepted batch: \p eps is the randomizer's per-report
  /// budget, \p reports how many reports the batch carried. \p scope
  /// attributes the spend (empty = default tenant); the ledger itself does
  /// not partition by scope — it forwards it to the hook.
  void RecordSpend(double eps, uint64_t reports, std::string_view scope = {});

  /// Worst-case cumulative per-user epsilon: the largest per-report eps any
  /// accepted report was randomized under.
  double MaxEpsilon() const;

  /// Sum of eps * reports across all spends (population-level loss volume;
  /// grows without bound by design — it is a counter, not a bound).
  double WeightedEpsilonVolume() const;

  /// Total reports accounted.
  uint64_t ReportsAccounted() const;

  /// Observes every RecordSpend (called outside the ledger lock). One hook
  /// at a time; pass nullptr to clear. The forward point for multi-tenant
  /// budget managers.
  using SpendHook =
      std::function<void(double eps, uint64_t reports, std::string_view scope)>;
  void SetSpendHook(SpendHook hook);

  /// An operator-declared cap on MaxEpsilon(): while the cap is positive
  /// and exceeded, the ledger's registered health check fails (/healthz
  /// goes 503 — spending past the declared budget is an operator-must-act
  /// condition, not a self-healing one). Zero (default) = no cap.
  void SetEpsilonBudget(double budget);
  double EpsilonBudget() const;

  /// Zeroes the ledger (gauges and budget included). Test isolation only.
  void ResetForTesting();

 private:
  /// What the registered health check reports (OK while MaxEpsilon() is
  /// within the budget or no budget is set).
  Status BudgetHealth() const;

  mutable Mutex mu_;
  double max_epsilon_ GUARDED_BY(mu_) = 0.0;
  double weighted_volume_ GUARDED_BY(mu_) = 0.0;
  uint64_t reports_ GUARDED_BY(mu_) = 0;
  double epsilon_budget_ GUARDED_BY(mu_) = 0.0;
  SpendHook hook_ GUARDED_BY(mu_);

  /// Declared last (destroyed first); only the Global() ledger registers,
  /// and it is never destroyed.
  obs::HealthRegistry::Registration health_;
  obs::StatuszRegistry::Registration statusz_;
};

}  // namespace ldphh

#endif  // LDPHH_LDP_PRIVACY_LOSS_H_
