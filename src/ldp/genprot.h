/// \file genprot.h
/// \brief GenProt (Section 6, Theorem 6.1): a generic transformation of any
/// non-interactive (eps, delta)-LDP protocol into a pure 10eps-LDP protocol
/// with the same utility up to total-variation n((1/2+eps)^T + 6Tdelta e^eps/(1-e^-eps)).
///
/// Mechanics (rejection sampling): the public randomness contains T samples
/// y_{i,1..T} ~ A_i(bot) per user. User i computes the density ratios
/// p_{i,t} = Pr[A_i(x_i)=y_{i,t}] / (2 Pr[A_i(bot)=y_{i,t}]), clamps ratios
/// outside [e^{-2eps}/2, e^{2eps}/2] to 1/2, tosses a p_{i,t}-coin per t,
/// and reports a uniform index among the successes (all of [T] if none).
/// The server resolves index g_i to the public sample y_{i,g_i} and feeds
/// those to the original post-processing. The report is log2(T) =
/// O(log log n) bits.

#ifndef LDPHH_LDP_GENPROT_H_
#define LDPHH_LDP_GENPROT_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/ldp/randomizer.h"

namespace ldphh {

/// Outcome of a GenProt run.
struct GenProtRun {
  std::vector<int> chosen_index;      ///< g_i per user (the wire message).
  std::vector<int> resolved_output;   ///< y_{i, g_i}: the server-side view.
  int report_bits = 0;                ///< ceil(log2 T) per user.
};

/// \brief The GenProt transformation wrapping one shared randomizer.
class GenProt {
 public:
  /// \param randomizer     the (eps, delta)-LDP local randomizer A.
  /// \param eps            the eps used for clamping (the protocol's eps).
  /// \param t_count        T, the number of public samples per user.
  /// \param default_input  the fixed input "bot" used for the public samples.
  GenProt(const LocalRandomizer* randomizer, double eps, int t_count,
          int default_input);

  /// Theorem 6.1 lower bound on T: 5 ln(1/eps).
  static int MinT(double eps);
  /// Theorem 6.1 utility bound on the total-variation distance.
  static double UtilityTvBound(double eps, double delta, int t_count, uint64_t n);
  /// The privacy guarantee of the transformed protocol: 10 eps.
  static double PrivacyBound(double eps) { return 10.0 * eps; }

  /// Runs the transformation for all users; \p seed drives the public
  /// randomness (and the users' private coins, forked per user).
  GenProtRun Run(const std::vector<int>& inputs, uint64_t seed) const;

  /// \brief Exact output distribution over g in [T] of one user holding
  /// \p x, for fixed public samples \p public_ys.
  ///
  /// Used to *verify* pure DP: the max log-ratio over inputs of these
  /// distributions must be at most 10 eps for every public randomness.
  std::vector<double> UserOutputDistribution(const std::vector<int>& public_ys,
                                             int x) const;

  /// Exact realized epsilon for fixed public samples: max over input pairs
  /// and indices g of the log probability ratio.
  double ExactEpsilonForPublicRandomness(const std::vector<int>& public_ys) const;

  /// The clamped acceptance probability p_{i,t} for input x and sample y.
  double ClampedProb(int x, int y) const;

 private:
  const LocalRandomizer* randomizer_;
  double eps_;
  int t_count_;
  int default_input_;
  int report_bits_;
};

}  // namespace ldphh

#endif  // LDPHH_LDP_GENPROT_H_
