#include "src/ldp/anticoncentration.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"
#include "src/common/status.h"

namespace ldphh {

double BinomialMinExitProbability(uint64_t n, double p, uint64_t interval_len) {
  // Pre-compute the pmf once; slide the interval.
  std::vector<double> pmf(static_cast<size_t>(n) + 1);
  for (uint64_t k = 0; k <= n; ++k) {
    pmf[static_cast<size_t>(k)] = std::exp(LogBinomialPmf(n, k, p));
  }
  if (interval_len >= n) return 0.0;
  // Interval of integer length L covers L+1 support points.
  double window = 0.0;
  for (uint64_t k = 0; k <= interval_len; ++k) window += pmf[static_cast<size_t>(k)];
  double best_inside = window;
  for (uint64_t lo = 1; lo + interval_len <= n; ++lo) {
    window += pmf[static_cast<size_t>(lo + interval_len)];
    window -= pmf[static_cast<size_t>(lo - 1)];
    best_inside = std::max(best_inside, window);
  }
  return std::max(0.0, 1.0 - best_inside);
}

LowerBoundExperiment RunLowerBoundExperiment(uint64_t n, double eps,
                                             double block_constant, int trials,
                                             uint64_t seed) {
  LDPHH_CHECK(n >= 16, "RunLowerBoundExperiment: n too small");
  LDPHH_CHECK(eps > 0.0, "RunLowerBoundExperiment: eps must be positive");
  LowerBoundExperiment out;
  out.n = n;
  out.eps = eps;
  uint64_t m = static_cast<uint64_t>(block_constant * eps * eps *
                                     static_cast<double>(n));
  m = std::clamp<uint64_t>(m, 4, n);
  out.m = m;

  const double e = std::exp(eps);
  const double keep = e / (e + 1.0);
  const double debias = (e + 1.0) / (e - 1.0);

  Rng rng(seed);
  out.abs_errors.reserve(static_cast<size_t>(trials));
  for (int trial = 0; trial < trials; ++trial) {
    // S in {0,1}^m uniform; D replicates each bit into a block.
    uint64_t true_count = 0;
    double est = 0.0;
    // Walk the n users; user i holds bit S[floor(i * m / n)].
    uint64_t bit = 0;
    uint64_t block = ~uint64_t{0};
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t j = i * m / n;
      if (j != block) {
        block = j;
        bit = rng() & 1;
      }
      true_count += bit;
      // Binary randomized response + debiased sum: the canonical eps-LDP
      // counting protocol.
      const uint64_t reported = rng.Bernoulli(keep) ? bit : 1 - bit;
      est += debias * (static_cast<double>(reported) - 1.0 / (e + 1.0));
    }
    out.abs_errors.push_back(std::abs(est - static_cast<double>(true_count)));
  }
  return out;
}

double ErrorQuantile(const LowerBoundExperiment& exp, double beta) {
  LDPHH_CHECK(!exp.abs_errors.empty(), "ErrorQuantile: empty experiment");
  std::vector<double> errs = exp.abs_errors;
  std::sort(errs.begin(), errs.end());
  const double rank = (1.0 - beta) * static_cast<double>(errs.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return errs[std::min(idx, errs.size() - 1)];
}

double LowerBoundShape(uint64_t n, double eps, double beta) {
  return std::sqrt(static_cast<double>(n) * std::log(1.0 / beta)) / eps;
}

}  // namespace ldphh
