/// \file admin_server.h
/// \brief Embedded admin-plane HTTP server — /metrics, /statusz, /healthz.
///
/// A deliberately small, dependency-free HTTP/1.1 server that gives a
/// running process a live observability surface. Everything it serves
/// already exists in-process — MetricsRegistry, TraceRing, SpanSampler,
/// StatuszRegistry, HealthRegistry — this class is only the transport:
///
///   GET /              index of endpoints
///   GET /metrics       Prometheus text exposition (MetricsRegistry::DumpText)
///   GET /metrics.json  the same registry as JSON
///   GET /tracez        recent trace events, text (add .json for JSON)
///   GET /spanz         slow-span samples per family, JSON
///   GET /statusz       per-layer component snapshots, JSON
///   GET /healthz       liveness — 200 "ok" or 503 listing failing checks
///   GET /readyz        readiness — same, but includes readiness-only checks
///
/// Design: accepting runs on a `src/net/` EventLoop (shared with the
/// ingestion front-end — see src/net/event_loop.h); accepted connections
/// are handed to a small fixed worker pool over a bounded queue; past the
/// bound, connections get an inline 503 rather than piling up. Requests
/// are GET/HEAD-only, size-capped, read with a socket timeout, answered
/// with Connection: close. This is an operator port bound to localhost by
/// default — not a hardened public-facing server.
///
/// Scrapes are pull-only and allocate per request; nothing here sits on a
/// hot path. The hot paths pay only their metric/span recording costs.

#ifndef LDPHH_SERVER_ADMIN_SERVER_H_
#define LDPHH_SERVER_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/net/event_loop.h"
#include "src/net/listener.h"

namespace ldphh {

/// \brief One parsed admin request, as seen by a handler.
struct AdminRequest {
  std::string method;  ///< "GET" or "HEAD" (anything else is rejected).
  std::string target;  ///< Raw request target, e.g. "/tracez?n=100".
  std::string path;    ///< Target up to '?', e.g. "/tracez".
  std::string query;   ///< After '?', empty if none.
};

/// \brief What a handler returns; serialized as HTTP/1.1 with
/// Connection: close.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \brief The admin HTTP server (see file comment).
class AdminServer {
 public:
  struct Options {
    /// Interface to bind; loopback by default (operator port, not public).
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Worker threads serving accepted connections.
    int worker_threads = 2;
    /// Accepted-but-unserved connections beyond this get an inline 503.
    size_t max_pending_connections = 16;
    /// Requests larger than this (request line + headers) get a 431.
    size_t max_request_bytes = 8192;
    /// Per-socket receive timeout; a stalled client cannot pin a worker.
    int read_timeout_ms = 5000;
    /// Install the endpoint table above via
    /// RegisterDefaultAdminEndpoints(). Off for bare-transport tests.
    bool register_default_endpoints = true;
  };

  using Handler = std::function<AdminResponse(const AdminRequest&)>;

  /// Binds, listens, and starts the accept/worker threads. On success the
  /// server is live before this returns (port() is final).
  static StatusOr<std::unique_ptr<AdminServer>> Start(Options options);

  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers \p handler for exact-match \p path (replaces any previous
  /// handler for the path). Safe to call while serving.
  void Handle(std::string path, Handler handler);

  /// The bound port (the resolved one when Options::port was 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, drains workers, joins all threads. Idempotent; the
  /// destructor calls it.
  void Stop();

 private:
  explicit AdminServer(Options options);

  /// Loop-thread accept callback: enqueue for a worker or shed with 503.
  void HandleAccept(int fd);
  void WorkerLoop();
  void ServeConnection(int fd);
  AdminResponse Dispatch(const AdminRequest& request);
  static void WriteResponse(int fd, const std::string& method,
                            const AdminResponse& response);

  const Options options_;
  uint16_t port_ = 0;

  net::EventLoop loop_;
  std::unique_ptr<net::Listener> listener_;

  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;

  Mutex queue_mu_;
  CondVar queue_cv_{&queue_mu_};
  std::deque<int> pending_ GUARDED_BY(queue_mu_);  ///< Accepted fds awaiting
                                                   ///< a worker.

  mutable Mutex handlers_mu_;
  std::map<std::string, Handler> handlers_ GUARDED_BY(handlers_mu_);
};

/// Installs the default endpoint table (see file comment) on \p server.
/// Called by Start() unless Options::register_default_endpoints is off.
void RegisterDefaultAdminEndpoints(AdminServer& server);

}  // namespace ldphh

#endif  // LDPHH_SERVER_ADMIN_SERVER_H_
