#include "src/server/admin_server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/statusz.h"
#include "src/obs/trace.h"

namespace ldphh {

namespace {

struct AdminInstruments {
  std::shared_ptr<obs::Counter> requests;
  std::shared_ptr<obs::Counter> errors;
  std::shared_ptr<obs::Counter> rejected;
};

AdminInstruments& Instruments() {
  static AdminInstruments* const g = new AdminInstruments{
      obs::MetricsRegistry::Global().NewCounter(
          "ldphh_admin_requests_total", "Admin-plane HTTP requests served."),
      obs::MetricsRegistry::Global().NewCounter(
          "ldphh_admin_errors_total",
          "Admin-plane requests answered with a 4xx/5xx status."),
      obs::MetricsRegistry::Global().NewCounter(
          "ldphh_admin_rejected_total",
          "Connections shed with an inline 503 (pending queue full)."),
  };
  return *g;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

void SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Client went away; nothing useful to do.
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<AdminServer>> AdminServer::Start(Options options) {
  std::unique_ptr<AdminServer> server(new AdminServer(std::move(options)));
  LDPHH_RETURN_IF_ERROR(server->loop_.Start());
  auto listener_or = net::Listener::ListenTcp(
      &server->loop_, server->options_.bind_address, server->options_.port,
      [s = server.get()](int fd) { s->HandleAccept(fd); });
  if (!listener_or.ok()) {
    server->loop_.Stop();
    return listener_or.status();
  }
  server->listener_ = std::move(listener_or).value();
  server->port_ = server->listener_->port();
  if (server->options_.register_default_endpoints) {
    RegisterDefaultAdminEndpoints(*server);
  }
  const int workers = server->options_.worker_threads > 0
                          ? server->options_.worker_threads
                          : 1;
  for (int i = 0; i < workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  obs::TraceRing::Global().Record("admin", "start", "admin server listening",
                                  server->port_);
  return server;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, Handler handler) {
  MutexLock lk(&handlers_mu_);
  handlers_[std::move(path)] = std::move(handler);
}

void AdminServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Stop accepting first (closes the listening socket), then stop the loop.
  if (listener_) listener_->Close();
  loop_.Stop();
  {
    // Take the lock so a worker between its predicate check and its Wait()
    // cannot miss the wakeup.
    MutexLock lk(&queue_mu_);
    queue_cv_.SignalAll();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    MutexLock lk(&queue_mu_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
}

void AdminServer::HandleAccept(int fd) {
  bool enqueued = false;
  {
    MutexLock lk(&queue_mu_);
    if (pending_.size() < options_.max_pending_connections) {
      pending_.push_back(fd);
      enqueued = true;
      queue_cv_.Signal();
    }
  }
  if (!enqueued) {
    // Shed load inline rather than letting the backlog grow unbounded. The
    // 503 is a few hundred bytes into a fresh socket buffer — safe to write
    // from the loop thread without blocking it.
    Instruments().rejected->Increment();
    AdminResponse overloaded;
    overloaded.status = 503;
    overloaded.body = "admin server overloaded\n";
    WriteResponse(fd, "GET", overloaded);
    ::close(fd);
  }
}

void AdminServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lk(&queue_mu_);
      while (!stopping_.load(std::memory_order_acquire) && pending_.empty()) {
        queue_cv_.Wait();
      }
      if (pending_.empty()) return;  // Stopping and drained.
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  timeval timeout{};
  timeout.tv_sec = options_.read_timeout_ms / 1000;
  timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the header block; the request line is all we use.
  std::string buffer;
  bool complete = false;
  bool oversized = false;
  char chunk[1024];
  while (!complete && !oversized) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // Timeout, error, or client close before a full request.
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.find("\r\n\r\n") != std::string::npos ||
        buffer.find("\n\n") != std::string::npos) {
      complete = true;
    }
    if (buffer.size() > options_.max_request_bytes) oversized = true;
  }

  Instruments().requests->Increment();
  AdminRequest request;
  AdminResponse response;
  if (oversized) {
    response.status = 431;
    response.body = "request too large\n";
    request.method = "GET";
  } else if (!complete) {
    ::close(fd);
    return;  // Nothing parseable arrived; no response owed.
  } else {
    // Request line: METHOD SP target SP HTTP/1.x
    const size_t line_end = buffer.find_first_of("\r\n");
    const std::string line = buffer.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      response.status = 400;
      response.body = "malformed request line\n";
      request.method = "GET";
    } else {
      request.method = line.substr(0, sp1);
      request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t qmark = request.target.find('?');
      request.path = request.target.substr(0, qmark);
      request.query = qmark == std::string::npos
                          ? std::string()
                          : request.target.substr(qmark + 1);
      if (request.method != "GET" && request.method != "HEAD") {
        response.status = 405;
        response.body = "only GET and HEAD are supported\n";
      } else if (request.path.empty() || request.path[0] != '/') {
        response.status = 400;
        response.body = "malformed request target\n";
      } else {
        response = Dispatch(request);
      }
    }
  }
  if (response.status >= 400) Instruments().errors->Increment();
  WriteResponse(fd, request.method, response);
  ::close(fd);
}

AdminResponse AdminServer::Dispatch(const AdminRequest& request) {
  Handler handler;
  {
    MutexLock lk(&handlers_mu_);
    const auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    AdminResponse response;
    response.status = 404;
    response.body = "no such endpoint: " + request.path + "\n";
    return response;
  }
  return handler(request);
}

void AdminServer::WriteResponse(int fd, const std::string& method,
                                const AdminResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     ReasonPhrase(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
  if (method != "HEAD") {
    SendAll(fd, response.body.data(), response.body.size());
  }
}

namespace {

AdminResponse TextResponse(std::string body) {
  AdminResponse response;
  response.body = std::move(body);
  return response;
}

AdminResponse JsonResponse(std::string body) {
  AdminResponse response;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

/// Shared by /healthz (liveness) and /readyz (readiness): one line per
/// check, 503 when any check in scope fails.
AdminResponse HealthResponse(bool include_readiness_only) {
  const auto results = obs::HealthRegistry::Global().RunChecks();
  std::string body;
  bool healthy = true;
  for (const auto& result : results) {
    if (result.readiness_only && !include_readiness_only) continue;
    if (result.status.ok()) {
      body += "ok " + result.name + "\n";
    } else {
      healthy = false;
      body += "FAIL " + result.name + ": " + result.status.message() + "\n";
    }
  }
  if (body.empty()) body = "ok\n";
  AdminResponse response;
  response.status = healthy ? 200 : 503;
  response.body = std::move(body);
  return response;
}

}  // namespace

void RegisterDefaultAdminEndpoints(AdminServer& server) {
  server.Handle("/", [](const AdminRequest&) {
    return TextResponse(
        "ldphh admin plane\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics as JSON\n"
        "  /tracez        recent trace events (text; /tracez.json for JSON)\n"
        "  /spanz         slow-span samples per family (JSON)\n"
        "  /statusz       per-layer component snapshots (JSON)\n"
        "  /healthz       liveness checks\n"
        "  /readyz        readiness checks\n");
  });
  server.Handle("/metrics", [](const AdminRequest&) {
    AdminResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::MetricsRegistry::Global().DumpText();
    return response;
  });
  server.Handle("/metrics.json", [](const AdminRequest&) {
    return JsonResponse(obs::MetricsRegistry::Global().DumpJson());
  });
  server.Handle("/tracez", [](const AdminRequest&) {
    return TextResponse(obs::TraceRing::Global().DumpText());
  });
  server.Handle("/tracez.json", [](const AdminRequest&) {
    return JsonResponse(obs::TraceRing::Global().DumpJson());
  });
  server.Handle("/spanz", [](const AdminRequest&) {
    return JsonResponse(obs::SpanSampler::Global().DumpJson());
  });
  server.Handle("/statusz", [](const AdminRequest&) {
    return JsonResponse(obs::StatuszRegistry::Global().DumpJson());
  });
  server.Handle("/healthz", [](const AdminRequest&) {
    return HealthResponse(/*include_readiness_only=*/false);
  });
  server.Handle("/readyz", [](const AdminRequest&) {
    return HealthResponse(/*include_readiness_only=*/true);
  });
}

}  // namespace ldphh
