/// \file sharded_aggregator.h
/// \brief Multi-threaded sharded report-ingestion service.
///
/// Simulates the server side of an LDP deployment under heavy traffic:
/// incoming `WireReport`s are partitioned across N worker shards by a hash
/// of the user index. Each shard owns a bounded MPSC queue and an
/// independent `Aggregator` instance built by the protocol registry from
/// one `ProtocolConfig` — so every registered protocol (frequency oracles
/// and heavy-hitter protocols alike) serves through the same machinery,
/// and all shards are identically configured by construction. A worker
/// thread drains its queue in batches and aggregates locally with no
/// cross-shard synchronization on the hot path. `Finish()` merges the
/// shard states with `Aggregator::Merge` into one instance whose
/// estimates are bit-for-bit those of a single-threaded aggregation of
/// the same reports.
///
/// Durability: `WriteCheckpoint` quiesces ingestion and appends a manifest
/// — which embeds the serialized protocol config, making the checkpoint
/// self-describing — plus every shard's serialized state to a checkpoint
/// log; a fresh aggregator can `RestoreCheckpoint` and resume ingesting
/// mid-stream after a crash, replaying only the reports submitted after
/// the checkpoint. A restore into an aggregator with a different config or
/// shard count fails with a descriptive `Status` instead of silently
/// merging incompatible state.
///
/// Wire safety: `SubmitWire` rejects a batch stamped with a different
/// protocol's wire id (see report_codec.h) before decoding a single
/// report into the shards.

#ifndef LDPHH_SERVER_SHARDED_AGGREGATOR_H_
#define LDPHH_SERVER_SHARDED_AGGREGATOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/statusz.h"
#include "src/protocols/aggregator.h"
#include "src/protocols/protocol_config.h"
#include "src/server/checkpoint_log.h"
#include "src/server/report_codec.h"

namespace ldphh {

/// Tuning for ShardedAggregator.
struct ShardedAggregatorOptions {
  int num_shards = 4;           ///< Worker shard count (>= 1).
  size_t queue_capacity = 4096; ///< Per-shard queue bound; Submit blocks when full.
  size_t batch_size = 256;      ///< Max reports a worker drains per lock acquisition.
};

/// Ingestion counters (read after Drain/Finish for a consistent view).
struct IngestStats {
  uint64_t submitted = 0;               ///< Reports accepted by Submit*.
  uint64_t restored = 0;                ///< Reports carried in via RestoreCheckpoint.
  uint64_t rejected = 0;                ///< Reports the protocol refused
                                        ///< (wrong shape for the config).
  std::vector<uint64_t> per_shard;      ///< Reports aggregated per shard.
};

/// \brief The sharded ingestion service.
class ShardedAggregator {
 public:
  /// Builds the service: one registry-created `Aggregator` per shard, all
  /// from \p config (auto parameters resolve identically on every shard).
  /// Fails on an unknown protocol or invalid config/options.
  static StatusOr<std::unique_ptr<ShardedAggregator>> Create(
      const ProtocolConfig& config, ShardedAggregatorOptions options);

  ~ShardedAggregator();
  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Spawns the worker threads. Call once, after any RestoreCheckpoint.
  Status Start();

  /// Enqueues one report (thread-safe; blocks while the target queue is
  /// full). Reports are routed by a hash of the user index.
  Status Submit(const WireReport& report);

  /// Enqueues a batch.
  Status SubmitBatch(const std::vector<WireReport>& reports);

  /// Decodes a wire-format batch (see report_codec.h) and enqueues it.
  /// Corrupt input is rejected whole, with no partial ingestion; a batch
  /// stamped for a different protocol is rejected before decode.
  Status SubmitWire(std::string_view batch);

  /// Non-blocking, all-or-nothing SubmitBatch: enqueues the whole batch iff
  /// every target shard queue has room for its slice *right now*; otherwise
  /// enqueues nothing and returns kResourceExhausted (retryable — nothing
  /// was consumed). This is the ingestion path for network servers, which
  /// must answer "busy" instead of parking an event-loop thread on a full
  /// queue. A batch whose per-shard slice exceeds `queue_capacity` can
  /// never fit and always gets kResourceExhausted; network callers bound
  /// their batch sizes accordingly.
  Status TrySubmitBatch(const std::vector<WireReport>& reports);

  /// Decodes a wire-format batch and TrySubmitBatch-es it. Decode errors
  /// are permanent (kDecodeFailure / kInvalidArgument); a full queue is
  /// kResourceExhausted and the caller may retry the same bytes.
  Status TrySubmitWire(std::string_view batch);

  /// Blocks until every queue is empty and every worker is idle.
  Status Drain();

  /// Quiesces ingestion and appends [manifest, shard states] to \p log,
  /// finishing with the writer's Sync() — the checkpoint is durable per
  /// the writer's SyncMode (power-loss durable at the default kFull)
  /// before this returns success. The manifest embeds the serialized
  /// protocol config. Ingestion may continue afterwards; the checkpoint
  /// captures everything submitted before the call.
  Status WriteCheckpoint(CheckpointWriter& log);

  /// Loads the last complete checkpoint from \p log into the shard
  /// aggregators. Must be called before Start(). The checkpoint's embedded
  /// config and shard count are verified against this aggregator's; any
  /// mismatch fails with a descriptive Status (kInvalidArgument) instead
  /// of silently mis-merging.
  Status RestoreCheckpoint(CheckpointReader& log);

  /// Stops the workers and merges all shard states into one aggregator,
  /// which is returned un-finalized, so the caller may checkpoint or merge
  /// further before calling EstimateTopK(). The service is spent afterwards.
  StatusOr<std::unique_ptr<Aggregator>> Finish();

  /// Counters; call Drain() first for a consistent snapshot.
  IngestStats Stats() const;

  /// The resolved protocol config every shard was built from.
  const ProtocolConfig& config() const { return config_; }
  /// The served protocol's wire id (stamped on batches by clients).
  uint16_t wire_id() const { return wire_id_; }

  int num_shards() const { return options_.num_shards; }
  /// Shard a user index routes to.
  int ShardOf(uint64_t user_index) const {
    return static_cast<int>(Mix64(user_index) %
                            static_cast<uint64_t>(options_.num_shards));
  }

 private:
  struct Shard {
    mutable Mutex mu;
    CondVar not_empty{&mu};
    CondVar not_full{&mu};
    CondVar idle{&mu};  ///< Signaled when queue empty and worker idle.
    std::deque<WireReport> queue GUARDED_BY(mu);
    bool busy GUARDED_BY(mu) = false;  ///< Worker is aggregating a batch.
    uint64_t ingested GUARDED_BY(mu) = 0;
    uint64_t rejected GUARDED_BY(mu) = 0;
    /// Deliberately not guarded by mu: the oracle is touched only by the
    /// owning worker outside the queue lock, or by the main thread once the
    /// worker is quiesced (paused_ handshake or joined) — an ownership
    /// handoff, not a shared-state protocol.
    std::unique_ptr<Aggregator> oracle;
    std::shared_ptr<obs::Gauge> queue_depth;  ///< ldphh_ingest_queue_depth{shard=}.
    std::thread worker;
  };

  ShardedAggregator(ProtocolConfig config, uint16_t wire_id,
                    std::vector<std::unique_ptr<Aggregator>> oracles,
                    ShardedAggregatorOptions options);

  void WorkerLoop(Shard& shard);

  ProtocolConfig config_;
  uint16_t wire_id_ = 0;
  ShardedAggregatorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};  ///< Workers park while a checkpoint runs.
  bool started_ = false;
  bool finished_ = false;
  uint64_t restored_ = 0;
  /// Per-report privacy budget of the served randomizer (config "eps");
  /// 0 when the protocol does not declare one.
  double report_epsilon_ = 0.0;

  // Registry instruments. IngestStats is a thin snapshot of these (plus the
  // per-shard counters above); `submitted_` lives here rather than as a raw
  // atomic so the process-wide exposition sees it too.
  std::shared_ptr<obs::Counter> submitted_;
  std::shared_ptr<obs::Counter> restored_reports_;
  std::shared_ptr<obs::Counter> rejected_reports_;
  std::shared_ptr<obs::Counter> wire_rejected_batches_;
  std::shared_ptr<obs::Counter> wire_bytes_;
  std::shared_ptr<obs::Histogram> wire_decode_ns_;
  std::shared_ptr<obs::Histogram> batch_aggregate_ns_;
  std::shared_ptr<obs::Histogram> checkpoint_write_ns_;
  std::shared_ptr<obs::Histogram> checkpoint_restore_ns_;
  /// Slow-span families for the two ingest hot paths (served at /spanz).
  std::shared_ptr<obs::SpanFamily> submit_wire_spans_;
  std::shared_ptr<obs::SpanFamily> aggregate_spans_;
  /// Declared last: unregisters (and thus stops /statusz callbacks into
  /// this object) before any member the callback reads is destroyed.
  obs::StatuszRegistry::Registration statusz_;
};

}  // namespace ldphh

#endif  // LDPHH_SERVER_SHARDED_AGGREGATOR_H_
