/// \file replica_view.h
/// \brief Epoch-level read serving from a read-only replica.
///
/// EpochManager owns the write side of continuous aggregation: it ingests
/// reports, closes epochs, and persists each closed epoch's merged
/// aggregator state into the segment store. ReplicaView is the read side at
/// scale-out: it sits on a ReplicaStore (src/store/replica_store.h) tailing
/// the primary's store directory and answers WindowedQuery for the epochs
/// the tail has caught — through the exact same decode-and-merge path the
/// primary uses (MergeEpochWindow), so a replica's answer over any
/// persisted window is bit-for-bit the primary's answer once the tail has
/// caught up to the epoch's Put.
///
/// Self-describing opens: the replica needs no protocol knowledge up front.
/// Every persisted epoch embeds its `ProtocolConfig`, and the merge path
/// builds the decoding aggregator from that embedded config through the
/// registry — a replica can tail a store directory without being told what
/// protocol the primary serves, and a window mixing configs fails with a
/// clean `Status` rather than silently merging incompatible state.
///
/// Staleness model: a replica serves the epochs visible in its current
/// snapshot. An epoch closed by the primary becomes visible after the next
/// Refresh() that reads past its store Put — under the replica's polling
/// cadence that bounds the lag to one poll interval plus one refresh. The
/// epoch clock (`next_epoch()`, from the kEpochClockKey record the primary
/// maintains) tells an operator how far the primary had advanced as of the
/// snapshot, so lag is observable: primary clock vs. last tailed epoch.
///
/// Thread-safety: WindowedQuery/PersistedEpochs/next_epoch only read the
/// replica's immutable snapshot and may run concurrently with each other
/// and with Refresh.

#ifndef LDPHH_SERVER_REPLICA_VIEW_H_
#define LDPHH_SERVER_REPLICA_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/protocols/aggregator.h"
#include "src/server/epoch_manager.h"
#include "src/store/replica_store.h"

namespace ldphh {

/// \brief Windowed heavy-hitter queries served from a replica's snapshot.
class ReplicaView {
 public:
  /// \p replica must outlive the view. No protocol configuration is needed:
  /// the persisted epoch records are self-describing.
  explicit ReplicaView(ReplicaStore* replica);

  /// One tail poll on the underlying replica; returns whether the visible
  /// snapshot advanced. (With a background-polling replica this is rarely
  /// needed — the snapshot advances on its own.)
  StatusOr<bool> Refresh();

  /// Merges the persisted states of epochs [first, last] (inclusive) from
  /// the replica's current snapshot into one un-finalized aggregator: call
  /// EstimateTopK() on it. Bit-for-bit identical to the primary's
  /// WindowedQuery over the same window. Fails with kOutOfRange if any
  /// epoch in the window is not in the snapshot (never closed, pruned, or
  /// the tail has not caught it yet), and with kFailedPrecondition on a
  /// window mixing configs.
  StatusOr<std::unique_ptr<Aggregator>> WindowedQuery(
      uint64_t first_epoch, uint64_t last_epoch) const;

  /// Epoch ids persisted in the current snapshot, ascending.
  std::vector<uint64_t> PersistedEpochs() const;

  /// The primary's epoch clock as of the snapshot: the id the next closed
  /// epoch will take. 0 before the primary ever closed an epoch.
  uint64_t next_epoch() const;

  ReplicaStore* replica() const { return replica_; }

 private:
  ReplicaStore* replica_;
};

}  // namespace ldphh

#endif  // LDPHH_SERVER_REPLICA_VIEW_H_
