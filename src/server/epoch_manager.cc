#include "src/server/epoch_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/serde.h"
#include "src/common/timer.h"
#include "src/obs/trace.h"
#include "src/protocols/registry.h"
#include "src/server/report_codec.h"

namespace ldphh {

EpochManager::EpochManager(ProtocolConfig config, uint16_t wire_id,
                           CheckpointStore* store, EpochManagerOptions options)
    : config_(std::move(config)),
      wire_id_(wire_id),
      store_(store),
      options_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  epoch_close_ns_ = reg.NewHistogram(
      "ldphh_epoch_close_duration_ns",
      "CloseEpoch duration (finish + serialize + durable puts + roll)", "ns");
  epochs_closed_ =
      reg.NewCounter("ldphh_epoch_closed_total", "Epochs closed durably");
  epochs_pruned_ = reg.NewCounter("ldphh_epoch_pruned_total",
                                  "Persisted epochs dropped by retention");
  current_epoch_gauge_ =
      reg.NewGauge("ldphh_epoch_current", "Id of the open epoch");
  open_reports_gauge_ = reg.NewGauge(
      "ldphh_epoch_open_reports", "Reports in the open epoch", "reports");
  close_spans_ = obs::SpanSampler::Global().Family("epoch.close");

  // The /statusz "epoch" section. Reads only gauges/counters (atomics) and
  // the store's thread-safe Keys(), so a scrape never touches the
  // single-threaded control surface.
  statusz_ = obs::StatuszRegistry::Global().Register(
      "epoch", [this](obs::JsonWriter& w) {
        w.BeginObject();
        w.Key("protocol").String(config_.protocol());
        w.Key("current_epoch")
            .Uint(static_cast<uint64_t>(current_epoch_gauge_->Value()));
        w.Key("open_reports")
            .Uint(static_cast<uint64_t>(open_reports_gauge_->Value()));
        w.Key("epochs_closed").Uint(epochs_closed_->Value());
        w.Key("epochs_pruned").Uint(epochs_pruned_->Value());
        const std::vector<uint64_t> persisted = PersistedEpochs();
        w.Key("persisted_epochs").Uint(persisted.size());
        if (!persisted.empty()) {
          w.Key("first_persisted").Uint(persisted.front());
          w.Key("last_persisted").Uint(persisted.back());
        }
        w.EndObject();
      });
}

StatusOr<std::unique_ptr<EpochManager>> EpochManager::Create(
    const ProtocolConfig& config, CheckpointStore* store,
    EpochManagerOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument("EpochManager: null store");
  }
  if (options.reports_per_epoch == 0) options.reports_per_epoch = 1;
  // Resolve (and validate) the config once through the registry; every
  // epoch's sharded aggregator is then built from the resolved form.
  auto probe_or = CreateAggregator(config);
  LDPHH_RETURN_IF_ERROR(probe_or.status());
  ProtocolConfig resolved = probe_or.value()->config();
  auto wire_id_or = ProtocolRegistry::Global().WireIdOf(resolved.protocol());
  LDPHH_RETURN_IF_ERROR(wire_id_or.status());
  return std::unique_ptr<EpochManager>(new EpochManager(
      std::move(resolved), wire_id_or.value(), store, options));
}

EpochManager::~EpochManager() = default;

Status EpochManager::RollAggregator() {
  auto aggregator_or = ShardedAggregator::Create(config_, options_.aggregator);
  LDPHH_RETURN_IF_ERROR(aggregator_or.status());
  aggregator_ = std::move(aggregator_or).value();
  reports_in_epoch_ = 0;
  epoch_opened_at_ = Now();
  current_epoch_gauge_->Set(static_cast<double>(current_epoch_));
  open_reports_gauge_->Set(0.0);
  return aggregator_->Start();
}

std::chrono::steady_clock::time_point EpochManager::Now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

bool EpochManager::EpochTimeUp() const {
  return options_.epoch_max_duration.count() > 0 &&
         Now() - epoch_opened_at_ >= options_.epoch_max_duration;
}

Status ParseEpochClock(std::string_view blob, uint64_t* next_epoch) {
  ByteReader reader(blob);
  return reader.ReadU64(next_epoch);
}

Status EpochManager::Start() {
  if (started_) {
    return Status::FailedPrecondition("EpochManager: already started");
  }
  // The epoch clock resumes after the last durable epoch; the open epoch's
  // reports at crash time were never acknowledged as closed, so clients
  // replay them into the new open epoch. The durable clock record carries
  // the high-water mark past retention: with every epoch pruned, the ids
  // already issued must still never be reused.
  current_epoch_ = 0;
  const std::vector<uint64_t> persisted = PersistedEpochs();
  if (!persisted.empty()) current_epoch_ = persisted.back() + 1;
  std::string clock_blob;
  const Status clock = store_->Get(kEpochClockKey, &clock_blob);
  if (clock.ok()) {
    uint64_t next = 0;
    LDPHH_RETURN_IF_ERROR(ParseEpochClock(clock_blob, &next));
    current_epoch_ = std::max(current_epoch_, next);
  } else if (clock.code() != StatusCode::kOutOfRange) {
    return clock;
  }
  started_ = true;
  return RollAggregator();
}

Status EpochManager::Submit(const WireReport& report) {
  if (!started_ || closed_) {
    return Status::FailedPrecondition(
        "EpochManager: Submit outside Start()..Close()");
  }
  LDPHH_RETURN_IF_ERROR(aggregator_->Submit(report));
  open_reports_gauge_->Set(static_cast<double>(++reports_in_epoch_));
  if (reports_in_epoch_ >= options_.reports_per_epoch || EpochTimeUp()) {
    return CloseEpoch();
  }
  return Status::OK();
}

StatusOr<bool> EpochManager::PollClock() {
  if (!started_ || closed_) {
    return Status::FailedPrecondition(
        "EpochManager: PollClock outside Start()..Close()");
  }
  if (!EpochTimeUp()) return false;
  LDPHH_RETURN_IF_ERROR(CloseEpoch());
  return true;
}

Status EpochManager::SubmitWire(std::string_view batch) {
  std::vector<WireReport> reports;
  LDPHH_RETURN_IF_ERROR(
      DecodeReportBatchFor(batch, wire_id_, config_.protocol(), &reports));
  for (const WireReport& r : reports) {
    LDPHH_RETURN_IF_ERROR(Submit(r));
  }
  return Status::OK();
}

Status EpochManager::CloseEpoch() {
  if (!started_ || closed_) {
    return Status::FailedPrecondition(
        "EpochManager: CloseEpoch outside Start()..Close()");
  }
  obs::Span span(close_spans_.get());
  const uint64_t count = reports_in_epoch_;
  span.set_args(current_epoch_, count);
  std::unique_ptr<Aggregator> merged;
  {
    const obs::Span::ChildScope finish = span.Child("finish");
    auto merged_or = aggregator_->Finish();
    LDPHH_RETURN_IF_ERROR(merged_or.status());
    merged = std::move(merged_or).value();
  }

  std::string blob;
  {
    const obs::Span::ChildScope serialize = span.Child("serialize");
    PutU32(&blob, kEpochBlobMagic);
    PutU16(&blob, kEpochBlobVersion);
    PutU64(&blob, current_epoch_);
    PutU64(&blob, count);
    config_.AppendTo(&blob);
    LDPHH_RETURN_IF_ERROR(merged->SerializeState(&blob));
  }
  {
    // The epoch blob and the clock record commit as one batch: with the
    // store's group-commit lane on they share a single append + sync
    // (possibly with concurrent writers); off, Apply degrades to the two
    // sequential durable Puts this used to issue.
    const obs::Span::ChildScope put = span.Child("put");
    std::string clock_blob;
    PutU64(&clock_blob, current_epoch_ + 1);
    std::vector<StoreWrite> writes(2);
    writes[0].key = current_epoch_;
    writes[0].blob = blob;
    writes[1].key = kEpochClockKey;
    writes[1].blob = clock_blob;
    LDPHH_RETURN_IF_ERROR(store_->Apply(writes));
  }

  epochs_closed_->Increment();
  obs::TraceRing::Global().Record("epoch", "close", "", current_epoch_, count);
  ++current_epoch_;
  Status rolled;
  {
    const obs::Span::ChildScope roll = span.Child("roll");
    rolled = RollAggregator();
  }
  epoch_close_ns_->Observe(span.ElapsedNs());
  return rolled;
}

Status EpochManager::Close() {
  if (!started_ || closed_) {
    return Status::FailedPrecondition("EpochManager: Close outside Start()..");
  }
  if (reports_in_epoch_ > 0) {
    LDPHH_RETURN_IF_ERROR(CloseEpoch());
  }
  closed_ = true;
  aggregator_.reset();  // Joins the idle workers of the open epoch.
  return Status::OK();
}

StatusOr<std::unique_ptr<Aggregator>> MergeEpochWindow(
    const std::function<Status(uint64_t epoch, std::string* blob)>& get,
    uint64_t first_epoch, uint64_t last_epoch,
    const ProtocolConfig* expected_config) {
  // Process-global: the primary's WindowedQuery and every replica view
  // funnel through this free function, giving one merge-latency
  // distribution per process.
  static const std::shared_ptr<obs::Histogram> merge_ns =
      obs::MetricsRegistry::Global().NewHistogram(
          "ldphh_epoch_window_merge_duration_ns",
          "Windowed-query merge latency (fetch + restore + merge per window)",
          "ns");
  static const std::shared_ptr<obs::SpanFamily> merge_spans =
      obs::SpanSampler::Global().Family("epoch.window_merge");
  obs::Span span(merge_spans.get());
  span.set_args(first_epoch, last_epoch);
  // Per-phase time is summed across the loop and attached as three children
  // at the end — per-epoch children would blow kMaxChildrenPerSpan on a
  // wide window and say less.
  uint64_t fetch_total_ns = 0, restore_total_ns = 0, merge_total_ns = 0;
  struct ObserveOnExit {
    obs::Span& span;
    obs::Histogram& hist;
    uint64_t& fetch_ns;
    uint64_t& restore_ns;
    uint64_t& merge_ns_total;
    ~ObserveOnExit() {
      span.AddChild("fetch", fetch_ns);
      span.AddChild("restore", restore_ns);
      span.AddChild("merge", merge_ns_total);
      hist.Observe(span.ElapsedNs());
    }
  } observe{span, *merge_ns, fetch_total_ns, restore_total_ns,
            merge_total_ns};

  if (first_epoch > last_epoch) {
    return Status::InvalidArgument("epoch window: first_epoch > last_epoch");
  }
  if (last_epoch >= kEpochClockKey) {
    return Status::InvalidArgument("epoch window: epoch id out of range");
  }
  std::unique_ptr<Aggregator> merged;
  for (uint64_t e = first_epoch; e <= last_epoch; ++e) {
    std::string blob;
    const uint64_t fetch_start = obs::SpanNowNs();
    Status st = get(e, &blob);
    fetch_total_ns += obs::SpanNowNs() - fetch_start;
    if (!st.ok()) {
      if (st.code() == StatusCode::kOutOfRange) {
        return Status::OutOfRange("epoch window: epoch " + std::to_string(e) +
                                  " is not persisted (open, never closed, "
                                  "pruned, or not yet tailed)");
      }
      return st;
    }
    ByteReader reader(blob);
    uint32_t magic = 0;
    uint16_t version = 0;
    uint64_t epoch_id = 0, count = 0;
    LDPHH_RETURN_IF_ERROR(reader.ReadU32(&magic));
    if (magic != kEpochBlobMagic) {
      return Status::DecodeFailure("epoch window: bad epoch blob magic");
    }
    LDPHH_RETURN_IF_ERROR(reader.ReadU16(&version));
    if (version != kEpochBlobVersion) {
      return Status::DecodeFailure(
          "epoch window: unsupported epoch blob version");
    }
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&epoch_id));
    if (epoch_id != e) {
      return Status::DecodeFailure("epoch window: epoch blob id mismatch");
    }
    LDPHH_RETURN_IF_ERROR(reader.ReadU64(&count));

    // The blob names its own config; the aggregator that decodes it is
    // built from exactly that config by the registry. Nothing upstream
    // chooses the type — a reader cannot mis-merge by misconfiguration.
    ProtocolConfig config;
    LDPHH_RETURN_IF_ERROR(ProtocolConfig::ReadFrom(reader, &config));
    if (expected_config != nullptr && config != *expected_config) {
      return Status::FailedPrecondition(
          "epoch window: epoch " + std::to_string(e) + " was written under " +
          config.ToText() + ", expected " + expected_config->ToText());
    }
    if (merged != nullptr && config != merged->config()) {
      return Status::FailedPrecondition(
          "epoch window: mixed configs (epoch " + std::to_string(e) +
          " was written under " + config.ToText() + ", earlier epochs under " +
          merged->config().ToText() + ")");
    }

    auto oracle_or = CreateAggregator(config);
    LDPHH_RETURN_IF_ERROR(oracle_or.status());
    std::unique_ptr<Aggregator> oracle = std::move(oracle_or).value();
    const uint64_t restore_start = obs::SpanNowNs();
    LDPHH_RETURN_IF_ERROR(
        oracle->RestoreState(std::string_view(blob).substr(reader.position())));
    restore_total_ns += obs::SpanNowNs() - restore_start;
    if (merged == nullptr) {
      merged = std::move(oracle);
    } else {
      const uint64_t merge_start = obs::SpanNowNs();
      LDPHH_RETURN_IF_ERROR(merged->Merge(*oracle));
      merge_total_ns += obs::SpanNowNs() - merge_start;
    }
  }
  return merged;
}

StatusOr<std::unique_ptr<Aggregator>> EpochManager::WindowedQuery(
    uint64_t first_epoch, uint64_t last_epoch) const {
  return MergeEpochWindow(
      [this](uint64_t epoch, std::string* blob) {
        return store_->Get(epoch, blob);
      },
      first_epoch, last_epoch, &config_);
}

Status EpochManager::PruneEpochsBefore(uint64_t first_kept) {
  uint64_t pruned = 0;
  for (uint64_t epoch : PersistedEpochs()) {
    if (epoch >= first_kept) break;
    LDPHH_RETURN_IF_ERROR(store_->Delete(epoch));
    ++pruned;
  }
  if (pruned > 0) {
    epochs_pruned_->Increment(pruned);
    obs::TraceRing::Global().Record("epoch", "prune", "", pruned, first_kept);
  }
  return Status::OK();
}

std::vector<uint64_t> EpochManager::PersistedEpochs() const {
  std::vector<uint64_t> epochs = store_->Keys();
  while (!epochs.empty() && epochs.back() >= kEpochClockKey) epochs.pop_back();
  return epochs;
}

}  // namespace ldphh
