#include "src/server/replica_view.h"

namespace ldphh {

ReplicaView::ReplicaView(ReplicaStore* replica) : replica_(replica) {
  LDPHH_CHECK(replica_ != nullptr, "ReplicaView: null replica");
}

StatusOr<bool> ReplicaView::Refresh() { return replica_->Refresh(); }

StatusOr<std::unique_ptr<Aggregator>> ReplicaView::WindowedQuery(
    uint64_t first_epoch, uint64_t last_epoch) const {
  // One pinned snapshot serves the whole window: a refresh landing
  // mid-merge (the background tailer, a concurrent prune on the primary)
  // cannot make a window that was present at query start fail halfway.
  // No expected config: the blobs are self-describing, and the uniformity
  // check inside MergeEpochWindow still rejects a mixed window.
  const ReplicaStore::PinnedView pinned = replica_->Pin();
  return MergeEpochWindow(
      [&pinned](uint64_t epoch, std::string* blob) {
        return pinned.Get(epoch, blob);
      },
      first_epoch, last_epoch, /*expected_config=*/nullptr);
}

std::vector<uint64_t> ReplicaView::PersistedEpochs() const {
  std::vector<uint64_t> epochs = replica_->Pin().Keys();
  while (!epochs.empty() && epochs.back() >= kEpochClockKey) epochs.pop_back();
  return epochs;
}

uint64_t ReplicaView::next_epoch() const {
  std::string blob;
  uint64_t next = 0;
  if (!replica_->Pin().Get(kEpochClockKey, &blob).ok()) return 0;
  if (!ParseEpochClock(blob, &next).ok()) return 0;
  return next;
}

}  // namespace ldphh
