#include "src/server/checkpoint_log.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/serde.h"

namespace ldphh {

namespace {

Status IoError(const char* op, const std::string& path) {
  return Status::Internal(std::string("checkpoint log: ") + op + " failed for " +
                          path + ": " + std::strerror(errno));
}

}  // namespace

// ------------------------------------------------------------------ writer --

Status CheckpointWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("checkpoint log: writer already open");
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return IoError("open", path);
  return Status::OK();
}

Status CheckpointWriter::Append(CheckpointRecordType type,
                                std::string_view payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Append on closed writer");
  }
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("checkpoint log: record too large");
  }
  // CRC covers type + payload so a record can't be replayed under a
  // different tag.
  uint32_t crc = Crc32c(&type, 1);
  crc = Crc32c(payload.data(), payload.size(), crc);

  std::string header;
  PutU32(&header, MaskCrc32(crc));
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU8(&header, static_cast<uint8_t>(type));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return IoError("write", "<record>");
  }
  return Status::OK();
}

Status CheckpointWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Sync on closed writer");
  }
  if (std::fflush(file_) != 0) return IoError("flush", "<log>");
  return Status::OK();
}

Status CheckpointWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return IoError("close", "<log>");
  return Status::OK();
}

// ------------------------------------------------------------------ reader --

Status CheckpointReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("checkpoint log: reader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return IoError("open", path);
  return Status::OK();
}

Status CheckpointReader::Read(CheckpointRecordType* type, std::string* payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Read on closed reader");
  }
  char header[kCheckpointRecordHeaderSize];
  const size_t got = std::fread(header, 1, sizeof(header), file_);
  if (got == 0) return Status::OutOfRange("checkpoint log: end of log");
  if (got < sizeof(header)) {
    return Status::OutOfRange("checkpoint log: truncated record header (tail)");
  }
  ByteReader reader(std::string_view(header, sizeof(header)));
  uint32_t masked_crc = 0, length = 0;
  uint8_t raw_type = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&masked_crc));
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&length));
  LDPHH_RETURN_IF_ERROR(reader.ReadU8(&raw_type));

  // Bound the length against the bytes actually left in the file before
  // allocating: the length field is not covered by the record CRC, and a
  // corrupt (or torn) value must not drive a multi-GB resize. A too-large
  // length is indistinguishable from a torn tail, so it ends the log.
  const long pos = std::ftell(file_);
  if (pos >= 0) {
    if (std::fseek(file_, 0, SEEK_END) != 0) return IoError("seek", "<log>");
    const long end = std::ftell(file_);
    if (std::fseek(file_, pos, SEEK_SET) != 0) return IoError("seek", "<log>");
    if (end >= 0 && static_cast<uint64_t>(length) >
                        static_cast<uint64_t>(end - pos)) {
      return Status::OutOfRange(
          "checkpoint log: record length exceeds file size (torn or corrupt "
          "tail)");
    }
  }
  payload->resize(length);
  if (length > 0 && std::fread(payload->data(), 1, length, file_) != length) {
    return Status::OutOfRange("checkpoint log: truncated record payload (tail)");
  }
  uint32_t crc = Crc32c(&raw_type, 1);
  crc = Crc32c(payload->data(), payload->size(), crc);
  if (crc != UnmaskCrc32(masked_crc)) {
    return Status::DecodeFailure("checkpoint log: record CRC mismatch");
  }
  *type = static_cast<CheckpointRecordType>(raw_type);
  return Status::OK();
}

long CheckpointReader::Tell() const {
  if (file_ == nullptr) return -1;
  return std::ftell(file_);
}

Status CheckpointReader::Close() {
  if (file_ == nullptr) return Status::OK();
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

}  // namespace ldphh
