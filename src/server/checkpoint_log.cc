#include "src/server/checkpoint_log.h"

#include <cstdint>

#include "src/common/crc32.h"
#include "src/common/serde.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"

namespace ldphh {

namespace {

// Log-layer instruments are process-global: every writer in the process —
// active segments, compaction outputs, epoch clocks — funnels through
// these, giving one fsync latency distribution per process.
obs::Counter& LogAppendsCounter() {
  static const std::shared_ptr<obs::Counter> c =
      obs::MetricsRegistry::Global().NewCounter(
          "ldphh_log_appends_total", "Records appended to checkpoint logs");
  return *c;
}

obs::Counter& LogAppendedBytesCounter() {
  static const std::shared_ptr<obs::Counter> c =
      obs::MetricsRegistry::Global().NewCounter(
          "ldphh_log_appended_bytes_total",
          "Bytes (header + payload) appended to checkpoint logs", "bytes");
  return *c;
}

obs::Histogram& LogSyncHistogram() {
  static const std::shared_ptr<obs::Histogram> h =
      obs::MetricsRegistry::Global().NewHistogram(
          "ldphh_log_sync_duration_ns",
          "Checkpoint log Sync (fsync + deferred parent-dir sync) latency",
          "ns");
  return *h;
}

}  // namespace

// ------------------------------------------------------------------ writer --

Status CheckpointWriter::Open(const std::string& path, FileSystem* fs,
                              SyncMode sync_mode) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("checkpoint log: writer already open");
  }
  fs_ = fs != nullptr ? fs : FileSystem::Default();
  auto file_or = fs_->NewWritableFile(path);
  LDPHH_RETURN_IF_ERROR(file_or.status());
  file_ = std::move(file_or).value();
  path_ = path;
  sync_mode_ = sync_mode;
  // A created file's directory entry is volatile until the parent directory
  // is synced; deferring that to the first Sync() keeps Open cheap and
  // still ensures the entry is durable before any record is acknowledged.
  // The entry is synced even when the file already exists: existing in the
  // (volatile) namespace proves nothing — a previous incarnation may have
  // created the file and died before ever syncing the entry, and appending
  // fsync'd records to such a file loses them whole with it on power loss.
  // (The storage-stack model test found exactly that: restart with an
  // empty, entry-unsynced active segment, write, lose power.)
  dir_sync_pending_ = sync_mode != SyncMode::kNone;
  return Status::OK();
}

Status CheckpointWriter::Append(CheckpointRecordType type,
                                std::string_view payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Append on closed writer");
  }
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("checkpoint log: record too large");
  }
  // CRC covers type + payload so a record can't be replayed under a
  // different tag.
  uint32_t crc = Crc32c(&type, 1);
  crc = Crc32c(payload.data(), payload.size(), crc);

  std::string header;
  PutU32(&header, MaskCrc32(crc));
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU8(&header, static_cast<uint8_t>(type));
  LDPHH_RETURN_IF_ERROR(file_->Append(header));
  LDPHH_RETURN_IF_ERROR(file_->Append(payload));
  LogAppendsCounter().Increment();
  LogAppendedBytesCounter().Increment(header.size() + payload.size());
  return Status::OK();
}

Status CheckpointWriter::EncodeRecord(CheckpointRecordType type,
                                      std::string_view payload,
                                      std::string* out) {
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("checkpoint log: record too large");
  }
  uint32_t crc = Crc32c(&type, 1);
  crc = Crc32c(payload.data(), payload.size(), crc);
  out->reserve(out->size() + kCheckpointRecordHeaderSize + payload.size());
  PutU32(out, MaskCrc32(crc));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU8(out, static_cast<uint8_t>(type));
  out->append(payload.data(), payload.size());
  return Status::OK();
}

Status CheckpointWriter::AppendEncoded(std::string_view encoded,
                                       uint64_t record_count) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Append on closed writer");
  }
  LDPHH_RETURN_IF_ERROR(file_->Append(encoded));
  LogAppendsCounter().Increment(record_count);
  LogAppendedBytesCounter().Increment(encoded.size());
  return Status::OK();
}

Status CheckpointWriter::Flush() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Flush on closed writer");
  }
  return file_->Flush();
}

Status CheckpointWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Sync on closed writer");
  }
  const Timer timer;
  LDPHH_RETURN_IF_ERROR(file_->Sync(sync_mode_));
  if (dir_sync_pending_) {
    LDPHH_RETURN_IF_ERROR(fs_->SyncDirectory(ParentDirectory(path_)));
    dir_sync_pending_ = false;
  }
  LogSyncHistogram().Observe(static_cast<uint64_t>(timer.Nanos()));
  return Status::OK();
}

Status CheckpointWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const Status st = file_->Close();
  file_.reset();
  return st;
}

// ------------------------------------------------------------------ reader --

Status CheckpointReader::Open(const std::string& path, ReadableFileSystem* fs) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("checkpoint log: reader already open");
  }
  ReadableFileSystem* const resolved =
      fs != nullptr ? fs : FileSystem::Default();
  auto file_or = resolved->NewSequentialFile(path);
  LDPHH_RETURN_IF_ERROR(file_or.status());
  file_ = std::move(file_or).value();
  return Status::OK();
}

Status CheckpointReader::Open(std::unique_ptr<SequentialFile> file) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("checkpoint log: reader already open");
  }
  if (file == nullptr) {
    return Status::InvalidArgument("checkpoint log: null file");
  }
  file_ = std::move(file);
  return Status::OK();
}

Status CheckpointReader::Read(CheckpointRecordType* type, std::string* payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log: Read on closed reader");
  }
  char header[kCheckpointRecordHeaderSize];
  size_t got = 0;
  LDPHH_RETURN_IF_ERROR(file_->Read(header, sizeof(header), &got));
  if (got == 0) return Status::OutOfRange("checkpoint log: end of log");
  if (got < sizeof(header)) {
    return Status::OutOfRange("checkpoint log: truncated record header (tail)");
  }
  ByteReader reader(std::string_view(header, sizeof(header)));
  uint32_t masked_crc = 0, length = 0;
  uint8_t raw_type = 0;
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&masked_crc));
  LDPHH_RETURN_IF_ERROR(reader.ReadU32(&length));
  LDPHH_RETURN_IF_ERROR(reader.ReadU8(&raw_type));

  // Bound the length against the bytes actually left in the file before
  // allocating: the length field is not covered by the record CRC, and a
  // corrupt (or torn) value must not drive a multi-GB resize. A too-large
  // length is indistinguishable from a torn tail, so it ends the log.
  // The cursor can pass size() when a replica reads a segment the writer
  // is still appending (read(2) sees past the open-time size); clamping
  // ends the scan at the open-time boundary, keeping a tailing reader's
  // cut record-aligned and bounded.
  const uint64_t remaining =
      file_->Tell() < file_->size() ? file_->size() - file_->Tell() : 0;
  if (static_cast<uint64_t>(length) > remaining) {
    return Status::OutOfRange(
        "checkpoint log: record length exceeds file size (torn or corrupt "
        "tail)");
  }
  payload->resize(length);
  if (length > 0) {
    LDPHH_RETURN_IF_ERROR(file_->Read(payload->data(), length, &got));
    if (got != length) {
      return Status::OutOfRange(
          "checkpoint log: truncated record payload (tail)");
    }
  }
  uint32_t crc = Crc32c(&raw_type, 1);
  crc = Crc32c(payload->data(), payload->size(), crc);
  if (crc != UnmaskCrc32(masked_crc)) {
    return Status::DecodeFailure("checkpoint log: record CRC mismatch");
  }
  *type = static_cast<CheckpointRecordType>(raw_type);
  return Status::OK();
}

long CheckpointReader::Tell() const {
  if (file_ == nullptr) return -1;
  return static_cast<long>(file_->Tell());
}

Status CheckpointReader::Close() {
  file_.reset();
  return Status::OK();
}

}  // namespace ldphh
