#include "src/server/report_codec.h"

#include "src/common/crc32.h"
#include "src/common/serde.h"

namespace ldphh {

FoReport ClampFoReport(const FoReport& report) {
  FoReport r = report;
  if (r.num_bits < 0) r.num_bits = 0;
  if (r.num_bits > 64) r.num_bits = 64;
  if (r.num_bits < 64) r.bits &= (uint64_t{1} << r.num_bits) - 1;
  return r;
}

void AppendWireReport(const WireReport& report, std::string* out) {
  LDPHH_CHECK(report.report.num_bits >= 0 && report.report.num_bits <= 64,
              "AppendWireReport: num_bits outside [0, 64]");
  const int num_bits = report.report.num_bits;
  uint64_t bits = report.report.bits;
  if (num_bits < 64) bits &= (uint64_t{1} << num_bits) - 1;
  PutVarint64(out, report.user_index);
  PutU8(out, static_cast<uint8_t>(num_bits));
  const int num_bytes = (num_bits + 7) / 8;
  for (int i = 0; i < num_bytes; ++i) {
    PutU8(out, static_cast<uint8_t>((bits >> (8 * i)) & 0xff));
  }
}

std::string EncodeReportBatch(const std::vector<WireReport>& reports,
                              uint16_t protocol_id) {
  std::string payload;
  payload.reserve(reports.size() * 8);
  for (const WireReport& r : reports) AppendWireReport(r, &payload);

  std::string out;
  out.reserve(kReportBatchHeaderSize + payload.size());
  PutU32(&out, kReportBatchMagic);
  PutU16(&out, kReportBatchVersion);
  PutU16(&out, protocol_id);
  PutU32(&out, static_cast<uint32_t>(reports.size()));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, MaskCrc32(Crc32c(payload.data(), payload.size())));
  out += payload;
  return out;
}

Status DecodeReportBatch(std::string_view data, std::vector<WireReport>* out,
                         size_t* consumed, uint16_t* protocol_id) {
  ByteReader header(data);
  uint32_t magic = 0;
  LDPHH_RETURN_IF_ERROR(header.ReadU32(&magic));
  if (magic != kReportBatchMagic) {
    return Status::DecodeFailure("report batch: bad magic");
  }
  uint16_t version = 0, stamped_protocol = 0;
  LDPHH_RETURN_IF_ERROR(header.ReadU16(&version));
  LDPHH_RETURN_IF_ERROR(header.ReadU16(&stamped_protocol));
  if (version != kReportBatchVersion) {
    return Status::DecodeFailure("report batch: unsupported version");
  }
  uint32_t count = 0, payload_len = 0, masked_crc = 0;
  LDPHH_RETURN_IF_ERROR(header.ReadU32(&count));
  LDPHH_RETURN_IF_ERROR(header.ReadU32(&payload_len));
  LDPHH_RETURN_IF_ERROR(header.ReadU32(&masked_crc));
  std::string_view payload;
  LDPHH_RETURN_IF_ERROR(header.ReadBytes(payload_len, &payload));
  if (UnmaskCrc32(masked_crc) != Crc32c(payload.data(), payload.size())) {
    return Status::DecodeFailure("report batch: CRC mismatch");
  }

  // Each record is >= 2 bytes (1-byte varint + num_bits), so a larger count
  // is corruption — and bounding it here keeps a bad header from driving a
  // huge reserve before any record parsing runs.
  if (count > payload.size() / 2 + 1) {
    return Status::DecodeFailure("report batch: count exceeds payload size");
  }
  std::vector<WireReport> decoded;
  decoded.reserve(count);
  ByteReader body(payload);
  for (uint32_t i = 0; i < count; ++i) {
    WireReport r;
    LDPHH_RETURN_IF_ERROR(body.ReadVarint64(&r.user_index));
    uint8_t num_bits = 0;
    LDPHH_RETURN_IF_ERROR(body.ReadU8(&num_bits));
    if (num_bits > 64) {
      return Status::DecodeFailure("report record: num_bits > 64");
    }
    r.report.num_bits = num_bits;
    const int num_bytes = (num_bits + 7) / 8;
    uint64_t bits = 0;
    for (int b = 0; b < num_bytes; ++b) {
      uint8_t byte = 0;
      LDPHH_RETURN_IF_ERROR(body.ReadU8(&byte));
      bits |= static_cast<uint64_t>(byte) << (8 * b);
    }
    if (num_bits < 64 && (bits >> num_bits) != 0) {
      return Status::DecodeFailure("report record: payload bits beyond num_bits");
    }
    r.report.bits = bits;
    decoded.push_back(r);
  }
  if (!body.empty()) {
    return Status::DecodeFailure("report batch: trailing bytes after records");
  }
  out->insert(out->end(), decoded.begin(), decoded.end());
  if (consumed != nullptr) *consumed = header.position();
  if (protocol_id != nullptr) *protocol_id = stamped_protocol;
  return Status::OK();
}

Status DecodeReportBatchFor(std::string_view data, uint16_t wire_id,
                            std::string_view protocol_name,
                            std::vector<WireReport>* out) {
  // Peek the stamp straight from the fixed header (magic u32, version u16,
  // protocol_id u16) so a mis-stamped batch is rejected before a single
  // record is decoded or CRC-checked. Only a valid magic makes the peeked
  // bytes meaningful; anything else falls through to DecodeReportBatch for
  // the proper structural error.
  ByteReader header(data);
  uint32_t magic = 0;
  uint16_t version = 0, stamped = 0;
  if (header.ReadU32(&magic).ok() && magic == kReportBatchMagic &&
      header.ReadU16(&version).ok() && header.ReadU16(&stamped).ok() &&
      stamped != 0 && stamped != wire_id) {
    return Status::InvalidArgument(
        "report batch stamped for protocol id " + std::to_string(stamped) +
        ", this server serves " + std::string(protocol_name) + " (id " +
        std::to_string(wire_id) + ")");
  }
  // DecodeReportBatch appends to out only on success, so decoding straight
  // into the caller's vector is safe and copy-free.
  return DecodeReportBatch(data, out);
}

}  // namespace ldphh
