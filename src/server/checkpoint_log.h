/// \file checkpoint_log.h
/// \brief Append-only checkpoint log with CRC-guarded records.
///
/// The leveldb log-format idiom, simplified to whole records (aggregator
/// state snapshots are small enough not to need block fragmentation):
///
///   record := masked_crc32c(u32, over type+payload) length(u32) type(u8)
///             payload(length bytes)
///
/// A crash mid-append leaves a truncated tail; the reader reports it as a
/// clean end-of-log (`kOutOfRange`), so recovery replays every fully
/// written record. A CRC mismatch on a complete record is real corruption
/// and surfaces as `kDecodeFailure`.
///
/// All I/O goes through the file layer (src/common/file.h): `Sync()` makes
/// acknowledged records power-loss durable per the writer's SyncMode
/// (default kFull — fsync before a checkpoint is declared durable; kNone
/// restores the old flush-to-OS, process-crash-only contract). The first
/// Sync of a newly created log also syncs the parent directory, so the
/// file itself survives the power loss its records do.

#ifndef LDPHH_SERVER_CHECKPOINT_LOG_H_
#define LDPHH_SERVER_CHECKPOINT_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/file.h"
#include "src/common/status.h"

namespace ldphh {

/// Record type tags; the log itself is type-agnostic.
enum class CheckpointRecordType : uint8_t {
  kManifest = 1,    ///< Aggregator-level metadata.
  kShardState = 2,  ///< One shard's serialized oracle state.
  kCustom = 128,    ///< First tag free for other subsystems.
};

/// Fixed byte size of the per-record header.
inline constexpr size_t kCheckpointRecordHeaderSize = 4 + 4 + 1;

/// \brief Appends CRC-guarded records to a log file.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter() {
    IgnoreStatus(Close(), "destructor close is best-effort; callers that"
                          " need the result call Close() first");
  }
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Opens \p path for appending (creates the file if absent) on \p fs
  /// (null = FileSystem::Default()). \p sync_mode is what Sync() applies.
  Status Open(const std::string& path, FileSystem* fs = nullptr,
              SyncMode sync_mode = SyncMode::kFull);

  /// Appends one record; durable only after Sync().
  Status Append(CheckpointRecordType type, std::string_view payload);

  /// Encodes one record (CRC header + payload) into \p out — exactly the
  /// bytes Append would write. The group-commit lane
  /// (src/store/checkpoint_store.h) batch-encodes a whole group of records
  /// into one buffer and hands it to AppendEncoded, so N coalesced writes
  /// cost one file append instead of 2N.
  static Status EncodeRecord(CheckpointRecordType type,
                             std::string_view payload, std::string* out);

  /// Appends pre-encoded record bytes (a concatenation of EncodeRecord
  /// outputs) in a single write. \p record_count is how many records
  /// \p encoded holds (for the append counters only — the bytes are
  /// written as-is either way). Durable only after Sync().
  Status AppendEncoded(std::string_view encoded, uint64_t record_count);

  /// Pushes buffered writes to the OS (process-crash safe only).
  Status Flush();

  /// Flushes, then makes every appended record power-loss durable per the
  /// writer's SyncMode (kNone degrades to Flush). The first Sync of a
  /// created file also syncs the parent directory entry.
  Status Sync();

  /// Flushes and closes; further Append calls fail. Durability still
  /// requires a Sync() before the records are acknowledged.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::unique_ptr<WritableFile> file_;
  FileSystem* fs_ = nullptr;
  std::string path_;
  SyncMode sync_mode_ = SyncMode::kFull;
  bool dir_sync_pending_ = false;
};

/// \brief Sequentially reads records written by CheckpointWriter.
class CheckpointReader {
 public:
  CheckpointReader() = default;
  ~CheckpointReader() {
    IgnoreStatus(Close(), "read-side close has nothing to lose");
  }
  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  /// Opens \p path on \p fs (null = FileSystem::Default()). The reader only
  /// needs the read slice, so a replica's ReadableFileSystem works too.
  Status Open(const std::string& path, ReadableFileSystem* fs = nullptr);

  /// Adopts an already-open file. A replica pins every segment of a
  /// MANIFEST generation by opening them all up front (an open handle
  /// survives the primary deleting the file), then replays at leisure.
  Status Open(std::unique_ptr<SequentialFile> file);

  /// Reads the next record. Returns kOutOfRange at end of log (including a
  /// crash-truncated tail) and kDecodeFailure on CRC corruption.
  Status Read(CheckpointRecordType* type, std::string* payload);

  /// Byte offset of the read cursor — after a successful Read, the end of
  /// that record. Recovery uses this to truncate a damaged tail at the last
  /// clean record boundary. Returns -1 on a closed reader.
  long Tell() const;

  Status Close();

 private:
  std::unique_ptr<SequentialFile> file_;
};

}  // namespace ldphh

#endif  // LDPHH_SERVER_CHECKPOINT_LOG_H_
