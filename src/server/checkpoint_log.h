/// \file checkpoint_log.h
/// \brief Append-only checkpoint log with CRC-guarded records.
///
/// The leveldb log-format idiom, simplified to whole records (aggregator
/// state snapshots are small enough not to need block fragmentation):
///
///   record := masked_crc32c(u32, over type+payload) length(u32) type(u8)
///             payload(length bytes)
///
/// A crash mid-append leaves a truncated tail; the reader reports it as a
/// clean end-of-log (`kOutOfRange`), so recovery replays every fully
/// written record. A CRC mismatch on a complete record is real corruption
/// and surfaces as `kDecodeFailure`.

#ifndef LDPHH_SERVER_CHECKPOINT_LOG_H_
#define LDPHH_SERVER_CHECKPOINT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ldphh {

/// Record type tags; the log itself is type-agnostic.
enum class CheckpointRecordType : uint8_t {
  kManifest = 1,    ///< Aggregator-level metadata.
  kShardState = 2,  ///< One shard's serialized oracle state.
  kCustom = 128,    ///< First tag free for other subsystems.
};

/// Fixed byte size of the per-record header.
inline constexpr size_t kCheckpointRecordHeaderSize = 4 + 4 + 1;

/// \brief Appends CRC-guarded records to a log file.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter() { Close(); }
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Opens \p path for appending (creates the file if absent).
  Status Open(const std::string& path);

  /// Appends one record; durable after Sync().
  Status Append(CheckpointRecordType type, std::string_view payload);

  /// Flushes buffered writes to the OS.
  Status Sync();

  /// Flushes and closes; further Append calls fail.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// \brief Sequentially reads records written by CheckpointWriter.
class CheckpointReader {
 public:
  CheckpointReader() = default;
  ~CheckpointReader() { Close(); }
  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  Status Open(const std::string& path);

  /// Reads the next record. Returns kOutOfRange at end of log (including a
  /// crash-truncated tail) and kDecodeFailure on CRC corruption.
  Status Read(CheckpointRecordType* type, std::string* payload);

  /// Byte offset of the read cursor — after a successful Read, the end of
  /// that record. Recovery uses this to truncate a damaged tail at the last
  /// clean record boundary. Returns -1 on a closed reader or ftell failure.
  long Tell() const;

  Status Close();

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace ldphh

#endif  // LDPHH_SERVER_CHECKPOINT_LOG_H_
