#include "src/server/sharded_aggregator.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/serde.h"
#include "src/common/timer.h"
#include "src/ldp/privacy_loss.h"
#include "src/obs/trace.h"
#include "src/protocols/metrics.h"
#include "src/protocols/registry.h"

namespace ldphh {

namespace {

// v2 embeds the protocol config (v1 carried only the shard count, so a log
// said nothing about *what* was checkpointed).
constexpr uint16_t kCheckpointVersion = 2;

}  // namespace

ShardedAggregator::ShardedAggregator(
    ProtocolConfig config, uint16_t wire_id,
    std::vector<std::unique_ptr<Aggregator>> oracles,
    ShardedAggregatorOptions options)
    : config_(std::move(config)), wire_id_(wire_id), options_(options) {
  // The served randomizer's per-report budget, for runtime privacy
  // accounting; protocols without an "eps" parameter spend 0 (nothing to
  // account — e.g. a non-private baseline).
  report_epsilon_ = config_.GetDoubleOr("eps", 0.0);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  submitted_ = reg.NewCounter("ldphh_ingest_submitted_reports_total",
                              "Reports accepted by Submit/SubmitBatch/SubmitWire");
  restored_reports_ = reg.NewCounter(
      "ldphh_ingest_restored_reports_total",
      "Reports carried in via RestoreCheckpoint");
  rejected_reports_ = reg.NewCounter(
      "ldphh_ingest_rejected_reports_total",
      "Reports the protocol refused (wrong shape for the config)");
  wire_rejected_batches_ = reg.NewCounter(
      "ldphh_ingest_wire_rejected_batches_total",
      "Wire batches rejected before decode (bad stamp or corrupt)");
  wire_decode_ns_ = reg.NewHistogram("ldphh_ingest_wire_decode_duration_ns",
                                     "SubmitWire batch decode latency", "ns");
  batch_aggregate_ns_ = reg.NewHistogram(
      "ldphh_ingest_batch_aggregate_duration_ns",
      "Worker latency aggregating one drained batch", "ns");
  checkpoint_write_ns_ = reg.NewHistogram(
      "ldphh_ingest_checkpoint_write_duration_ns",
      "WriteCheckpoint duration (quiesce + serialize + sync)", "ns");
  checkpoint_restore_ns_ = reg.NewHistogram(
      "ldphh_ingest_checkpoint_restore_duration_ns",
      "RestoreCheckpoint duration (scan + state restore)", "ns");
  wire_bytes_ = reg.NewCounter("ldphh_ingest_wire_bytes_total",
                               "Wire-format bytes accepted by SubmitWire",
                               "bytes");
  submit_wire_spans_ = obs::SpanSampler::Global().Family("ingest.submit_wire");
  aggregate_spans_ =
      obs::SpanSampler::Global().Family("ingest.aggregate_batch");

  shards_.reserve(oracles.size());
  for (size_t s = 0; s < oracles.size(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->oracle = std::move(oracles[s]);
    shard->queue_depth = reg.NewGauge(
        obs::LabeledName("ldphh_ingest_queue_depth", "shard",
                         std::to_string(s)),
        "Reports queued per shard", "reports");
    shards_.push_back(std::move(shard));
  }

  // The /statusz "ingest" section: identity + the counters above. Reads
  // only registry instruments (atomics), never shard fields, so a scrape
  // needs no shard locks and stays off the workers' necks.
  statusz_ = obs::StatuszRegistry::Global().Register(
      "ingest", [this](obs::JsonWriter& w) {
        w.BeginObject();
        w.Key("protocol").String(config_.protocol());
        w.Key("config").String(config_.ToText());
        w.Key("wire_id").Uint(wire_id_);
        w.Key("num_shards").Uint(static_cast<uint64_t>(options_.num_shards));
        w.Key("submitted").Uint(submitted_->Value());
        w.Key("restored").Uint(restored_reports_->Value());
        w.Key("rejected").Uint(rejected_reports_->Value());
        w.Key("wire_rejected_batches").Uint(wire_rejected_batches_->Value());
        w.Key("queue_depth").BeginArray();
        for (const auto& shard : shards_) {
          w.Uint(static_cast<uint64_t>(shard->queue_depth->Value()));
        }
        w.EndArray();
        // The Table-1 view of the live service, embedded via the shared
        // ToJson so harness runs and the admin plane read the same shape.
        ProtocolMetrics pm;
        pm.server_seconds =
            (wire_decode_ns_->Sum() + batch_aggregate_ns_->Sum()) / 1e9;
        pm.num_users = submitted_->Value();
        pm.comm_bits_total = wire_bytes_->Value() * 8;
        w.Key("protocol_metrics").Raw(pm.ToJson());
        w.EndObject();
      });
}

StatusOr<std::unique_ptr<ShardedAggregator>> ShardedAggregator::Create(
    const ProtocolConfig& config, ShardedAggregatorOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("ShardedAggregator: need >= 1 shard");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument(
        "ShardedAggregator: queue capacity must be >= 1");
  }
  if (options.batch_size == 0) options.batch_size = 1;
  std::vector<std::unique_ptr<Aggregator>> oracles;
  oracles.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    auto oracle_or = CreateAggregator(config);
    LDPHH_RETURN_IF_ERROR(oracle_or.status());
    oracles.push_back(std::move(oracle_or).value());
  }
  // Every shard resolved the same input config, so shard 0's resolved
  // config describes them all.
  ProtocolConfig resolved = oracles[0]->config();
  auto wire_id_or = ProtocolRegistry::Global().WireIdOf(resolved.protocol());
  LDPHH_RETURN_IF_ERROR(wire_id_or.status());
  return std::unique_ptr<ShardedAggregator>(
      new ShardedAggregator(std::move(resolved), wire_id_or.value(),
                            std::move(oracles), options));
}

ShardedAggregator::~ShardedAggregator() {
  stop_.store(true);
  for (auto& shard : shards_) {
    {
      // Under the lock so a worker between its predicate check and its
      // Wait() cannot miss the stop wakeup.
      MutexLock lk(&shard->mu);
      shard->not_empty.SignalAll();
    }
    if (shard->worker.joinable()) shard->worker.join();
  }
}

Status ShardedAggregator::Start() {
  if (started_) {
    return Status::FailedPrecondition("ShardedAggregator: already started");
  }
  started_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, &shard_ref = *shard] { WorkerLoop(shard_ref); });
  }
  return Status::OK();
}

void ShardedAggregator::WorkerLoop(Shard& shard) {
  std::vector<WireReport> batch;
  batch.reserve(options_.batch_size);
  for (;;) {
    {
      MutexLock lk(&shard.mu);
      // The paused_ loads must be seq_cst (not relaxed): WriteCheckpoint
      // serializes the oracle without holding shard.mu, so the only thing
      // ordering a resumed worker's Aggregate writes after the serializer's
      // reads is the paused_ store/load pair itself (paired with the mutex
      // for the pause direction). A relaxed load synchronizes with nothing
      // and lets the worker race the snapshot (found by TSan).
      while (!(stop_.load(std::memory_order_relaxed) ||
               (!paused_.load() && !shard.queue.empty()))) {
        shard.not_empty.Wait();
      }
      if (shard.queue.empty() || paused_.load()) {
        if (stop_.load(std::memory_order_relaxed)) return;
        continue;
      }
      batch.clear();
      while (!shard.queue.empty() && batch.size() < options_.batch_size) {
        batch.push_back(shard.queue.front());
        shard.queue.pop_front();
      }
      shard.queue_depth->Set(static_cast<double>(shard.queue.size()));
      shard.busy = true;
    }
    shard.not_full.SignalAll();
    // Aggregation happens outside the queue lock: the oracle is only ever
    // touched by this worker (or by the main thread once quiesced).
    // Instrumentation is per-batch (one span + one histogram write per
    // hundreds of reports), keeping the hot path unmeasurable by design;
    // only the slowest batches per family survive in the sampler.
    obs::Span span(aggregate_spans_.get());
    span.set_args(batch.size());
    uint64_t ok = 0, bad = 0;
    for (const WireReport& r : batch) {
      if (shard.oracle->Aggregate(r).ok()) {
        ++ok;
      } else {
        // A structurally invalid report for this config (e.g. a client on
        // the wrong protocol whose batch dodged the wire stamp). The report
        // is dropped and counted; the stream keeps flowing.
        ++bad;
      }
    }
    batch_aggregate_ns_->Observe(span.ElapsedNs());
    if (bad > 0) rejected_reports_->Increment(bad);
    if (ok > 0 && report_epsilon_ > 0.0) {
      PrivacyBudgetLedger::Global().RecordSpend(report_epsilon_, ok,
                                                config_.protocol());
    }
    {
      MutexLock lk(&shard.mu);
      shard.busy = false;
      shard.ingested += ok;
      shard.rejected += bad;
    }
    shard.idle.SignalAll();
  }
}

Status ShardedAggregator::Submit(const WireReport& report) {
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "ShardedAggregator: Submit outside Start()..Finish()");
  }
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(report.user_index))];
  {
    MutexLock lk(&shard.mu);
    while (shard.queue.size() >= options_.queue_capacity) {
      shard.not_full.Wait();
    }
    shard.queue.push_back(report);
  }
  shard.not_empty.Signal();
  submitted_->Increment();
  return Status::OK();
}

Status ShardedAggregator::SubmitBatch(const std::vector<WireReport>& reports) {
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "ShardedAggregator: Submit outside Start()..Finish()");
  }
  // Partition once, then append each shard's slice under a single lock
  // acquisition (per-report locking would dominate the cheap oracles).
  std::vector<std::vector<WireReport>> buckets(shards_.size());
  for (auto& b : buckets) b.reserve(reports.size() / shards_.size() + 1);
  for (const WireReport& r : reports) {
    buckets[static_cast<size_t>(ShardOf(r.user_index))].push_back(r);
  }
  // Feed the shards in round-robin passes so every worker gets fed before
  // the producer ever blocks on one full queue (feeding shard-by-shard
  // would serialize the whole batch behind a single worker).
  std::vector<size_t> offsets(shards_.size(), 0);
  size_t pending = 0;
  for (const auto& b : buckets) pending += b.size();
  while (pending > 0) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      const auto& bucket = buckets[s];
      size_t& offset = offsets[s];
      if (offset == bucket.size()) continue;
      Shard& shard = *shards_[s];
      size_t take;
      {
        MutexLock lk(&shard.mu);
        while (shard.queue.size() >= options_.queue_capacity) {
          shard.not_full.Wait();
        }
        take = std::min(options_.queue_capacity - shard.queue.size(),
                        bucket.size() - offset);
        shard.queue.insert(shard.queue.end(),
                           bucket.begin() + static_cast<ptrdiff_t>(offset),
                           bucket.begin() + static_cast<ptrdiff_t>(offset + take));
      }
      shard.not_empty.Signal();
      offset += take;
      pending -= take;
    }
  }
  submitted_->Increment(reports.size());
  return Status::OK();
}

Status ShardedAggregator::SubmitWire(std::string_view batch) {
  obs::Span span(submit_wire_spans_.get());
  span.set_args(batch.size());
  std::vector<WireReport> reports;
  const Timer decode_timer;
  Status decoded;
  {
    const obs::Span::ChildScope decode = span.Child("decode");
    decoded = DecodeReportBatchFor(batch, wire_id_, config_.protocol(),
                                   &reports);
  }
  wire_decode_ns_->Observe(static_cast<uint64_t>(decode_timer.Nanos()));
  if (!decoded.ok()) {
    wire_rejected_batches_->Increment();
    span.set_detail(decoded.message());
    return decoded;
  }
  wire_bytes_->Increment(batch.size());
  const obs::Span::ChildScope enqueue = span.Child("enqueue");
  return SubmitBatch(reports);
}

// Thread-safety analysis is off here because the function locks a *set* of
// shard mutexes chosen at runtime — beyond what the annotations can
// express. The locking is sound: mutexes are acquired in ascending shard
// order (every other path locks at most one shard mutex at a time, so no
// cycle is possible) and each is released exactly once on both the success
// and the busy path, before any condition-variable signaling.
Status ShardedAggregator::TrySubmitBatch(const std::vector<WireReport>& reports)
    NO_THREAD_SAFETY_ANALYSIS {
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "ShardedAggregator: Submit outside Start()..Finish()");
  }
  if (reports.empty()) return Status::OK();
  std::vector<std::vector<WireReport>> buckets(shards_.size());
  for (const WireReport& r : reports) {
    buckets[static_cast<size_t>(ShardOf(r.user_index))].push_back(r);
  }
  // All-or-nothing: take every target shard's lock (ascending order),
  // check that every slice fits, and only then insert any of them.
  std::vector<size_t> locked;
  locked.reserve(shards_.size());
  bool fits = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (buckets[s].empty()) continue;
    shards_[s]->mu.Lock();
    locked.push_back(s);
    if (shards_[s]->queue.size() + buckets[s].size() >
        options_.queue_capacity) {
      fits = false;
      break;
    }
  }
  if (!fits) {
    for (const size_t s : locked) shards_[s]->mu.Unlock();
    return Status::ResourceExhausted(
        "ShardedAggregator: shard queue full, retry later");
  }
  for (const size_t s : locked) {
    Shard& shard = *shards_[s];
    shard.queue.insert(shard.queue.end(), buckets[s].begin(),
                       buckets[s].end());
    shard.queue_depth->Set(static_cast<double>(shard.queue.size()));
    shard.mu.Unlock();
  }
  for (const size_t s : locked) shards_[s]->not_empty.Signal();
  submitted_->Increment(reports.size());
  return Status::OK();
}

Status ShardedAggregator::TrySubmitWire(std::string_view batch) {
  obs::Span span(submit_wire_spans_.get());
  span.set_args(batch.size());
  std::vector<WireReport> reports;
  const Timer decode_timer;
  Status decoded;
  {
    const obs::Span::ChildScope decode = span.Child("decode");
    decoded = DecodeReportBatchFor(batch, wire_id_, config_.protocol(),
                                   &reports);
  }
  wire_decode_ns_->Observe(static_cast<uint64_t>(decode_timer.Nanos()));
  if (!decoded.ok()) {
    wire_rejected_batches_->Increment();
    span.set_detail(decoded.message());
    return decoded;
  }
  const obs::Span::ChildScope enqueue = span.Child("enqueue");
  Status submitted = TrySubmitBatch(reports);
  // Counted only on success: a busy batch comes back through here on
  // retry, and counting it every attempt would inflate the byte totals.
  if (submitted.ok()) wire_bytes_->Increment(batch.size());
  return submitted;
}

Status ShardedAggregator::Drain() {
  if (!started_) {
    return Status::FailedPrecondition("ShardedAggregator: Drain before Start");
  }
  for (auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    while (!shard->queue.empty() || shard->busy) {
      shard->idle.Wait();
    }
  }
  return Status::OK();
}

Status ShardedAggregator::WriteCheckpoint(CheckpointWriter& log) {
  const Timer checkpoint_timer;
  LDPHH_RETURN_IF_ERROR(Drain());
  // Pause the workers for the duration of the snapshot: Drain() alone is
  // not enough when producers keep submitting concurrently, since a worker
  // could wake and mutate an oracle while it is being serialized. Paused
  // workers park in their wait loop; producers may continue to enqueue
  // (bounded queues give backpressure) and nothing submitted after this
  // point is captured.
  paused_.store(true);
  for (auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    while (shard->busy) {
      shard->idle.Wait();
    }
  }
  const Status result = [&]() -> Status {
    std::string manifest;
    PutU16(&manifest, kCheckpointVersion);
    config_.AppendTo(&manifest);
    PutU32(&manifest, static_cast<uint32_t>(options_.num_shards));
    PutU64(&manifest, submitted_->Value() + restored_);
    LDPHH_RETURN_IF_ERROR(log.Append(CheckpointRecordType::kManifest, manifest));

    for (size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      std::string record;
      PutU32(&record, static_cast<uint32_t>(s));
      uint64_t ingested;
      {
        MutexLock lk(&shard.mu);
        ingested = shard.ingested;
      }
      PutU64(&record, ingested);
      LDPHH_RETURN_IF_ERROR(shard.oracle->SerializeState(&record));
      LDPHH_RETURN_IF_ERROR(
          log.Append(CheckpointRecordType::kShardState, record));
    }
    return log.Sync();
  }();
  paused_.store(false);
  for (auto& shard : shards_) {
    // Under the lock: a worker that just re-checked paused_ and is about to
    // park must not miss the resume wakeup.
    MutexLock lk(&shard->mu);
    shard->not_empty.SignalAll();
  }
  checkpoint_write_ns_->Observe(static_cast<uint64_t>(checkpoint_timer.Nanos()));
  obs::TraceRing::Global().Record("ingest", "checkpoint_write",
                                  result.ok() ? "" : result.message(),
                                  submitted_->Value() + restored_,
                                  static_cast<uint64_t>(options_.num_shards));
  return result;
}

Status ShardedAggregator::RestoreCheckpoint(CheckpointReader& log) {
  if (started_) {
    return Status::FailedPrecondition(
        "ShardedAggregator: RestoreCheckpoint after Start");
  }
  const Timer restore_timer;
  // Scan the whole log; recovery applies the last *complete* checkpoint
  // (a crash while checkpointing leaves a partial set of shard records,
  // which is simply superseded or ignored).
  struct Candidate {
    uint64_t total = 0;
    std::map<uint32_t, std::pair<uint64_t, std::string>> shard_states;
  };
  Candidate current, last_complete;
  bool have_current = false, have_complete = false;

  for (;;) {
    CheckpointRecordType type;
    std::string payload;
    Status st = log.Read(&type, &payload);
    if (st.code() == StatusCode::kOutOfRange) break;
    LDPHH_RETURN_IF_ERROR(st);

    ByteReader reader(payload);
    if (type == CheckpointRecordType::kManifest) {
      uint16_t version = 0;
      uint32_t num_shards = 0;
      uint64_t total = 0;
      LDPHH_RETURN_IF_ERROR(reader.ReadU16(&version));
      if (version != kCheckpointVersion) {
        return Status::DecodeFailure("checkpoint: unsupported manifest version");
      }
      // The config the checkpoint was taken under is embedded in the
      // manifest: the log is self-describing, and restoring it into a
      // differently configured service is a hard error, not a silent
      // mis-merge.
      ProtocolConfig config;
      LDPHH_RETURN_IF_ERROR(ProtocolConfig::ReadFrom(reader, &config));
      if (config != config_) {
        return Status::InvalidArgument(
            "checkpoint: config mismatch (log was written by " +
            config.ToText() + ", this aggregator serves " + config_.ToText() +
            ")");
      }
      LDPHH_RETURN_IF_ERROR(reader.ReadU32(&num_shards));
      LDPHH_RETURN_IF_ERROR(reader.ReadU64(&total));
      if (num_shards != static_cast<uint32_t>(options_.num_shards)) {
        return Status::InvalidArgument(
            "checkpoint: shard count mismatch (log has " +
            std::to_string(num_shards) + ", aggregator has " +
            std::to_string(options_.num_shards) + ")");
      }
      current = Candidate{};
      current.total = total;
      have_current = true;
    } else if (type == CheckpointRecordType::kShardState) {
      if (!have_current) continue;  // Orphan shard record; skip.
      uint32_t shard_id = 0;
      uint64_t ingested = 0;
      LDPHH_RETURN_IF_ERROR(reader.ReadU32(&shard_id));
      LDPHH_RETURN_IF_ERROR(reader.ReadU64(&ingested));
      if (shard_id >= static_cast<uint32_t>(options_.num_shards)) {
        return Status::DecodeFailure("checkpoint: shard id out of range");
      }
      current.shard_states[shard_id] = {
          ingested, std::string(payload.substr(reader.position()))};
      if (current.shard_states.size() == shards_.size()) {
        last_complete = current;
        have_complete = true;
      }
    }
    // Unknown record types are skipped for forward compatibility.
  }

  if (!have_complete) {
    return Status::OutOfRange("checkpoint: no complete checkpoint in log");
  }
  uint64_t restored = 0;
  for (const auto& [shard_id, state] : last_complete.shard_states) {
    Shard& shard = *shards_[shard_id];
    LDPHH_RETURN_IF_ERROR(shard.oracle->RestoreState(state.second));
    // Pre-Start, so uncontended — locked to keep the guarded write honest.
    MutexLock lk(&shard.mu);
    shard.ingested = state.first;
    restored += state.first;
  }
  restored_ = restored;
  restored_reports_->Increment(restored);
  checkpoint_restore_ns_->Observe(static_cast<uint64_t>(restore_timer.Nanos()));
  obs::TraceRing::Global().Record("ingest", "checkpoint_restore", "", restored,
                                  static_cast<uint64_t>(options_.num_shards));
  return Status::OK();
}

StatusOr<std::unique_ptr<Aggregator>> ShardedAggregator::Finish() {
  if (!started_ || finished_) {
    return Status::FailedPrecondition(
        "ShardedAggregator: Finish outside Start()..Finish()");
  }
  LDPHH_RETURN_IF_ERROR(Drain());
  finished_ = true;
  stop_.store(true);
  for (auto& shard : shards_) {
    {
      // Under the lock so a worker between its predicate check and its
      // Wait() cannot miss the stop wakeup.
      MutexLock lk(&shard->mu);
      shard->not_empty.SignalAll();
    }
    if (shard->worker.joinable()) shard->worker.join();
  }
  std::unique_ptr<Aggregator> merged = std::move(shards_[0]->oracle);
  for (size_t s = 1; s < shards_.size(); ++s) {
    LDPHH_RETURN_IF_ERROR(merged->Merge(*shards_[s]->oracle));
    shards_[s]->oracle.reset();
  }
  return merged;
}

IngestStats ShardedAggregator::Stats() const {
  IngestStats stats;
  stats.submitted = submitted_->Value();
  stats.restored = restored_;
  stats.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    stats.per_shard.push_back(shard->ingested);
    stats.rejected += shard->rejected;
  }
  return stats;
}

}  // namespace ldphh
