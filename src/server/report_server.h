/// \file report_server.h
/// \brief Network ingestion front-end: framed report batches over TCP/UDS.
///
/// ReportServer is the wire between LDP clients and the aggregation
/// pipeline. It listens on TCP and/or a Unix-domain socket via the
/// `src/net/` event loop, speaks the length-prefixed framing of frame.h
/// (payload = `report_codec` batch bytes), and feeds every frame to a
/// pluggable `Sink` — in production `ShardedAggregator::TrySubmitWire` or
/// `EpochManager::SubmitWire` — answering each frame, in order per
/// connection, with an ack frame carrying the sink's `Status`.
///
/// **Backpressure is bounded memory, end to end.** Three mechanisms stack:
///
///   1. Per-connection buffer caps (`read_buffer_cap` / `write_buffer_cap`)
///      bound what any one socket can pin.
///   2. A global in-flight budget (`max_in_flight_frames`): frames that
///      have been parsed but not yet acked. When the budget is exhausted
///      the server *stops reading every socket* (Connection::PauseRead),
///      pushing the overload into kernel buffers and the clients' TCP
///      windows instead of this process's heap. Worst-case frame memory is
///      `max_in_flight_frames × max_frame_bytes` plus the capped
///      per-connection buffers — independent of client count and offered
///      load.
///   3. A non-blocking sink: when shard queues are full the sink returns
///      kResourceExhausted *without enqueuing*, and the client sees a
///      retryable busy ack (frame.h documents the retry contract). The
///      event loop never blocks on a full queue.
///
/// Robustness: oversized frames are rejected from the length prefix alone
/// (before buffering the body); malformed batches get a permanent error
/// ack; idle connections are disconnected after `idle_timeout_ms`; a
/// slow client that stops draining acks trips its write cap and is
/// dropped. `Stop()` drains gracefully — listeners close, reads pause,
/// in-flight frames finish and their acks flush (up to
/// `drain_timeout_ms`), then connections close.
///
/// Frames are processed by a small sink-thread pool; per-connection
/// ordering (one outstanding sink call per connection, acks in frame
/// order) is preserved, and frames from different connections proceed in
/// parallel.
///
/// Observability: every `ldphh_net_*` counter/gauge below, a "net.frame"
/// span family around sink calls, a `/statusz` "net" section, and a
/// readiness check ("net.ingest"). docs/observability.md lists them all.

#ifndef LDPHH_SERVER_REPORT_SERVER_H_
#define LDPHH_SERVER_REPORT_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/listener.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/statusz.h"

namespace ldphh {

/// \brief The framed-ingestion server (see file comment).
class ReportServer {
 public:
  struct Options {
    bool enable_tcp = true;            ///< Listen on TCP.
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;                 ///< 0 = ephemeral; see port().
    std::string uds_path;              ///< Non-empty = also listen on UDS.
    size_t max_frame_bytes = 1u << 20; ///< Payload cap; larger frames rejected.
    size_t read_buffer_cap = 1u << 20; ///< Per-conn inbound cap (raised to fit
                                       ///< one max frame if set lower).
    size_t write_buffer_cap = 1u << 20;///< Per-conn outbound (ack) cap.
    size_t max_in_flight_frames = 64;  ///< Global parsed-but-unacked budget.
    int sink_threads = 2;              ///< Sink worker pool size (>= 1).
    int64_t idle_timeout_ms = 60000;   ///< Disconnect idle conns; <= 0 = never.
    int64_t drain_timeout_ms = 5000;   ///< Stop() grace period.
  };

  /// Handles one frame payload. Runs on a sink worker thread; must be
  /// thread-safe up to `sink_threads` concurrent calls. kResourceExhausted
  /// means "not consumed, client should retry"; any other error is a
  /// permanent per-frame rejection. Either way the connection survives.
  using Sink = std::function<Status(std::string_view payload)>;

  static StatusOr<std::unique_ptr<ReportServer>> Create(const Options& options,
                                                        Sink sink);

  ~ReportServer();
  ReportServer(const ReportServer&) = delete;
  ReportServer& operator=(const ReportServer&) = delete;

  /// Starts the loop, the sink pool, and the listeners. Call once.
  Status Start();

  /// Graceful drain + shutdown (see file comment). Idempotent.
  void Stop();

  /// The bound TCP port (resolved when Options::port was 0); 0 if TCP is
  /// disabled. Valid after Start().
  uint16_t port() const { return port_; }
  const std::string& uds_path() const { return options_.uds_path; }

  /// Loop-synchronized snapshots for tests.
  size_t InFlightForTesting();
  size_t ActiveConnectionsForTesting();
  bool ReadThrottledForTesting();

 private:
  /// Per-connection state, owned by (and touched only on) the loop thread.
  struct Conn {
    std::unique_ptr<net::Connection> connection;
    /// Parsed frames awaiting their turn at the sink (each counted in
    /// in_flight_). Per-connection FIFO keeps acks in frame order.
    std::deque<std::string> frames;
    bool in_sink = false;  ///< One sink call outstanding for this conn.
    std::chrono::steady_clock::time_point last_activity;
  };

  struct SinkJob {
    uint64_t conn_id = 0;
    std::string payload;
  };

  explicit ReportServer(const Options& options, Sink sink);

  // Loop-thread handlers.
  void HandleAccept(int fd, bool is_uds);
  void HandleData(uint64_t conn_id, net::Connection* connection);
  void HandleClosed(uint64_t conn_id, const Status& reason);
  void HandleSinkDone(uint64_t conn_id, const Status& status);
  void ScheduleSink(uint64_t conn_id);
  void ThrottleReads();
  void MaybeUnthrottle();
  void ScheduleIdleSweep();
  void IdleSweep();

  void SinkWorker();

  const Options options_;
  const Sink sink_;

  net::EventLoop loop_;
  std::unique_ptr<net::Listener> tcp_listener_;
  std::unique_ptr<net::Listener> uds_listener_;
  uint16_t port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> accepting_{false};  ///< Readiness (health check reads it).

  // Loop-thread-only state (no locks by design; see event_loop.h).
  std::map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 1;
  size_t in_flight_ = 0;  ///< Frames parsed but not yet acked.
  bool throttled_ = false;
  bool draining_ = false;

  Mutex sink_mu_;
  CondVar sink_cv_{&sink_mu_};
  std::deque<SinkJob> sink_queue_ GUARDED_BY(sink_mu_);
  bool sink_stop_ GUARDED_BY(sink_mu_) = false;
  std::vector<std::thread> sink_workers_;

  // Instruments (docs/observability.md).
  std::shared_ptr<obs::Counter> connections_accepted_;
  std::shared_ptr<obs::Counter> connections_closed_;
  std::shared_ptr<obs::Gauge> active_connections_;
  std::shared_ptr<obs::Counter> frames_total_;
  std::shared_ptr<obs::Counter> frames_acked_;
  std::shared_ptr<obs::Counter> frames_busy_;
  std::shared_ptr<obs::Counter> frames_rejected_;
  std::shared_ptr<obs::Counter> rx_bytes_;
  std::shared_ptr<obs::Counter> tx_bytes_;
  std::shared_ptr<obs::Gauge> in_flight_gauge_;
  std::shared_ptr<obs::Gauge> throttled_gauge_;
  std::shared_ptr<obs::Counter> throttle_events_;
  std::shared_ptr<obs::Histogram> sink_ns_;
  std::shared_ptr<obs::SpanFamily> frame_spans_;
  /// Declared last: unregister before members the callbacks read die.
  obs::HealthRegistry::Registration health_;
  obs::StatuszRegistry::Registration statusz_;
};

}  // namespace ldphh

#endif  // LDPHH_SERVER_REPORT_SERVER_H_
