#include "src/server/report_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/net/frame.h"

namespace ldphh {

ReportServer::ReportServer(const Options& options, Sink sink)
    : options_(options), sink_(std::move(sink)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  connections_accepted_ =
      reg.NewCounter("ldphh_net_connections_accepted_total",
                     "Report-server connections accepted (TCP + UDS)");
  connections_closed_ = reg.NewCounter(
      "ldphh_net_connections_closed_total",
      "Report-server connections closed (any reason)");
  active_connections_ = reg.NewGauge("ldphh_net_active_connections",
                                     "Report-server connections currently open",
                                     "connections");
  frames_total_ = reg.NewCounter("ldphh_net_frames_total",
                                 "Well-formed frames parsed off the wire");
  frames_acked_ = reg.NewCounter("ldphh_net_frames_acked_total",
                                 "Frames acked OK (sink accepted the batch)");
  frames_busy_ = reg.NewCounter(
      "ldphh_net_frames_busy_total",
      "Frames acked busy (retryable kResourceExhausted from the sink)");
  frames_rejected_ = reg.NewCounter(
      "ldphh_net_frames_rejected_total",
      "Frames rejected permanently (oversized, malformed, sink error)");
  rx_bytes_ = reg.NewCounter("ldphh_net_rx_bytes_total",
                             "Frame bytes received (header + payload)",
                             "bytes");
  tx_bytes_ = reg.NewCounter("ldphh_net_tx_bytes_total",
                             "Ack bytes sent (header + payload)", "bytes");
  in_flight_gauge_ = reg.NewGauge(
      "ldphh_net_in_flight_frames",
      "Frames parsed but not yet acked (bounded by max_in_flight_frames)",
      "frames");
  throttled_gauge_ = reg.NewGauge(
      "ldphh_net_read_throttled",
      "1 while the in-flight budget is exhausted and all reads are paused");
  throttle_events_ = reg.NewCounter(
      "ldphh_net_read_throttle_events_total",
      "Times the server paused all reads (in-flight budget exhausted)");
  sink_ns_ = reg.NewHistogram("ldphh_net_frame_sink_duration_ns",
                              "Sink latency per frame (decode + enqueue)",
                              "ns");
  frame_spans_ = obs::SpanSampler::Global().Family("net.frame");

  health_ = obs::HealthRegistry::Global().Register(
      "net.ingest",
      [this]() -> Status {
        if (!accepting_.load(std::memory_order_relaxed)) {
          return Status::FailedPrecondition(
              "report server not accepting (stopped or not started)");
        }
        return Status::OK();
      },
      /*readiness_only=*/true);

  // Reads registry instruments only (atomics), so a scrape never touches
  // loop-thread state.
  statusz_ = obs::StatuszRegistry::Global().Register(
      "net", [this](obs::JsonWriter& w) {
        w.BeginObject();
        w.Key("accepting").Bool(accepting_.load(std::memory_order_relaxed));
        w.Key("tcp_port").Uint(port_);
        w.Key("uds_path").String(options_.uds_path);
        w.Key("active_connections")
            .Uint(static_cast<uint64_t>(active_connections_->Value()));
        w.Key("in_flight_frames")
            .Uint(static_cast<uint64_t>(in_flight_gauge_->Value()));
        w.Key("max_in_flight_frames")
            .Uint(static_cast<uint64_t>(options_.max_in_flight_frames));
        w.Key("read_throttled").Bool(throttled_gauge_->Value() != 0.0);
        w.Key("frames").Uint(frames_total_->Value());
        w.Key("acked").Uint(frames_acked_->Value());
        w.Key("busy").Uint(frames_busy_->Value());
        w.Key("rejected").Uint(frames_rejected_->Value());
        w.Key("rx_bytes").Uint(rx_bytes_->Value());
        w.Key("tx_bytes").Uint(tx_bytes_->Value());
        w.EndObject();
      });
}

StatusOr<std::unique_ptr<ReportServer>> ReportServer::Create(
    const Options& options, Sink sink) {
  if (!sink) {
    return Status::InvalidArgument("ReportServer: null sink");
  }
  if (!options.enable_tcp && options.uds_path.empty()) {
    return Status::InvalidArgument(
        "ReportServer: no listener configured (TCP disabled, no UDS path)");
  }
  if (options.max_frame_bytes == 0) {
    return Status::InvalidArgument("ReportServer: max_frame_bytes must be > 0");
  }
  if (options.sink_threads < 1) {
    return Status::InvalidArgument("ReportServer: need >= 1 sink thread");
  }
  if (options.max_in_flight_frames < 1) {
    return Status::InvalidArgument(
        "ReportServer: max_in_flight_frames must be >= 1");
  }
  Options resolved = options;
  // The inbound buffer must hold at least one maximal frame or that frame
  // could never be parsed.
  resolved.read_buffer_cap =
      std::max(resolved.read_buffer_cap,
               net::kFrameHeaderSize + resolved.max_frame_bytes);
  return std::unique_ptr<ReportServer>(
      new ReportServer(resolved, std::move(sink)));
}

ReportServer::~ReportServer() { Stop(); }

Status ReportServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("ReportServer: already started");
  }
  started_ = true;
  LDPHH_RETURN_IF_ERROR(loop_.Start());
  for (int i = 0; i < options_.sink_threads; ++i) {
    sink_workers_.emplace_back([this] { SinkWorker(); });
  }

  Status listen_status = Status::OK();
  if (options_.enable_tcp) {
    auto listener_or = net::Listener::ListenTcp(
        &loop_, options_.bind_address, options_.port,
        [this](int fd) { HandleAccept(fd, /*is_uds=*/false); });
    if (listener_or.ok()) {
      tcp_listener_ = std::move(listener_or).value();
      port_ = tcp_listener_->port();
    } else {
      listen_status = listener_or.status();
    }
  }
  if (listen_status.ok() && !options_.uds_path.empty()) {
    auto listener_or = net::Listener::ListenUds(
        &loop_, options_.uds_path,
        [this](int fd) { HandleAccept(fd, /*is_uds=*/true); });
    if (listener_or.ok()) {
      uds_listener_ = std::move(listener_or).value();
    } else {
      listen_status = listener_or.status();
    }
  }
  if (!listen_status.ok()) {
    Stop();
    return listen_status;
  }
  loop_.RunSync([this] { ScheduleIdleSweep(); });
  accepting_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void ReportServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  accepting_.store(false, std::memory_order_relaxed);

  // 1. No new connections.
  if (tcp_listener_) tcp_listener_->Close();
  if (uds_listener_) uds_listener_->Close();

  // 2. No new frames: pause every read. In-flight frames keep flowing to
  //    the sink and their acks keep flushing.
  loop_.RunSync([this] {
    draining_ = true;
    for (auto& [id, conn] : conns_) conn.connection->PauseRead();
  });

  // 3. Drain: wait (bounded) until every parsed frame is acked and every
  //    ack byte has left the process.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  for (;;) {
    bool drained = false;
    loop_.RunSync([this, &drained] {
      drained = in_flight_ == 0;
      for (const auto& [id, conn] : conns_) {
        if (conn.connection->pending_write_bytes() > 0) drained = false;
      }
    });
    if (drained || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // 4. Stop the sink pool (drain timed out => leftover jobs are dropped).
  {
    MutexLock lk(&sink_mu_);
    sink_stop_ = true;
    sink_cv_.SignalAll();
  }
  for (std::thread& worker : sink_workers_) {
    if (worker.joinable()) worker.join();
  }
  sink_workers_.clear();

  // 5. Close the connections (silent teardown — no per-conn callbacks).
  loop_.RunSync([this] {
    conns_.clear();
    active_connections_->Set(0);
  });

  // 6. Stop the loop.
  loop_.Stop();
}

size_t ReportServer::InFlightForTesting() {
  size_t v = 0;
  loop_.RunSync([this, &v] { v = in_flight_; });
  return v;
}

size_t ReportServer::ActiveConnectionsForTesting() {
  size_t v = 0;
  loop_.RunSync([this, &v] { v = conns_.size(); });
  return v;
}

bool ReportServer::ReadThrottledForTesting() {
  bool v = false;
  loop_.RunSync([this, &v] { v = throttled_; });
  return v;
}

void ReportServer::HandleAccept(int fd, bool is_uds) {
  if (draining_) {
    ::close(fd);
    return;
  }
  if (!is_uds) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  const uint64_t id = next_conn_id_++;
  net::Connection::Options conn_options;
  conn_options.read_buffer_cap = options_.read_buffer_cap;
  conn_options.write_buffer_cap = options_.write_buffer_cap;
  Conn conn;
  conn.connection = std::make_unique<net::Connection>(
      &loop_, fd, conn_options,
      [this, id](net::Connection* c) { HandleData(id, c); },
      [this, id](net::Connection*, const Status& reason) {
        HandleClosed(id, reason);
      });
  conn.last_activity = std::chrono::steady_clock::now();
  if (throttled_) conn.connection->PauseRead();
  conns_.emplace(id, std::move(conn));
  connections_accepted_->Increment();
  active_connections_->Set(static_cast<double>(conns_.size()));
}

void ReportServer::HandleData(uint64_t conn_id, net::Connection* connection) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  conn.last_activity = std::chrono::steady_clock::now();

  while (!draining_) {
    if (in_flight_ >= options_.max_in_flight_frames) {
      // Budget exhausted: leave the rest in the (capped) buffer and stop
      // reading everywhere. Parsing resumes when acks free budget.
      ThrottleReads();
      break;
    }
    std::string_view payload;
    size_t consumed = 0;
    Status frame_error = Status::OK();
    const net::FrameParse parse = net::TryParseFrame(
        connection->buffer(), options_.max_frame_bytes, &payload, &consumed,
        &frame_error);
    if (parse == net::FrameParse::kNeedMore) break;
    if (parse == net::FrameParse::kBad) {
      // Protocol violation: best-effort error ack, then drop the client
      // (the stream cannot be resynchronized past a bad length prefix).
      frames_rejected_->Increment();
      std::string reply;
      net::AppendStatusFrame(&reply, frame_error);
      connection->Send(reply);
      tx_bytes_->Increment(reply.size());
      connection->Close(frame_error);
      return;  // `conn` and `connection` are gone.
    }
    rx_bytes_->Increment(consumed);
    frames_total_->Increment();
    ++in_flight_;
    in_flight_gauge_->Set(static_cast<double>(in_flight_));
    conn.frames.emplace_back(payload);
    connection->Consume(consumed);
  }
  ScheduleSink(conn_id);
}

void ReportServer::HandleClosed(uint64_t conn_id, const Status& reason) {
  IgnoreStatus(reason, "close reason is for logging/metrics only");
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Frames parsed but never dispatched die with the connection; the one
  // in the sink (if any) returns its budget via HandleSinkDone.
  in_flight_ -= it->second.frames.size();
  in_flight_gauge_->Set(static_cast<double>(in_flight_));
  conns_.erase(it);  // Destroys the Connection (safe: liveness sentinel).
  connections_closed_->Increment();
  active_connections_->Set(static_cast<double>(conns_.size()));
  MaybeUnthrottle();
}

void ReportServer::ScheduleSink(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.in_sink || conn.frames.empty()) return;
  conn.in_sink = true;
  SinkJob job;
  job.conn_id = conn_id;
  job.payload = std::move(conn.frames.front());
  conn.frames.pop_front();
  {
    MutexLock lk(&sink_mu_);
    sink_queue_.push_back(std::move(job));
  }
  sink_cv_.Signal();
}

void ReportServer::HandleSinkDone(uint64_t conn_id, const Status& status) {
  --in_flight_;
  in_flight_gauge_->Set(static_cast<double>(in_flight_));
  MaybeUnthrottle();

  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // Client vanished mid-frame; ack moot.
  Conn& conn = it->second;
  conn.in_sink = false;
  conn.last_activity = std::chrono::steady_clock::now();

  if (status.ok()) {
    frames_acked_->Increment();
  } else if (status.code() == StatusCode::kResourceExhausted) {
    frames_busy_->Increment();
  } else {
    frames_rejected_->Increment();
  }
  std::string reply;
  net::AppendStatusFrame(&reply, status);
  tx_bytes_->Increment(reply.size());
  conn.connection->Send(reply);
  // Send may have closed the connection (write cap / IO error) and erased
  // it from conns_; re-resolve before dispatching the next frame.
  ScheduleSink(conn_id);
}

void ReportServer::ThrottleReads() {
  if (throttled_) return;
  throttled_ = true;
  throttled_gauge_->Set(1.0);
  throttle_events_->Increment();
  for (auto& [id, conn] : conns_) conn.connection->PauseRead();
}

void ReportServer::MaybeUnthrottle() {
  if (!throttled_ || draining_) return;
  if (in_flight_ >= options_.max_in_flight_frames) return;
  throttled_ = false;
  throttled_gauge_->Set(0.0);
  // ResumeRead re-fires on_data for buffered-but-unparsed bytes, so frames
  // that arrived before the pause are picked right back up.
  for (auto& [id, conn] : conns_) conn.connection->ResumeRead();
}

void ReportServer::ScheduleIdleSweep() {
  if (options_.idle_timeout_ms <= 0) return;
  const int64_t period = std::min<int64_t>(options_.idle_timeout_ms, 1000);
  loop_.RunAfter(period, [this] { IdleSweep(); });
}

void ReportServer::IdleSweep() {
  if (draining_) return;  // Stop() owns the connections now.
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    // A throttled connection is quiet through no fault of its own, and one
    // with frames queued or in the sink is mid-work — neither is idle.
    if (throttled_ || conn.in_sink || !conn.frames.empty()) continue;
    if (now - conn.last_activity > limit) idle.push_back(id);
  }
  for (const uint64_t id : idle) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    it->second.connection->Close(
        Status::FailedPrecondition("net: idle timeout"));
  }
  ScheduleIdleSweep();
}

void ReportServer::SinkWorker() {
  for (;;) {
    SinkJob job;
    {
      MutexLock lk(&sink_mu_);
      while (sink_queue_.empty() && !sink_stop_) sink_cv_.Wait();
      if (sink_stop_) return;
      job = std::move(sink_queue_.front());
      sink_queue_.pop_front();
    }
    Status status;
    {
      obs::Span span(frame_spans_.get());
      span.set_args(job.payload.size());
      status = sink_(job.payload);
      if (!status.ok()) span.set_detail(status.message());
      sink_ns_->Observe(span.ElapsedNs());
    }
    const uint64_t conn_id = job.conn_id;
    if (!loop_.Post([this, conn_id, status] {
          HandleSinkDone(conn_id, status);
        })) {
      // Loop is stopping; bookkeeping no longer matters.
      return;
    }
  }
}

}  // namespace ldphh
