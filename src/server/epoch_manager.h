/// \file epoch_manager.h
/// \brief Epoch-windowed continuous aggregation on top of ShardedAggregator
/// and the segment store (src/store/checkpoint_store.h).
///
/// The paper's protocols are one-shot: n reports in, one estimate set out.
/// A production service ingests forever and is asked "what are the heavy
/// hitters over the last k epochs?". The EpochManager makes that query
/// exact: it rolls the sharded aggregator over fixed-size report epochs,
/// and each CloseEpoch() persists the epoch's *merged* aggregator state —
/// bit-for-bit equal to a single-threaded aggregation of the epoch's
/// reports — into the store keyed by epoch id. WindowedQuery(first, last)
/// then merges the persisted states back into one aggregator whose
/// estimates are bit-for-bit identical to re-aggregating those epochs'
/// reports from scratch, because every registered protocol's state is an
/// integer-valued tally (or a report list), so Merge is exact and
/// associative.
///
/// Self-describing records: every epoch blob embeds the serialized
/// `ProtocolConfig` it was aggregated under. The read path
/// (`MergeEpochWindow`, shared with the replica) reconstructs the
/// aggregator from the embedded config via the registry — no caller-
/// supplied factory anywhere — and a window mixing configs, or a primary
/// querying epochs written under a different config, fails with a clean
/// `Status` instead of silently merging incompatible state.
///
/// Durability contract: a closed epoch survives any crash — including OS
/// crash and power loss when the store runs with SyncMode::kFull/kData
/// (the default): CloseEpoch's store Puts are fsync'd through the file
/// layer before it returns. Under SyncMode::kNone the epoch is only
/// process-crash safe. Reports of the *open* epoch follow the PR 1
/// recovery model: clients replay anything submitted after the last
/// CloseEpoch.
///
/// Thread-safety: the control surface (Submit/CloseEpoch/Close) is
/// single-threaded, like ShardedAggregator's Start/Finish; aggregation
/// itself fans out across the shard workers. WindowedQuery only touches
/// the store (thread-safe) and may run concurrently with ingestion.

#ifndef LDPHH_SERVER_EPOCH_MANAGER_H_
#define LDPHH_SERVER_EPOCH_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/protocols/aggregator.h"
#include "src/protocols/protocol_config.h"
#include "src/server/sharded_aggregator.h"
#include "src/store/checkpoint_store.h"

namespace ldphh {

/// Tuning for EpochManager.
struct EpochManagerOptions {
  /// Reports per epoch; Submit auto-closes the epoch at this count.
  uint64_t reports_per_epoch = 1 << 16;
  /// Wall-clock roll policy, alongside the count-based one: close the open
  /// epoch once it has been open at least this long. Zero disables. The
  /// elapsed time is checked after every Submit and by PollClock() — a
  /// quiet stream needs the caller's PollClock cadence (e.g. a timer) to
  /// roll on time.
  std::chrono::milliseconds epoch_max_duration{0};
  /// Injectable time source for the wall-clock policy (tests substitute a
  /// fake); null means std::chrono::steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Shard configuration for the per-epoch aggregator.
  ShardedAggregatorOptions aggregator;
};

/// \brief Continuous ingestion with durable, queryable epochs.
class EpochManager {
 public:
  /// \p store must outlive the manager; the manager owns its key space
  /// (keys are epoch ids). The \p config is resolved through the registry
  /// once here; every epoch's aggregator is built from the resolved form.
  static StatusOr<std::unique_ptr<EpochManager>> Create(
      const ProtocolConfig& config, CheckpointStore* store,
      EpochManagerOptions options);

  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Recovers the epoch clock from the store (next epoch = last persisted
  /// + 1) and starts the aggregator for the open epoch. Call once.
  Status Start();

  /// Ingests one report into the open epoch; closes the epoch when it
  /// reaches reports_per_epoch.
  Status Submit(const WireReport& report);

  /// Decodes a wire-format batch (report_codec.h) and submits each report.
  /// A batch stamped for a different protocol is rejected whole.
  Status SubmitWire(std::string_view batch);

  /// Snapshots the open epoch's merged aggregator state into the store
  /// under the current epoch id (durable on return, config embedded), then
  /// opens the next epoch. Closing an epoch with zero reports is allowed
  /// (a quiet period).
  Status CloseEpoch();

  /// Wall-clock roll for quiet streams: closes the open epoch iff
  /// epoch_max_duration is set and has elapsed (even with zero reports —
  /// a quiet period is still an epoch). Returns whether it rolled.
  StatusOr<bool> PollClock();

  /// Closes the open epoch if it holds any reports, then stops ingestion.
  /// Further Submit/CloseEpoch calls fail.
  Status Close();

  /// Merges the persisted states of epochs [first, last] (inclusive) into
  /// one un-finalized aggregator: call EstimateTopK() on it. Bit-for-bit
  /// identical to a fresh single-threaded aggregation of those epochs'
  /// reports. Fails with kOutOfRange if any epoch in the window is not
  /// persisted (never closed, or pruned), and with kFailedPrecondition if
  /// a persisted epoch was written under a different config.
  StatusOr<std::unique_ptr<Aggregator>> WindowedQuery(
      uint64_t first_epoch, uint64_t last_epoch) const;

  /// Drops persisted epochs with id < \p first_kept (durable tombstones;
  /// segment compaction reclaims the space).
  Status PruneEpochsBefore(uint64_t first_kept);

  /// Epoch ids currently persisted, ascending.
  std::vector<uint64_t> PersistedEpochs() const;

  /// The resolved protocol config every epoch aggregates under.
  const ProtocolConfig& config() const { return config_; }

  /// Id of the open epoch.
  uint64_t current_epoch() const { return current_epoch_; }
  /// Reports ingested into the open epoch so far.
  uint64_t reports_in_current_epoch() const { return reports_in_epoch_; }

 private:
  EpochManager(ProtocolConfig config, uint16_t wire_id, CheckpointStore* store,
               EpochManagerOptions options);

  Status RollAggregator();
  std::chrono::steady_clock::time_point Now() const;
  bool EpochTimeUp() const;

  ProtocolConfig config_;
  uint16_t wire_id_ = 0;
  CheckpointStore* store_;
  EpochManagerOptions options_;
  std::unique_ptr<ShardedAggregator> aggregator_;
  uint64_t current_epoch_ = 0;
  uint64_t reports_in_epoch_ = 0;
  std::chrono::steady_clock::time_point epoch_opened_at_{};
  bool started_ = false;
  bool closed_ = false;

  // Registry instruments for the epoch lifecycle.
  std::shared_ptr<obs::Histogram> epoch_close_ns_;
  std::shared_ptr<obs::Counter> epochs_closed_;
  std::shared_ptr<obs::Counter> epochs_pruned_;
  std::shared_ptr<obs::Gauge> current_epoch_gauge_;
  std::shared_ptr<obs::Gauge> open_reports_gauge_;
  /// Slow-span family for CloseEpoch (served at /spanz).
  std::shared_ptr<obs::SpanFamily> close_spans_;
  /// Declared last: unregisters (stopping /statusz callbacks into this
  /// object) before any member the callback reads is destroyed.
  obs::StatuszRegistry::Registration statusz_;
};

/// Epoch snapshot blob layout (the value stored under an epoch id):
///   [u32 magic "EPCH"][u16 version][u64 epoch_id][u64 report_count]
///   [protocol config (varint length + canonical text)]
///   [aggregator state]
/// v2 added the embedded config, making every epoch record self-describing.
inline constexpr uint32_t kEpochBlobMagic = 0x48435045u;  // "EPCH" LE.
inline constexpr uint16_t kEpochBlobVersion = 2;

/// Reserved store key holding the durable epoch clock ([u64 next epoch]):
/// the high-water mark survives even when retention prunes every epoch, so
/// a restart never re-issues an epoch id. Epoch ids must stay below it.
inline constexpr uint64_t kEpochClockKey = UINT64_MAX;

/// Decodes the kEpochClockKey blob ([u64 next epoch]).
Status ParseEpochClock(std::string_view blob, uint64_t* next_epoch);

/// Merges the persisted states of epochs [first, last] (inclusive), each
/// fetched through \p get (a CheckpointStore::Get on the primary, a
/// ReplicaStore::Get on a follower — src/server/replica_view.h), into one
/// un-finalized aggregator. The blobs are self-describing: each aggregator
/// is built by the registry from the config embedded in the blob, so the
/// shared read path needs no factory and both sides decode and merge
/// identically — bit for bit. Every epoch in the window must carry the
/// same config (and match \p expected_config when non-null); a mismatch is
/// kFailedPrecondition. \p get returning kOutOfRange for any epoch in the
/// window (never closed, pruned, or not yet tailed) maps to kOutOfRange.
StatusOr<std::unique_ptr<Aggregator>> MergeEpochWindow(
    const std::function<Status(uint64_t epoch, std::string* blob)>& get,
    uint64_t first_epoch, uint64_t last_epoch,
    const ProtocolConfig* expected_config);

}  // namespace ldphh

#endif  // LDPHH_SERVER_EPOCH_MANAGER_H_
