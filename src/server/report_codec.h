/// \file report_codec.h
/// \brief Compact binary wire format for client reports.
///
/// Clients of the ingestion service ship `FoReport`-style reports in framed
/// batches:
///
///   batch   := header record*
///   header  := magic(u32 "LDPB") version(u16) protocol_id(u16)
///              count(u32) payload_len(u32) masked_crc32c(u32 of payload)
///   record  := user_index(varint) num_bits(u8) payload(ceil(num_bits/8) B)
///
/// All integers are little-endian. The record payload carries exactly the
/// low `num_bits` of `FoReport::bits` (encode masks, so a report can never
/// smuggle more entropy than its declared wire cost). Decode validates the
/// magic, version, lengths, CRC, and `num_bits <= 64` and returns `Status`
/// on any corruption — never UB.
///
/// `protocol_id` (the previously reserved flags space) stamps the batch
/// with the wire id of the protocol the reports were encoded for (see
/// ProtocolWireId in src/protocols/registry.h). 0 means unstamped — the
/// pre-stamp wire format, accepted by every server — and any other value
/// lets a front-end reject a batch for the wrong protocol at decode time,
/// before a single report reaches an aggregator.

#ifndef LDPHH_SERVER_REPORT_CODEC_H_
#define LDPHH_SERVER_REPORT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/freq/freq_oracle.h"

namespace ldphh {

// WireReport (the decoded record type) lives in src/freq/freq_oracle.h so
// the protocol layer can consume it without a server dependency.

inline constexpr uint32_t kReportBatchMagic = 0x4250444cu;  // "LDPB" LE.
inline constexpr uint16_t kReportBatchVersion = 1;
/// Fixed byte size of the batch header.
inline constexpr size_t kReportBatchHeaderSize = 4 + 2 + 2 + 4 + 4 + 4;

/// Clamps a report to its declared width: `num_bits` into [0, 64], payload
/// bits above `num_bits` dropped. Call on untrusted `FoReport`s.
FoReport ClampFoReport(const FoReport& report);

/// Appends one record to \p out. CHECK-fails on num_bits outside [0, 64]
/// (a malformed report here is a library bug, not bad input); payload bits
/// beyond num_bits are masked off.
void AppendWireReport(const WireReport& report, std::string* out);

/// Encodes a whole batch (header + records), stamped with \p protocol_id
/// (0 = unstamped).
std::string EncodeReportBatch(const std::vector<WireReport>& reports,
                              uint16_t protocol_id = 0);

/// Decodes a batch produced by EncodeReportBatch, validating structure and
/// CRC. Appends to \p out. On success \p consumed (if non-null) receives the
/// total encoded size, so batches can be streamed back-to-back, and
/// \p protocol_id (if non-null) receives the batch's protocol stamp.
Status DecodeReportBatch(std::string_view data, std::vector<WireReport>* out,
                         size_t* consumed = nullptr,
                         uint16_t* protocol_id = nullptr);

/// DecodeReportBatch plus the serving-side stamp check: a batch stamped for
/// a protocol other than \p wire_id is rejected whole (the error names
/// \p protocol_name, the serving protocol) before any report is returned;
/// an unstamped batch (id 0) is accepted. The one decode path both
/// ShardedAggregator::SubmitWire and EpochManager::SubmitWire use.
Status DecodeReportBatchFor(std::string_view data, uint16_t wire_id,
                            std::string_view protocol_name,
                            std::vector<WireReport>* out);

}  // namespace ldphh

#endif  // LDPHH_SERVER_REPORT_CODEC_H_
