/// \file kwise_hash.h
/// \brief k-wise independent hash families (the protocols' public randomness).
///
/// `KWiseHash` evaluates a uniformly random degree-(k-1) polynomial over
/// GF(2^61 - 1), which is the textbook k-wise independent family. The
/// protocols use:
///   - pairwise (k=2) functions h_1..h_M : X -> [Y]   (step 3 of §3.3),
///   - a (Cg log|X|)-wise g : X -> [B]                (the bucket hash),
///   - 4-wise sign hashes for the Hashtogram sketch rows.
///
/// Domain items wider than 61 bits are first compressed limb-wise with
/// per-instance random multipliers (a standard pairwise-universal
/// compression that composes with the outer polynomial).

#ifndef LDPHH_HASHING_KWISE_HASH_H_
#define LDPHH_HASHING_KWISE_HASH_H_

#include <cstdint>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/hashing/mersenne61.h"

namespace ldphh {

/// \brief A single member of the k-wise independent polynomial family.
class KWiseHash {
 public:
  /// Samples a random member with independence parameter \p k (>= 1) and
  /// output range [0, \p range). Deterministic given \p rng state.
  KWiseHash(int k, uint64_t range, Rng& rng);

  /// Evaluates the hash on a 64-bit key.
  uint64_t operator()(uint64_t x) const {
    return Eval(Mersenne61FromU64(x)) % range_;
  }

  /// Evaluates the hash on a domain item (any width up to 256 bits).
  uint64_t operator()(const DomainItem& x) const {
    return Eval(Compress(x)) % range_;
  }

  /// Full-field evaluation in [0, 2^61-1), before range reduction. Used by
  /// callers that need more output entropy (e.g. sign extraction).
  uint64_t FullEval(uint64_t x) const { return Eval(Mersenne61FromU64(x)); }
  uint64_t FullEval(const DomainItem& x) const { return Eval(Compress(x)); }

  /// A +/-1 sign derived from the evaluation (for sketch rows; with k>=4
  /// the signs are 4-wise independent).
  int Sign(const DomainItem& x) const {
    return (FullEval(x) & 1) ? -1 : 1;
  }

  uint64_t range() const { return range_; }
  int independence() const { return static_cast<int>(coeffs_.size()); }

 private:
  uint64_t Eval(uint64_t x) const {
    // Horner evaluation of the degree-(k-1) polynomial.
    uint64_t acc = coeffs_.back();
    for (int i = static_cast<int>(coeffs_.size()) - 2; i >= 0; --i) {
      acc = Mersenne61Add(Mersenne61Mul(acc, x), coeffs_[i]);
    }
    return acc;
  }

  uint64_t Compress(const DomainItem& x) const {
    // Pairwise-universal limb compression: sum of limb_i * r_i mod p.
    uint64_t acc = 0;
    for (int i = 0; i < 4; ++i) {
      acc = Mersenne61Add(
          acc, Mersenne61Mul(Mersenne61FromU64(x.limbs[i]), limb_mults_[i]));
    }
    return acc;
  }

  uint64_t range_;
  std::vector<uint64_t> coeffs_;     ///< Polynomial coefficients in GF(p).
  uint64_t limb_mults_[4];           ///< Limb-compression multipliers.
};

/// \brief A seeded family of independent k-wise hash functions.
///
/// Models "public randomness" in the protocols: both users and the server
/// construct the family from the same seed and obtain identical functions.
class HashFamily {
 public:
  /// Creates \p count independent k-wise functions into [0, range).
  HashFamily(int count, int k, uint64_t range, uint64_t seed);

  const KWiseHash& at(int i) const { return fns_.at(i); }
  int size() const { return static_cast<int>(fns_.size()); }

 private:
  std::vector<KWiseHash> fns_;
};

}  // namespace ldphh

#endif  // LDPHH_HASHING_KWISE_HASH_H_
