#include "src/hashing/kwise_hash.h"

namespace ldphh {

KWiseHash::KWiseHash(int k, uint64_t range, Rng& rng) : range_(range) {
  LDPHH_CHECK(k >= 1, "KWiseHash: independence must be >= 1");
  LDPHH_CHECK(range >= 1, "KWiseHash: range must be >= 1");
  coeffs_.resize(static_cast<size_t>(k));
  for (auto& c : coeffs_) c = rng.UniformU64(kMersenne61);
  // Leading coefficient nonzero keeps the polynomial degree exactly k-1;
  // not required for k-wise independence but avoids degenerate instances.
  if (k >= 2 && coeffs_.back() == 0) coeffs_.back() = 1;
  for (auto& m : limb_mults_) m = 1 + rng.UniformU64(kMersenne61 - 1);
}

HashFamily::HashFamily(int count, int k, uint64_t range, uint64_t seed) {
  Rng rng(seed);
  fns_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) fns_.emplace_back(k, range, rng);
}

}  // namespace ldphh
