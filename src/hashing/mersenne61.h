/// \file mersenne61.h
/// \brief Arithmetic in the prime field GF(p) with p = 2^61 - 1.
///
/// The Mersenne structure gives branch-light modular reduction, making
/// polynomial hashing (k-wise independence) fast enough to sit on the
/// per-user hot path of the protocols.

#ifndef LDPHH_HASHING_MERSENNE61_H_
#define LDPHH_HASHING_MERSENNE61_H_

#include <cstdint>

namespace ldphh {

/// The Mersenne prime 2^61 - 1.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// Reduces x (< 2^122) modulo 2^61 - 1 into [0, p).
inline uint64_t Mersenne61Reduce(__uint128_t x) {
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// (a + b) mod p for a, b in [0, p).
inline uint64_t Mersenne61Add(uint64_t a, uint64_t b) {
  uint64_t r = a + b;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// (a * b) mod p for a, b in [0, p).
inline uint64_t Mersenne61Mul(uint64_t a, uint64_t b) {
  return Mersenne61Reduce(static_cast<__uint128_t>(a) * b);
}

/// Maps an arbitrary 64-bit value into [0, p) (loses < 2^-58 of mass).
inline uint64_t Mersenne61FromU64(uint64_t x) {
  uint64_t r = (x & kMersenne61) + (x >> 61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

}  // namespace ldphh

#endif  // LDPHH_HASHING_MERSENNE61_H_
