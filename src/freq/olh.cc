#include "src/freq/olh.h"

#include <cmath>

#include "src/common/math_util.h"
#include "src/common/status.h"
#include "src/hashing/mersenne61.h"

namespace ldphh {

OlhFO::OlhFO(uint64_t domain_size, double epsilon, uint64_t seed)
    : domain_size_(domain_size), epsilon_(epsilon), seed_(seed) {
  LDPHH_CHECK(domain_size >= 2, "OlhFO: domain must have >= 2 values");
  LDPHH_CHECK(epsilon > 0.0, "OlhFO: epsilon must be positive");
  g_ = static_cast<uint64_t>(std::llround(std::exp(epsilon))) + 1;
  if (g_ < 2) g_ = 2;
  report_bits_ = CeilLog2(NextPow2(g_));
  if (report_bits_ == 0) report_bits_ = 1;
  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + static_cast<double>(g_) - 1.0);
}

uint64_t OlhFO::PersonalHash(uint64_t user_index, uint64_t value) const {
  // A fresh pairwise hash per user, derived from (seed, user_index):
  // h(v) = (a * v + b mod p) mod g with a != 0.
  uint64_t s = seed_ ^ Mix64(user_index + 0x1234567);
  const uint64_t a = 1 + Mix64(s) % (kMersenne61 - 1);
  const uint64_t b = Mix64(s ^ 0x9e3779b97f4a7c15ULL) % kMersenne61;
  const uint64_t hv =
      Mersenne61Add(Mersenne61Mul(a, Mersenne61FromU64(value)), b);
  return hv % g_;
}

FoReport OlhFO::EncodeForUser(uint64_t user_index, uint64_t value,
                              Rng& rng) const {
  LDPHH_DCHECK(value < domain_size_, "OlhFO: value out of domain");
  uint64_t hashed = PersonalHash(user_index, value);
  if (!rng.Bernoulli(keep_prob_)) {
    uint64_t other = rng.UniformU64(g_ - 1);
    if (other >= hashed) ++other;
    hashed = other;
  }
  return FoReport{hashed, report_bits_};
}

FoReport OlhFO::Encode(uint64_t value, Rng& rng) const {
  return EncodeForUser(next_user_++, value, rng);
}

void OlhFO::Aggregate(const FoReport& report) {
  reports_.push_back(static_cast<uint32_t>(report.bits));
}

double OlhFO::Estimate(uint64_t value) const {
  LDPHH_DCHECK(value < domain_size_, "Estimate: value out of domain");
  // Support count: users whose report equals their personal hash of value.
  double support = 0.0;
  for (size_t i = 0; i < reports_.size(); ++i) {
    if (reports_[i] == PersonalHash(static_cast<uint64_t>(i), value)) {
      support += 1.0;
    }
  }
  const double n = static_cast<double>(reports_.size());
  const double inv_g = 1.0 / static_cast<double>(g_);
  return (support - n * inv_g) / (keep_prob_ - inv_g);
}

size_t OlhFO::MemoryBytes() const { return reports_.size() * sizeof(uint32_t); }

}  // namespace ldphh
